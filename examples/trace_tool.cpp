// Trace generation/inspection CLI for the Azure-model workloads.
//
//   ./trace_tool gen        <prefix> [rep|rare|random] [n] [target_rps] [hours]
//   ./trace_tool info       <prefix | arena-file>
//   ./trace_tool replay     <prefix> [--trace-out <file>] [--flight-out <file>]
//   ./trace_tool tab1       <dump.json>
//   ./trace_tool flightdump <dump.bin> [--out <chrome.json>]
//
// `gen` writes <prefix>_functions.csv and <prefix>_events.csv (replayable
// by faas_sim and the library's load_trace()); `info` prints statistics of
// a saved trace (auto-detecting ilu-arena-v1 binary arenas, which it also
// integrity-checks); `replay` runs the trace through a simulated worker and can
// dump the transaction-scoped span trees as a Chrome trace and the flight
// recorder's binary event rings; `tab1` recomputes the Table 1
// per-component latency view from such a dump; `flightdump` decodes a
// binary flight dump (from `replay --flight-out` or a crash) into a
// per-ring summary and optionally Chrome trace-event JSON.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "iluvatar.hpp"

using namespace ilu;

namespace {

int cmd_gen(int argc, char** argv) {
  std::string prefix = argv[2];
  std::string kind = argc > 3 ? argv[3] : "rep";
  std::size_t n = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 200;
  double rps = argc > 5 ? std::strtod(argv[5], nullptr) : 0.0;
  double hours = argc > 6 ? std::strtod(argv[6], nullptr) : 2.0;

  AzureModelConfig cfg;
  cfg.population = 50000;
  cfg.days = hours / 24.0;
  AzureTraceModel model(cfg);

  Trace t;
  if (kind == "rep") {
    t = model.sample_representative(n, rps);
  } else if (kind == "rare") {
    t = model.sample_rare(n, rps);
  } else if (kind == "random") {
    t = model.sample_random(n, rps);
  } else {
    std::fprintf(stderr, "unknown sample kind: %s (rep|rare|random)\n",
                 kind.c_str());
    return 2;
  }
  save_trace(t, prefix);
  auto s = t.stats();
  std::printf("wrote %s_{functions,events}.csv: %zu functions, %zu "
              "invocations, %.1f req/s over %.1f h\n",
              prefix.c_str(), s.num_functions, s.num_invocations,
              s.reqs_per_sec, to_sec(t.duration) / 3600.0);
  return 0;
}

/// True when `path` is an ilu-arena-v1 file (checks the magic only; a
/// corrupt file with a valid magic still fails loudly in ArenaFile's
/// strict open).
bool is_arena_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char bytes[8];
  if (!in.read(bytes, sizeof bytes)) return false;
  std::uint64_t magic = 0;
  for (int i = 0; i < 8; ++i) {
    magic |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return magic == kArenaMagic;
}

int cmd_info_arena(const std::string& path) {
  ArenaFile f(path);
  std::printf("arena %s (ilu-arena-v1)\n", path.c_str());
  std::printf("  functions:       %zu\n", f.functions().size());
  std::printf("  events:          %zu\n", f.size());
  std::printf("  duration:        %.2f h\n", to_sec(f.duration()) / 3600.0);
  if (to_sec(f.duration()) > 0.0) {
    std::printf("  request rate:    %.2f /s\n",
                static_cast<double>(f.size()) / to_sec(f.duration()));
  }
  std::printf("  file size:       %.1f MB (keys mmap'd)\n",
              static_cast<double>(f.file_bytes()) / 1e6);
  f.verify();
  std::printf("  integrity:       OK (keys sorted, fns bounded, checksums "
              "match)\n");
  return 0;
}

int cmd_info(char** argv) {
  if (is_arena_file(argv[2])) return cmd_info_arena(argv[2]);
  Trace t = load_trace(argv[2]);
  auto s = t.stats();
  std::printf("trace %s\n", argv[2]);
  std::printf("  functions:       %zu\n", s.num_functions);
  std::printf("  invocations:     %zu\n", s.num_invocations);
  std::printf("  duration:        %.2f h\n", to_sec(t.duration) / 3600.0);
  std::printf("  request rate:    %.2f /s\n", s.reqs_per_sec);
  std::printf("  avg IAT:         %.2f ms\n", to_ms(s.avg_iat));
  std::printf("  Little's-law expected concurrency: %.2f\n",
              s.expected_concurrency);
  // Top-5 functions by invocation count.
  std::vector<std::size_t> counts(t.functions.size(), 0);
  for (const auto& e : t.events) ++counts[e.fn];
  std::vector<std::size_t> idx(t.functions.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return counts[a] > counts[b]; });
  std::printf("  top functions:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, idx.size()); ++i) {
    const auto& f = t.functions[idx[i]];
    std::printf("    %-24s %8zu invocations, %u MB, warm %.0f ms, init %.0f ms\n",
                f.name.c_str(), counts[idx[i]], f.mem_mb, to_ms(f.warm_time),
                to_ms(f.init_time));
  }
  return 0;
}

int cmd_replay(int argc, char** argv) {
  std::string prefix = argv[2];
  std::string trace_out;
  std::string flight_out;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace-out requires a file argument\n");
        return 2;
      }
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--flight-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--flight-out requires a file argument\n");
        return 2;
      }
      flight_out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown replay option: %s\n", argv[i]);
      return 2;
    }
  }
  // Drop whatever earlier commands in this process recorded, so the dump
  // covers exactly this replay.
  flight::Recorder::instance().clear();

  Trace t = load_trace(prefix);
  SimRuntime rt;
  WorkerConfig cfg;
  cfg.cores = 48.0;
  cfg.memory_mb = 32 * 1024;
  Worker w(rt, cfg);
  std::vector<std::string> names;
  for (const auto& f : t.functions) {
    w.register_function(f);
    names.push_back(f.name);
  }
  w.start();

  OpenLoopDriver driver(rt, [&w](FunctionId fn,
                                 std::function<void(const InvokeResult&)> cb) {
    w.invoke(fn, std::move(cb));
  });
  driver.start(t);
  TimePoint deadline = rt.now() + t.duration + mins(5);
  while (!driver.done() && rt.now() < deadline) rt.run_for(secs(5));
  w.shutdown();

  ExperimentReport report(names);
  report.add_all(driver.results());
  std::printf("%s", report.format().c_str());

  if (!trace_out.empty()) {
    auto spans = w.tracer().spans();
    write_chrome_trace(spans, trace_out);
    std::uint64_t dropped = w.tracer().tx().dropped_records();
    std::printf("\nwrote %zu spans to %s (Chrome trace format)%s\n",
                spans.size(), trace_out.c_str(),
                dropped ? " — shard record cap reached, tail truncated" : "");
  }
  if (!flight_out.empty()) {
    const auto& rec = flight::Recorder::instance();
    if (!rec.dump_to_file(flight_out)) {
      std::fprintf(stderr, "error: could not write %s\n", flight_out.c_str());
      return 1;
    }
    std::printf("wrote flight dump: %llu events on %zu ring(s) to %s\n",
                static_cast<unsigned long long>(rec.recorded()),
                rec.ring_count(), flight_out.c_str());
  }
  return 0;
}

/// Decode a binary flight dump: per-ring summary + per-event-code counts,
/// optionally converted to Chrome trace-event JSON (chrome://tracing,
/// Perfetto).
int cmd_flightdump(int argc, char** argv) {
  std::string out_path;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--out requires a file argument\n");
        return 2;
      }
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flightdump option: %s\n", argv[i]);
      return 2;
    }
  }

  auto rings = flight::read_dump(argv[2]);
  std::printf("flight dump %s: %zu ring(s)\n", argv[2], rings.size());
  std::map<std::string, std::size_t> by_code;
  for (const auto& r : rings) {
    std::uint64_t lo = r.events.empty() ? 0 : r.events.front().ts_us;
    std::uint64_t hi = r.events.empty() ? 0 : r.events.back().ts_us;
    std::printf(
        "  ring %2u: %6zu event(s) kept of %8llu recorded, ts %llu..%llu us\n",
        r.tid, r.events.size(), static_cast<unsigned long long>(r.recorded),
        static_cast<unsigned long long>(lo),
        static_cast<unsigned long long>(hi));
    for (const auto& e : r.events) {
      ++by_code[flight::ev_name(static_cast<flight::Ev>(e.code))];
    }
  }
  std::printf("  events by code:\n");
  for (const auto& [name, n] : by_code) {
    std::printf("    %-18s %8zu\n", name.c_str(), n);
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << flight::chrome_trace_json(rings);
    out << "\n";
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote Chrome trace JSON to %s\n", out_path.c_str());
  }
  return 0;
}

/// Regenerate the Table 1 view (mean latency per control-plane component)
/// from a Chrome trace dump written by `replay --trace-out`,
/// bench/tab1_components, or insitu_simulation.
int cmd_tab1(char** argv) {
  JsonValue doc = json_parse_file(argv[2]);
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "%s: no traceEvents array\n", argv[2]);
    return 1;
  }
  std::map<std::string, Summary> by_name;
  for (const JsonValue& e : events->as_array()) {
    const JsonValue* name = e.find("name");
    const JsonValue* dur = e.find("dur");
    if (name == nullptr || dur == nullptr) continue;
    by_name[name->as_string()].add(dur->as_number() / 1000.0);  // us -> ms
  }

  struct Row {
    const char* group;
    const char* span;
  };
  const Row rows[] = {
      {"Ingestion & Queuing", spans::kInvoke},
      {"Ingestion & Queuing", spans::kSyncInvoke},
      {"Ingestion & Queuing", spans::kEnqueueInvocation},
      {"Ingestion & Queuing", spans::kAddItemToQ},
      {"Container Operations", spans::kSpawnWorker},
      {"Container Operations", spans::kDequeue},
      {"Container Operations", spans::kAcquireContainer},
      {"Container Operations", spans::kTryLockContainer},
      {"Agent Communication", spans::kPrepareInvoke},
      {"Agent Communication", spans::kCallContainer},
      {"Agent Communication", spans::kDownloadResult},
      {"Returning", spans::kReturnContainer},
      {"Returning", spans::kReturnResults},
  };
  std::printf("Table 1 from %s\n", argv[2]);
  std::printf("%-22s %-20s %12s %10s\n", "Group", "Function", "mean ms",
              "count");
  double total = 0.0;
  for (const auto& r : rows) {
    auto it = by_name.find(r.span);
    if (it == by_name.end()) continue;
    total += it->second.mean();
    std::printf("%-22s %-20s %12.3f %10zu\n", r.group, r.span,
                it->second.mean(), it->second.count());
  }
  std::printf("%-22s %-20s %12.3f\n", "TOTAL", "", total);
  // Spans in the dump that are not Table 1 rows (e.g. from other layers).
  for (const auto& [name, s] : by_name) {
    bool known = false;
    for (const auto& r : rows) known = known || name == r.span;
    if (!known) {
      std::printf("%-22s %-20s %12.3f %10zu\n", "(other)", name.c_str(),
                  s.mean(), s.count());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc >= 3 && std::strcmp(argv[1], "gen") == 0) return cmd_gen(argc, argv);
  if (argc >= 3 && std::strcmp(argv[1], "info") == 0) return cmd_info(argv);
  if (argc >= 3 && std::strcmp(argv[1], "replay") == 0)
    return cmd_replay(argc, argv);
  if (argc >= 3 && std::strcmp(argv[1], "tab1") == 0) return cmd_tab1(argv);
  if (argc >= 3 && std::strcmp(argv[1], "flightdump") == 0)
    return cmd_flightdump(argc, argv);
  std::fprintf(stderr,
               "usage:\n  %s gen <prefix> [rep|rare|random] [n] [target_rps] "
               "[hours]\n  %s info <prefix>\n  %s replay <prefix> "
               "[--trace-out <file>] [--flight-out <file>]\n  %s tab1 "
               "<dump.json>\n  %s flightdump <dump.bin> [--out <chrome.json>]\n",
               argv[0], argv[0], argv[0], argv[0], argv[0]);
  return 2;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
