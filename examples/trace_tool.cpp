// Trace generation/inspection CLI for the Azure-model workloads.
//
//   ./trace_tool gen  <prefix> [rep|rare|random] [n] [target_rps] [hours]
//   ./trace_tool info <prefix>
//
// `gen` writes <prefix>_functions.csv and <prefix>_events.csv (replayable
// by faas_sim and the library's load_trace()); `info` prints statistics of
// a saved trace.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "iluvatar.hpp"

using namespace ilu;

namespace {

int cmd_gen(int argc, char** argv) {
  std::string prefix = argv[2];
  std::string kind = argc > 3 ? argv[3] : "rep";
  std::size_t n = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 200;
  double rps = argc > 5 ? std::strtod(argv[5], nullptr) : 0.0;
  double hours = argc > 6 ? std::strtod(argv[6], nullptr) : 2.0;

  AzureModelConfig cfg;
  cfg.population = 50000;
  cfg.days = hours / 24.0;
  AzureTraceModel model(cfg);

  Trace t;
  if (kind == "rep") {
    t = model.sample_representative(n, rps);
  } else if (kind == "rare") {
    t = model.sample_rare(n, rps);
  } else if (kind == "random") {
    t = model.sample_random(n, rps);
  } else {
    std::fprintf(stderr, "unknown sample kind: %s (rep|rare|random)\n",
                 kind.c_str());
    return 2;
  }
  save_trace(t, prefix);
  auto s = t.stats();
  std::printf("wrote %s_{functions,events}.csv: %zu functions, %zu "
              "invocations, %.1f req/s over %.1f h\n",
              prefix.c_str(), s.num_functions, s.num_invocations,
              s.reqs_per_sec, to_sec(t.duration) / 3600.0);
  return 0;
}

int cmd_info(char** argv) {
  Trace t = load_trace(argv[2]);
  auto s = t.stats();
  std::printf("trace %s\n", argv[2]);
  std::printf("  functions:       %zu\n", s.num_functions);
  std::printf("  invocations:     %zu\n", s.num_invocations);
  std::printf("  duration:        %.2f h\n", to_sec(t.duration) / 3600.0);
  std::printf("  request rate:    %.2f /s\n", s.reqs_per_sec);
  std::printf("  avg IAT:         %.2f ms\n", to_ms(s.avg_iat));
  std::printf("  Little's-law expected concurrency: %.2f\n",
              s.expected_concurrency);
  // Top-5 functions by invocation count.
  std::vector<std::size_t> counts(t.functions.size(), 0);
  for (const auto& e : t.events) ++counts[e.fn];
  std::vector<std::size_t> idx(t.functions.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return counts[a] > counts[b]; });
  std::printf("  top functions:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, idx.size()); ++i) {
    const auto& f = t.functions[idx[i]];
    std::printf("    %-24s %8zu invocations, %u MB, warm %.0f ms, init %.0f ms\n",
                f.name.c_str(), counts[idx[i]], f.mem_mb, to_ms(f.warm_time),
                to_ms(f.init_time));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "gen") == 0) return cmd_gen(argc, argv);
  if (argc >= 3 && std::strcmp(argv[1], "info") == 0) return cmd_info(argv);
  std::fprintf(stderr,
               "usage:\n  %s gen <prefix> [rep|rare|random] [n] [target_rps] "
               "[hours]\n  %s info <prefix>\n",
               argv[0], argv[0]);
  return 2;
}
