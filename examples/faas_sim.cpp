// Config-driven simulation CLI: loads a worker config from JSON (§6's
// deployment story), builds or loads a workload, replays it on the
// simulation runtime, and prints a full report — the "single platform for
// FaaS experimentation" in one binary.
//
//   ./faas_sim                                # built-in demo config
//   ./faas_sim --config worker.json
//   ./faas_sim --config worker.json --trace mytrace   # from trace CSV pair
//   ./faas_sim --print-config                 # dump the effective config
//
// A trace prefix refers to files written by save_trace():
//   <prefix>_functions.csv / <prefix>_events.csv

#include <cstdio>
#include <cstring>
#include <string>

#include "core/config.hpp"
#include "iluvatar.hpp"

using namespace ilu;

namespace {

Trace demo_trace() {
  std::vector<SyntheticFunctionSpec> specs;
  for (const auto& p : function_bench()) {
    if (p.name == "video_encoding") continue;
    specs.push_back({.profile = p, .mean_iat = secs(4), .exponential = true});
  }
  return make_synthetic_trace(specs, mins(5), 12);
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string trace_prefix;
  std::string report_csv;
  bool print_config = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      config_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_csv = argv[++i];
    } else if (std::strcmp(argv[i], "--print-config") == 0) {
      print_config = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--config cfg.json] [--trace prefix] "
                   "[--report out.csv] [--print-config]\n",
                   argv[0]);
      return 2;
    }
  }

  WorkerConfig cfg;
  if (!config_path.empty()) {
    try {
      cfg = load_worker_config(config_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "config error: %s\n", e.what());
      return 1;
    }
  }
  if (print_config) {
    std::printf("%s\n", worker_config_to_json(cfg).dump(2).c_str());
    return 0;
  }

  Trace trace;
  if (!trace_prefix.empty()) {
    try {
      trace = load_trace(trace_prefix);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace error: %s\n", e.what());
      return 1;
    }
  } else {
    trace = demo_trace();
  }
  auto ts = trace.stats();
  std::printf("workload: %zu functions, %zu invocations, %.1f req/s, "
              "expected concurrency %.1f\n",
              ts.num_functions, ts.num_invocations, ts.reqs_per_sec,
              ts.expected_concurrency);
  if (ts.expected_concurrency > cfg.cores) {
    std::printf("WARNING: expected concurrency %.1f exceeds %.0f cores — the "
                "system will saturate and queue\n",
                ts.expected_concurrency, cfg.cores);
  }
  std::printf("worker: %.0f cores, %llu MB, queue=%s keepalive=%s backend=%s\n\n",
              cfg.cores, (unsigned long long)cfg.memory_mb,
              cfg.queue_policy.c_str(), cfg.keepalive_policy.c_str(),
              cfg.backend.name.c_str());

  SimRuntime rt;
  Worker w(rt, cfg);
  // RAPL-style energy metering over the CPU model's demand changes (§6.1).
  EnergyMeter energy(cfg.cores);
  w.cpu().set_demand_observer([&](TimePoint t, double demand) {
    energy.on_demand_change(t, demand);
  });
  for (const auto& f : trace.functions) w.register_function(f);
  w.start();

  OpenLoopDriver driver(rt, [&](FunctionId fn,
                                std::function<void(const InvokeResult&)> cb) {
    w.invoke(fn, std::move(cb));
  });
  driver.start(trace);
  while (!driver.done()) rt.run_for(secs(30));
  w.shutdown();

  Summary flow, overhead, warm_overhead;
  double stretch_sum = 0.0;
  std::size_t ok = 0, failed = 0;
  for (const auto& r : driver.results()) {
    if (!r.success) {
      ++failed;
      continue;
    }
    ++ok;
    flow.add_ms(r.flow_time());
    overhead.add_ms(r.overhead());
    if (!r.cold) warm_overhead.add_ms(r.overhead());
    stretch_sum += r.stretch();
  }

  std::printf("results\n");
  std::printf("  completed: %zu  failed: %zu\n", ok, failed);
  std::printf("  warm: %llu  cold: %llu  (%.1f%% warm)  bypassed: %llu  "
              "prewarms: %llu\n",
              (unsigned long long)w.warm_starts(),
              (unsigned long long)w.cold_starts(),
              100.0 * w.warm_starts() /
                  std::max<std::uint64_t>(1, w.warm_starts() + w.cold_starts()),
              (unsigned long long)w.bypassed(),
              (unsigned long long)w.prewarms());
  std::printf("  flow time   p50 %8.1f ms   p99 %8.1f ms\n", flow.p50(),
              flow.p99());
  std::printf("  overhead    p50 %8.2f ms   p99 %8.2f ms (warm-only p50 "
              "%.2f ms)\n",
              overhead.p50(), overhead.p99(), warm_overhead.p50());
  std::printf("  mean stretch %.2f\n",
              ok ? stretch_sum / static_cast<double>(ok) : 0.0);
  std::printf("  pool: evictions %llu  expirations %llu  used %llu/%llu MB\n",
              (unsigned long long)w.pool().evictions(),
              (unsigned long long)w.pool().expirations(),
              (unsigned long long)w.pool().used_mb(),
              (unsigned long long)w.pool().capacity_mb());
  std::printf("  virtual time simulated: %.1f s\n", to_sec(rt.now()));
  std::printf("  energy: %.1f kJ total (%.0f W avg), %.1f kJ above idle\n",
              energy.total_joules(rt.now()) / 1000.0,
              energy.average_watts(rt.now()),
              energy.active_joules(rt.now()) / 1000.0);

  // FaasMeter-style post-hoc attribution: the active (above-idle) energy is
  // split across functions in proportion to their CPU-seconds.
  {
    std::vector<double> cpu_s(trace.functions.size(), 0.0);
    double total_cpu_s = 0.0;
    for (const auto& r : driver.results()) {
      if (!r.success) continue;
      cpu_s[r.fn] += to_sec(r.exec_time);
      total_cpu_s += to_sec(r.exec_time);
    }
    if (total_cpu_s > 0.0 && trace.functions.size() <= 16) {
      std::printf("  active energy attribution:\n");
      for (std::size_t f = 0; f < trace.functions.size(); ++f) {
        double share = cpu_s[f] / total_cpu_s;
        std::printf("    %-24s %6.1f%%  (%.1f kJ)\n",
                    trace.functions[f].name.c_str(), 100.0 * share,
                    share * energy.active_joules(rt.now()) / 1000.0);
      }
    }
  }

  // Per-function breakdown via the metrics layer.
  std::vector<std::string> names;
  for (const auto& f : trace.functions) names.push_back(f.name);
  ExperimentReport report(std::move(names));
  report.add_all(driver.results());
  if (trace.functions.size() <= 16) {
    std::printf("\n%s", report.format().c_str());
  }
  if (!report_csv.empty()) {
    report.write_csv(report_csv);
    std::printf("\nper-function report written to %s\n", report_csv.c_str());
  }
  return 0;
}
