// Simulate a cluster of Ilúvatar workers behind different load balancers
// and compare locality (warm-start rate) and balance — the §4.1 CH-BL
// story: consistent hashing with bounded loads keeps repeat invocations on
// a function's home worker, maximizing warm starts, while still spilling
// load when a worker saturates.
//
//   ./cluster_simulation [num_workers]

#include <cstdio>
#include <cstdlib>

#include "iluvatar.hpp"

using namespace ilu;

namespace {

void run_with(LbPolicy lb, const char* name, std::size_t num_workers) {
  SimRuntime rt;
  ClusterConfig cfg;
  cfg.num_workers = num_workers;
  cfg.lb = lb;
  cfg.worker.cores = 8;
  cfg.worker.memory_mb = 8 * 1024;
  Cluster cluster(rt, cfg);

  // 40 distinct functions with a mix of rates.
  std::vector<SyntheticFunctionSpec> specs;
  Rng rng(33);
  auto bench = function_bench();
  for (int i = 0; i < 40; ++i) {
    auto p = bench[i % bench.size()];
    if (p.name == "video_encoding") p = bench[(i + 1) % bench.size()];
    p.name += "_" + std::to_string(i);
    specs.push_back({.profile = p,
                     .mean_iat = secs(rng.uniform(2.0, 12.0)),
                     .exponential = true});
  }
  auto trace = make_synthetic_trace(specs, mins(10), 44);
  FunctionId fn0 = 0;
  for (const auto& f : trace.functions) fn0 = cluster.register_function(f);
  (void)fn0;

  cluster.start();
  OpenLoopDriver driver(rt, [&](FunctionId fn,
                                std::function<void(const InvokeResult&)> cb) {
    cluster.invoke(fn, std::move(cb));
  });
  driver.start(trace);
  while (!driver.done()) rt.run_for(secs(10));
  cluster.shutdown();

  std::uint64_t warm = 0, cold = 0;
  for (std::size_t w = 0; w < cluster.num_workers(); ++w) {
    warm += cluster.worker(w).warm_starts();
    cold += cluster.worker(w).cold_starts();
  }
  Summary lat;
  for (const auto& r : driver.results()) {
    if (r.success) lat.add_ms(r.flow_time());
  }
  std::printf("%-12s warm=%6llu cold=%5llu (%.1f%% warm)  p50=%7.1f ms "
              "p99=%8.1f ms  routed:",
              name, (unsigned long long)warm, (unsigned long long)cold,
              100.0 * warm / std::max<std::uint64_t>(1, warm + cold),
              lat.p50(), lat.p99());
  for (auto c : cluster.routed()) std::printf(" %llu", (unsigned long long)c);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t workers =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  std::printf("cluster of %zu workers, 40 functions, 10 min of traffic\n\n",
              workers);
  run_with(LbPolicy::ChBl, "CH-BL", workers);
  run_with(LbPolicy::RoundRobin, "round-robin", workers);
  run_with(LbPolicy::LeastLoaded, "least-loaded", workers);
  std::printf(
      "\nCH-BL's locality concentrates each function's invocations on its\n"
      "home worker, so fewer containers are created and warm rates rise.\n");
  return 0;
}
