// The paper's in-situ simulation claim (§4.4): the same control-plane code
// runs under the discrete-event SimRuntime (virtual time, deterministic)
// and the wall-clock RealRuntime. This example executes an identical
// workload on both and compares the outcomes: same warm/cold behaviour,
// same code path — only the clock differs.
//
// The in-silico run additionally exports its transaction-scoped span trees
// as a Chrome trace (results/insitu_trace.json) — load it in Perfetto or
// chrome://tracing to see every invocation's control-plane stages laid out
// on the virtual timeline.
//
//   ./insitu_simulation

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "iluvatar.hpp"

using namespace ilu;

namespace {

struct Outcome {
  std::uint64_t warm = 0, cold = 0;
  double mean_overhead_ms = 0.0;
  double wall_seconds = 0.0;
};

WorkerConfig config() {
  WorkerConfig cfg;
  cfg.cores = 4.0;
  cfg.memory_mb = 2 * 1024;
  // Short function so the real-time run finishes quickly.
  cfg.seed = 99;
  return cfg;
}

Outcome run_sim() {
  SimRuntime rt;
  Worker w(rt, config());
  auto fn = w.register_function(lookbusy(msecs(20), 128, msecs(100)));
  w.start();
  Summary overhead;
  int done = 0;
  std::function<void(int)> chain = [&](int remaining) {
    if (remaining == 0) return;
    w.invoke(fn, [&, remaining](const InvokeResult& r) {
      overhead.add_ms(r.overhead());
      ++done;
      chain(remaining - 1);
    });
  };
  chain(50);
  while (done < 50) rt.run_for(secs(1));
  w.shutdown();
  std::filesystem::create_directories("results");
  write_chrome_trace(w.tracer().spans(), "results/insitu_trace.json");
  return {w.warm_starts(), w.cold_starts(), overhead.mean(),
          to_sec(rt.now())};
}

Outcome run_real() {
  RealRuntime rt;
  Worker w(rt, config());
  auto fn = w.register_function(lookbusy(msecs(20), 128, msecs(100)));
  w.start();
  Summary overhead;
  std::atomic<int> done{0};
  std::function<void(int)> chain = [&](int remaining) {
    if (remaining == 0) return;
    w.invoke(fn, [&, remaining](const InvokeResult& r) {
      overhead.add_ms(r.overhead());
      done.fetch_add(1);
      chain(remaining - 1);
    });
  };
  TimePoint start = rt.now();
  rt.post([&] { chain(50); });
  // Poll: drain() would wait for an empty timer heap, but the worker keeps
  // a periodic background-eviction timer alive by design.
  while (done.load() < 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  double wall = to_sec(rt.now() - start);
  w.shutdown();
  return {w.warm_starts(), w.cold_starts(), overhead.mean(), wall};
}

}  // namespace

int main() {
  std::printf("50 sequential invocations of a 20 ms function, same worker\n"
              "code, two runtimes:\n\n");
  auto sim = run_sim();
  std::printf("  in-silico (SimRuntime):  warm=%llu cold=%llu  mean "
              "overhead=%.2f ms  virtual time=%.2f s\n",
              (unsigned long long)sim.warm, (unsigned long long)sim.cold,
              sim.mean_overhead_ms, sim.wall_seconds);
  auto real = run_real();
  std::printf("  in-situ   (RealRuntime): warm=%llu cold=%llu  mean "
              "overhead=%.2f ms  wall time=%.2f s\n",
              (unsigned long long)real.warm, (unsigned long long)real.cold,
              real.mean_overhead_ms, real.wall_seconds);
  std::printf(
      "\nIdentical warm/cold behaviour; the simulation compresses %.1f s of\n"
      "wall time into instant virtual time while following the same code\n"
      "path — the paper's \"minimal difference between simulation and the\n"
      "real system\".\n",
      real.wall_seconds);
  std::printf(
      "\nSpan trees of the in-silico run: results/insitu_trace.json "
      "(Chrome\ntrace format — open in Perfetto / chrome://tracing).\n");
  return 0;
}
