// Quickstart: stand up an Ilúvatar worker on the deterministic simulation
// runtime, register a function, and exercise the full API surface —
// invoke (cold + warm), prewarm, async_invoke, status, and span tracing.
//
//   ./quickstart

#include <cstdio>

#include "iluvatar.hpp"

using namespace ilu;

int main() {
  // The simulation runtime gives bit-reproducible virtual time; swapping in
  // RealRuntime runs the identical control-plane code on the wall clock.
  SimRuntime rt;

  WorkerConfig cfg;
  cfg.cores = 8.0;
  cfg.memory_mb = 4 * 1024;
  cfg.queue_policy = "EEDF";       // the paper's default discipline
  cfg.keepalive_policy = "GD";     // Greedy-Dual keep-alive
  Worker worker(rt, cfg);
  worker.start();

  // Register a FunctionBench-style function: 300 ms warm, 1.2 s init.
  FunctionId fn = worker.register_function(pyaes());
  std::printf("registered '%s': %u MB, warm %.0f ms, cold %.0f ms\n",
              worker.profile(fn).name.c_str(), worker.profile(fn).mem_mb,
              to_ms(worker.profile(fn).warm_time),
              to_ms(worker.profile(fn).cold_time()));

  // First invocation: cold start (container created through the backend).
  worker.invoke(fn, [](const InvokeResult& r) {
    std::printf("#1 %-5s exec=%7.1f ms  overhead=%6.2f ms  flow=%7.1f ms\n",
                r.cold ? "COLD" : "WARM", to_ms(r.exec_time),
                to_ms(r.overhead()), to_ms(r.flow_time()));
  });
  rt.run_for(secs(10));

  // Second invocation: warm start from the keep-alive pool, ~2 ms overhead.
  worker.invoke(fn, [](const InvokeResult& r) {
    std::printf("#2 %-5s exec=%7.1f ms  overhead=%6.2f ms  flow=%7.1f ms\n",
                r.cold ? "COLD" : "WARM", to_ms(r.exec_time),
                to_ms(r.overhead()), to_ms(r.flow_time()));
  });
  rt.run_for(secs(10));

  // Prewarm a second container, then two concurrent invocations are both
  // warm (no "spawn start").
  worker.prewarm(fn, [](bool ok) {
    std::printf("prewarm: %s\n", ok ? "ok" : "failed");
  });
  rt.run_for(secs(10));
  for (int i = 0; i < 2; ++i) {
    worker.invoke(fn, [i](const InvokeResult& r) {
      std::printf("#concurrent-%d %s\n", i, r.cold ? "COLD" : "WARM");
    });
  }
  rt.run_for(secs(10));

  // Async API: fire, then poll.
  auto token = worker.async_invoke(fn);
  rt.run_for(secs(10));
  if (auto r = worker.async_result(token)) {
    std::printf("async result: success=%d exec=%.1f ms\n", r->success,
                to_ms(r->exec_time));
  }

  auto s = worker.status();
  std::printf(
      "status: queue=%zu running=%zu load=%.2f used=%llu MB limit=%.0f\n",
      s.queue_len, s.running, s.load_average,
      (unsigned long long)s.used_mb, s.concurrency_limit);
  std::printf("counters: completed=%llu warm=%llu cold=%llu prewarms=%llu\n",
              (unsigned long long)worker.completed(),
              (unsigned long long)worker.warm_starts(),
              (unsigned long long)worker.cold_starts(),
              (unsigned long long)worker.prewarms());

  std::printf("\nper-span mean latencies (Table 1 style):\n");
  for (const auto& [name, summary] : worker.tracer().all()) {
    std::printf("  %-22s %8.3f ms  (n=%zu)\n", name.c_str(), summary.mean(),
                summary.count());
  }

  worker.shutdown();
  return 0;
}
