// Compare keep-alive policies on an Azure-model workload with the
// trace-driven keep-alive simulator (the engine behind Figs 4/5).
//
//   ./policy_comparison [cache_gb] [num_functions]

#include <cstdio>
#include <cstdlib>

#include "iluvatar.hpp"

using namespace ilu;

int main(int argc, char** argv) {
  std::uint64_t cache_gb = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20;
  std::size_t nfns = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200;

  AzureModelConfig cfg;
  cfg.population = 20000;
  cfg.days = 0.5;
  AzureTraceModel model(cfg);
  Trace trace = model.sample_representative(nfns);
  auto stats = trace.stats();
  std::printf(
      "workload: %zu functions, %zu invocations over %.1f h (%.1f req/s)\n\n",
      stats.num_functions, stats.num_invocations,
      to_sec(trace.duration) / 3600.0, stats.reqs_per_sec);

  std::printf("%-6s %14s %14s %12s %12s %10s\n", "policy", "cold fraction",
              "exec incr %", "evictions", "expired", "prewarms");
  for (const char* policy : {"TTL", "LRU", "FREQ", "GD", "LND", "HIST"}) {
    auto r = run_keepalive_sim(trace, policy, cache_gb * 1024);
    std::printf("%-6s %14.4f %14.3f %12llu %12llu %10llu\n", policy,
                r.cold_fraction(), r.exec_increase_pct(),
                (unsigned long long)r.stats.evictions,
                (unsigned long long)r.stats.expirations,
                (unsigned long long)r.stats.prewarm_creates);
  }
  std::printf(
      "\nAt %llu GB: Greedy-Dual (GD) weighs frequency x init-cost / size;\n"
      "TTL is OpenWhisk's 10-minute policy; HIST is the histogram policy of\n"
      "Shahrad et al.\n",
      (unsigned long long)cache_gb);
  return 0;
}
