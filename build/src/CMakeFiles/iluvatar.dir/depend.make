# Empty dependencies file for iluvatar.
# This may be replaced when dependencies are built.
