file(REMOVE_RECURSE
  "libiluvatar.a"
)
