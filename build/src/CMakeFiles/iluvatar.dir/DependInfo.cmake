
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/openwhisk.cpp" "src/CMakeFiles/iluvatar.dir/baseline/openwhisk.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/baseline/openwhisk.cpp.o.d"
  "/root/repo/src/containers/backend.cpp" "src/CMakeFiles/iluvatar.dir/containers/backend.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/containers/backend.cpp.o.d"
  "/root/repo/src/containers/container.cpp" "src/CMakeFiles/iluvatar.dir/containers/container.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/containers/container.cpp.o.d"
  "/root/repo/src/containers/netns_pool.cpp" "src/CMakeFiles/iluvatar.dir/containers/netns_pool.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/containers/netns_pool.cpp.o.d"
  "/root/repo/src/core/characteristics.cpp" "src/CMakeFiles/iluvatar.dir/core/characteristics.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/core/characteristics.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/iluvatar.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/core/config.cpp.o.d"
  "/root/repo/src/core/cpu_model.cpp" "src/CMakeFiles/iluvatar.dir/core/cpu_model.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/core/cpu_model.cpp.o.d"
  "/root/repo/src/core/energy.cpp" "src/CMakeFiles/iluvatar.dir/core/energy.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/core/energy.cpp.o.d"
  "/root/repo/src/core/span_tracer.cpp" "src/CMakeFiles/iluvatar.dir/core/span_tracer.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/core/span_tracer.cpp.o.d"
  "/root/repo/src/core/worker.cpp" "src/CMakeFiles/iluvatar.dir/core/worker.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/core/worker.cpp.o.d"
  "/root/repo/src/keepalive/cache.cpp" "src/CMakeFiles/iluvatar.dir/keepalive/cache.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/keepalive/cache.cpp.o.d"
  "/root/repo/src/keepalive/clairvoyant.cpp" "src/CMakeFiles/iluvatar.dir/keepalive/clairvoyant.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/keepalive/clairvoyant.cpp.o.d"
  "/root/repo/src/keepalive/policy.cpp" "src/CMakeFiles/iluvatar.dir/keepalive/policy.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/keepalive/policy.cpp.o.d"
  "/root/repo/src/keepalive/pool.cpp" "src/CMakeFiles/iluvatar.dir/keepalive/pool.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/keepalive/pool.cpp.o.d"
  "/root/repo/src/keepalive/provisioner.cpp" "src/CMakeFiles/iluvatar.dir/keepalive/provisioner.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/keepalive/provisioner.cpp.o.d"
  "/root/repo/src/keepalive/simulator.cpp" "src/CMakeFiles/iluvatar.dir/keepalive/simulator.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/keepalive/simulator.cpp.o.d"
  "/root/repo/src/lb/chbl.cpp" "src/CMakeFiles/iluvatar.dir/lb/chbl.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/lb/chbl.cpp.o.d"
  "/root/repo/src/lb/cluster.cpp" "src/CMakeFiles/iluvatar.dir/lb/cluster.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/lb/cluster.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/CMakeFiles/iluvatar.dir/metrics/report.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/metrics/report.cpp.o.d"
  "/root/repo/src/queueing/queue_policy.cpp" "src/CMakeFiles/iluvatar.dir/queueing/queue_policy.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/queueing/queue_policy.cpp.o.d"
  "/root/repo/src/runtime/latency.cpp" "src/CMakeFiles/iluvatar.dir/runtime/latency.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/runtime/latency.cpp.o.d"
  "/root/repo/src/runtime/real_runtime.cpp" "src/CMakeFiles/iluvatar.dir/runtime/real_runtime.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/runtime/real_runtime.cpp.o.d"
  "/root/repo/src/runtime/sim_runtime.cpp" "src/CMakeFiles/iluvatar.dir/runtime/sim_runtime.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/runtime/sim_runtime.cpp.o.d"
  "/root/repo/src/trace/azure.cpp" "src/CMakeFiles/iluvatar.dir/trace/azure.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/trace/azure.cpp.o.d"
  "/root/repo/src/trace/azure_csv.cpp" "src/CMakeFiles/iluvatar.dir/trace/azure_csv.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/trace/azure_csv.cpp.o.d"
  "/root/repo/src/trace/function_profile.cpp" "src/CMakeFiles/iluvatar.dir/trace/function_profile.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/trace/function_profile.cpp.o.d"
  "/root/repo/src/trace/loadgen.cpp" "src/CMakeFiles/iluvatar.dir/trace/loadgen.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/trace/loadgen.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/CMakeFiles/iluvatar.dir/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/trace/trace_io.cpp.o.d"
  "/root/repo/src/trace/workload.cpp" "src/CMakeFiles/iluvatar.dir/trace/workload.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/trace/workload.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/iluvatar.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/CMakeFiles/iluvatar.dir/util/json.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/util/json.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/iluvatar.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/iluvatar.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/iluvatar.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/iluvatar.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
