# Empty compiler generated dependencies file for insitu_simulation.
# This may be replaced when dependencies are built.
