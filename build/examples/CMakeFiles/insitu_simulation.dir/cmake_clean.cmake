file(REMOVE_RECURSE
  "CMakeFiles/insitu_simulation.dir/insitu_simulation.cpp.o"
  "CMakeFiles/insitu_simulation.dir/insitu_simulation.cpp.o.d"
  "insitu_simulation"
  "insitu_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
