file(REMOVE_RECURSE
  "CMakeFiles/faas_sim.dir/faas_sim.cpp.o"
  "CMakeFiles/faas_sim.dir/faas_sim.cpp.o.d"
  "faas_sim"
  "faas_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
