# Empty compiler generated dependencies file for fig8_dynamic_provisioning.
# This may be replaced when dependencies are built.
