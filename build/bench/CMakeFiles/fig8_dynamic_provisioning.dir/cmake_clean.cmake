file(REMOVE_RECURSE
  "CMakeFiles/fig8_dynamic_provisioning.dir/fig8_dynamic_provisioning.cpp.o"
  "CMakeFiles/fig8_dynamic_provisioning.dir/fig8_dynamic_provisioning.cpp.o.d"
  "fig8_dynamic_provisioning"
  "fig8_dynamic_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dynamic_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
