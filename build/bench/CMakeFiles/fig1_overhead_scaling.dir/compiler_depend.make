# Empty compiler generated dependencies file for fig1_overhead_scaling.
# This may be replaced when dependencies are built.
