# Empty dependencies file for ablation_async_eviction.
# This may be replaced when dependencies are built.
