file(REMOVE_RECURSE
  "CMakeFiles/ablation_async_eviction.dir/ablation_async_eviction.cpp.o"
  "CMakeFiles/ablation_async_eviction.dir/ablation_async_eviction.cpp.o.d"
  "ablation_async_eviction"
  "ablation_async_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_async_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
