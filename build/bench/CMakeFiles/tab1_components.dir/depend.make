# Empty dependencies file for tab1_components.
# This may be replaced when dependencies are built.
