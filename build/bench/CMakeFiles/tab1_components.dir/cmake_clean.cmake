file(REMOVE_RECURSE
  "CMakeFiles/tab1_components.dir/tab1_components.cpp.o"
  "CMakeFiles/tab1_components.dir/tab1_components.cpp.o.d"
  "tab1_components"
  "tab1_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
