# Empty dependencies file for ablation_queue_policies.
# This may be replaced when dependencies are built.
