file(REMOVE_RECURSE
  "CMakeFiles/ablation_queue_policies.dir/ablation_queue_policies.cpp.o"
  "CMakeFiles/ablation_queue_policies.dir/ablation_queue_policies.cpp.o.d"
  "ablation_queue_policies"
  "ablation_queue_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queue_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
