file(REMOVE_RECURSE
  "CMakeFiles/ablation_regulator.dir/ablation_regulator.cpp.o"
  "CMakeFiles/ablation_regulator.dir/ablation_regulator.cpp.o.d"
  "ablation_regulator"
  "ablation_regulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
