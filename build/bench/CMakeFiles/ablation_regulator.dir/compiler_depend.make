# Empty compiler generated dependencies file for ablation_regulator.
# This may be replaced when dependencies are built.
