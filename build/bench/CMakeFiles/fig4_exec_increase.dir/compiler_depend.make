# Empty compiler generated dependencies file for fig4_exec_increase.
# This may be replaced when dependencies are built.
