file(REMOVE_RECURSE
  "CMakeFiles/fig4_exec_increase.dir/fig4_exec_increase.cpp.o"
  "CMakeFiles/fig4_exec_increase.dir/fig4_exec_increase.cpp.o.d"
  "fig4_exec_increase"
  "fig4_exec_increase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_exec_increase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
