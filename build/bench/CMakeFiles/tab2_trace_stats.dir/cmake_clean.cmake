file(REMOVE_RECURSE
  "CMakeFiles/tab2_trace_stats.dir/tab2_trace_stats.cpp.o"
  "CMakeFiles/tab2_trace_stats.dir/tab2_trace_stats.cpp.o.d"
  "tab2_trace_stats"
  "tab2_trace_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_trace_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
