file(REMOVE_RECURSE
  "CMakeFiles/ablation_netns_pool.dir/ablation_netns_pool.cpp.o"
  "CMakeFiles/ablation_netns_pool.dir/ablation_netns_pool.cpp.o.d"
  "ablation_netns_pool"
  "ablation_netns_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_netns_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
