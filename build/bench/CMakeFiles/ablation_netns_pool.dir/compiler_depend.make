# Empty compiler generated dependencies file for ablation_netns_pool.
# This may be replaced when dependencies are built.
