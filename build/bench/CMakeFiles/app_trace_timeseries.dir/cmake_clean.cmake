file(REMOVE_RECURSE
  "CMakeFiles/app_trace_timeseries.dir/app_trace_timeseries.cpp.o"
  "CMakeFiles/app_trace_timeseries.dir/app_trace_timeseries.cpp.o.d"
  "app_trace_timeseries"
  "app_trace_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_trace_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
