# Empty dependencies file for app_trace_timeseries.
# This may be replaced when dependencies are built.
