file(REMOVE_RECURSE
  "CMakeFiles/fig5_cold_fraction.dir/fig5_cold_fraction.cpp.o"
  "CMakeFiles/fig5_cold_fraction.dir/fig5_cold_fraction.cpp.o.d"
  "fig5_cold_fraction"
  "fig5_cold_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cold_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
