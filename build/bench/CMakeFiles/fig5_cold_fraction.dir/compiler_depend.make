# Empty compiler generated dependencies file for fig5_cold_fraction.
# This may be replaced when dependencies are built.
