# Empty compiler generated dependencies file for fig6_litmus.
# This may be replaced when dependencies are built.
