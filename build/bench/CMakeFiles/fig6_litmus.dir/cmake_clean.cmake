file(REMOVE_RECURSE
  "CMakeFiles/fig6_litmus.dir/fig6_litmus.cpp.o"
  "CMakeFiles/fig6_litmus.dir/fig6_litmus.cpp.o.d"
  "fig6_litmus"
  "fig6_litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
