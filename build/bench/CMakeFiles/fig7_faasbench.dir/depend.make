# Empty dependencies file for fig7_faasbench.
# This may be replaced when dependencies are built.
