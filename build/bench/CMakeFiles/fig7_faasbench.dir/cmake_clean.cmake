file(REMOVE_RECURSE
  "CMakeFiles/fig7_faasbench.dir/fig7_faasbench.cpp.o"
  "CMakeFiles/fig7_faasbench.dir/fig7_faasbench.cpp.o.d"
  "fig7_faasbench"
  "fig7_faasbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_faasbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
