file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_trace.dir/test_cluster_trace.cpp.o"
  "CMakeFiles/test_cluster_trace.dir/test_cluster_trace.cpp.o.d"
  "test_cluster_trace"
  "test_cluster_trace.pdb"
  "test_cluster_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
