# Empty compiler generated dependencies file for test_cluster_trace.
# This may be replaced when dependencies are built.
