# Empty compiler generated dependencies file for test_real_runtime.
# This may be replaced when dependencies are built.
