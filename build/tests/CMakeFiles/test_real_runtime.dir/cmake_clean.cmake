file(REMOVE_RECURSE
  "CMakeFiles/test_real_runtime.dir/test_real_runtime.cpp.o"
  "CMakeFiles/test_real_runtime.dir/test_real_runtime.cpp.o.d"
  "test_real_runtime"
  "test_real_runtime.pdb"
  "test_real_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_real_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
