# Empty dependencies file for test_keepalive_sim.
# This may be replaced when dependencies are built.
