file(REMOVE_RECURSE
  "CMakeFiles/test_keepalive_sim.dir/test_keepalive_sim.cpp.o"
  "CMakeFiles/test_keepalive_sim.dir/test_keepalive_sim.cpp.o.d"
  "test_keepalive_sim"
  "test_keepalive_sim.pdb"
  "test_keepalive_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keepalive_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
