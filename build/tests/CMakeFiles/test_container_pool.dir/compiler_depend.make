# Empty compiler generated dependencies file for test_container_pool.
# This may be replaced when dependencies are built.
