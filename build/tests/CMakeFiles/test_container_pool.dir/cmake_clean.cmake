file(REMOVE_RECURSE
  "CMakeFiles/test_container_pool.dir/test_container_pool.cpp.o"
  "CMakeFiles/test_container_pool.dir/test_container_pool.cpp.o.d"
  "test_container_pool"
  "test_container_pool.pdb"
  "test_container_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_container_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
