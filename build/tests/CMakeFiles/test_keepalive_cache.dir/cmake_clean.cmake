file(REMOVE_RECURSE
  "CMakeFiles/test_keepalive_cache.dir/test_keepalive_cache.cpp.o"
  "CMakeFiles/test_keepalive_cache.dir/test_keepalive_cache.cpp.o.d"
  "test_keepalive_cache"
  "test_keepalive_cache.pdb"
  "test_keepalive_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keepalive_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
