file(REMOVE_RECURSE
  "CMakeFiles/test_keepalive_policy.dir/test_keepalive_policy.cpp.o"
  "CMakeFiles/test_keepalive_policy.dir/test_keepalive_policy.cpp.o.d"
  "test_keepalive_policy"
  "test_keepalive_policy.pdb"
  "test_keepalive_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keepalive_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
