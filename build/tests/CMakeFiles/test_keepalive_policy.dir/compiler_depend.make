# Empty compiler generated dependencies file for test_keepalive_policy.
# This may be replaced when dependencies are built.
