file(REMOVE_RECURSE
  "CMakeFiles/test_worker_integration.dir/test_worker_integration.cpp.o"
  "CMakeFiles/test_worker_integration.dir/test_worker_integration.cpp.o.d"
  "test_worker_integration"
  "test_worker_integration.pdb"
  "test_worker_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_worker_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
