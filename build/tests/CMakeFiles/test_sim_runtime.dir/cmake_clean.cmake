file(REMOVE_RECURSE
  "CMakeFiles/test_sim_runtime.dir/test_sim_runtime.cpp.o"
  "CMakeFiles/test_sim_runtime.dir/test_sim_runtime.cpp.o.d"
  "test_sim_runtime"
  "test_sim_runtime.pdb"
  "test_sim_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
