# Empty compiler generated dependencies file for test_netns_pool.
# This may be replaced when dependencies are built.
