file(REMOVE_RECURSE
  "CMakeFiles/test_netns_pool.dir/test_netns_pool.cpp.o"
  "CMakeFiles/test_netns_pool.dir/test_netns_pool.cpp.o.d"
  "test_netns_pool"
  "test_netns_pool.pdb"
  "test_netns_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netns_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
