file(REMOVE_RECURSE
  "CMakeFiles/test_azure_csv.dir/test_azure_csv.cpp.o"
  "CMakeFiles/test_azure_csv.dir/test_azure_csv.cpp.o.d"
  "test_azure_csv"
  "test_azure_csv.pdb"
  "test_azure_csv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_azure_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
