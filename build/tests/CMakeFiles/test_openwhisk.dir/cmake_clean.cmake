file(REMOVE_RECURSE
  "CMakeFiles/test_openwhisk.dir/test_openwhisk.cpp.o"
  "CMakeFiles/test_openwhisk.dir/test_openwhisk.cpp.o.d"
  "test_openwhisk"
  "test_openwhisk.pdb"
  "test_openwhisk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_openwhisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
