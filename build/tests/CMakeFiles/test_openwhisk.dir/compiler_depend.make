# Empty compiler generated dependencies file for test_openwhisk.
# This may be replaced when dependencies are built.
