# Empty compiler generated dependencies file for test_azure_model_extensions.
# This may be replaced when dependencies are built.
