# Empty compiler generated dependencies file for test_azure_model.
# This may be replaced when dependencies are built.
