file(REMOVE_RECURSE
  "CMakeFiles/test_azure_model.dir/test_azure_model.cpp.o"
  "CMakeFiles/test_azure_model.dir/test_azure_model.cpp.o.d"
  "test_azure_model"
  "test_azure_model.pdb"
  "test_azure_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_azure_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
