#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

/// Minimal CSV reading/writing for trace files and benchmark output.
/// Fields never contain commas or quotes in this project, so no quoting
/// logic is implemented; writing a field containing a comma is an error.
namespace ilu {

class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error on
  /// failure.
  explicit CsvWriter(const std::string& path);

  /// Write a header / data row. Each element becomes one field.
  void write_row(const std::vector<std::string>& fields);

  /// Variadic convenience: accepts strings and arithmetic values.
  template <typename... Ts>
  void row(const Ts&... vs) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(vs));
    (fields.push_back(field(vs)), ...);
    write_row(fields);
  }

  void flush();

 private:
  static std::string field(const std::string& s) { return s; }
  static std::string field(const char* s) { return s; }
  template <typename T>
  static std::string field(const T& v) {
    return std::to_string(v);
  }

  std::ofstream out_;
};

class CsvReader {
 public:
  /// Opens `path` for reading. Throws std::runtime_error on failure.
  explicit CsvReader(const std::string& path);

  /// Read the next row into `fields`. Returns false at EOF.
  bool next(std::vector<std::string>& fields);

 private:
  std::ifstream in_;
};

/// Split a single CSV line on commas (no quoting).
std::vector<std::string> split_csv_line(std::string_view line);

}  // namespace ilu
