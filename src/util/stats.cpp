#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ilu {

void Welford::add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

double Welford::cov() const {
  if (mean_ == 0.0) return 0.0;
  return stddev() / mean_;
}

void Welford::reset() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

MovingWindow::MovingWindow(std::size_t capacity) : capacity_(capacity) {
  assert(capacity_ > 0);
}

void MovingWindow::add(double x) {
  values_.push_back(x);
  sum_ += x;
  if (values_.size() > capacity_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

double MovingWindow::mean() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

double MovingWindow::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double MovingWindow::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double MovingWindow::last() const {
  return values_.empty() ? 0.0 : values_.back();
}

ExpDecayAverage::ExpDecayAverage(double tau_seconds) : tau_(tau_seconds) {
  assert(tau_ > 0.0);
}

void ExpDecayAverage::sample(double x, double interval_seconds) {
  double a = std::exp(-interval_seconds / tau_);
  value_ = value_ * a + x * (1.0 - a);
}

SlidingRateMeter::SlidingRateMeter(Duration window) : window_(window) {
  assert(window_.count() > 0);
}

void SlidingRateMeter::record(TimePoint t) {
  if (first_record_ < TimePoint::zero()) first_record_ = t;
  events_.push_back(t);
  expire(t);
}

void SlidingRateMeter::expire(TimePoint now) {
  while (!events_.empty() && events_.front() + window_ < now) {
    events_.pop_front();
  }
}

double SlidingRateMeter::rate_per_sec(TimePoint now) {
  expire(now);
  Duration effective = window_;
  if (first_record_ >= TimePoint::zero() && now - first_record_ < window_) {
    effective = std::max(now - first_record_, usecs(1));
  }
  return static_cast<double>(events_.size()) / to_sec(effective);
}

std::size_t SlidingRateMeter::count_in_window(TimePoint now) {
  expire(now);
  return events_.size();
}

double Summary::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Summary::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Summary::percentile(double p) const {
  if (values_.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (values_.size() == 1) return values_[0];
  double rank = (p / 100.0) * static_cast<double>(values_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

void Summary::clear() {
  values_.clear();
  sorted_ = false;
}

BucketHistogram::BucketHistogram(double bucket_width, std::size_t num_buckets)
    : width_(bucket_width), counts_(num_buckets, 0) {
  assert(width_ > 0.0 && num_buckets > 0);
}

void BucketHistogram::add(double x) {
  if (x < 0.0) x = 0.0;
  auto i = static_cast<std::size_t>(x / width_);
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
  ++total_;
}

double BucketHistogram::quantile_upper_bound(double fraction) const {
  assert(fraction > 0.0 && fraction <= 1.0);
  if (total_ == 0) return 0.0;
  auto target = static_cast<std::uint64_t>(
      std::ceil(fraction * static_cast<double>(total_)));
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    if (acc >= target) return width_ * static_cast<double>(i + 1);
  }
  return width_ * static_cast<double>(counts_.size());
}

double BucketHistogram::quantile_lower_bound(double fraction) const {
  double upper = quantile_upper_bound(fraction);
  return upper >= width_ ? upper - width_ : 0.0;
}

double BucketHistogram::overflow_fraction() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.back()) / static_cast<double>(total_);
}

void BucketHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

}  // namespace ilu
