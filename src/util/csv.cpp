#include "util/csv.hpp"

#include <stdexcept>

namespace ilu {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].find(',') != std::string::npos) {
      throw std::runtime_error("CsvWriter: field contains comma: " + fields[i]);
    }
    if (i) out_ << ',';
    out_ << fields[i];
  }
  out_ << '\n';
}

void CsvWriter::flush() { out_.flush(); }

CsvReader::CsvReader(const std::string& path) : in_(path) {
  if (!in_) throw std::runtime_error("CsvReader: cannot open " + path);
}

bool CsvReader::next(std::vector<std::string>& fields) {
  std::string line;
  if (!std::getline(in_, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  auto parts = split_csv_line(line);
  fields.assign(parts.begin(), parts.end());
  return true;
}

std::vector<std::string> split_csv_line(std::string_view line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = line.find(',', start);
    if (pos == std::string_view::npos) {
      out.emplace_back(line.substr(start));
      break;
    }
    out.emplace_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

}  // namespace ilu
