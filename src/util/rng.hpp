#pragma once

#include <cstdint>
#include <vector>

#include "util/hash.hpp"

/// Deterministic pseudo-random number generation.
///
/// Every stochastic component in the library draws from an explicitly seeded
/// Rng so that simulations are reproducible: the same seed yields the same
/// trace, the same latency jitter, and the same event order.
namespace ilu {

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 256-bit state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1234567890abcdefULL);

  /// Derive an independent sub-stream, e.g. one per function or per worker.
  /// Sub-streams with different tags are decorrelated via splitmix64.
  Rng substream(std::uint64_t tag) const;

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Exponential with the given mean (= 1/rate). mean must be > 0.
  double exponential(double mean);

  /// Standard normal via Box-Muller (no state carried between calls).
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev);

  /// Log-normal parameterized by the *median* (exp(mu)) and sigma of the
  /// underlying normal. Median parameterization is the natural one for
  /// latency distributions ("p50 is X, tail spread sigma").
  double lognormal_median(double median, double sigma);

  /// Pareto (Lomax-style, xm scale, alpha shape): heavy-tailed sizes.
  double pareto(double xm, double alpha);

  /// Poisson-distributed count with the given mean (Knuth for small lambda,
  /// normal approximation for large).
  std::uint64_t poisson(double lambda);

  /// true with probability p.
  bool bernoulli(double p);

  /// Sample an index from an (unnormalized) weight vector.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace ilu
