#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "util/time.hpp"

/// Online and batch statistics used throughout the control plane:
/// - Welford: single-pass mean/variance/CoV (the HIST keep-alive policy's
///   predictability test uses exactly this, citing Welford's algorithm).
/// - MovingWindow: bounded history with mean, used for the per-function
///   warm/cold execution-time estimates that drive SJF/EEDF queueing.
/// - ExpDecayAverage: Unix-style exponentially decayed load average.
/// - Summary / percentile helpers for reporting (Fig 1's p50/p99).
/// - SlidingRateMeter: events-per-second over a window (Fig 8 miss speed).
namespace ilu {

/// Welford's online algorithm for mean and variance.
class Welford {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Coefficient of variation: stddev / mean; 0 when mean is 0.
  double cov() const;
  void reset();

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-capacity moving window with O(1) mean maintenance.
class MovingWindow {
 public:
  explicit MovingWindow(std::size_t capacity = 10);
  void add(double x);
  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  double last() const;

 private:
  std::size_t capacity_;
  std::deque<double> values_;
  double sum_ = 0.0;
};

/// Exponentially decayed average a la the kernel load average:
/// on each sample spaced `interval` apart, load = load*a + x*(1-a) with
/// a = exp(-interval/tau).
class ExpDecayAverage {
 public:
  explicit ExpDecayAverage(double tau_seconds = 60.0);
  void sample(double x, double interval_seconds);
  double value() const { return value_; }
  void reset(double v = 0.0) { value_ = v; }

 private:
  double tau_;
  double value_ = 0.0;
};

/// Count of events inside a sliding time window; used for cold-starts/sec.
class SlidingRateMeter {
 public:
  explicit SlidingRateMeter(Duration window);
  void record(TimePoint t);
  /// Events per second over the window ending at `now`.
  double rate_per_sec(TimePoint now);
  std::size_t count_in_window(TimePoint now);

 private:
  void expire(TimePoint now);
  Duration window_;
  std::deque<TimePoint> events_;
  /// Time of the first record: before a full window has elapsed, rates are
  /// computed over the observed span rather than the nominal window (else
  /// early-startup rates are underestimated by window/elapsed).
  TimePoint first_record_{-1};
};

/// Batch summary of a sample: percentiles by linear interpolation.
class Summary {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void add_ms(Duration d) { add(to_ms(d)); }
  /// Append another summary's samples (shard merging in the tracer).
  void merge(const Summary& other) {
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
    sorted_ = false;
  }
  std::size_t count() const { return values_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// p in [0, 100]. Sorts lazily (const via mutable cache).
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }
  void clear();

 private:
  void ensure_sorted() const;
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// Fixed-width bucketed histogram over [0, bucket_width * num_buckets).
/// Values beyond the last bucket are clamped into it (the HIST policy's
/// "4-hour window, overflow bucket" behaviour).
class BucketHistogram {
 public:
  BucketHistogram(double bucket_width, std::size_t num_buckets);
  void add(double x);
  std::uint64_t total() const { return total_; }
  std::size_t num_buckets() const { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  /// Smallest x-upper-bound such that at least `fraction` of the mass lies
  /// at or below it. fraction in (0, 1]. Returns 0 if empty.
  double quantile_upper_bound(double fraction) const;
  /// Lower edge of the same bucket (quantile_upper_bound minus one bucket
  /// width, floored at 0). Prefetchers aim *before* this edge.
  double quantile_lower_bound(double fraction) const;
  /// Fraction of samples that landed in the overflow (last) bucket.
  double overflow_fraction() const;
  void reset();

 private:
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ilu
