#pragma once

#include <cstdint>
#include <string_view>

/// Small, dependency-free hash functions.
///
/// Used by the consistent-hashing load balancer (lb/chbl.hpp) and for seeding
/// per-entity deterministic RNG streams. These are *not* cryptographic.
namespace ilu {

/// FNV-1a 64-bit over a byte string. Stable across platforms.
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64 finalizer: decorrelates sequential integers into well-mixed
/// 64-bit values. Used to derive vnode hashes and RNG sub-streams.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two hashes (boost::hash_combine style, 64-bit).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace ilu
