#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

/// Small, dependency-free hash functions.
///
/// Used by the consistent-hashing load balancer (lb/chbl.hpp) and for seeding
/// per-entity deterministic RNG streams. These are *not* cryptographic.
namespace ilu {

inline constexpr std::uint64_t kFnv1a64Basis = 0xcbf29ce484222325ULL;

/// FNV-1a 64-bit over a byte string. Stable across platforms.
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = kFnv1a64Basis;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// FNV-1a 64-bit over a raw byte range, resumable via `basis` so a checksum
/// can be accumulated across streamed chunks (the arena file writer does).
inline std::uint64_t fnv1a64_bytes(const void* data, std::size_t n,
                                   std::uint64_t basis = kFnv1a64Basis) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = basis;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64 finalizer: decorrelates sequential integers into well-mixed
/// 64-bit values. Used to derive vnode hashes and RNG sub-streams.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two hashes (boost::hash_combine style, 64-bit).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace ilu
