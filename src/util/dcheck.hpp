#pragma once
// ilu-lint: atomics-floor(acquire) - owner_ hand-off is a release-store/acquire-load pair; anything weaker loses the happens-before the auditor asserts

#include <cstddef>
#include <cstdio>
#include <cstdlib>

/// Debug-build invariant checking (DESIGN.md §10).
///
/// ILU_DCHECK(cond, msg) aborts with a file:line + span-context message when
/// `cond` is false; ILU_ASSERT_OWNER(rec, what) asserts the calling thread
/// is the one recorded in an OwnerRecord. Both compile to nothing in
/// Release builds (NDEBUG), so the event hot path pays zero cost there; a
/// Debug build — or any build configured with -DILU_DEBUG_CHECKS=ON — turns
/// cross-thread ownership violations into deterministic aborts instead of
/// TSan-only findings.
///
/// ILU_DEBUG_CHECKS can be forced from the build system (the CMake option
/// defines it =1 tree-wide); otherwise it follows NDEBUG.
#ifndef ILU_DEBUG_CHECKS
#ifdef NDEBUG
#define ILU_DEBUG_CHECKS 0
#else
#define ILU_DEBUG_CHECKS 1
#endif
#endif

#if ILU_DEBUG_CHECKS
// This header is the one sanctioned home for thread-identity primitives
// outside the runtime/experiment layers; the linter's raw-thread check
// allowlists util/dcheck.* for exactly this block.
#include <atomic>
#include <thread>
#endif

namespace ilu {

namespace detail {

/// Optional context hook: fills `buf` with a short description of what the
/// failing thread was doing (the obs layer registers the innermost open
/// span). Set once at static-initialization time, before threads exist.
using DcheckContextFn = void (*)(char* buf, std::size_t n);
inline DcheckContextFn g_dcheck_context = nullptr;

/// Optional pre-abort dump hook: runs once after the failure message is
/// printed, before std::abort(). The flight recorder (obs/flight.cpp)
/// registers a dump of every thread's last-N event ring here, so a crashing
/// shard leaves a post-mortem trace. Set at static-initialization time.
using DcheckDumpFn = void (*)();
inline DcheckDumpFn g_dcheck_dump = nullptr;

[[noreturn]] inline void dcheck_fail(const char* file, int line,
                                     const char* expr, const char* msg) {
  char ctx[256];
  ctx[0] = '\0';
  if (g_dcheck_context != nullptr) g_dcheck_context(ctx, sizeof ctx);
  std::fprintf(stderr, "ILU_DCHECK failed: %s:%d: (%s) %s%s%s\n", file, line,
               expr, msg, ctx[0] != '\0' ? " [span: " : "",
               ctx[0] != '\0' ? ctx : "");
  if (ctx[0] != '\0') std::fprintf(stderr, "]\n");
  if (g_dcheck_dump != nullptr) g_dcheck_dump();
  std::abort();
}

}  // namespace detail

#if ILU_DEBUG_CHECKS

/// Records which thread owns a single-threaded object (a SimRuntime shard).
/// bind() hands ownership to the calling thread; assert_held() aborts when
/// any other thread touches the object. The atomic makes the auditor itself
/// race-free: a cross-thread violation aborts deterministically rather than
/// being itself a data race on the owner field.
class OwnerRecord {
 public:
  OwnerRecord() noexcept { bind(); }

  /// Hand ownership to the calling thread. Legitimate handoffs (a sharded
  /// window loop starting, control returning to the driver after a join)
  /// must be externally synchronized — bind() publishes, it does not lock.
  void bind() noexcept {
    owner_.store(std::this_thread::get_id(), std::memory_order_release);
  }

  void assert_held(const char* file, int line, const char* what) const {
    if (owner_.load(std::memory_order_acquire) !=
        std::this_thread::get_id()) {
      detail::dcheck_fail(file, line, what,
                          "called from a thread that does not own this "
                          "runtime (cross-shard access outside the merge "
                          "window?)");
    }
  }

 private:
  std::atomic<std::thread::id> owner_;
};

#define ILU_DCHECK(cond, msg) \
  ((cond) ? (void)0 : ::ilu::detail::dcheck_fail(__FILE__, __LINE__, #cond, msg))
#define ILU_ASSERT_OWNER(rec, what) \
  (rec).assert_held(__FILE__, __LINE__, what)

#else  // !ILU_DEBUG_CHECKS

/// Release stub: empty, and every call compiles away entirely.
class OwnerRecord {
 public:
  void bind() noexcept {}
  void assert_held(const char*, int, const char*) const noexcept {}
};

#define ILU_DCHECK(cond, msg) ((void)0)
#define ILU_ASSERT_OWNER(rec, what) ((void)0)

#endif  // ILU_DEBUG_CHECKS

}  // namespace ilu
