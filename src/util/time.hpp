#pragma once

#include <chrono>
#include <cstdint>

/// Common time representation used across the whole control plane.
///
/// All simulated and measured time is carried as integral microseconds since
/// an arbitrary epoch (the start of the simulation, or process start for the
/// real-time runtime). Integral microseconds keep discrete-event replay
/// bit-exact across platforms while being fine-grained enough for the
/// sub-millisecond control-plane spans in the paper's Table 1.
namespace ilu {

/// A span of time, in microseconds.
using Duration = std::chrono::microseconds;

/// An instant, expressed as a Duration since the runtime epoch.
using TimePoint = Duration;

/// Convenience literal-style constructors.
constexpr Duration usecs(std::int64_t v) { return Duration{v}; }
constexpr Duration msecs(double v) {
  return Duration{static_cast<std::int64_t>(v * 1000.0)};
}
constexpr Duration secs(double v) {
  return Duration{static_cast<std::int64_t>(v * 1'000'000.0)};
}
constexpr Duration mins(double v) { return secs(v * 60.0); }

/// Conversions to floating-point units for metrics and reporting.
constexpr double to_ms(Duration d) { return static_cast<double>(d.count()) / 1000.0; }
constexpr double to_sec(Duration d) {
  return static_cast<double>(d.count()) / 1'000'000.0;
}

}  // namespace ilu
