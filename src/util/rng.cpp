#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace ilu {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed into 256 bits of state with splitmix64, per the
  // xoshiro authors' recommendation. Guard against the all-zero state.
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x = splitmix64(x);
    s = x;
  }
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::substream(std::uint64_t tag) const {
  return Rng(hash_combine(splitmix64(s_[0] ^ s_[3]), splitmix64(tag)));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Lemire's rejection-free-in-practice multiply-shift bounded draw.
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = uniform();
  // u in [0,1); 1-u in (0,1] so log is finite.
  return -mean * std::log(1.0 - u);
}

double Rng::normal() {
  double u1 = 1.0 - uniform();  // (0, 1]
  double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_median(double median, double sigma) {
  assert(median > 0.0);
  return median * std::exp(sigma * normal());
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = 1.0 - uniform();  // (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::poisson(double lambda) {
  assert(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-lambda);
    double prod = uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= uniform();
    }
    return n;
  }
  // Normal approximation with continuity correction; adequate for the
  // minute-bucket invocation counts used by the trace generator.
  double v = normal(lambda, std::sqrt(lambda)) + 0.5;
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace ilu
