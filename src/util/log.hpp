#pragma once

#include <ostream>
#include <sstream>
#include <string>

/// Tiny leveled logger. The control plane keeps logging off the critical
/// path by default (level Warn); benches/tests can raise verbosity.
/// A single global level keeps the hot-path check to one branch.
///
/// Thread-safe: the level is atomic and the sink is written under a mutex,
/// so concurrent log_message calls from worker threads never interleave
/// bytes or race on the stream.
namespace ilu {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Set/get the global log level (atomic; safe from any thread).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirect log output to `sink` (tests capture deterministically through an
/// ostringstream); nullptr restores the default stderr sink. The sink must
/// outlive all logging, and swapping it synchronizes with in-flight writes.
void set_log_sink(std::ostream* sink);

/// Thread-local sink override: while set, this thread's log output goes to
/// `sink` *instead of* the global sink — lock-free, since the sink is
/// thread-exclusive. The parallel sweep engine (exp/sweep.hpp) captures each
/// task's lines this way so concurrent simulations never interleave output;
/// nullptr restores the global path. Returns the previous override.
std::ostream* set_thread_log_sink(std::ostream* sink);

/// Write pre-formatted text (already line-terminated) straight to the
/// current global sink / stderr, bypassing level filtering. Used to flush
/// per-task captured logs in submission order.
void log_write_raw(const std::string& text);

/// Emit a message at `level` (no-op if below the global level).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Ts>
std::string concat(const Ts&... vs) {
  std::ostringstream os;
  (os << ... << vs);
  return os.str();
}
}  // namespace detail

template <typename... Ts>
void log_debug(const Ts&... vs) {
  if (log_level() <= LogLevel::Debug) log_message(LogLevel::Debug, detail::concat(vs...));
}
template <typename... Ts>
void log_info(const Ts&... vs) {
  if (log_level() <= LogLevel::Info) log_message(LogLevel::Info, detail::concat(vs...));
}
template <typename... Ts>
void log_warn(const Ts&... vs) {
  if (log_level() <= LogLevel::Warn) log_message(LogLevel::Warn, detail::concat(vs...));
}
template <typename... Ts>
void log_error(const Ts&... vs) {
  if (log_level() <= LogLevel::Error) log_message(LogLevel::Error, detail::concat(vs...));
}

}  // namespace ilu
