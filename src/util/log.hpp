#pragma once

#include <sstream>
#include <string>

/// Tiny leveled logger. The control plane keeps logging off the critical
/// path by default (level Warn); benches/tests can raise verbosity.
/// A single global level keeps the hot-path check to one branch.
namespace ilu {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Set/get the global log level. Not synchronized: set it before spawning
/// threads (matches how benches and tests use it).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message at `level` (no-op if below the global level).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Ts>
std::string concat(const Ts&... vs) {
  std::ostringstream os;
  (os << ... << vs);
  return os.str();
}
}  // namespace detail

template <typename... Ts>
void log_debug(const Ts&... vs) {
  if (log_level() <= LogLevel::Debug) log_message(LogLevel::Debug, detail::concat(vs...));
}
template <typename... Ts>
void log_info(const Ts&... vs) {
  if (log_level() <= LogLevel::Info) log_message(LogLevel::Info, detail::concat(vs...));
}
template <typename... Ts>
void log_warn(const Ts&... vs) {
  if (log_level() <= LogLevel::Warn) log_message(LogLevel::Warn, detail::concat(vs...));
}
template <typename... Ts>
void log_error(const Ts&... vs) {
  if (log_level() <= LogLevel::Error) log_message(LogLevel::Error, detail::concat(vs...));
}

}  // namespace ilu
