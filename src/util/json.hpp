#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

/// Minimal JSON parser/serializer (no external dependencies).
///
/// The paper's services are configured through JSON files (§6, "Workers are
/// configured with a json file on startup, with the various policy options
/// (such as queuing), keep-alive, timeouts, ..."); core/config.hpp builds
/// WorkerConfig / OpenWhiskConfig / ClusterConfig from documents parsed
/// here. Supports the full JSON grammar except for \uXXXX escapes beyond
/// the Basic Latin range (mapped through UTF-8 for code points < 0x800).
namespace ilu {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map keeps keys ordered for deterministic serialization.
using JsonObject = std::map<std::string, JsonValue>;

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& msg, std::size_t offset)
      : std::runtime_error(msg + " (at offset " + std::to_string(offset) +
                           ")"),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class JsonValue {
 public:
  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(int i) : v_(static_cast<double>(i)) {}
  JsonValue(std::int64_t i) : v_(static_cast<double>(i)) {}
  JsonValue(std::uint64_t i) : v_(static_cast<double>(i)) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(JsonArray a) : v_(std::move(a)) {}
  JsonValue(JsonObject o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(v_); }

  /// Typed accessors; throw JsonError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object field lookup; returns nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Convenience getters with defaults (for config loading).
  double number_or(const std::string& key, double def) const;
  bool bool_or(const std::string& key, bool def) const;
  std::string string_or(const std::string& key,
                        const std::string& def) const;

  /// Serialize; indent > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  bool operator==(const JsonValue& other) const { return v_ == other.v_; }

 private:
  void dump_to(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v_;
};

/// Parse a complete JSON document. Throws JsonError on malformed input or
/// trailing garbage.
JsonValue json_parse(std::string_view text);

/// Parse the contents of a file. Throws std::runtime_error / JsonError.
JsonValue json_parse_file(const std::string& path);

}  // namespace ilu
