#include "util/log.hpp"
// ilu-lint: atomics-floor(relaxed) - g_level is an independent severity gate; stale reads drop or admit one line, never corrupt

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ilu {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_out_mutex;
/// Overriding sink; nullptr means stderr. Guarded by g_out_mutex.
std::ostream* g_sink = nullptr;
/// Per-thread override; takes precedence over g_sink (no lock needed: the
/// stream is owned exclusively by this thread while set).
thread_local std::ostream* t_sink = nullptr;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(g_out_mutex);
  g_sink = sink;
}

std::ostream* set_thread_log_sink(std::ostream* sink) {
  std::ostream* prev = t_sink;
  t_sink = sink;
  return prev;
}

void log_write_raw(const std::string& text) {
  if (text.empty()) return;
  std::lock_guard<std::mutex> lock(g_out_mutex);
  if (g_sink != nullptr) {
    (*g_sink) << text;
  } else {
    std::fwrite(text.data(), 1, text.size(), stderr);
  }
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  if (t_sink != nullptr) {
    (*t_sink) << "[" << level_name(level) << "] " << msg << "\n";
    return;
  }
  std::lock_guard<std::mutex> lock(g_out_mutex);
  if (g_sink != nullptr) {
    (*g_sink) << "[" << level_name(level) << "] " << msg << "\n";
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
  }
}

}  // namespace ilu
