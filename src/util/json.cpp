#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace ilu {

bool JsonValue::as_bool() const {
  if (!is_bool()) throw JsonError("not a bool", 0);
  return std::get<bool>(v_);
}

double JsonValue::as_number() const {
  if (!is_number()) throw JsonError("not a number", 0);
  return std::get<double>(v_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw JsonError("not a string", 0);
  return std::get<std::string>(v_);
}

const JsonArray& JsonValue::as_array() const {
  if (!is_array()) throw JsonError("not an array", 0);
  return std::get<JsonArray>(v_);
}

const JsonObject& JsonValue::as_object() const {
  if (!is_object()) throw JsonError("not an object", 0);
  return std::get<JsonObject>(v_);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<JsonObject>(v_);
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : def;
}

bool JsonValue::bool_or(const std::string& key, bool def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : def;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : def;
}

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    // Integral values render without a fractional part.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(v_) ? "true" : "false";
  } else if (is_number()) {
    dump_number(out, std::get<double>(v_));
  } else if (is_string()) {
    dump_string(out, std::get<std::string>(v_));
  } else if (is_array()) {
    const auto& arr = std::get<JsonArray>(v_);
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const auto& e : arr) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      e.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& obj = std::get<JsonObject>(v_);
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, val] : obj) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_string(out, k);
      out += ':';
      if (indent > 0) out += ' ';
      val.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw JsonError("trailing characters after JSON document", pos_);
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) throw JsonError("unexpected end of input", pos_);
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      throw JsonError(std::string("expected '") + c + "'", pos_ - 1);
    }
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      throw JsonError("invalid literal", pos_);
    }
    pos_ += lit.size();
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't': expect_literal("true"); return JsonValue(true);
      case 'f': expect_literal("false"); return JsonValue(false);
      case 'n': expect_literal("null"); return JsonValue(nullptr);
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      char c = take();
      if (c == '}') break;
      if (c != ',') throw JsonError("expected ',' or '}' in object", pos_ - 1);
    }
    return JsonValue(std::move(obj));
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = take();
      if (c == ']') break;
      if (c != ',') throw JsonError("expected ',' or ']' in array", pos_ - 1);
    }
    return JsonValue(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) throw JsonError("unterminated string", pos_);
      char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) throw JsonError("dangling escape", pos_);
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            throw JsonError("truncated \\u escape", pos_);
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else throw JsonError("bad hex digit in \\u escape", pos_ - 1);
          }
          // UTF-8 encode (BMP only; surrogate pairs are rejected).
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            throw JsonError("surrogate pairs not supported", pos_);
          }
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          throw JsonError("invalid escape character", pos_ - 1);
      }
    }
    return out;
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      throw JsonError("invalid number", pos_);
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    auto sv = text_.substr(start, pos_ - start);
    auto [ptr, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), value);
    if (ec != std::errc() || ptr != sv.data() + sv.size()) {
      throw JsonError("malformed number", start);
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue json_parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open JSON file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return json_parse(ss.str());
}

}  // namespace ilu
