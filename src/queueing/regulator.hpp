#pragma once

#include <cstddef>

#include "util/time.hpp"

/// The concurrency regulator (§5.1): enforces the upper bound on
/// concurrently running functions — which is exactly the CPU overcommitment
/// ratio. Runs either with a fixed limit, or in dynamic mode with a
/// TCP-like AIMD controller: additive increase until the system load
/// average crosses a congestion threshold, multiplicative decrease after.
namespace ilu {

/// What the AIMD controller reads as its congestion signal: the normalized
/// load average (default), or the recent mean stretch of completed
/// invocations — the alternative the paper suggests ("looking at the
/// increase in execution time (i.e., stretch) of the functions could also
/// be used as a congestion metric").
enum class CongestionSignal { LoadAverage, Stretch };

struct RegulatorConfig {
  /// Initial / fixed limit on concurrently running invocations.
  double limit = 48.0;
  bool dynamic = false;  // AIMD mode
  double min_limit = 2.0;
  double max_limit = 1024.0;
  double additive_step = 1.0;
  double multiplicative_decrease = 0.7;
  CongestionSignal signal = CongestionSignal::LoadAverage;
  /// Congestion when load_average / cores exceeds this.
  double congestion_threshold = 1.0;
  /// Congestion when recent mean stretch exceeds this (Stretch signal).
  double stretch_threshold = 2.0;
  /// AIMD evaluation cadence (driven by the worker).
  Duration interval = secs(2);
};

class ConcurrencyRegulator {
 public:
  explicit ConcurrencyRegulator(RegulatorConfig cfg) : cfg_(cfg), limit_(cfg.limit) {}

  bool can_dispatch(std::size_t running) const {
    return static_cast<double>(running) < limit_;
  }

  /// AIMD step. `normalized_load` = load_average / cores; `recent_stretch`
  /// is the mean stretch of recently completed invocations (ignored unless
  /// the Stretch signal is configured). No-op in fixed mode.
  void tick(double normalized_load, double recent_stretch = 0.0) {
    if (!cfg_.dynamic) return;
    bool congested =
        cfg_.signal == CongestionSignal::Stretch
            ? recent_stretch > cfg_.stretch_threshold
            : normalized_load > cfg_.congestion_threshold;
    if (congested) {
      limit_ *= cfg_.multiplicative_decrease;
      if (limit_ < cfg_.min_limit) limit_ = cfg_.min_limit;
    } else {
      limit_ += cfg_.additive_step;
      if (limit_ > cfg_.max_limit) limit_ = cfg_.max_limit;
    }
  }

  double limit() const { return limit_; }
  const RegulatorConfig& config() const { return cfg_; }

 private:
  RegulatorConfig cfg_;
  double limit_;
};

}  // namespace ilu
