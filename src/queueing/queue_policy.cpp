#include "queueing/queue_policy.hpp"

#include <stdexcept>

namespace ilu {

double QueuePolicy::expected_exec_ms(const QueueItem& item,
                                     const CharacteristicsMap& chars,
                                     bool warm_available) {
  Duration est = warm_available ? chars.expected_warm(item.fn)
                                : chars.expected_cold(item.fn);
  if (est <= Duration::zero()) {
    // Fall back to the other estimate before concluding "unseen".
    est = warm_available ? chars.expected_cold(item.fn)
                         : chars.expected_warm(item.fn);
  }
  return to_ms(est);
}

std::unique_ptr<QueuePolicy> make_queue_policy(const std::string& name) {
  if (name == "FCFS") return std::make_unique<FcfsQueuePolicy>();
  if (name == "SJF") return std::make_unique<SjfQueuePolicy>();
  if (name == "EEDF") return std::make_unique<EedfQueuePolicy>();
  if (name == "RARE") return std::make_unique<RareQueuePolicy>();
  throw std::invalid_argument("unknown queue policy: " + name);
}

}  // namespace ilu
