#pragma once

#include <memory>
#include <string>

#include "common/types.hpp"
#include "common/characteristics.hpp"
#include "runtime/task.hpp"

/// Invocation queue disciplines (§5.2). Priorities are computed from the
/// per-function learned characteristics; the invocation with the *lowest*
/// priority value is dispatched first.
namespace ilu {

/// An invocation waiting in the worker's queue. `dispatch` is the
/// continuation that actually runs it (bound by the worker). Task (not
/// std::function) keeps the queue hot path allocation-free: the worker's
/// dispatch capture fits Task's inline buffer, and heap push/pop only ever
/// move it.
struct QueueItem {
  FunctionId fn = 0;
  TimePoint arrival{};
  std::uint64_t seq = 0;
  Task dispatch;
};

class QueuePolicy {
 public:
  virtual ~QueuePolicy() = default;
  virtual std::string name() const = 0;

  /// Lower dispatches first. `warm_available` tells the policy whether a
  /// warm container is expected for this function (then the warm time is the
  /// execution estimate; otherwise the cold time — which also spreads the
  /// concurrent cold starts of a burst apart, §5.2).
  virtual double priority(const QueueItem& item,
                          const CharacteristicsMap& chars,
                          bool warm_available) const = 0;

 protected:
  /// Expected execution time in ms under the warm/cold estimate rule;
  /// unseen functions return 0 so they are prioritized.
  static double expected_exec_ms(const QueueItem& item,
                                 const CharacteristicsMap& chars,
                                 bool warm_available);
};

/// First-come-first-served: dispatch in arrival order.
class FcfsQueuePolicy final : public QueuePolicy {
 public:
  std::string name() const override { return "FCFS"; }
  double priority(const QueueItem& item, const CharacteristicsMap&,
                  bool) const override {
    return static_cast<double>(item.arrival.count());
  }
};

/// Shortest job first: favors short functions, can starve long ones.
class SjfQueuePolicy final : public QueuePolicy {
 public:
  std::string name() const override { return "SJF"; }
  double priority(const QueueItem& item, const CharacteristicsMap& chars,
                  bool warm_available) const override {
    return expected_exec_ms(item, chars, warm_available);
  }
};

/// Earliest effective deadline first (the paper's default): minimize
/// arrival time + expected execution time — balances short functions
/// against starvation.
class EedfQueuePolicy final : public QueuePolicy {
 public:
  std::string name() const override { return "EEDF"; }
  double priority(const QueueItem& item, const CharacteristicsMap& chars,
                  bool warm_available) const override {
    return to_ms(item.arrival) +
           expected_exec_ms(item, chars, warm_available);
  }
};

/// RARE: prioritize the most unexpected functions (highest inter-arrival
/// time first).
class RareQueuePolicy final : public QueuePolicy {
 public:
  std::string name() const override { return "RARE"; }
  double priority(const QueueItem& item, const CharacteristicsMap& chars,
                  bool) const override {
    return -chars.mean_iat_s(item.fn);
  }
};

/// Names: FCFS, SJF, EEDF, RARE. Throws std::invalid_argument.
std::unique_ptr<QueuePolicy> make_queue_policy(const std::string& name);

}  // namespace ilu
