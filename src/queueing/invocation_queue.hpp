#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "queueing/queue_policy.hpp"
#include "runtime/indexed_heap.hpp"
#include "runtime/runtime.hpp"

// ilu-lint: speculative-zone(flight, metrics) - the flight ring is mark()/rewind() bracketed per speculative window and restore() re-syncs the depth gauge from the checkpointed heap

/// The per-worker invocation queue (§5): a priority queue sorted by the
/// active discipline, with FIFO tie-breaking (sequence numbers) so equal
/// priorities preserve arrival order.
///
/// Backed by the same indexed d-ary heap primitive as the event engine
/// (runtime/indexed_heap.hpp): push/pop are O(log n) over a contiguous key
/// array with slab-recycled items, replacing the former `std::map` whose
/// every insert/erase was a red-black-tree node allocation.
namespace ilu {

class InvocationQueue {
 private:
  using Key = std::pair<double, std::uint64_t>;

 public:
  InvocationQueue(const QueuePolicy& policy, const CharacteristicsMap& chars)
      : policy_(policy), chars_(chars) {}

  /// Enqueue with the priority computed at insertion time (matching the
  /// paper's implementation: priorities use the characteristics known at
  /// enqueue).
  void push(QueueItem item, bool warm_available) {
    item.seq = next_seq_++;
    double pri = policy_.priority(item, chars_, warm_available);
    if (clock_ != nullptr) {
      flight::record(clock_->now(), flight::Ev::kQueueEnq,
                     static_cast<std::uint32_t>(item.fn));
    }
    items_.push(Key{pri, item.seq}, std::move(item));
    if (depth_gauge_) {
      depth_gauge_->set(static_cast<std::int64_t>(items_.size()));
    }
  }

  /// Dispatch the lowest-priority item.
  std::optional<QueueItem> pop() {
    if (items_.empty()) return std::nullopt;
    QueueItem item = items_.pop_min();
    if (clock_ != nullptr) {
      flight::record(clock_->now(), flight::Ev::kQueueDeq,
                     static_cast<std::uint32_t>(item.fn));
    }
    if (depth_gauge_) {
      depth_gauge_->set(static_cast<std::int64_t>(items_.size()));
    }
    return item;
  }

  /// Peek at the head priority (for tests / bypass heuristics).
  std::optional<double> head_priority() const {
    const Key* k = items_.peek_key();
    if (k == nullptr) return std::nullopt;
    return k->first;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Mirror the queue depth into a live gauge (nullptr disables).
  void set_depth_gauge(Gauge* g) {
    depth_gauge_ = g;
    if (depth_gauge_) {
      depth_gauge_->set(static_cast<std::int64_t>(items_.size()));
    }
  }

  /// Timestamp source for flight-recorder enq/deq stamps (nullptr disables
  /// stamping entirely — e.g. microbenchmarks of the bare queue).
  void set_flight_clock(const Runtime* rt) { clock_ = rt; }

  /// Checkpointable state for speculative (Time Warp) execution: the heap
  /// is cloned item by item (QueueItem carries a move-only Task, cloned via
  /// Task::clone) so computed priorities, sequence numbers, and heap layout
  /// — and therefore dispatch order — survive a restore exactly.
  struct Snapshot {
    std::uint64_t next_seq = 0;
    IndexedHeap<Key, QueueItem> items;
  };
  Snapshot snapshot() const {
    Snapshot s;
    s.next_seq = next_seq_;
    s.items = items_.clone_with(&clone_item);
    return s;
  }
  void restore(const Snapshot& s) {
    next_seq_ = s.next_seq;
    items_ = s.items.clone_with(&clone_item);
    if (depth_gauge_) {
      depth_gauge_->set(static_cast<std::int64_t>(items_.size()));
    }
  }

 private:
  static QueueItem clone_item(const QueueItem& item) {
    QueueItem out;
    out.fn = item.fn;
    out.arrival = item.arrival;
    out.seq = item.seq;
    out.dispatch = item.dispatch.clone();
    return out;
  }

  const QueuePolicy& policy_;
  const CharacteristicsMap& chars_;
  Gauge* depth_gauge_ = nullptr;
  const Runtime* clock_ = nullptr;
  std::uint64_t next_seq_ = 0;
  IndexedHeap<Key, QueueItem> items_;
};

}  // namespace ilu
