#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "queueing/queue_policy.hpp"

/// The per-worker invocation queue (§5): a priority queue sorted by the
/// active discipline, with FIFO tie-breaking (sequence numbers) so equal
/// priorities preserve arrival order.
namespace ilu {

class InvocationQueue {
 public:
  InvocationQueue(const QueuePolicy& policy, const CharacteristicsMap& chars)
      : policy_(policy), chars_(chars) {}

  /// Enqueue with the priority computed at insertion time (matching the
  /// paper's implementation: priorities use the characteristics known at
  /// enqueue).
  void push(QueueItem item, bool warm_available) {
    item.seq = next_seq_++;
    double pri = policy_.priority(item, chars_, warm_available);
    items_.emplace(std::make_pair(pri, item.seq), std::move(item));
    if (depth_gauge_) {
      depth_gauge_->set(static_cast<std::int64_t>(items_.size()));
    }
  }

  /// Dispatch the lowest-priority item.
  std::optional<QueueItem> pop() {
    if (items_.empty()) return std::nullopt;
    auto it = items_.begin();
    QueueItem item = std::move(it->second);
    items_.erase(it);
    if (depth_gauge_) {
      depth_gauge_->set(static_cast<std::int64_t>(items_.size()));
    }
    return item;
  }

  /// Peek at the head priority (for tests / bypass heuristics).
  std::optional<double> head_priority() const {
    if (items_.empty()) return std::nullopt;
    return items_.begin()->first.first;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Mirror the queue depth into a live gauge (nullptr disables).
  void set_depth_gauge(Gauge* g) {
    depth_gauge_ = g;
    if (depth_gauge_) {
      depth_gauge_->set(static_cast<std::int64_t>(items_.size()));
    }
  }

 private:
  const QueuePolicy& policy_;
  const CharacteristicsMap& chars_;
  Gauge* depth_gauge_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::map<std::pair<double, std::uint64_t>, QueueItem> items_;
};

}  // namespace ilu
