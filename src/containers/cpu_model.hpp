#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "runtime/runtime.hpp"

/// Generalized-processor-sharing CPU model (the 48-core Xeon stand-in).
///
/// Each running task has a fixed amount of CPU work (core-seconds) and a
/// cgroup-style weight that doubles as its per-task core cap: a 1-CPU
/// container can never use more than 1 core, and under contention cores are
/// divided proportionally to weight (exactly the paper's observation that
/// cgroup quotas keep allocation proportional under overcommitment).
///
/// The model is *exact*, not time-stepped: rates are recomputed by
/// water-filling on every arrival/departure and the next completion event is
/// rescheduled accordingly.
///
/// It also maintains a Unix-style exponentially-decayed load average over
/// total runnable demand, updated lazily at event boundaries (demand is
/// piecewise constant between events, so the EWMA integral is closed-form).
namespace ilu {

class CpuModel {
 private:
  struct RunningTask {
    double remaining = 0.0;  // core-seconds
    double weight = 1.0;
    double rate = 0.0;  // cores currently allocated
    Runtime::Task on_complete;
  };

 public:
  using TaskId = std::uint64_t;

  CpuModel(Runtime& rt, double cores, double load_tau_seconds = 60.0);

  /// Start a task needing `work_seconds` core-seconds, with cgroup weight /
  /// core-cap `weight` (> 0). `on_complete` fires (via the runtime) when the
  /// work is done; the elapsed wall time depends on contention.
  TaskId submit(double work_seconds, double weight,
                Runtime::Task on_complete);

  /// Abort a running task (no callback). Returns false if unknown.
  bool cancel(TaskId id);

  std::size_t running() const { return tasks_.size(); }

  /// Instantaneous total demand in cores (sum of weights of running tasks).
  double demand() const { return total_weight_; }

  /// Exponentially decayed load average of demand.
  double load_average() const;

  double cores() const { return cores_; }

  /// Wall-clock duration the given work would take at current contention if
  /// conditions froze now (used by queue policies for expectations).
  Duration estimate(double work_seconds, double weight) const;

  /// Observe every demand change (piecewise-constant between events); used
  /// by the EnergyMeter for exact power integration. Takes arguments and is
  /// installed once per model, so it is not a Task candidate.
  // ilu-lint: allow(std-function-hotpath) - set once at wiring time, never on the per-event path
  using DemandObserver = std::function<void(TimePoint, double)>;
  void set_demand_observer(DemandObserver obs) { observer_ = std::move(obs); }

  /// Checkpointable state for speculative (Time Warp) execution: everything
  /// but the wiring (runtime reference, cores, observer). Completion
  /// callbacks are cloned Task values; the completion timer id survives a
  /// SimRuntime heap restore because the heap preserves slot generations.
  /// Move-only (Task is move-only).
  struct State {
    std::map<TaskId, RunningTask> tasks;
    TaskId next_id = 1;
    double total_weight = 0.0;
    TimePoint last_advance{};
    Runtime::TimerId completion_timer = Runtime::kInvalidTimer;
    double load_avg = 0.0;
    TimePoint load_updated{};
  };
  State save_state() const;
  void load_state(const State& s);

 private:
  /// Advance all remaining-work counters to rt_.now().
  void advance();
  /// Water-fill rates and (re)schedule the next completion event.
  void recompute_and_schedule();
  void on_completion_event();
  double rate_for(double weight) const;
  void update_load_average(TimePoint now) const;

  Runtime& rt_;
  double cores_;
  double load_tau_;

  /// Ordered by TaskId (= submission order): completion callbacks collected
  /// while sweeping this map fire in a deterministic order, which an
  /// unordered_map would leak hash-layout order into. Sweeps are O(running
  /// tasks), a handful per worker, so the tree costs nothing measurable.
  std::map<TaskId, RunningTask> tasks_;
  TaskId next_id_ = 1;
  double total_weight_ = 0.0;
  TimePoint last_advance_{};

  Runtime::TimerId completion_timer_ = Runtime::kInvalidTimer;

  mutable double load_avg_ = 0.0;
  mutable TimePoint load_updated_{};
  DemandObserver observer_;
};

}  // namespace ilu
