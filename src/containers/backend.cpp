#include "containers/backend.hpp"

#include "obs/flight.hpp"

// ilu-lint: speculative-zone(flight) - the flight ring is mark()/rewind() bracketed per speculative window, so rolled-back cold-create records are discarded

namespace ilu {

BackendLatencyProfile BackendLatencyProfile::containerd() {
  return {
      .name = "containerd",
      .create = LatencyModel::lognormal(msecs(300), 0.25),
      .agent_start = LatencyModel::lognormal(msecs(200), 0.30),
      .destroy = LatencyModel::lognormal(msecs(50), 0.30),
  };
}

BackendLatencyProfile BackendLatencyProfile::docker() {
  return {
      .name = "docker",
      .create = LatencyModel::lognormal(msecs(400), 0.25),
      .agent_start = LatencyModel::lognormal(msecs(200), 0.30),
      .destroy = LatencyModel::lognormal(msecs(80), 0.30),
  };
}

BackendLatencyProfile BackendLatencyProfile::crun() {
  return {
      .name = "crun",
      .create = LatencyModel::lognormal(msecs(150), 0.25),
      .agent_start = LatencyModel::lognormal(msecs(200), 0.30),
      .destroy = LatencyModel::lognormal(msecs(30), 0.30),
  };
}

BackendLatencyProfile BackendLatencyProfile::null_backend() {
  return {
      .name = "null",
      .create = LatencyModel::zero(),
      .agent_start = LatencyModel::zero(),
      .destroy = LatencyModel::zero(),
  };
}

SimContainerBackend::SimContainerBackend(Runtime& rt, CpuModel& cpu, Rng rng,
                                         BackendLatencyProfile profile,
                                         BackendFaults faults)
    : rt_(rt),
      cpu_(cpu),
      rng_(rng),
      profile_(std::move(profile)),
      faults_(faults) {}

void SimContainerBackend::create_container(const FunctionProfile& profile,
                                           VoidCb cb) {
  Duration d;
  if (profile_.snapshot_cold_starts && snapshotted_.count(profile.name) > 0) {
    // Restore from a previous snapshot of this function's container.
    d = profile_.snapshot_restore.sample(rng_);
    ++snapshot_restores_;
  } else {
    d = profile_.create.sample(rng_) + profile_.agent_start.sample(rng_);
  }
  if (rng_.bernoulli(faults_.create_failure_prob)) {
    ++create_failures_;
    rt_.schedule(d, [cb = std::move(cb)] { cb(false); });
    return;
  }
  ++creates_;
  flight::record(rt_.now(), flight::Ev::kColdCreate,
                 static_cast<std::uint32_t>(creates_));
  if (profile_.snapshot_cold_starts) snapshotted_.insert(profile.name);
  rt_.schedule(d, [cb = std::move(cb)] { cb(true); });
}

void SimContainerBackend::invoke(double work_seconds, double cpus,
                                 InvokeCb cb) {
  bool fail = rng_.bernoulli(faults_.invoke_failure_prob);
  TimePoint started = rt_.now();
  cpu_.submit(work_seconds, cpus,
              [this, cb = std::move(cb), started, fail] {
                cb(!fail, rt_.now() - started);
              });
}

void SimContainerBackend::destroy_container(VoidCb cb) {
  ++destroys_;
  rt_.schedule(profile_.destroy.sample(rng_),
               [cb = std::move(cb)] { cb(true); });
}

struct SimContainerBackend::State {
  Rng rng;
  std::uint64_t creates = 0;
  std::uint64_t destroys = 0;
  std::uint64_t create_failures = 0;
  std::uint64_t snapshot_restores = 0;
  std::unordered_set<std::string> snapshotted;
};

std::shared_ptr<void> SimContainerBackend::save_state() const {
  auto s = std::make_shared<State>();
  s->rng = rng_;
  s->creates = creates_;
  s->destroys = destroys_;
  s->create_failures = create_failures_;
  s->snapshot_restores = snapshot_restores_;
  s->snapshotted = snapshotted_;
  return s;
}

void SimContainerBackend::load_state(const std::shared_ptr<void>& s) {
  const auto& st = *static_cast<const State*>(s.get());
  rng_ = st.rng;
  creates_ = st.creates;
  destroys_ = st.destroys;
  create_failures_ = st.create_failures;
  snapshot_restores_ = st.snapshot_restores;
  snapshotted_ = st.snapshotted;
}

}  // namespace ilu
