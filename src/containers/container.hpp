#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "keepalive/policy.hpp"

/// A container/sandbox as managed by the worker's container layer. State
/// transitions follow the paper's lifecycle: Provisioning (image/netns) ->
/// Launching (agent starting) -> Idle <-> Running -> Removed.
namespace ilu {

using ContainerId = std::uint64_t;

enum class ContainerState {
  Provisioning,
  Launching,
  Idle,
  Running,
  Removed,
};

const char* to_string(ContainerState s);

struct Container {
  ContainerId id = 0;
  FunctionId fn = 0;
  FunctionProfile profile;
  ContainerState state = ContainerState::Provisioning;
  /// Keep-alive bookkeeping shared with the cache policies.
  CacheEntry entry;
  /// Network namespace assigned from the pool (0 = none yet).
  std::uint64_t netns_id = 0;
  /// Whether the cached per-container HTTP client exists yet; the first
  /// agent call on a fresh container pays connection setup (§4.3.1).
  bool http_client_cached = false;
  /// Parked by a prewarm and not yet used by an invocation (drives the
  /// pool's prewarmed-containers gauge).
  bool prewarm_parked = false;

  bool runnable() const { return state == ContainerState::Idle; }
};

/// Legal state transitions; used by the worker in debug builds.
bool valid_transition(ContainerState from, ContainerState to);

}  // namespace ilu
