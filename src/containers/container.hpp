#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "keepalive/policy.hpp"
#include "runtime/slab.hpp"

/// A container/sandbox as managed by the worker's container layer. State
/// transitions follow the paper's lifecycle: Provisioning (image/netns) ->
/// Launching (agent starting) -> Idle <-> Running -> Removed.
namespace ilu {

using ContainerId = std::uint64_t;

/// Generation-checked reference to a container record in the pool's
/// `ContainerStore` (DESIGN.md §11). Replaces `Container*` everywhere a
/// container outlives one call frame: worker continuations capture handles
/// by value, and a handle retained past eviction fails `contains()` instead
/// of silently aliasing a recycled record.
struct ContainerHandle {
  std::uint32_t index = 0;
  /// Live generations are odd; 0 marks a default-constructed (null) handle.
  std::uint32_t gen = 0;

  bool valid() const { return gen != 0; }
  friend bool operator==(const ContainerHandle&,
                         const ContainerHandle&) = default;
};

enum class ContainerState {
  Provisioning,
  Launching,
  Idle,
  Running,
  Removed,
};

const char* to_string(ContainerState s);

struct Container {
  ContainerId id = 0;
  FunctionId fn = 0;
  FunctionProfile profile;
  ContainerState state = ContainerState::Provisioning;
  /// Keep-alive bookkeeping shared with the cache policies.
  CacheEntry entry;
  /// Network namespace assigned from the pool (0 = none yet).
  std::uint64_t netns_id = 0;
  /// Whether the cached per-container HTTP client exists yet; the first
  /// agent call on a fresh container pays connection setup (§4.3.1).
  bool http_client_cached = false;
  /// Parked by a prewarm and not yet used by an invocation (drives the
  /// pool's prewarmed-containers gauge).
  bool prewarm_parked = false;

  /// Intrusive links for the pool's per-function idle list (a LIFO stack:
  /// head is the most recently used container). Maintained by ContainerPool
  /// while state == Idle; null otherwise.
  ContainerHandle idle_prev;
  ContainerHandle idle_next;
  /// Position in the pool's eviction-rank heap while idle, stored as the
  /// raw {slot, gen} of an IndexedHeap handle (same flattening SimRuntime
  /// uses for TimerId). Zero gen = not in the rank index.
  std::uint32_t rank_slot = 0;
  std::uint32_t rank_gen = 0;

  bool runnable() const { return state == ContainerState::Idle; }
};

/// Slab owner of every container record; `ContainerHandle` indexes into it.
using ContainerStore = Slab<Container, ContainerHandle>;

/// Legal state transitions; used by the worker in debug builds.
bool valid_transition(ContainerState from, ContainerState to);

}  // namespace ilu
