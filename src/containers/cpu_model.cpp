#include "containers/cpu_model.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

namespace ilu {

namespace {
constexpr double kWorkEpsilon = 1e-9;  // core-seconds considered "done"
}

CpuModel::CpuModel(Runtime& rt, double cores, double load_tau_seconds)
    : rt_(rt), cores_(cores), load_tau_(load_tau_seconds) {
  assert(cores_ > 0.0 && load_tau_ > 0.0);
  last_advance_ = rt_.now();
  load_updated_ = rt_.now();
}

double CpuModel::rate_for(double weight) const {
  // Proportional sharing with per-task core caps equal to the weight. When
  // total demand exceeds the machine, every task's proportional share
  // cores*w/W is already below its cap w, so water-filling reduces to a
  // single scaling factor.
  if (total_weight_ <= cores_) return weight;
  return weight * cores_ / total_weight_;
}

void CpuModel::update_load_average(TimePoint now) const {
  double dt = to_sec(now - load_updated_);
  if (dt <= 0.0) return;
  double a = std::exp(-dt / load_tau_);
  // Demand was constant at total_weight_ over (load_updated_, now].
  load_avg_ = total_weight_ + (load_avg_ - total_weight_) * a;
  load_updated_ = now;
}

double CpuModel::load_average() const {
  update_load_average(rt_.now());
  return load_avg_;
}

void CpuModel::advance() {
  TimePoint now = rt_.now();
  update_load_average(now);
  double dt = to_sec(now - last_advance_);
  last_advance_ = now;
  if (dt <= 0.0 || tasks_.empty()) return;
  for (auto& [id, t] : tasks_) {
    t.remaining -= t.rate * dt;
    if (t.remaining < 0.0) t.remaining = 0.0;
  }
}

void CpuModel::recompute_and_schedule() {
  if (completion_timer_ != Runtime::kInvalidTimer) {
    rt_.cancel(completion_timer_);
    completion_timer_ = Runtime::kInvalidTimer;
  }
  if (tasks_.empty()) return;

  double min_eta = std::numeric_limits<double>::infinity();
  for (auto& [id, t] : tasks_) {
    t.rate = rate_for(t.weight);
    double eta = t.rate > 0.0 ? t.remaining / t.rate : 0.0;
    if (eta < min_eta) min_eta = eta;
  }
  // Round up so virtual time always advances; completed work is detected
  // by the epsilon test rather than exact-zero remaining.
  auto delay = Duration{static_cast<std::int64_t>(std::ceil(
      std::max(0.0, min_eta) * 1e6))};
  completion_timer_ = rt_.schedule(delay, [this] { on_completion_event(); });
}

void CpuModel::on_completion_event() {
  completion_timer_ = Runtime::kInvalidTimer;
  advance();
  std::vector<Runtime::Task> done;
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    if (it->second.remaining <= kWorkEpsilon) {
      done.push_back(std::move(it->second.on_complete));
      total_weight_ -= it->second.weight;
      it = tasks_.erase(it);
    } else {
      ++it;
    }
  }
  if (total_weight_ < 0.0) total_weight_ = 0.0;
  if (observer_ && !done.empty()) observer_(rt_.now(), total_weight_);
  recompute_and_schedule();
  for (auto& cb : done) {
    rt_.post(std::move(cb));
  }
}

CpuModel::TaskId CpuModel::submit(double work_seconds, double weight,
                                  Runtime::Task on_complete) {
  assert(work_seconds >= 0.0 && weight > 0.0);
  advance();
  TaskId id = next_id_++;
  RunningTask t;
  t.remaining = work_seconds;
  t.weight = weight;
  t.on_complete = std::move(on_complete);
  tasks_.emplace(id, std::move(t));
  total_weight_ += weight;
  if (observer_) observer_(rt_.now(), total_weight_);
  recompute_and_schedule();
  return id;
}

bool CpuModel::cancel(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return false;
  advance();
  total_weight_ -= it->second.weight;
  if (total_weight_ < 0.0) total_weight_ = 0.0;
  tasks_.erase(it);
  if (observer_) observer_(rt_.now(), total_weight_);
  recompute_and_schedule();
  return true;
}

CpuModel::State CpuModel::save_state() const {
  State s;
  for (const auto& [id, t] : tasks_) {
    RunningTask copy;
    copy.remaining = t.remaining;
    copy.weight = t.weight;
    copy.rate = t.rate;
    copy.on_complete = t.on_complete.clone();
    s.tasks.emplace(id, std::move(copy));
  }
  s.next_id = next_id_;
  s.total_weight = total_weight_;
  s.last_advance = last_advance_;
  s.completion_timer = completion_timer_;
  s.load_avg = load_avg_;
  s.load_updated = load_updated_;
  return s;
}

void CpuModel::load_state(const State& s) {
  // Clone rather than move: the same checkpoint blob must survive the
  // restore (the Snapshotter API hands it back by const reference).
  tasks_.clear();
  for (const auto& [id, t] : s.tasks) {
    RunningTask copy;
    copy.remaining = t.remaining;
    copy.weight = t.weight;
    copy.rate = t.rate;
    copy.on_complete = t.on_complete.clone();
    tasks_.emplace(id, std::move(copy));
  }
  next_id_ = s.next_id;
  total_weight_ = s.total_weight;
  last_advance_ = s.last_advance;
  completion_timer_ = s.completion_timer;
  load_avg_ = s.load_avg;
  load_updated_ = s.load_updated;
}

Duration CpuModel::estimate(double work_seconds, double weight) const {
  double w = total_weight_ + weight;
  double rate = w <= cores_ ? weight : weight * cores_ / w;
  if (rate <= 0.0) return Duration::zero();
  return secs(work_seconds / rate);
}

}  // namespace ilu
