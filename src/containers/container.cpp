#include "containers/container.hpp"

namespace ilu {

const char* to_string(ContainerState s) {
  switch (s) {
    case ContainerState::Provisioning: return "Provisioning";
    case ContainerState::Launching: return "Launching";
    case ContainerState::Idle: return "Idle";
    case ContainerState::Running: return "Running";
    case ContainerState::Removed: return "Removed";
  }
  return "?";
}

bool valid_transition(ContainerState from, ContainerState to) {
  switch (from) {
    case ContainerState::Provisioning:
      return to == ContainerState::Launching || to == ContainerState::Removed;
    case ContainerState::Launching:
      // A cold-start container goes straight to Running (the pending
      // invocation is waiting on it); a prewarmed one parks as Idle.
      return to == ContainerState::Idle || to == ContainerState::Running ||
             to == ContainerState::Removed;
    case ContainerState::Idle:
      return to == ContainerState::Running || to == ContainerState::Removed;
    case ContainerState::Running:
      return to == ContainerState::Idle || to == ContainerState::Removed;
    case ContainerState::Removed:
      return false;
  }
  return false;
}

}  // namespace ilu
