#pragma once

#include <cstdint>
#include <functional>

#include "runtime/latency.hpp"
#include "runtime/runtime.hpp"

/// Network-namespace pool (§4.3.1 "Network Namespace Caching").
///
/// Creating a netns + veth pair costs ~100 ms and is serialized by a global
/// kernel lock shared across all namespaces (the SOCK observation the paper
/// cites). The pool pre-creates namespaces in the background so container
/// cold starts take one off the shelf for free; only when the pool is empty
/// does a cold start pay the serialized creation cost on the critical path.
namespace ilu {

class NetnsPool {
 public:
  struct Config {
    std::size_t target_size = 32;
    /// Refill resumes when available drops below this.
    std::size_t low_watermark = 8;
    LatencyModel create_latency = LatencyModel::lognormal(msecs(100), 0.20);
    /// Pool disabled: every acquire pays the creation cost (OpenWhisk-style
    /// behaviour; also the ablation baseline).
    bool enabled = true;
  };

  /// cb(netns_id, penalty): penalty is the critical-path delay the caller
  /// must absorb before the namespace is usable (0 when served from pool).
  using AcquireCb = std::function<void(std::uint64_t, Duration)>;

  NetnsPool(Runtime& rt, Rng rng, Config cfg);

  /// Get a namespace for a new container. Never fails; may be slow.
  void acquire(AcquireCb cb);

  /// Namespace destroyed with its container (not returned to the pool; the
  /// background refill replaces capacity).
  void release(std::uint64_t netns_id);

  std::size_t available() const { return available_; }
  std::uint64_t critical_path_creates() const { return on_demand_creates_; }
  std::uint64_t pooled_serves() const { return pooled_serves_; }

  /// Checkpointable state for speculative (Time Warp) execution. In-flight
  /// refill timers live in the runtime's event heap and are restored with
  /// it; `refill_scheduled` keeps the flag consistent with that heap.
  struct State {
    Rng rng;
    std::size_t available = 0;
    std::uint64_t next_id = 1;
    TimePoint lock_free_at{};
    bool refill_scheduled = false;
    std::uint64_t on_demand_creates = 0;
    std::uint64_t pooled_serves = 0;
  };
  State save_state() const {
    return State{rng_, available_, next_id_, lock_free_at_,
                 refill_scheduled_, on_demand_creates_, pooled_serves_};
  }
  void load_state(const State& s) {
    rng_ = s.rng;
    available_ = s.available;
    next_id_ = s.next_id;
    lock_free_at_ = s.lock_free_at;
    refill_scheduled_ = s.refill_scheduled;
    on_demand_creates_ = s.on_demand_creates;
    pooled_serves_ = s.pooled_serves;
  }

 private:
  /// Serialize a creation through the modeled global lock; returns the
  /// completion time of this creation.
  TimePoint serialized_create();
  void refill();

  Runtime& rt_;
  Rng rng_;
  Config cfg_;
  std::size_t available_ = 0;
  std::uint64_t next_id_ = 1;
  /// Global-lock busy-until horizon: creations queue behind it.
  TimePoint lock_free_at_{};
  bool refill_scheduled_ = false;
  std::uint64_t on_demand_creates_ = 0;
  std::uint64_t pooled_serves_ = 0;
};

}  // namespace ilu
