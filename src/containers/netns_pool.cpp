#include "containers/netns_pool.hpp"

#include <algorithm>

namespace ilu {

NetnsPool::NetnsPool(Runtime& rt, Rng rng, Config cfg)
    : rt_(rt), rng_(rng), cfg_(cfg) {
  if (cfg_.enabled && cfg_.target_size > 0) {
    // Pre-populate at startup: these creations happen before any traffic,
    // so they are modeled as instantaneous pool contents.
    available_ = cfg_.target_size;
  }
}

TimePoint NetnsPool::serialized_create() {
  // All namespace creations contend on one global lock: each takes the
  // sampled latency and they execute strictly one after another.
  TimePoint start = std::max(rt_.now(), lock_free_at_);
  lock_free_at_ = start + cfg_.create_latency.sample(rng_);
  return lock_free_at_;
}

void NetnsPool::refill() {
  refill_scheduled_ = false;
  if (!cfg_.enabled) return;
  if (available_ >= cfg_.target_size) return;
  TimePoint done = serialized_create();
  refill_scheduled_ = true;
  rt_.schedule(done - rt_.now(), [this] {
    ++available_;
    refill_scheduled_ = false;
    if (available_ < cfg_.target_size) refill();
  });
}

void NetnsPool::acquire(AcquireCb cb) {
  std::uint64_t id = next_id_++;
  if (cfg_.enabled && available_ > 0) {
    --available_;
    ++pooled_serves_;
    if (available_ < cfg_.low_watermark && !refill_scheduled_) refill();
    cb(id, Duration::zero());
    return;
  }
  // Critical-path creation behind the global lock.
  ++on_demand_creates_;
  TimePoint done = serialized_create();
  Duration penalty = done - rt_.now();
  cb(id, penalty);
  if (cfg_.enabled && !refill_scheduled_) refill();
}

void NetnsPool::release(std::uint64_t) {
  // Namespaces die with their container; the background refill keeps the
  // pool stocked, so nothing to do here. Kept for API symmetry and future
  // recycling experiments.
}

}  // namespace ilu
