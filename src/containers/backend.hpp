#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>

#include "common/types.hpp"
#include "containers/cpu_model.hpp"
#include "runtime/latency.hpp"
#include "runtime/runtime.hpp"

/// Container runtime backends (§4.4). The real system drives containerd (or
/// Docker) over RPC; this testbed models those libraries with latency
/// profiles calibrated from the paper's own measurements, plus the paper's
/// "null"/simulation backend where function execution becomes CPU-model
/// time. The worker is written against the small abstract API the paper
/// advocates: create / launch task (agent) / invoke / destroy.
namespace ilu {

/// Latency characteristics of a containerization library.
struct BackendLatencyProfile {
  std::string name;
  /// Create the sandbox (image mount, cgroups, runc) — excludes netns cost,
  /// which the netns pool accounts for separately.
  LatencyModel create;
  /// Start the in-container agent (python HTTP server boot).
  LatencyModel agent_start;
  /// Destroy the sandbox.
  LatencyModel destroy;

  /// Snapshot-based cold starts (§4.2 cites FaaSnap/REAP-style restore):
  /// after the first container of a function has been created, later cold
  /// starts restore from its snapshot instead of booting from the image.
  bool snapshot_cold_starts = false;
  LatencyModel snapshot_restore = LatencyModel::lognormal(msecs(60), 0.30);

  /// Paper-calibrated profiles: crun ~150 ms, containerd ~300 ms, Docker
  /// ~400 ms cold create; agent boot a few hundred ms on top.
  static BackendLatencyProfile containerd();
  static BackendLatencyProfile docker();
  static BackendLatencyProfile crun();
  /// The "null" backend: no sandbox work at all (pure in-situ simulation of
  /// the control plane).
  static BackendLatencyProfile null_backend();
};

/// Fault injection knobs for backend robustness testing.
struct BackendFaults {
  /// Probability a create fails (image pull error, runc failure).
  double create_failure_prob = 0.0;
  /// Probability an invocation fails inside the container (agent crash).
  double invoke_failure_prob = 0.0;
};

/// Abstract container backend, continuation-passing like the rest of the
/// control plane.
class ContainerBackend {
 public:
  using VoidCb = std::function<void(bool ok)>;
  /// actual elapsed execution duration (contention-inflated), ok flag.
  using InvokeCb = std::function<void(bool ok, Duration actual)>;

  virtual ~ContainerBackend() = default;

  virtual const std::string& name() const = 0;

  /// Create sandbox + agent for `profile`; cb(ok) after the modeled delay.
  virtual void create_container(const FunctionProfile& profile,
                                VoidCb cb) = 0;

  /// Execute `work_seconds` of function code at cgroup weight `cpus`.
  virtual void invoke(double work_seconds, double cpus, InvokeCb cb) = 0;

  /// Tear down a sandbox (runs off the critical path).
  virtual void destroy_container(VoidCb cb) = 0;

  /// Checkpoint hooks for speculative (Time Warp) execution: capture /
  /// reinstate whatever internal state the backend mutates per call (RNG
  /// stream, counters, snapshot registry). Backends with no rollback
  /// support return null and ignore load_state; in-flight latency timers
  /// are the runtime's problem, not the backend's.
  virtual std::shared_ptr<void> save_state() const { return nullptr; }
  virtual void load_state(const std::shared_ptr<void>& s) { (void)s; }
};

/// Discrete-event backend: create/destroy are latency samples, execution is
/// time on the shared CpuModel. With the null profile this is exactly the
/// paper's in-situ simulation; with the containerd/docker profiles it is
/// the calibrated stand-in for the real library.
class SimContainerBackend final : public ContainerBackend {
 public:
  SimContainerBackend(Runtime& rt, CpuModel& cpu, Rng rng,
                      BackendLatencyProfile profile,
                      BackendFaults faults = {});

  const std::string& name() const override { return profile_.name; }
  void create_container(const FunctionProfile& profile, VoidCb cb) override;
  void invoke(double work_seconds, double cpus, InvokeCb cb) override;
  void destroy_container(VoidCb cb) override;

  std::uint64_t creates() const { return creates_; }
  std::uint64_t destroys() const { return destroys_; }
  std::uint64_t create_failures() const { return create_failures_; }
  std::uint64_t snapshot_restores() const { return snapshot_restores_; }

  std::shared_ptr<void> save_state() const override;
  void load_state(const std::shared_ptr<void>& s) override;

 private:
  struct State;
  Runtime& rt_;
  CpuModel& cpu_;
  Rng rng_;
  BackendLatencyProfile profile_;
  BackendFaults faults_;
  std::uint64_t creates_ = 0;
  std::uint64_t destroys_ = 0;
  std::uint64_t create_failures_ = 0;
  std::uint64_t snapshot_restores_ = 0;
  /// Function names whose first container has been created (snapshot
  /// available from then on).
  std::unordered_set<std::string> snapshotted_;
};

}  // namespace ilu
