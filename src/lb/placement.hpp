#pragma once

#include <cstddef>
#include <vector>

/// Worker→shard placement policies for the sharded cluster (DESIGN.md §16).
///
/// Which shard hosts which worker never changes simulation *results* —
/// cross-shard messages are keyed by (deliver time, tag), shard-count- and
/// placement-independent by construction — but it decides how many LB↔worker
/// and forwarding hops cross a shard boundary, i.e. how much mailbox traffic
/// the synchronization engine must reconcile at every barrier (and, under
/// the optimistic engine, how many messages can become stragglers).
namespace ilu {

enum class Placement {
  /// worker w → shard w % N. Ignores topology; the historical default.
  kRoundRobin,
  /// Group workers that are adjacent on the CH-BL consistent-hash ring onto
  /// the same shard. CH-BL forwards an over-bound invocation clockwise to
  /// the next distinct worker, so ring neighbours absorb each other's
  /// spillover; co-locating them keeps most forwarded traffic — and the
  /// warm-locality reuse that follows it — on one shard.
  kLocality,
};

/// Name for logs/CSV ("roundrobin" | "locality").
const char* to_string(Placement p);

/// Compute the worker→shard map for `num_workers` workers over `num_shards`
/// shards. `vnodes_per_worker` parameterizes the placement ring for
/// kLocality (pass the LB's CH-BL vnode count so the placement ring is the
/// routing ring); it is ignored for kRoundRobin. Deterministic: a pure
/// function of its arguments.
std::vector<std::size_t> assign_shards(Placement p, std::size_t num_workers,
                                       std::size_t num_shards,
                                       std::size_t vnodes_per_worker);

}  // namespace ilu
