#include "lb/chbl.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ilu {

void ConsistentHashRing::add_worker(std::size_t worker_index) {
  for (std::size_t v = 0; v < vnodes_; ++v) {
    std::uint64_t point =
        splitmix64(hash_combine(splitmix64(worker_index + 1), v));
    ring_.emplace(point, worker_index);
  }
  ++workers_;
}

void ConsistentHashRing::remove_worker(std::size_t worker_index) {
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == worker_index) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
  if (workers_ > 0) --workers_;
}

std::vector<std::size_t> ConsistentHashRing::candidates(
    std::string_view key) const {
  std::vector<std::size_t> out;
  if (ring_.empty()) return out;
  out.reserve(workers_);
  // FNV-1a alone clusters similar short names (fn_1/fn_2/... differ only in
  // the low bits); finalize with splitmix64 to spread them over the ring.
  std::uint64_t h = splitmix64(fnv1a64(key));
  auto start = ring_.lower_bound(h);
  auto it = start;
  // Walk the whole ring once, collecting each distinct worker in order.
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < workers_;
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

ChblBalancer::ChblBalancer(std::size_t num_workers)
    : ChblBalancer(num_workers, Config{}) {}

ChblBalancer::ChblBalancer(std::size_t num_workers, Config cfg)
    : cfg_(cfg), ring_(cfg.vnodes_per_worker) {
  for (std::size_t i = 0; i < num_workers; ++i) ring_.add_worker(i);
}

std::size_t ChblBalancer::pick(std::string_view fn_key,
                               const std::vector<double>& loads) const {
  assert(!loads.empty());
  double avg = 0.0;
  for (double l : loads) avg += l;
  avg /= static_cast<double>(loads.size());
  double bound = cfg_.bound_factor * std::max(1.0, avg);

  auto cands = ring_.candidates(fn_key);
  last_hops_ = 0;
  for (std::size_t w : cands) {
    if (loads[w] <= bound) return w;
    ++last_hops_;
  }
  // Everyone over the bound: fall back to the least-loaded worker.
  std::size_t best = 0;
  double best_load = std::numeric_limits<double>::infinity();
  for (std::size_t w = 0; w < loads.size(); ++w) {
    if (loads[w] < best_load) {
      best_load = loads[w];
      best = w;
    }
  }
  return best;
}

}  // namespace ilu
