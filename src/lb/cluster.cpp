#include "lb/cluster.hpp"

#include <cassert>
#include <limits>

#include "obs/flight.hpp"

// ilu-lint: speculative-zone(flight, metrics) - the flight ring is mark()/rewind() bracketed per speculative window and register_snapshotters() checkpoints/restores the LB registry values

namespace ilu {

Cluster::Cluster(Runtime& rt, ClusterConfig cfg)
    : rt_(rt),
      cfg_(std::move(cfg)),
      rng_(cfg_.seed),
      chbl_(cfg_.num_workers, cfg_.chbl),
      routed_(cfg_.num_workers, 0),
      lb_view_(cfg_.num_workers, 0.0),
      worker_seq_(cfg_.num_workers, 0) {
  build_workers();
}

Cluster::Cluster(ShardedRuntime& srt, ClusterConfig cfg)
    : rt_(srt.shard(0)),
      srt_(&srt),
      cfg_(std::move(cfg)),
      rng_(cfg_.seed),
      chbl_(cfg_.num_workers, cfg_.chbl),
      routed_(cfg_.num_workers, 0),
      lb_view_(cfg_.num_workers, 0.0),
      worker_seq_(cfg_.num_workers, 0) {
  assert(srt.lookahead() <= cfg_.rpc.lower_bound() &&
         "cross-shard lookahead must not exceed the RPC latency floor");
  build_workers();
}

void Cluster::build_workers() {
  const std::size_t num_shards = srt_ ? srt_->shards() : 1;
  // Worker → shard map per the configured placement policy (identity on
  // the serial path). Placement only re-partitions execution across
  // threads; with kLocality, CH-BL ring neighbours — the workers most
  // likely to absorb each other's forwarded invocations — share a shard.
  const std::vector<std::size_t> shard_of = assign_shards(
      cfg_.placement, cfg_.num_workers, num_shards, cfg_.chbl.vnodes_per_worker);
  for (std::size_t i = 0; i < cfg_.num_workers; ++i) {
    WorkerConfig wc = cfg_.worker;
    wc.name = "worker" + std::to_string(i);
    wc.seed = cfg_.worker.seed + i * 7919;
    const std::size_t shard = shard_of[i];
    Runtime& wrt = srt_ ? static_cast<Runtime&>(srt_->shard(shard)) : rt_;
    worker_shard_.push_back(shard);
    workers_.push_back(std::make_unique<Worker>(wrt, wc));
    dispatch_counters_.push_back(metrics_.counter("lb.dispatch." + wc.name));
  }
  forwarded_counter_ = metrics_.counter("lb.forwarded");
  register_snapshotters();
}

void Cluster::register_snapshotters() {
  // The balancer's routing state lives on the LB's loop (shard 0 when
  // sharded). fn_keys_ and the worker roster are wiring-time and excluded.
  struct LbState {
    Rng rng;
    std::size_t rr_next = 0;
    std::vector<std::uint64_t> routed;
    std::uint64_t forwarded = 0;
    std::vector<double> lb_view;
    std::uint64_t lb_seq = 0;
    MetricsRegistry::Values metrics;
  };
  rt_.add_snapshotter(Snapshotter{
      [this]() -> std::shared_ptr<void> {
        auto s = std::make_shared<LbState>();
        s->rng = rng_;
        s->rr_next = rr_next_;
        s->routed = routed_;
        s->forwarded = forwarded_;
        s->lb_view = lb_view_;
        s->lb_seq = lb_seq_;
        s->metrics = metrics_.save_values();
        return s;
      },
      [this](const std::shared_ptr<void>& blob) {
        const auto& s = *static_cast<const LbState*>(blob.get());
        rng_ = s.rng;
        rr_next_ = s.rr_next;
        routed_ = s.routed;
        forwarded_ = s.forwarded;
        lb_view_ = s.lb_view;
        lb_seq_ = s.lb_seq;
        metrics_.restore_values(s.metrics);
      }});
  // worker_seq_[w] is only ever written on worker w's loop, so each shard
  // checkpoints exactly its own partition of the array.
  const std::size_t num_shards = srt_ ? srt_->shards() : 1;
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    std::vector<std::size_t> mine;
    for (std::size_t w = 0; w < worker_shard_.size(); ++w) {
      if (worker_shard_[w] == shard) mine.push_back(w);
    }
    if (mine.empty()) continue;
    Runtime& srt = srt_ ? static_cast<Runtime&>(srt_->shard(shard)) : rt_;
    srt.add_snapshotter(Snapshotter{
        [this, mine]() -> std::shared_ptr<void> {
          auto s = std::make_shared<std::vector<std::uint64_t>>();
          s->reserve(mine.size());
          for (std::size_t w : mine) s->push_back(worker_seq_[w]);
          return s;
        },
        [this, mine](const std::shared_ptr<void>& blob) {
          const auto& seqs =
              *static_cast<const std::vector<std::uint64_t>*>(blob.get());
          for (std::size_t i = 0; i < mine.size(); ++i) {
            worker_seq_[mine[i]] = seqs[i];
          }
        }});
  }
}

void Cluster::start() {
  for (auto& w : workers_) w->start();
}

void Cluster::shutdown() {
  for (auto& w : workers_) w->shutdown();
}

FunctionId Cluster::register_function(const FunctionProfile& profile) {
  FunctionId id = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    FunctionId got = workers_[i]->register_function(profile);
    assert((i == 0 || got == id) &&
           "workers disagree on a function id: was a function registered "
           "directly on one worker as well as through the cluster?");
    id = got;
  }
  fn_keys_.push_back(profile.name + "#" + std::to_string(fn_keys_.size()));
  return id;
}

std::size_t Cluster::route(FunctionId fn) {
  switch (cfg_.lb) {
    case LbPolicy::RoundRobin: {
      std::size_t w = rr_next_;
      rr_next_ = (rr_next_ + 1) % workers_.size();
      return w;
    }
    case LbPolicy::LeastLoaded: {
      std::size_t best = 0;
      double best_load = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (lb_view_[i] < best_load) {
          best_load = lb_view_[i];
          best = i;
        }
      }
      return best;
    }
    case LbPolicy::ChBl: {
      std::size_t w = chbl_.pick(fn_keys_.at(fn), lb_view_);
      if (chbl_.last_hops() > 0) {
        ++forwarded_;
        forwarded_counter_->inc();
      }
      return w;
    }
  }
  return 0;
}

std::uint64_t Cluster::next_tag(std::size_t sender_id,
                                std::uint64_t& seq) const {
  // (sequence, sender) packed so numeric order matches lexicographic order.
  return seq++ * (workers_.size() + 1) + sender_id;
}

void Cluster::send_from_lb(std::size_t w, TimePoint at, Task fn) {
  const std::uint64_t tag = next_tag(0, lb_seq_);
  if (srt_) {
    srt_->send(0, worker_shard_[w], at, tag, std::move(fn));
  } else {
    rt_.schedule(at - rt_.now(), std::move(fn));
  }
}

void Cluster::send_to_lb(std::size_t w, TimePoint at, Task fn) {
  const std::uint64_t tag = next_tag(w + 1, worker_seq_[w]);
  if (srt_) {
    srt_->send(worker_shard_[w], 0, at, tag, std::move(fn));
  } else {
    rt_.schedule(at - rt_.now(), std::move(fn));
  }
}

void Cluster::invoke(FunctionId fn, Worker::InvokeCb cb) {
  std::size_t w = route(fn);
  ++routed_[w];
  flight::record(rt_.now(), flight::Ev::kLbRoute,
                 static_cast<std::uint32_t>(w));
  dispatch_counters_[w]->inc();
  lb_view_[w] += 1.0;
  // Model the LB <-> worker RPC hop both ways. Both samples are drawn here,
  // at route time, so the balancer RNG's draw order is a pure function of
  // the invocation sequence — never of completion interleaving across
  // workers (which would differ run to run under sharding).
  Duration out_hop = cfg_.rpc.sample(rng_);
  Duration back_hop = cfg_.rpc.sample(rng_);
  send_from_lb(
      w, rt_.now() + out_hop,
      Task([this, w, fn, back_hop, cb = std::move(cb)]() mutable {
        workers_[w]->invoke(
            fn, [this, w, back_hop, cb = std::move(cb)](const InvokeResult& r) {
              // Runs on worker w's event loop; hop back to the LB.
              TimePoint at = workers_[w]->runtime().now() + back_hop;
              send_to_lb(w, at, Task([this, w, r, cb]() {
                           lb_view_[w] -= 1.0;
                           cb(r);
                         }));
            });
      }));
}

}  // namespace ilu
