#include "lb/cluster.hpp"

#include <limits>

namespace ilu {

Cluster::Cluster(Runtime& rt, ClusterConfig cfg)
    : rt_(rt),
      cfg_(cfg),
      rng_(cfg.seed),
      chbl_(cfg.num_workers, cfg.chbl),
      routed_(cfg.num_workers, 0) {
  for (std::size_t i = 0; i < cfg_.num_workers; ++i) {
    WorkerConfig wc = cfg_.worker;
    wc.name = "worker" + std::to_string(i);
    wc.seed = cfg_.worker.seed + i * 7919;
    workers_.push_back(std::make_unique<Worker>(rt_, wc));
    dispatch_counters_.push_back(
        metrics_.counter("lb.dispatch." + wc.name));
  }
  forwarded_counter_ = metrics_.counter("lb.forwarded");
}

void Cluster::start() {
  for (auto& w : workers_) w->start();
}

void Cluster::shutdown() {
  for (auto& w : workers_) w->shutdown();
}

FunctionId Cluster::register_function(const FunctionProfile& profile) {
  FunctionId id = 0;
  for (auto& w : workers_) id = w->register_function(profile);
  fn_keys_.push_back(profile.name + "#" + std::to_string(fn_keys_.size()));
  return id;
}

std::size_t Cluster::route(FunctionId fn) {
  switch (cfg_.lb) {
    case LbPolicy::RoundRobin: {
      std::size_t w = rr_next_;
      rr_next_ = (rr_next_ + 1) % workers_.size();
      return w;
    }
    case LbPolicy::LeastLoaded: {
      std::size_t best = 0;
      double best_load = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        auto s = workers_[i]->status();
        double load = static_cast<double>(s.queue_len + s.running);
        if (load < best_load) {
          best_load = load;
          best = i;
        }
      }
      return best;
    }
    case LbPolicy::ChBl: {
      std::vector<double> loads(workers_.size());
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        auto s = workers_[i]->status();
        loads[i] = static_cast<double>(s.queue_len + s.running);
      }
      std::size_t w = chbl_.pick(fn_keys_.at(fn), loads);
      if (chbl_.last_hops() > 0) {
        ++forwarded_;
        forwarded_counter_->inc();
      }
      return w;
    }
  }
  return 0;
}

void Cluster::invoke(FunctionId fn, Worker::InvokeCb cb) {
  std::size_t w = route(fn);
  ++routed_[w];
  dispatch_counters_[w]->inc();
  // Model the LB -> worker RPC hop both ways.
  Duration out_hop = cfg_.rpc.sample(rng_);
  rt_.schedule(out_hop, [this, w, fn, cb = std::move(cb)]() mutable {
    workers_[w]->invoke(fn, [this, cb = std::move(cb)](const InvokeResult& r) {
      Duration back_hop = cfg_.rpc.sample(rng_);
      rt_.schedule(back_hop, [cb, r] { cb(r); });
    });
  });
}

}  // namespace ilu
