#include "lb/placement.hpp"

#include <cassert>

#include "lb/chbl.hpp"

namespace ilu {

const char* to_string(Placement p) {
  switch (p) {
    case Placement::kRoundRobin: return "roundrobin";
    case Placement::kLocality: return "locality";
  }
  return "?";
}

std::vector<std::size_t> assign_shards(Placement p, std::size_t num_workers,
                                       std::size_t num_shards,
                                       std::size_t vnodes_per_worker) {
  assert(num_shards >= 1);
  std::vector<std::size_t> out(num_workers, 0);
  if (num_shards <= 1) return out;
  switch (p) {
    case Placement::kRoundRobin:
      for (std::size_t w = 0; w < num_workers; ++w) out[w] = w % num_shards;
      break;
    case Placement::kLocality: {
      // Rebuild the LB's consistent-hash ring (a pure function of worker
      // count and vnode count) and walk it once in point order, recording
      // each worker at its first appearance. That yields a ring-adjacency
      // ordering of the workers: consecutive entries are the workers most
      // likely to absorb each other's CH-BL spillover. Cutting the ordering
      // into num_shards contiguous, equal-size groups then keeps forwarding
      // neighbourhoods on one shard.
      ConsistentHashRing ring(vnodes_per_worker == 0 ? 1 : vnodes_per_worker);
      for (std::size_t w = 0; w < num_workers; ++w) ring.add_worker(w);
      std::vector<std::size_t> order;
      order.reserve(num_workers);
      std::vector<bool> seen(num_workers, false);
      for (const auto& [point, w] : ring.points()) {
        if (!seen[w]) {
          seen[w] = true;
          order.push_back(w);
        }
      }
      // Degenerate rings (shouldn't happen: add_worker always inserts
      // vnodes) would leave workers unplaced; append them in index order.
      for (std::size_t w = 0; w < num_workers; ++w) {
        if (!seen[w]) order.push_back(w);
      }
      const std::size_t group = (num_workers + num_shards - 1) / num_shards;
      for (std::size_t i = 0; i < order.size(); ++i) {
        out[order[i]] = group == 0 ? 0 : i / group;
      }
      break;
    }
  }
  return out;
}

}  // namespace ilu
