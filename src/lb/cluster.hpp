#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/worker.hpp"
#include "lb/chbl.hpp"
#include "obs/metrics.hpp"
#include "runtime/latency.hpp"

/// A cluster of Ilúvatar workers behind a stateless load balancer (§4.1).
/// The balancer reads each worker's status (queue length + running count —
/// the paper's low-staleness load signal) and routes with CH-BL; RR and
/// least-loaded are included for comparison experiments.
namespace ilu {

enum class LbPolicy { ChBl, RoundRobin, LeastLoaded };

struct ClusterConfig {
  std::size_t num_workers = 4;
  WorkerConfig worker{};
  LbPolicy lb = LbPolicy::ChBl;
  ChblBalancer::Config chbl{};
  /// Network hop between load balancer and worker.
  LatencyModel rpc = LatencyModel::lognormal(usecs(250), 0.3);
  std::uint64_t seed = 21;
};

class Cluster {
 public:
  Cluster(Runtime& rt, ClusterConfig cfg);

  void start();
  void shutdown();

  /// Registers the function on every worker (functions can run anywhere).
  FunctionId register_function(const FunctionProfile& profile);

  /// Route and invoke; cb fires with the worker's result.
  void invoke(FunctionId fn, Worker::InvokeCb cb);

  std::size_t num_workers() const { return workers_.size(); }
  Worker& worker(std::size_t i) { return *workers_.at(i); }

  /// Invocations routed to each worker (locality / balance metrics).
  const std::vector<std::uint64_t>& routed() const { return routed_; }
  /// Invocations that were not routed to their CH-BL home worker.
  std::uint64_t forwarded() const { return forwarded_; }

  /// Load-balancer metrics: per-worker dispatch counters
  /// ("lb.dispatch.<worker>") and the CH-BL forwarding counter
  /// ("lb.forwarded"). Per-worker control-plane metrics live in each
  /// worker's own registry (worker(i).metrics()).
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  std::size_t route(FunctionId fn);

  Runtime& rt_;
  ClusterConfig cfg_;
  Rng rng_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::string> fn_keys_;
  ChblBalancer chbl_;
  std::size_t rr_next_ = 0;
  std::vector<std::uint64_t> routed_;
  std::uint64_t forwarded_ = 0;
  MetricsRegistry metrics_;
  std::vector<Counter*> dispatch_counters_;
  Counter* forwarded_counter_ = nullptr;
};

}  // namespace ilu
