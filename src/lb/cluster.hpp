#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/worker.hpp"
#include "lb/chbl.hpp"
#include "lb/placement.hpp"
#include "obs/metrics.hpp"
#include "runtime/latency.hpp"
#include "runtime/sharded_runtime.hpp"

/// A cluster of Ilúvatar workers behind a stateless load balancer (§4.1).
/// The balancer routes with CH-BL (RR and least-loaded are included for
/// comparison experiments) over its *local* view of worker load: the number
/// of invocations it has dispatched to each worker whose results have not
/// yet come back. The real control plane cannot read worker memory
/// synchronously either — it works from low-staleness signals — and the
/// local view is what lets the sharded simulation route without a
/// cross-thread read.
///
/// Two execution modes share all of the logic above:
///  * single event loop (`Cluster(Runtime&, ...)`): LB and workers all on
///    one runtime, RPC hops are plain timers;
///  * sharded (`Cluster(ShardedRuntime&, ...)`): the LB and the driver live
///    on shard 0, worker w lives on the shard cfg.placement assigns it
///    (lb/placement.hpp: round-robin striping, or CH-BL-ring locality
///    grouping so workers that forward to each other share a shard), and
///    every LB→worker / worker→LB hop is a mailbox message. The RPC latency
///    floor (cfg.rpc.lower_bound(), strictly positive) is the conservative
///    lookahead. With a fixed seed the sharded run is event-for-event
///    identical to the single-shard run at any shard count, under either
///    placement and either sync strategy: both RPC hop samples are drawn on
///    the LB at route time (so the balancer RNG's draw order never depends
///    on worker interleaving), and messages are keyed by (deliver time,
///    sender id, per-sender sequence) — shard-count independent by
///    construction. When the sharded runtime can speculate
///    (SyncStrategy::kOptimistic / kAuto), every worker registers a state
///    Snapshotter on its shard and the cluster registers its own LB-state
///    snapshotters, so a rollback rewinds the whole control plane, not just
///    the event heaps.
namespace ilu {

enum class LbPolicy { ChBl, RoundRobin, LeastLoaded };

struct ClusterConfig {
  std::size_t num_workers = 4;
  WorkerConfig worker{};
  LbPolicy lb = LbPolicy::ChBl;
  ChblBalancer::Config chbl{};
  /// Network hop between load balancer and worker: a hard floor
  /// (serialization + NIC + switch minimum, also the sharded lookahead)
  /// plus lognormal jitter; median ≈ 250 µs as in the paper's LB studies.
  LatencyModel rpc =
      LatencyModel::shifted(usecs(200), LatencyModel::lognormal(usecs(50), 0.4));
  /// Worker→shard placement (sharded ctor only; see lb/placement.hpp).
  /// kRoundRobin stripes worker w onto shard w % N; kLocality groups CH-BL
  /// ring neighbours so forwarded invocations tend to stay intra-shard.
  /// Placement never changes simulation results, only cross-shard traffic.
  Placement placement = Placement::kRoundRobin;
  std::uint64_t seed = 21;
};

class Cluster {
 public:
  /// Single-event-loop cluster (the serial path).
  Cluster(Runtime& rt, ClusterConfig cfg);
  /// Sharded cluster: LB on shard 0, worker w on the shard chosen by
  /// cfg.placement (round-robin striping or CH-BL locality grouping — see
  /// lb/placement.hpp; shard_of() reports the result). srt.lookahead() must
  /// not exceed cfg.rpc.lower_bound().
  Cluster(ShardedRuntime& srt, ClusterConfig cfg);

  void start();
  void shutdown();

  /// Registers the function on every worker (functions can run anywhere).
  /// All workers must assign the same id; disagreement is a wiring bug
  /// (e.g. registering through a worker directly as well as the cluster).
  FunctionId register_function(const FunctionProfile& profile);

  /// Route and invoke; cb fires with the worker's result, on the LB's
  /// event loop (shard 0 in sharded mode).
  void invoke(FunctionId fn, Worker::InvokeCb cb);

  std::size_t num_workers() const { return workers_.size(); }
  Worker& worker(std::size_t i) { return *workers_.at(i); }
  /// Which shard hosts worker i (always 0 on the serial path).
  std::size_t shard_of(std::size_t i) const { return worker_shard_.at(i); }

  /// Invocations routed to each worker (locality / balance metrics).
  const std::vector<std::uint64_t>& routed() const { return routed_; }
  /// Invocations that were not routed to their CH-BL home worker.
  std::uint64_t forwarded() const { return forwarded_; }

  /// The LB's local load view: dispatched-but-not-returned per worker.
  const std::vector<double>& load_view() const { return lb_view_; }

  /// Load-balancer metrics: per-worker dispatch counters
  /// ("lb.dispatch.<worker>") and the CH-BL forwarding counter
  /// ("lb.forwarded"). Per-worker control-plane metrics live in each
  /// worker's own registry (worker(i).metrics()).
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  void build_workers();
  /// Register the LB's own mutable state (and the per-shard worker_seq_
  /// partitions) with the runtimes that host it, so speculative shard
  /// execution can roll the balancer back along with the workers. A no-op
  /// on runtimes without snapshot support.
  void register_snapshotters();
  std::size_t route(FunctionId fn);
  /// Message tags: (per-sender sequence, sender) lexicographic, encoded so
  /// numeric order == lexicographic order over the fixed sender universe
  /// (LB = 0, worker w = w + 1). Identical at any shard count.
  std::uint64_t next_tag(std::size_t sender_id, std::uint64_t& seq) const;
  /// Deliver `fn` at absolute time `at` on worker w's event loop (or the
  /// LB's, for w == kLbDestination). A mailbox send when sharded, a plain
  /// timer otherwise.
  static constexpr std::size_t kLb = static_cast<std::size_t>(-1);
  void send_from_lb(std::size_t w, TimePoint at, Task fn);
  void send_to_lb(std::size_t w, TimePoint at, Task fn);

  Runtime& rt_;  ///< The LB's event loop (shard 0 when sharded).
  ShardedRuntime* srt_ = nullptr;
  ClusterConfig cfg_;
  Rng rng_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::size_t> worker_shard_;
  std::vector<std::string> fn_keys_;
  ChblBalancer chbl_;
  std::size_t rr_next_ = 0;
  std::vector<std::uint64_t> routed_;
  std::uint64_t forwarded_ = 0;
  /// LB-local outstanding-invocation count per worker (the routing load
  /// signal). Lives here, not allocated per route call.
  std::vector<double> lb_view_;
  /// Per-sender message sequence numbers. lb_seq_ is only touched on the
  /// LB's loop; worker_seq_[w] only on worker w's loop.
  std::uint64_t lb_seq_ = 0;
  std::vector<std::uint64_t> worker_seq_;
  MetricsRegistry metrics_;
  std::vector<Counter*> dispatch_counters_;
  Counter* forwarded_counter_ = nullptr;
};

}  // namespace ilu
