#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/hash.hpp"

/// Consistent hashing with bounded loads (CH-BL), the locality-aware,
/// stateless load-balancing scheme the paper adopts (§4.1): a function
/// hashes to a home worker so repeat invocations hit its warm containers,
/// but when that worker's load exceeds `bound x cluster average`, the
/// invocation is forwarded clockwise to the next worker under the bound.
namespace ilu {

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(std::size_t vnodes_per_worker = 64)
      : vnodes_(vnodes_per_worker) {}

  void add_worker(std::size_t worker_index);
  void remove_worker(std::size_t worker_index);
  std::size_t num_workers() const { return workers_; }

  /// Workers in ring order starting at the hash of `key`, each distinct
  /// worker listed once.
  std::vector<std::size_t> candidates(std::string_view key) const;

  /// The raw ring: point → worker index, ascending by point. Exposed for
  /// topology consumers (lb/placement.cpp groups ring-adjacent workers onto
  /// the same shard); routing goes through candidates().
  const std::map<std::uint64_t, std::size_t>& points() const { return ring_; }

 private:
  std::size_t vnodes_;
  std::size_t workers_ = 0;
  /// point on ring -> worker index
  std::map<std::uint64_t, std::size_t> ring_;
};

/// The bounded-loads walk. Loads are supplied by the caller (queue length +
/// running count per the paper's "true load" signal).
class ChblBalancer {
 public:
  struct Config {
    /// Forward when load > bound_factor * max(1, average load).
    double bound_factor = 2.0;
    std::size_t vnodes_per_worker = 64;
  };

  explicit ChblBalancer(std::size_t num_workers);
  ChblBalancer(std::size_t num_workers, Config cfg);

  /// Pick a worker for `fn_key` given current per-worker loads. Returns the
  /// first candidate within the bound, or the least-loaded worker if all
  /// exceed it.
  std::size_t pick(std::string_view fn_key,
                   const std::vector<double>& loads) const;

  /// How many forwarding hops the last pick made (for locality metrics).
  std::size_t last_hops() const { return last_hops_; }

 private:
  Config cfg_;
  ConsistentHashRing ring_;
  mutable std::size_t last_hops_ = 0;
};

}  // namespace ilu
