#include "keepalive/provisioner.hpp"

#include <algorithm>
#include <cmath>

#include "keepalive/policy.hpp"

namespace ilu {

Provisioner::Provisioner(CapacityTarget& target, ProvisionerConfig cfg)
    : target_(target),
      cfg_(cfg),
      misses_(cfg.window),
      next_eval_(cfg.interval) {
  target_.set_capacity_mb(cfg_.initial_capacity_mb);
}

Provisioner::Provisioner(KeepAliveCache& cache, ProvisionerConfig cfg)
    : owned_adapter_(std::make_unique<CapacityOf<KeepAliveCache>>(cache)),
      target_(*owned_adapter_),
      cfg_(cfg),
      misses_(cfg.window),
      next_eval_(cfg.interval) {
  target_.set_capacity_mb(cfg_.initial_capacity_mb);
}

void Provisioner::record_miss(TimePoint t) { misses_.record(t); }

void Provisioner::maybe_adjust(TimePoint now) {
  while (next_eval_ <= now) {
    TimePoint at = next_eval_;
    next_eval_ += cfg_.interval;
    double miss_rate = misses_.rate_per_sec(at);
    double rel_error =
        (miss_rate - cfg_.target_miss_rate) / cfg_.target_miss_rate;
    ProvisionSample s;
    s.at = at;
    s.miss_rate = miss_rate;
    s.capacity_mb = target_.capacity_mb();
    if (std::abs(rel_error) > cfg_.error_tolerance) {
      // Too many misses -> grow the cache; too few -> reclaim memory.
      double factor = 1.0 + cfg_.gain * std::clamp(rel_error, -2.0, 2.0);
      auto new_cap = static_cast<std::uint64_t>(
          static_cast<double>(target_.capacity_mb()) * factor);
      new_cap = std::clamp(new_cap, cfg_.min_capacity_mb,
                           cfg_.max_capacity_mb);
      if (new_cap != target_.capacity_mb()) {
        target_.set_capacity_mb(new_cap);
        s.resized = true;
        s.capacity_mb = new_cap;
      }
    }
    samples_.push_back(s);
  }
}

double Provisioner::average_capacity_mb() const {
  if (samples_.empty()) return static_cast<double>(target_.capacity_mb());
  double sum = 0.0;
  for (const auto& s : samples_) sum += static_cast<double>(s.capacity_mb);
  return sum / static_cast<double>(samples_.size());
}

DynamicProvisioningResult run_dynamic_provisioning(
    const Trace& trace, const std::string& policy_name,
    ProvisionerConfig cfg) {
  auto policy = make_policy(policy_name);
  KeepAliveCache::Config cache_cfg;
  cache_cfg.capacity_mb = cfg.initial_capacity_mb;
  KeepAliveCache cache(*policy, cache_cfg, trace.functions);
  Provisioner prov(cache, cfg);

  for (const auto& e : trace.events) {
    prov.maybe_adjust(e.at);
    auto out = cache.on_invocation(e.fn, e.at);
    // Drops count as misses too: a request a starved cache turns away must
    // push the controller toward growing, not read as "no cold starts".
    if (!out.warm) prov.record_miss(e.at);
  }
  if (trace.duration > Duration::zero()) {
    prov.maybe_adjust(trace.duration);
    cache.advance_to(trace.duration);
  }

  DynamicProvisioningResult r;
  r.timeseries = prov.samples();
  r.stats = cache.stats();
  r.average_capacity_mb = prov.average_capacity_mb();
  r.static_capacity_mb = cfg.initial_capacity_mb;
  return r;
}

}  // namespace ilu
