#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/types.hpp"
#include "util/stats.hpp"

/// Keep-alive policies: the paper's central insight is that container
/// keep-alive is isomorphic to object caching, so eviction can use classic
/// caching algorithms parameterized by each function's (frequency,
/// recency, initialization cost, memory size).
namespace ilu {

/// A warm container as seen by a keep-alive policy. The same record backs
/// both the lean trace simulator (keepalive/simulator.hpp) and the full
/// control-plane container pool (keepalive/pool.hpp).
struct CacheEntry {
  FunctionId fn = 0;
  std::uint32_t mem_mb = 0;
  /// Miss cost: the initialization overhead a cold start would pay.
  Duration init_time{};
  TimePoint created{};
  TimePoint last_used{};
  /// Number of invocations served by this container.
  std::uint64_t uses = 0;
  /// Policy scratch value (Greedy-Dual / Landlord credit).
  double priority = 0.0;
};

/// Interface for keep-alive (container cache) policies.
///
/// Contract mirrors the Rust trait in the paper's implementation: policies
/// are pure priority computations plus optional TTL expiry and prewarm
/// prediction, which is why a new policy is only a few dozen lines (§6.1).
class KeepAlivePolicy {
 public:
  virtual ~KeepAlivePolicy() = default;

  virtual std::string name() const = 0;

  /// Called on insertion (after a cold start) and on every warm hit, after
  /// `uses`/`last_used` have been updated. Policies update entry scratch
  /// state (e.g. the Greedy-Dual priority).
  virtual void on_access(CacheEntry& entry, TimePoint now) = 0;

  /// Eviction order among idle containers: the entry with the *lowest* rank
  /// is evicted first. Ranks are only consulted while an entry is idle, and
  /// entries are re-ranked on access, so rank must not depend on wall time
  /// beyond fields frozen at last access.
  virtual double eviction_rank(const CacheEntry& entry) const = 0;

  /// Called when an entry is evicted (Greedy-Dual aging updates L here).
  virtual void on_evict(const CacheEntry& entry) { (void)entry; }

  /// For non-work-conserving policies (TTL, HIST): absolute time at which
  /// this idle entry should be removed even if memory is not needed.
  virtual std::optional<TimePoint> expires_at(const CacheEntry& entry) const {
    (void)entry;
    return std::nullopt;
  }

  /// Per-function arrival notification, independent of cache contents.
  /// HIST uses this to maintain inter-arrival-time histograms.
  virtual void on_invocation(FunctionId fn, TimePoint now) {
    (void)fn;
    (void)now;
  }

  /// For prefetching policies: when should a container for `fn` be
  /// pre-warmed, given no warm container currently exists?
  virtual std::optional<TimePoint> prewarm_at(FunctionId fn,
                                              TimePoint now) const {
    (void)fn;
    (void)now;
    return std::nullopt;
  }

  /// Checkpoint hooks for speculative (Time Warp) execution: capture /
  /// reinstate mutable state the policy keeps *outside* the cache entries
  /// (per-entry scratch lives in the container records, which the pool
  /// checkpoints itself). Stateless policies keep the defaults.
  virtual std::shared_ptr<void> save_state() const { return nullptr; }
  virtual void load_state(const std::shared_ptr<void>& s) { (void)s; }
};

/// OpenWhisk's default: keep each container for a fixed TTL after last use
/// (10 minutes by default); under memory pressure evict in LRU order.
class TtlPolicy final : public KeepAlivePolicy {
 public:
  explicit TtlPolicy(Duration ttl = mins(10)) : ttl_(ttl) {}
  std::string name() const override { return "TTL"; }
  void on_access(CacheEntry&, TimePoint) override {}
  double eviction_rank(const CacheEntry& e) const override {
    return static_cast<double>(e.last_used.count());
  }
  std::optional<TimePoint> expires_at(const CacheEntry& e) const override {
    return e.last_used + ttl_;
  }

 private:
  Duration ttl_;
};

/// Least Recently Used (work-conserving).
class LruPolicy final : public KeepAlivePolicy {
 public:
  std::string name() const override { return "LRU"; }
  void on_access(CacheEntry&, TimePoint) override {}
  double eviction_rank(const CacheEntry& e) const override {
    return static_cast<double>(e.last_used.count());
  }
};

/// Least Frequently Used (the paper's FREQ variant).
class LfuPolicy final : public KeepAlivePolicy {
 public:
  std::string name() const override { return "FREQ"; }
  void on_access(CacheEntry&, TimePoint) override {}
  double eviction_rank(const CacheEntry& e) const override {
    return static_cast<double>(e.uses);
  }
};

/// Greedy-Dual-Size-Frequency (the paper's GD policy, §"subsec:gdsf"):
/// priority = L + frequency x init_cost / memory_size, where L ages the
/// cache by rising to each evicted entry's priority. Balances the four-way
/// tradeoff between recency (via L), frequency, miss cost, and size.
class GreedyDualPolicy final : public KeepAlivePolicy {
 public:
  std::string name() const override { return "GD"; }
  void on_access(CacheEntry& e, TimePoint) override {
    e.priority = l_ + static_cast<double>(e.uses) * cost_over_size(e);
  }
  double eviction_rank(const CacheEntry& e) const override {
    return e.priority;
  }
  void on_evict(const CacheEntry& e) override {
    if (e.priority > l_) l_ = e.priority;
  }
  double aging_factor() const { return l_; }

  std::shared_ptr<void> save_state() const override {
    return std::make_shared<double>(l_);
  }
  void load_state(const std::shared_ptr<void>& s) override {
    l_ = *static_cast<const double*>(s.get());
  }

 private:
  static double cost_over_size(const CacheEntry& e) {
    return to_ms(e.init_time) / std::max(1.0, static_cast<double>(e.mem_mb));
  }
  double l_ = 0.0;
};

/// Landlord (the paper's LND variant): like Greedy-Dual but credit is reset
/// on hit without the frequency multiplier.
class LandlordPolicy final : public KeepAlivePolicy {
 public:
  std::string name() const override { return "LND"; }
  void on_access(CacheEntry& e, TimePoint) override {
    e.priority =
        l_ + to_ms(e.init_time) / std::max(1.0, static_cast<double>(e.mem_mb));
  }
  double eviction_rank(const CacheEntry& e) const override {
    return e.priority;
  }
  void on_evict(const CacheEntry& e) override {
    if (e.priority > l_) l_ = e.priority;
  }

  std::shared_ptr<void> save_state() const override {
    return std::make_shared<double>(l_);
  }
  void load_state(const std::shared_ptr<void>& s) override {
    l_ = *static_cast<const double*>(s.get());
  }

 private:
  double l_ = 0.0;
};

/// The histogram-based keep-alive policy of Shahrad et al. (the paper's
/// HIST comparison, reproduced "best-effort" exactly as §7.1 describes):
///  - per-function IAT histogram in minute buckets up to 4 hours,
///  - coefficient of variation via Welford's online algorithm,
///  - predictable functions (CoV <= 2): custom keep-alive window derived
///    from the histogram tail, pre-warming near the predicted next arrival,
///  - unpredictable functions: a generic 2-hour TTL,
///  - the ARIMA path for >4h IATs is intentionally not implemented (the
///    paper skips it too; ~0.56% of invocations).
class HistPolicy final : public KeepAlivePolicy {
 public:
  struct Params {
    Duration bucket = mins(1);
    std::size_t num_buckets = 241;  // 4 hours + overflow
    double cov_threshold = 2.0;
    double head_quantile = 0.05;
    double tail_quantile = 0.99;
    Duration generic_ttl = mins(120);
    /// Below this many observed IATs the generic TTL applies.
    std::uint64_t min_samples = 3;
    /// Linger after last use before eager eviction of predictable functions
    /// whose next arrival is far away.
    Duration linger = mins(1);
  };

  HistPolicy();
  explicit HistPolicy(Params p);
  std::string name() const override { return "HIST"; }
  void on_access(CacheEntry&, TimePoint) override {}
  double eviction_rank(const CacheEntry& e) const override;
  std::optional<TimePoint> expires_at(const CacheEntry& e) const override;
  void on_invocation(FunctionId fn, TimePoint now) override;
  std::optional<TimePoint> prewarm_at(FunctionId fn,
                                      TimePoint now) const override;

  /// Test/introspection hooks.
  bool predictable(FunctionId fn) const;
  double cov(FunctionId fn) const;

  std::shared_ptr<void> save_state() const override {
    return std::make_shared<decltype(hists_)>(hists_);
  }
  void load_state(const std::shared_ptr<void>& s) override {
    hists_ = *static_cast<const decltype(hists_)*>(s.get());
  }

 private:
  struct FnHist {
    BucketHistogram iat;
    Welford stats;
    TimePoint last_invocation{-1};
    explicit FnHist(const Params& p)
        : iat(to_sec(p.bucket), p.num_buckets) {}
  };

  const FnHist* find(FunctionId fn) const;
  /// Keep-alive window after the last invocation for this function.
  Duration window_for(FunctionId fn) const;
  /// Predicted time of next invocation.
  std::optional<TimePoint> predicted_next(FunctionId fn) const;

  Params params_;
  std::unordered_map<FunctionId, FnHist> hists_;
};

/// Named construction for config files and benchmark sweeps.
/// Names: TTL, LRU, FREQ, GD, LND, HIST. Throws std::invalid_argument.
std::unique_ptr<KeepAlivePolicy> make_policy(const std::string& name);

}  // namespace ilu
