#include "keepalive/clairvoyant.hpp"

#include <limits>

namespace ilu {

namespace {
constexpr TimePoint kNever = TimePoint{std::numeric_limits<std::int64_t>::max()};
}

ClairvoyantPolicy::ClairvoyantPolicy(const Trace& trace) {
  for (const auto& e : trace.events) {
    future_[e.fn].arrivals.push_back(e.at);
  }
}

void ClairvoyantPolicy::on_invocation(FunctionId fn, TimePoint now) {
  auto it = future_.find(fn);
  if (it == future_.end()) return;
  FnFuture& f = it->second;
  // Advance past every arrival at or before `now` (the one being observed).
  while (f.cursor < f.arrivals.size() && f.arrivals[f.cursor] <= now) {
    ++f.cursor;
  }
}

TimePoint ClairvoyantPolicy::next_use(FunctionId fn) const {
  auto it = future_.find(fn);
  if (it == future_.end()) return kNever;
  const FnFuture& f = it->second;
  if (f.cursor >= f.arrivals.size()) return kNever;
  return f.arrivals[f.cursor];
}

double ClairvoyantPolicy::eviction_rank(const CacheEntry& e) const {
  // Furthest next use evicted first (lowest rank first => negate).
  TimePoint next = next_use(e.fn);
  return -static_cast<double>(next.count());
}

}  // namespace ilu
