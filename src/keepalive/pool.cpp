#include "keepalive/pool.hpp"

#include <cassert>

#include "obs/flight.hpp"

// ilu-lint: speculative-zone(flight, metrics) - the flight ring is mark()/rewind() bracketed per speculative window; ContainerPool::State round-trips the gauges via load_state()'s sync_metrics()

namespace ilu {

ContainerPool::ContainerPool(Runtime& rt, KeepAlivePolicy& policy, Config cfg,
                             EvictFn on_evict)
    : rt_(rt),
      policy_(policy),
      cfg_(cfg),
      on_evict_(std::move(on_evict)),
      capacity_mb_(cfg.capacity_mb) {}

ContainerPool::~ContainerPool() { stop(); }

void ContainerPool::start() {
  if (running_ || cfg_.sweep_interval <= Duration::zero()) return;
  running_ = true;
  schedule_sweep();
}

void ContainerPool::stop() {
  running_ = false;
  if (sweep_timer_ != Runtime::kInvalidTimer) {
    rt_.cancel(sweep_timer_);
    sweep_timer_ = Runtime::kInvalidTimer;
  }
}

void ContainerPool::schedule_sweep() {
  sweep_timer_ = rt_.schedule(cfg_.sweep_interval, [this] {
    sweep_timer_ = Runtime::kInvalidTimer;
    if (!running_) return;
    sweep(rt_.now());
    if (running_) schedule_sweep();
  });
}

void ContainerPool::sync_metrics() {
  if (metrics_.total) {
    metrics_.total->set(static_cast<std::int64_t>(store_.size()));
  }
  if (metrics_.idle) {
    metrics_.idle->set(static_cast<std::int64_t>(rank_.size()));
  }
  if (metrics_.busy) {
    metrics_.busy->set(
        static_cast<std::int64_t>(store_.size() - rank_.size()));
  }
  if (metrics_.prewarmed) {
    metrics_.prewarmed->set(static_cast<std::int64_t>(prewarmed_idle_));
  }
  if (metrics_.used_mb) {
    metrics_.used_mb->set(static_cast<std::int64_t>(used_mb_));
  }
}

void ContainerPool::insert_idle(ContainerHandle h, Container& c) {
  assert(c.state == ContainerState::Idle);
  if (c.fn >= idle_head_.size()) idle_head_.resize(c.fn + 1);
  ContainerHandle head = idle_head_[c.fn];
  c.idle_prev = ContainerHandle{};
  c.idle_next = head;
  if (head.valid()) store_.get(head).idle_prev = h;
  idle_head_[c.fn] = h;
  RankHeap::Handle rh =
      rank_.push(RankKey{policy_.eviction_rank(c.entry), h.index}, h);
  c.rank_slot = rh.slot;
  c.rank_gen = rh.gen;
  if (c.prewarm_parked) ++prewarmed_idle_;
}

void ContainerPool::remove_idle(ContainerHandle h, Container& c) {
  if (c.idle_prev.valid()) {
    store_.get(c.idle_prev).idle_next = c.idle_next;
  } else {
    assert(idle_head_[c.fn] == h);
    (void)h;
    idle_head_[c.fn] = c.idle_next;
  }
  if (c.idle_next.valid()) store_.get(c.idle_next).idle_prev = c.idle_prev;
  c.idle_prev = ContainerHandle{};
  c.idle_next = ContainerHandle{};
  bool erased = rank_.erase(RankHeap::Handle{c.rank_slot, c.rank_gen});
  assert(erased);
  (void)erased;
  c.rank_slot = 0;
  c.rank_gen = 0;
  if (c.prewarm_parked) --prewarmed_idle_;
}

void ContainerPool::evict_one(ContainerHandle h, bool expired) {
  Container& c = store_.get(h);
  assert(c.state == ContainerState::Idle);
  remove_idle(h, c);
  flight::record(rt_.now(), flight::Ev::kEviction, c.fn);
  policy_.on_evict(c.entry);
  if (expired) {
    ++expirations_;
    if (metrics_.expirations) metrics_.expirations->inc();
  } else {
    ++evictions_;
    if (metrics_.evictions) metrics_.evictions->inc();
  }
  used_mb_ -= c.profile.mem_mb;
  c.state = ContainerState::Removed;
  // The record stays in the slab for the duration of the callback so the
  // worker can read teardown state (netns id, profile) without a copy.
  if (on_evict_) on_evict_(c);
  store_.erase(h);
  sync_metrics();
}

bool ContainerPool::make_room(std::uint32_t mem_mb) {
  while (used_mb_ + mem_mb > capacity_mb_ && !rank_.empty()) {
    evict_one(*rank_.peek_min(), /*expired=*/false);
  }
  return used_mb_ + mem_mb <= capacity_mb_;
}

ContainerHandle ContainerPool::acquire(FunctionId fn, TimePoint now) {
  if (fn >= idle_head_.size() || !idle_head_[fn].valid()) {
    return ContainerHandle{};
  }
  ContainerHandle h = idle_head_[fn];
  Container& c = store_.get(h);
  remove_idle(h, c);
  flight::record(now, flight::Ev::kContainerAcquire, fn);
  c.prewarm_parked = false;
  c.state = ContainerState::Running;
  ++c.entry.uses;
  c.entry.last_used = now;
  policy_.on_access(c.entry, now);
  sync_metrics();
  return h;
}

ContainerHandle ContainerPool::add_container(FunctionId fn,
                                             const FunctionProfile& profile,
                                             TimePoint now,
                                             std::size_t* sync_evictions) {
  std::uint64_t evictions_before = evictions_;
  bool fits = make_room(profile.mem_mb);
  if (sync_evictions != nullptr) {
    *sync_evictions = evictions_ - evictions_before;
  }
  if (!fits) return ContainerHandle{};
  ContainerHandle h = store_.emplace();
  Container& c = store_.get(h);
  c.id = next_id_++;
  c.fn = fn;
  c.profile = profile;
  c.state = ContainerState::Provisioning;
  c.entry.fn = fn;
  c.entry.mem_mb = profile.mem_mb;
  c.entry.init_time = profile.init_time;
  c.entry.created = now;
  c.entry.last_used = now;
  c.entry.uses = 0;
  used_mb_ += profile.mem_mb;
  sync_metrics();
  return h;
}

void ContainerPool::return_container(ContainerHandle h, TimePoint now) {
  Container& c = store_.get(h);
  assert(c.state == ContainerState::Running);
  c.state = ContainerState::Idle;
  c.entry.last_used = now;
  policy_.on_access(c.entry, now);
  insert_idle(h, c);
  sync_metrics();
}

void ContainerPool::park_prewarmed(ContainerHandle h, TimePoint now) {
  Container& c = store_.get(h);
  assert(c.state == ContainerState::Launching);
  c.state = ContainerState::Idle;
  c.entry.last_used = now;
  c.prewarm_parked = true;
  policy_.on_access(c.entry, now);
  insert_idle(h, c);
  if (metrics_.prewarm_parks) metrics_.prewarm_parks->inc();
  sync_metrics();
}

void ContainerPool::remove(ContainerHandle h) {
  Container& c = store_.get(h);
  if (c.state == ContainerState::Idle) remove_idle(h, c);
  used_mb_ -= c.profile.mem_mb;
  c.state = ContainerState::Removed;
  store_.erase(h);
  sync_metrics();
  // Not an eviction: creation failure or shutdown; no policy notification.
}

void ContainerPool::set_capacity_mb(std::uint64_t mb) {
  capacity_mb_ = mb;
  while (used_mb_ > capacity_mb_ && !rank_.empty()) {
    evict_one(*rank_.peek_min(), /*expired=*/false);
  }
}

void ContainerPool::sweep(TimePoint now) {
  // Phase 1: policy-driven expiry (TTL and friends), visiting idle
  // containers in canonical slab order.
  expired_scratch_.clear();
  store_.for_each([&](ContainerHandle h, Container& c) {
    if (c.state != ContainerState::Idle) return;
    auto exp = policy_.expires_at(c.entry);
    if (exp.has_value() && *exp <= now) expired_scratch_.push_back(h);
  });
  for (ContainerHandle h : expired_scratch_) {
    FunctionId fn = store_.get(h).fn;
    evict_one(h, /*expired=*/true);
    // Prefetching policies may want the container back before the next
    // predicted arrival (HIST's eager-evict + prewarm pattern).
    if (on_prewarm_request_ && !has_idle(fn)) {
      if (auto at = policy_.prewarm_at(fn, now)) {
        on_prewarm_request_(fn, *at);
      }
    }
  }

  // Phase 2: keep a free-memory buffer available for bursts.
  while (capacity_mb_ - used_mb_ < cfg_.free_buffer_mb && !rank_.empty()) {
    evict_one(*rank_.peek_min(), /*expired=*/false);
  }
}

bool ContainerPool::validate(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };

  std::uint64_t mem = 0;
  std::size_t idle = 0;
  std::size_t prewarmed = 0;
  bool ok = true;
  std::string msg;
  store_.for_each([&](ContainerHandle h, const Container& c) {
    if (!ok) return;
    mem += c.profile.mem_mb;
    if (c.state == ContainerState::Idle) {
      ++idle;
      if (c.prewarm_parked) ++prewarmed;
      if (c.rank_gen == 0 ||
          !rank_.contains(RankHeap::Handle{c.rank_slot, c.rank_gen})) {
        ok = false;
        msg = "idle container missing from rank index";
      }
    } else {
      if (c.rank_gen != 0) {
        ok = false;
        msg = "non-idle container holds a rank-index handle";
      }
      if (c.idle_prev.valid() || c.idle_next.valid()) {
        ok = false;
        msg = "non-idle container still linked into an idle list";
      }
    }
    (void)h;
  });
  if (!ok) return fail(msg);
  if (mem != used_mb_) return fail("used_mb does not match sum of profiles");
  if (idle != rank_.size()) return fail("rank index size != idle count");
  if (prewarmed != prewarmed_idle_) return fail("prewarmed count mismatch");

  // Walk every per-function list and check link integrity + membership.
  std::size_t listed = 0;
  for (FunctionId fn = 0; fn < idle_head_.size(); ++fn) {
    ContainerHandle prev{};
    ContainerHandle h = idle_head_[fn];
    while (h.valid()) {
      if (!store_.contains(h)) return fail("idle list holds a stale handle");
      const Container& c = store_.get(h);
      if (c.fn != fn) return fail("container linked into wrong fn list");
      if (c.state != ContainerState::Idle) {
        return fail("idle list holds a non-idle container");
      }
      if (!(c.idle_prev == prev)) return fail("idle_prev link broken");
      ++listed;
      if (listed > idle) return fail("idle list cycle detected");
      prev = h;
      h = c.idle_next;
    }
  }
  if (listed != idle) return fail("idle lists do not cover all idle containers");
  return true;
}

ContainerPool::State ContainerPool::save_state() const {
  State s;
  s.prewarmed_idle = prewarmed_idle_;
  s.capacity_mb = capacity_mb_;
  s.used_mb = used_mb_;
  s.next_id = next_id_;
  s.store = store_.snapshot();
  s.idle_head = idle_head_;
  s.rank = rank_;
  s.running = running_;
  s.sweep_timer = sweep_timer_;
  s.evictions = evictions_;
  s.expirations = expirations_;
  return s;
}

void ContainerPool::load_state(const State& s) {
  prewarmed_idle_ = s.prewarmed_idle;
  capacity_mb_ = s.capacity_mb;
  used_mb_ = s.used_mb;
  next_id_ = s.next_id;
  store_.restore(s.store);
  idle_head_ = s.idle_head;
  rank_ = s.rank;
  running_ = s.running;
  sweep_timer_ = s.sweep_timer;
  evictions_ = s.evictions;
  expirations_ = s.expirations;
  sync_metrics();
}

}  // namespace ilu
