#include "keepalive/pool.hpp"

#include <algorithm>
#include <cassert>

namespace ilu {

ContainerPool::ContainerPool(Runtime& rt, KeepAlivePolicy& policy, Config cfg,
                             EvictFn on_evict)
    : rt_(rt),
      policy_(policy),
      cfg_(cfg),
      on_evict_(std::move(on_evict)),
      capacity_mb_(cfg.capacity_mb) {}

ContainerPool::~ContainerPool() { stop(); }

void ContainerPool::start() {
  if (running_ || cfg_.sweep_interval <= Duration::zero()) return;
  running_ = true;
  schedule_sweep();
}

void ContainerPool::stop() {
  running_ = false;
  if (sweep_timer_ != Runtime::kInvalidTimer) {
    rt_.cancel(sweep_timer_);
    sweep_timer_ = Runtime::kInvalidTimer;
  }
}

void ContainerPool::schedule_sweep() {
  sweep_timer_ = rt_.schedule(cfg_.sweep_interval, [this] {
    sweep_timer_ = Runtime::kInvalidTimer;
    if (!running_) return;
    sweep(rt_.now());
    if (running_) schedule_sweep();
  });
}

void ContainerPool::sync_metrics() {
  if (metrics_.total) {
    metrics_.total->set(static_cast<std::int64_t>(containers_.size()));
  }
  if (metrics_.idle) {
    metrics_.idle->set(static_cast<std::int64_t>(idle_rank_.size()));
  }
  if (metrics_.busy) {
    metrics_.busy->set(
        static_cast<std::int64_t>(containers_.size() - idle_rank_.size()));
  }
  if (metrics_.prewarmed) {
    metrics_.prewarmed->set(static_cast<std::int64_t>(prewarmed_idle_));
  }
  if (metrics_.used_mb) {
    metrics_.used_mb->set(static_cast<std::int64_t>(used_mb_));
  }
}

void ContainerPool::insert_idle(Container* c) {
  assert(c->state == ContainerState::Idle);
  rank_pos_[c] = idle_rank_.emplace(policy_.eviction_rank(c->entry), c);
  idle_by_fn_[c->fn].push_back(c);
  if (c->prewarm_parked) ++prewarmed_idle_;
}

void ContainerPool::remove_idle(Container* c) {
  auto it = rank_pos_.find(c);
  assert(it != rank_pos_.end());
  idle_rank_.erase(it->second);
  rank_pos_.erase(it);
  auto& vec = idle_by_fn_[c->fn];
  for (auto rit = vec.rbegin(); rit != vec.rend(); ++rit) {
    if (*rit == c) {
      vec.erase(std::next(rit).base());
      break;
    }
  }
  if (c->prewarm_parked) --prewarmed_idle_;
}

std::unique_ptr<Container> ContainerPool::extract(Container* c) {
  auto it = containers_.find(c);
  assert(it != containers_.end());
  auto owned = std::move(it->second);
  containers_.erase(it);
  used_mb_ -= c->profile.mem_mb;
  return owned;
}

void ContainerPool::evict_one(Container* c, bool expired) {
  assert(c->state == ContainerState::Idle);
  remove_idle(c);
  policy_.on_evict(c->entry);
  if (expired) {
    ++expirations_;
    if (metrics_.expirations) metrics_.expirations->inc();
  } else {
    ++evictions_;
    if (metrics_.evictions) metrics_.evictions->inc();
  }
  auto owned = extract(c);
  owned->state = ContainerState::Removed;
  sync_metrics();
  if (on_evict_) on_evict_(std::move(owned));
}

bool ContainerPool::make_room(std::uint32_t mem_mb) {
  while (used_mb_ + mem_mb > capacity_mb_ && !idle_rank_.empty()) {
    evict_one(idle_rank_.begin()->second, /*expired=*/false);
  }
  return used_mb_ + mem_mb <= capacity_mb_;
}

Container* ContainerPool::acquire(FunctionId fn, TimePoint now) {
  auto it = idle_by_fn_.find(fn);
  if (it == idle_by_fn_.end() || it->second.empty()) return nullptr;
  Container* c = it->second.back();
  remove_idle(c);
  c->prewarm_parked = false;
  c->state = ContainerState::Running;
  ++c->entry.uses;
  c->entry.last_used = now;
  policy_.on_access(c->entry, now);
  sync_metrics();
  return c;
}

Container* ContainerPool::add_container(FunctionId fn,
                                        const FunctionProfile& profile,
                                        TimePoint now,
                                        std::size_t* sync_evictions) {
  std::uint64_t evictions_before = evictions_;
  if (!make_room(profile.mem_mb)) {
    if (sync_evictions != nullptr) {
      *sync_evictions = evictions_ - evictions_before;
    }
    return nullptr;
  }
  if (sync_evictions != nullptr) {
    *sync_evictions = evictions_ - evictions_before;
  }
  auto owned = std::make_unique<Container>();
  Container* c = owned.get();
  c->id = next_id_++;
  c->fn = fn;
  c->profile = profile;
  c->state = ContainerState::Provisioning;
  c->entry.fn = fn;
  c->entry.mem_mb = profile.mem_mb;
  c->entry.init_time = profile.init_time;
  c->entry.created = now;
  c->entry.last_used = now;
  c->entry.uses = 0;
  used_mb_ += profile.mem_mb;
  containers_.emplace(c, std::move(owned));
  sync_metrics();
  return c;
}

void ContainerPool::return_container(Container* c, TimePoint now) {
  assert(c->state == ContainerState::Running);
  c->state = ContainerState::Idle;
  c->entry.last_used = now;
  policy_.on_access(c->entry, now);
  insert_idle(c);
  sync_metrics();
}

void ContainerPool::park_prewarmed(Container* c, TimePoint now) {
  assert(c->state == ContainerState::Launching);
  c->state = ContainerState::Idle;
  c->entry.last_used = now;
  c->prewarm_parked = true;
  policy_.on_access(c->entry, now);
  insert_idle(c);
  if (metrics_.prewarm_parks) metrics_.prewarm_parks->inc();
  sync_metrics();
}

void ContainerPool::remove(Container* c) {
  if (c->state == ContainerState::Idle) remove_idle(c);
  auto owned = extract(c);
  owned->state = ContainerState::Removed;
  sync_metrics();
  // Not an eviction: creation failure or shutdown; no policy notification.
}

bool ContainerPool::has_idle(FunctionId fn) const {
  auto it = idle_by_fn_.find(fn);
  return it != idle_by_fn_.end() && !it->second.empty();
}

void ContainerPool::set_capacity_mb(std::uint64_t mb) {
  capacity_mb_ = mb;
  while (used_mb_ > capacity_mb_ && !idle_rank_.empty()) {
    evict_one(idle_rank_.begin()->second, /*expired=*/false);
  }
}

void ContainerPool::sweep(TimePoint now) {
  // Phase 1: policy-driven expiry (TTL and friends).
  std::vector<Container*> expired;
  for (auto& [rank, c] : idle_rank_) {
    auto exp = policy_.expires_at(c->entry);
    if (exp.has_value() && *exp <= now) expired.push_back(c);
  }
  for (Container* c : expired) {
    FunctionId fn = c->fn;
    evict_one(c, /*expired=*/true);
    // Prefetching policies may want the container back before the next
    // predicted arrival (HIST's eager-evict + prewarm pattern).
    if (on_prewarm_request_ && !has_idle(fn)) {
      if (auto at = policy_.prewarm_at(fn, now)) {
        on_prewarm_request_(fn, *at);
      }
    }
  }

  // Phase 2: keep a free-memory buffer available for bursts.
  while (capacity_mb_ - used_mb_ < cfg_.free_buffer_mb &&
         !idle_rank_.empty()) {
    evict_one(idle_rank_.begin()->second, /*expired=*/false);
  }
}

}  // namespace ilu
