#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "keepalive/policy.hpp"
#include "obs/metrics.hpp"
#include "trace/workload.hpp"

/// The keep-alive container cache: warm containers are cache entries, a
/// warm start is a hit, a cold start is a miss that pays the function's
/// initialization cost and consumes memory capacity.
///
/// This is the discrete-event keep-alive simulator the paper uses for its
/// trace-driven evaluation (Figs 4/5/8): it models container occupancy
/// (busy containers pin memory), policy-driven eviction, TTL expiry sweeps
/// (run in the background, off the critical path, per §4.3.2), and
/// predictive pre-warming for the HIST policy.
namespace ilu {

class KeepAliveCache {
 public:
  struct Config {
    std::uint64_t capacity_mb = 32 * 1024;
    /// Allow prefetching policies (HIST) to schedule prewarms.
    bool enable_prewarm = true;
    /// Background expiry sweep cadence.
    Duration sweep_interval = mins(1);
  };

  struct Outcome {
    bool warm = false;
    bool dropped = false;
    /// Execution time: warm_time, plus init_time on a cold start.
    Duration exec{};
  };

  struct Stats {
    std::uint64_t invocations = 0;
    std::uint64_t warm_starts = 0;
    std::uint64_t cold_starts = 0;
    std::uint64_t dropped = 0;
    std::uint64_t evictions = 0;       // capacity-pressure evictions
    std::uint64_t expirations = 0;     // TTL/HIST expiry removals
    std::uint64_t prewarm_creates = 0;
    Duration total_base_exec{};
    Duration total_init_paid{};

    double cold_fraction() const {
      std::uint64_t served = warm_starts + cold_starts;
      if (served == 0) return 0.0;
      return static_cast<double>(cold_starts) / static_cast<double>(served);
    }
    /// The paper's "increase in execution time due to cold starts",
    /// averaged across all invocations, in percent.
    double exec_increase_pct() const {
      if (total_base_exec <= Duration::zero()) return 0.0;
      return 100.0 * static_cast<double>(total_init_paid.count()) /
             static_cast<double>(total_base_exec.count());
    }
  };

  KeepAliveCache(KeepAlivePolicy& policy, Config cfg,
                 std::vector<FunctionProfile> functions);

  /// Optional live-metrics hooks (null pointers are skipped): warm starts
  /// are cache hits, cold starts misses; used_mb tracks warm-state bytes.
  struct Metrics {
    Counter* hits = nullptr;
    Counter* misses = nullptr;
    Counter* dropped = nullptr;
    Counter* evictions = nullptr;
    Counter* expirations = nullptr;
    Counter* prewarms = nullptr;
    Gauge* used_mb = nullptr;
    Gauge* idle = nullptr;
    Gauge* busy = nullptr;
  };
  void set_metrics(const Metrics& m) {
    metrics_ = m;
    sync_metrics();
  }

  /// Process all internal events (busy releases, expiry sweeps, prewarms)
  /// with deadline <= t, in time order.
  void advance_to(TimePoint t);

  /// Handle an invocation arriving at time t (t must be non-decreasing
  /// across calls). Advances internal time first.
  Outcome on_invocation(FunctionId fn, TimePoint t);

  /// Dynamic vertical scaling: change capacity; shrinking evicts idle
  /// containers as needed (busy containers cannot be reclaimed).
  void set_capacity_mb(std::uint64_t mb);

  std::uint64_t capacity_mb() const { return capacity_mb_; }
  std::uint64_t used_mb() const { return used_mb_; }
  std::size_t idle_count() const { return rank_index_.size(); }
  std::size_t busy_count() const { return busy_count_; }
  const Stats& stats() const { return stats_; }
  const std::vector<std::uint64_t>& warm_by_fn() const { return warm_by_fn_; }
  const std::vector<std::uint64_t>& cold_by_fn() const { return cold_by_fn_; }
  const std::vector<std::uint64_t>& dropped_by_fn() const {
    return dropped_by_fn_;
  }

 private:
  struct Node {
    CacheEntry entry;
    bool idle = false;
    /// Valid while idle: position in the eviction rank index.
    std::multimap<double, Node*>::iterator rank_it;
  };

  void sync_metrics();
  void remove_from_idle(Node* n);
  void insert_into_idle(Node* n);
  void destroy(Node* n, bool expired);
  /// Evict lowest-ranked idle containers until `mem_mb` fits. Returns false
  /// if impossible (busy containers pin too much memory).
  bool make_room(std::uint32_t mem_mb);
  void sweep_expired();
  void process_release(Node* n);
  void maybe_schedule_prewarm(FunctionId fn);
  void process_prewarm(FunctionId fn, TimePoint scheduled);

  KeepAlivePolicy& policy_;
  Config cfg_;
  std::vector<FunctionProfile> functions_;

  TimePoint now_{};
  TimePoint next_sweep_{};
  std::uint64_t capacity_mb_;
  std::uint64_t used_mb_ = 0;
  std::size_t busy_count_ = 0;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<Node*, std::size_t> node_slot_;
  std::unordered_map<FunctionId, std::vector<Node*>> idle_by_fn_;
  std::multimap<double, Node*> rank_index_;

  struct Release {
    TimePoint at;
    Node* node;
    bool operator>(const Release& o) const { return at > o.at; }
  };
  std::priority_queue<Release, std::vector<Release>, std::greater<>> releases_;

  /// fn -> scheduled prewarm time (at most one pending per function).
  std::map<TimePoint, FunctionId> prewarms_;
  std::unordered_map<FunctionId, TimePoint> prewarm_pending_;

  Stats stats_;
  Metrics metrics_;
  std::vector<std::uint64_t> warm_by_fn_;
  std::vector<std::uint64_t> cold_by_fn_;
  std::vector<std::uint64_t> dropped_by_fn_;
};

}  // namespace ilu
