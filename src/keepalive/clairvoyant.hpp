#pragma once

#include <unordered_map>
#include <vector>

#include "keepalive/policy.hpp"
#include "trace/workload.hpp"

/// Clairvoyant (Belady-style) keep-alive policy: evicts the container whose
/// function is next needed furthest in the future, using perfect knowledge
/// of the trace. Offline-optimal for uniform sizes/costs (size- and
/// cost-aware offline caching is NP-hard, which the paper notes via
/// [bender1998flow] for the queueing analogue), so this is the standard
/// upper-bound *reference* for the online policies in the simulator — a
/// research-platform feature, not something a real control plane can run.
namespace ilu {

class ClairvoyantPolicy final : public KeepAlivePolicy {
 public:
  /// Builds per-function future-arrival indices from the trace. The policy
  /// must then observe every invocation via on_invocation (the keep-alive
  /// simulator does this) so its "now cursor" stays in sync.
  explicit ClairvoyantPolicy(const Trace& trace);

  std::string name() const override { return "ORACLE"; }
  void on_access(CacheEntry&, TimePoint) override {}
  void on_invocation(FunctionId fn, TimePoint now) override;
  double eviction_rank(const CacheEntry& e) const override;

  /// Next arrival of `fn` strictly after the last observed invocation of
  /// it; TimePoint::max-like sentinel when none remain.
  TimePoint next_use(FunctionId fn) const;

 private:
  struct FnFuture {
    std::vector<TimePoint> arrivals;
    std::size_t cursor = 0;  // index of the next not-yet-observed arrival
  };
  std::unordered_map<FunctionId, FnFuture> future_;
};

/// Run the keep-alive simulator under the oracle (convenience mirror of
/// run_keepalive_sim for the policy that needs the trace to construct).
struct KeepAliveSimResult;

}  // namespace ilu
