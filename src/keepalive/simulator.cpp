#include "keepalive/simulator.hpp"

#include "keepalive/policy.hpp"

namespace ilu {

KeepAliveSimResult run_keepalive_sim(const Trace& trace,
                                     const std::string& policy_name,
                                     std::uint64_t capacity_mb,
                                     bool enable_prewarm) {
  auto policy = make_policy(policy_name);
  return run_keepalive_sim_with(trace, *policy, capacity_mb, enable_prewarm);
}

KeepAliveSimResult run_keepalive_sim_with(const Trace& trace,
                                          KeepAlivePolicy& policy,
                                          std::uint64_t capacity_mb,
                                          bool enable_prewarm) {
  KeepAliveCache::Config cfg;
  cfg.capacity_mb = capacity_mb;
  cfg.enable_prewarm = enable_prewarm;
  KeepAliveCache cache(policy, cfg, trace.functions);
  for (const auto& e : trace.events) {
    cache.on_invocation(e.fn, e.at);
  }
  cache.advance_to(trace.duration > Duration::zero()
                       ? std::max(trace.duration,
                                  trace.events.empty()
                                      ? trace.duration
                                      : trace.events.back().at)
                       : (trace.events.empty() ? TimePoint{}
                                               : trace.events.back().at));
  KeepAliveSimResult r;
  r.policy = policy.name();
  r.capacity_mb = capacity_mb;
  r.stats = cache.stats();
  return r;
}

}  // namespace ilu
