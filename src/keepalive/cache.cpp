#include "keepalive/cache.hpp"

#include <algorithm>
#include <cassert>

namespace ilu {

KeepAliveCache::KeepAliveCache(KeepAlivePolicy& policy, Config cfg,
                               std::vector<FunctionProfile> functions)
    : policy_(policy),
      cfg_(cfg),
      functions_(std::move(functions)),
      next_sweep_(cfg.sweep_interval),
      capacity_mb_(cfg.capacity_mb),
      warm_by_fn_(functions_.size(), 0),
      cold_by_fn_(functions_.size(), 0),
      dropped_by_fn_(functions_.size(), 0) {}

void KeepAliveCache::sync_metrics() {
  if (metrics_.used_mb) {
    metrics_.used_mb->set(static_cast<std::int64_t>(used_mb_));
  }
  if (metrics_.idle) {
    metrics_.idle->set(static_cast<std::int64_t>(rank_index_.size()));
  }
  if (metrics_.busy) {
    metrics_.busy->set(static_cast<std::int64_t>(busy_count_));
  }
}

void KeepAliveCache::insert_into_idle(Node* n) {
  assert(!n->idle);
  n->idle = true;
  n->rank_it = rank_index_.emplace(policy_.eviction_rank(n->entry), n);
  idle_by_fn_[n->entry.fn].push_back(n);
}

void KeepAliveCache::remove_from_idle(Node* n) {
  assert(n->idle);
  n->idle = false;
  rank_index_.erase(n->rank_it);
  auto& vec = idle_by_fn_[n->entry.fn];
  // Search from the back: warm hits always take the MRU (back) element.
  for (auto it = vec.rbegin(); it != vec.rend(); ++it) {
    if (*it == n) {
      vec.erase(std::next(it).base());
      break;
    }
  }
}

void KeepAliveCache::destroy(Node* n, bool expired) {
  if (n->idle) remove_from_idle(n);
  used_mb_ -= n->entry.mem_mb;
  policy_.on_evict(n->entry);
  if (expired) {
    ++stats_.expirations;
    if (metrics_.expirations) metrics_.expirations->inc();
  } else {
    ++stats_.evictions;
    if (metrics_.evictions) metrics_.evictions->inc();
  }
  FunctionId fn = n->entry.fn;
  // Swap-remove from the owning vector.
  auto slot_it = node_slot_.find(n);
  assert(slot_it != node_slot_.end());
  std::size_t slot = slot_it->second;
  node_slot_.erase(slot_it);
  if (slot != nodes_.size() - 1) {
    nodes_[slot] = std::move(nodes_.back());
    node_slot_[nodes_[slot].get()] = slot;
  }
  nodes_.pop_back();
  sync_metrics();
  if (expired && cfg_.enable_prewarm) maybe_schedule_prewarm(fn);
}

bool KeepAliveCache::make_room(std::uint32_t mem_mb) {
  while (used_mb_ + mem_mb > capacity_mb_ && !rank_index_.empty()) {
    destroy(rank_index_.begin()->second, /*expired=*/false);
  }
  return used_mb_ + mem_mb <= capacity_mb_;
}

void KeepAliveCache::sweep_expired() {
  std::vector<Node*> expired;
  for (auto& [rank, n] : rank_index_) {
    auto exp = policy_.expires_at(n->entry);
    if (exp.has_value() && *exp <= now_) expired.push_back(n);
  }
  for (Node* n : expired) destroy(n, /*expired=*/true);
}

void KeepAliveCache::process_release(Node* n) {
  insert_into_idle(n);
  --busy_count_;
  sync_metrics();
}

void KeepAliveCache::maybe_schedule_prewarm(FunctionId fn) {
  if (prewarm_pending_.count(fn) > 0) return;
  auto at = policy_.prewarm_at(fn, now_);
  if (!at.has_value()) return;
  // Nudge until the key is unique in the time-ordered map.
  TimePoint key = *at;
  while (prewarms_.count(key) > 0) key += usecs(1);
  prewarms_.emplace(key, fn);
  prewarm_pending_.emplace(fn, key);
}

void KeepAliveCache::process_prewarm(FunctionId fn, TimePoint) {
  prewarm_pending_.erase(fn);
  auto it = idle_by_fn_.find(fn);
  if (it != idle_by_fn_.end() && !it->second.empty()) return;  // already warm
  const FunctionProfile& p = functions_.at(fn);
  // Prewarms are opportunistic: they never evict other containers.
  if (used_mb_ + p.mem_mb > capacity_mb_) return;
  auto node = std::make_unique<Node>();
  node->entry.fn = fn;
  node->entry.mem_mb = p.mem_mb;
  node->entry.init_time = p.init_time;
  node->entry.created = now_;
  node->entry.last_used = now_;
  node->entry.uses = 0;
  policy_.on_access(node->entry, now_);
  Node* raw = node.get();
  node_slot_[raw] = nodes_.size();
  nodes_.push_back(std::move(node));
  used_mb_ += p.mem_mb;
  insert_into_idle(raw);
  ++stats_.prewarm_creates;
  if (metrics_.prewarms) metrics_.prewarms->inc();
  sync_metrics();
}

void KeepAliveCache::advance_to(TimePoint t) {
  assert(t >= now_);
  while (true) {
    // Find the earliest internal event <= t among releases, sweeps,
    // prewarms; process in global time order for determinism.
    TimePoint best = t + usecs(1);
    int which = -1;  // 0=release, 1=sweep, 2=prewarm
    if (!releases_.empty() && releases_.top().at <= t) {
      best = releases_.top().at;
      which = 0;
    }
    if (next_sweep_ <= t && next_sweep_ < best) {
      best = next_sweep_;
      which = 1;
    }
    if (!prewarms_.empty() && prewarms_.begin()->first <= t &&
        prewarms_.begin()->first < best) {
      best = prewarms_.begin()->first;
      which = 2;
    }
    if (which < 0) break;
    now_ = best;
    switch (which) {
      case 0: {
        Node* n = releases_.top().node;
        releases_.pop();
        process_release(n);
        break;
      }
      case 1:
        sweep_expired();
        next_sweep_ += cfg_.sweep_interval;
        break;
      case 2: {
        auto it = prewarms_.begin();
        FunctionId fn = it->second;
        TimePoint at = it->first;
        prewarms_.erase(it);
        process_prewarm(fn, at);
        break;
      }
    }
  }
  now_ = t;
}

KeepAliveCache::Outcome KeepAliveCache::on_invocation(FunctionId fn,
                                                      TimePoint t) {
  advance_to(t);
  const FunctionProfile& p = functions_.at(fn);
  policy_.on_invocation(fn, t);
  ++stats_.invocations;

  Outcome out;
  auto it = idle_by_fn_.find(fn);
  if (it != idle_by_fn_.end() && !it->second.empty()) {
    // Warm start: take the most recently used container.
    Node* n = it->second.back();
    remove_from_idle(n);
    ++n->entry.uses;
    n->entry.last_used = t;
    policy_.on_access(n->entry, t);
    ++busy_count_;
    out.warm = true;
    out.exec = p.warm_time;
    releases_.push(Release{t + out.exec, n});
    ++stats_.warm_starts;
    if (metrics_.hits) metrics_.hits->inc();
    ++warm_by_fn_[fn];
    stats_.total_base_exec += p.warm_time;
    sync_metrics();
    return out;
  }

  // Cold start: create a new container, evicting if necessary.
  if (!make_room(p.mem_mb)) {
    out.dropped = true;
    ++stats_.dropped;
    if (metrics_.dropped) metrics_.dropped->inc();
    ++dropped_by_fn_[fn];
    return out;
  }
  auto node = std::make_unique<Node>();
  node->entry.fn = fn;
  node->entry.mem_mb = p.mem_mb;
  node->entry.init_time = p.init_time;
  node->entry.created = t;
  node->entry.last_used = t;
  node->entry.uses = 1;
  policy_.on_access(node->entry, t);
  Node* raw = node.get();
  node_slot_[raw] = nodes_.size();
  nodes_.push_back(std::move(node));
  used_mb_ += p.mem_mb;
  ++busy_count_;
  out.warm = false;
  out.exec = p.warm_time + p.init_time;
  releases_.push(Release{t + out.exec, raw});
  ++stats_.cold_starts;
  if (metrics_.misses) metrics_.misses->inc();
  ++cold_by_fn_[fn];
  stats_.total_base_exec += p.warm_time;
  stats_.total_init_paid += p.init_time;
  sync_metrics();
  return out;
}

void KeepAliveCache::set_capacity_mb(std::uint64_t mb) {
  capacity_mb_ = mb;
  while (used_mb_ > capacity_mb_ && !rank_index_.empty()) {
    destroy(rank_index_.begin()->second, /*expired=*/false);
  }
}

}  // namespace ilu
