#pragma once

#include <functional>
#include <string>
#include <vector>

#include "containers/container.hpp"
#include "keepalive/policy.hpp"
#include "obs/metrics.hpp"
#include "runtime/indexed_heap.hpp"
#include "runtime/runtime.hpp"

/// The worker's keep-alive container pool (§4.3.1): tracks every in-use and
/// available container per function, accounts server memory, and performs
/// eviction *asynchronously* in a background sweep (§4.3.2) that maintains a
/// free-memory buffer for invocation bursts — instead of picking victims on
/// the invoke critical path.
///
/// Storage model (DESIGN.md §11): all container records live in a
/// `ContainerStore` slab and are addressed by `ContainerHandle` — callers
/// never hold `Container*` across calls. The idle set is kept in two
/// allocation-free index structures over the slab:
///
///  * per-function intrusive LIFO lists (prev/next handles stored in the
///    record itself) for MRU `acquire`;
///  * an indexed min-heap keyed `(eviction_rank, slot index)` for victim
///    selection. Including the slot index in the key makes the victim order
///    a total, run-to-run-stable order by construction — ties that the old
///    `multimap` broke by insertion order are now broken by canonical
///    handle order.
///
/// After warm-up, acquire/return/evict perform zero heap allocations.
namespace ilu {

class ContainerPool {
 public:
  struct Config {
    std::uint64_t capacity_mb = 32 * 1024;
    /// The background sweep evicts idle containers until at least this much
    /// memory is free (0 disables the buffer).
    std::uint64_t free_buffer_mb = 2048;
    /// Background sweep cadence; zero disables background eviction entirely
    /// (the synchronous-eviction ablation).
    Duration sweep_interval = msecs(500);
  };

  /// Eviction notification: the record is alive only for the duration of
  /// the call (its handle is already invalid) — copy out whatever teardown
  /// needs. The callback must not synchronously reenter the pool; both the
  /// worker and the OpenWhisk baseline defer real teardown to the runtime.
  using EvictFn = std::function<void(const Container&)>;
  /// Prefetching policies (HIST) can ask for a container to be pre-warmed
  /// at an absolute time after an expiry removed the last warm one; the
  /// worker schedules the actual prewarm.
  using PrewarmRequestFn = std::function<void(FunctionId, TimePoint)>;

  ContainerPool(Runtime& rt, KeepAlivePolicy& policy, Config cfg,
                EvictFn on_evict);

  void set_prewarm_requester(PrewarmRequestFn fn) {
    on_prewarm_request_ = std::move(fn);
  }

  /// Optional live-metrics hooks (null pointers are skipped). `busy` is
  /// containers not currently idle (running or being provisioned).
  struct Metrics {
    Counter* evictions = nullptr;
    Counter* expirations = nullptr;
    Counter* prewarm_parks = nullptr;
    Gauge* total = nullptr;
    Gauge* idle = nullptr;
    Gauge* busy = nullptr;
    Gauge* prewarmed = nullptr;
    Gauge* used_mb = nullptr;
  };
  void set_metrics(const Metrics& m) {
    metrics_ = m;
    sync_metrics();
  }
  ~ContainerPool();

  ContainerPool(const ContainerPool&) = delete;
  ContainerPool& operator=(const ContainerPool&) = delete;

  /// Begin/end background sweeping.
  void start();
  void stop();

  /// Take the most-recently-used idle container of `fn` for an invocation
  /// (Idle -> Running). Returns a null handle when none is available.
  ContainerHandle acquire(FunctionId fn, TimePoint now);

  /// Reserve memory and register a brand-new container (cold start or
  /// prewarm). Synchronously evicts idle containers if the buffer could not
  /// keep up; when `sync_evictions` is non-null it receives the number of
  /// victims removed on this call (the caller pays their teardown on the
  /// critical path — exactly the jitter §4.3.2's background eviction
  /// avoids). Returns a null handle when memory cannot be found (busy
  /// containers pin it). The returned container is in Provisioning state.
  ContainerHandle add_container(FunctionId fn, const FunctionProfile& profile,
                                TimePoint now,
                                std::size_t* sync_evictions = nullptr);

  /// Running -> Idle; the container becomes available for reuse.
  void return_container(ContainerHandle h, TimePoint now);

  /// Park a freshly launched prewarm container (Launching -> Idle).
  void park_prewarmed(ContainerHandle h, TimePoint now);

  /// Remove a container in any state (creation failure, shutdown).
  void remove(ContainerHandle h);

  /// Dereference a handle. References are invalidated by `add_container`
  /// (slab growth) and by anything that can evict the record; re-fetch
  /// rather than caching across pool calls.
  Container& get(ContainerHandle h) { return store_.get(h); }
  const Container& get(ContainerHandle h) const { return store_.get(h); }
  /// True while `h` refers to a live (not yet removed/evicted) container.
  bool alive(ContainerHandle h) const { return store_.contains(h); }

  bool has_idle(FunctionId fn) const {
    return fn < idle_head_.size() && idle_head_[fn].valid();
  }
  std::size_t idle_count() const { return rank_.size(); }
  std::size_t total_count() const { return store_.size(); }
  std::uint64_t used_mb() const { return used_mb_; }
  std::uint64_t capacity_mb() const { return capacity_mb_; }
  std::uint64_t free_mb() const { return capacity_mb_ - used_mb_; }
  void set_capacity_mb(std::uint64_t mb);

  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t expirations() const { return expirations_; }

  /// The backing slab; exposed so tests can assert allocation behaviour and
  /// iterate records in canonical order.
  const ContainerStore& store() const { return store_; }

  /// One background sweep: expire per policy, then restore the free buffer.
  /// Public so tests and the sync-eviction ablation can drive it directly.
  void sweep(TimePoint now);

  /// O(n) structural invariant check for tests: memory accounting, idle
  /// list/rank index consistency, intrusive link integrity. Returns false
  /// and fills `why` (when non-null) on the first violation.
  bool validate(std::string* why = nullptr) const;

 private:
  /// Rank-heap key: policy eviction rank, slot index as canonical
  /// tie-break. Strictly totally ordered, so victim order is deterministic
  /// by construction.
  struct RankKey {
    double rank;
    std::uint32_t index;
    bool operator<(const RankKey& o) const {
      return rank < o.rank || (rank == o.rank && index < o.index);
    }
  };
  using RankHeap = IndexedHeap<RankKey, ContainerHandle>;

 public:
  /// Checkpointable state for speculative (Time Warp) execution: the whole
  /// container store (slab copy, so every ContainerHandle issued before the
  /// checkpoint stays valid after restore), both idle indexes, memory
  /// accounting, and counters. The sweep timer id survives a SimRuntime
  /// heap restore because the heap preserves slot generations.
  struct State {
    std::size_t prewarmed_idle = 0;
    std::uint64_t capacity_mb = 0;
    std::uint64_t used_mb = 0;
    ContainerId next_id = 1;
    ContainerStore::Snapshot store;
    std::vector<ContainerHandle> idle_head;
    RankHeap rank;
    bool running = false;
    Runtime::TimerId sweep_timer = Runtime::kInvalidTimer;
    std::uint64_t evictions = 0;
    std::uint64_t expirations = 0;
  };
  State save_state() const;
  void load_state(const State& s);

 private:

  void insert_idle(ContainerHandle h, Container& c);
  void remove_idle(ContainerHandle h, Container& c);
  void sync_metrics();
  void evict_one(ContainerHandle h, bool expired);
  bool make_room(std::uint32_t mem_mb);
  void schedule_sweep();

  Runtime& rt_;
  KeepAlivePolicy& policy_;
  Config cfg_;
  EvictFn on_evict_;
  PrewarmRequestFn on_prewarm_request_;
  Metrics metrics_;
  /// Idle containers still carrying their prewarm flag.
  std::size_t prewarmed_idle_ = 0;

  std::uint64_t capacity_mb_;
  std::uint64_t used_mb_ = 0;
  ContainerId next_id_ = 1;

  ContainerStore store_;
  /// Head of the per-function intrusive idle list (MRU first), indexed by
  /// FunctionId; grows to the largest id seen, then never reallocates.
  std::vector<ContainerHandle> idle_head_;
  RankHeap rank_;
  /// Scratch for sweep's expiry pass; member so steady-state sweeps reuse
  /// its capacity instead of allocating.
  std::vector<ContainerHandle> expired_scratch_;

  bool running_ = false;
  Runtime::TimerId sweep_timer_ = Runtime::kInvalidTimer;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
};

}  // namespace ilu
