#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "containers/container.hpp"
#include "keepalive/policy.hpp"
#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"

/// The worker's keep-alive container pool (§4.3.1): tracks every in-use and
/// available container per function, accounts server memory, and performs
/// eviction *asynchronously* in a background sweep (§4.3.2) that maintains a
/// free-memory buffer for invocation bursts — instead of picking victims on
/// the invoke critical path.
namespace ilu {

class ContainerPool {
 public:
  struct Config {
    std::uint64_t capacity_mb = 32 * 1024;
    /// The background sweep evicts idle containers until at least this much
    /// memory is free (0 disables the buffer).
    std::uint64_t free_buffer_mb = 2048;
    /// Background sweep cadence; zero disables background eviction entirely
    /// (the synchronous-eviction ablation).
    Duration sweep_interval = msecs(500);
  };

  /// Ownership of evicted containers is handed back to the worker, which
  /// destroys the sandbox via the backend off the critical path.
  using EvictFn = std::function<void(std::unique_ptr<Container>)>;
  /// Prefetching policies (HIST) can ask for a container to be pre-warmed
  /// at an absolute time after an expiry removed the last warm one; the
  /// worker schedules the actual prewarm.
  using PrewarmRequestFn = std::function<void(FunctionId, TimePoint)>;

  ContainerPool(Runtime& rt, KeepAlivePolicy& policy, Config cfg,
                EvictFn on_evict);

  void set_prewarm_requester(PrewarmRequestFn fn) {
    on_prewarm_request_ = std::move(fn);
  }

  /// Optional live-metrics hooks (null pointers are skipped). `busy` is
  /// containers not currently idle (running or being provisioned).
  struct Metrics {
    Counter* evictions = nullptr;
    Counter* expirations = nullptr;
    Counter* prewarm_parks = nullptr;
    Gauge* total = nullptr;
    Gauge* idle = nullptr;
    Gauge* busy = nullptr;
    Gauge* prewarmed = nullptr;
    Gauge* used_mb = nullptr;
  };
  void set_metrics(const Metrics& m) {
    metrics_ = m;
    sync_metrics();
  }
  ~ContainerPool();

  ContainerPool(const ContainerPool&) = delete;
  ContainerPool& operator=(const ContainerPool&) = delete;

  /// Begin/end background sweeping.
  void start();
  void stop();

  /// Take the most-recently-used idle container of `fn` for an invocation
  /// (Idle -> Running). Returns nullptr when none is available.
  Container* acquire(FunctionId fn, TimePoint now);

  /// Reserve memory and register a brand-new container (cold start or
  /// prewarm). Synchronously evicts idle containers if the buffer could not
  /// keep up; when `sync_evictions` is non-null it receives the number of
  /// victims removed on this call (the caller pays their teardown on the
  /// critical path — exactly the jitter §4.3.2's background eviction
  /// avoids). Returns nullptr when memory cannot be found (busy containers
  /// pin it). The returned container is in Provisioning state.
  Container* add_container(FunctionId fn, const FunctionProfile& profile,
                           TimePoint now,
                           std::size_t* sync_evictions = nullptr);

  /// Running -> Idle; the container becomes available for reuse.
  void return_container(Container* c, TimePoint now);

  /// Park a freshly launched prewarm container (Launching -> Idle).
  void park_prewarmed(Container* c, TimePoint now);

  /// Remove a container in any state (creation failure, shutdown).
  void remove(Container* c);

  bool has_idle(FunctionId fn) const;
  std::size_t idle_count() const { return rank_index_.size(); }
  std::size_t total_count() const { return containers_.size(); }
  std::uint64_t used_mb() const { return used_mb_; }
  std::uint64_t capacity_mb() const { return capacity_mb_; }
  std::uint64_t free_mb() const { return capacity_mb_ - used_mb_; }
  void set_capacity_mb(std::uint64_t mb);

  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t expirations() const { return expirations_; }

  /// One background sweep: expire per policy, then restore the free buffer.
  /// Public so tests and the sync-eviction ablation can drive it directly.
  void sweep(TimePoint now);

 private:
  void insert_idle(Container* c);
  void remove_idle(Container* c);
  void sync_metrics();
  std::unique_ptr<Container> extract(Container* c);
  void evict_one(Container* c, bool expired);
  bool make_room(std::uint32_t mem_mb);
  void schedule_sweep();

  Runtime& rt_;
  KeepAlivePolicy& policy_;
  Config cfg_;
  EvictFn on_evict_;
  PrewarmRequestFn on_prewarm_request_;
  Metrics metrics_;
  /// Idle containers still carrying their prewarm flag.
  std::size_t prewarmed_idle_ = 0;

  std::uint64_t capacity_mb_;
  std::uint64_t used_mb_ = 0;
  ContainerId next_id_ = 1;

  std::unordered_map<Container*, std::unique_ptr<Container>> containers_;
  std::unordered_map<FunctionId, std::vector<Container*>> idle_by_fn_;
  std::multimap<double, Container*> idle_rank_;
  std::multimap<double, Container*>& rank_index_ = idle_rank_;
  std::unordered_map<Container*, std::multimap<double, Container*>::iterator>
      rank_pos_;

  bool running_ = false;
  Runtime::TimerId sweep_timer_ = Runtime::kInvalidTimer;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
};

}  // namespace ilu
