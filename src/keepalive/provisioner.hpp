#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "keepalive/cache.hpp"
#include "util/stats.hpp"

/// Dynamic vertical scaling of the keep-alive cache (the paper's Fig 8):
/// a proportional controller adjusts the cache (server memory) size so the
/// "miss speed" — cold starts per second — stays near a target. Resizing
/// only happens when the relative error exceeds a deadband (30% in the
/// paper) to avoid memory fragmentation from frequent small changes.
namespace ilu {

struct ProvisionerConfig {
  /// Target cold starts per second (paper uses 0.0015 /s).
  double target_miss_rate = 0.0015;
  /// Relative error below which no resize happens.
  double error_tolerance = 0.30;
  /// Proportional gain: relative capacity change per unit relative error.
  double gain = 0.20;
  /// Controller evaluation cadence.
  Duration interval = mins(2);
  /// Sliding window over which miss speed is measured.
  Duration window = mins(20);
  std::uint64_t min_capacity_mb = 1024;
  std::uint64_t max_capacity_mb = 64 * 1024;
  std::uint64_t initial_capacity_mb = 10000;
};

/// One controller evaluation point (a row of the Fig 8 timeseries).
struct ProvisionSample {
  TimePoint at{};
  double miss_rate = 0.0;
  std::uint64_t capacity_mb = 0;
  bool resized = false;
};

/// Anything whose memory capacity the controller can resize: the lean
/// KeepAliveCache, a Worker's ContainerPool, or a test double.
class CapacityTarget {
 public:
  virtual ~CapacityTarget() = default;
  virtual std::uint64_t capacity_mb() const = 0;
  virtual void set_capacity_mb(std::uint64_t mb) = 0;
};

/// Adapter for any object exposing capacity_mb()/set_capacity_mb().
template <typename T>
class CapacityOf final : public CapacityTarget {
 public:
  explicit CapacityOf(T& target) : target_(target) {}
  std::uint64_t capacity_mb() const override { return target_.capacity_mb(); }
  void set_capacity_mb(std::uint64_t mb) override {
    target_.set_capacity_mb(mb);
  }

 private:
  T& target_;
};

class Provisioner {
 public:
  Provisioner(CapacityTarget& target, ProvisionerConfig cfg);
  /// Convenience: drive a KeepAliveCache directly.
  Provisioner(KeepAliveCache& cache, ProvisionerConfig cfg);

  /// Record a cold start at time t (call on every cache miss).
  void record_miss(TimePoint t);

  /// Evaluate the controller if an interval boundary has passed.
  void maybe_adjust(TimePoint now);

  const std::vector<ProvisionSample>& samples() const { return samples_; }
  double average_capacity_mb() const;

 private:
  std::unique_ptr<CapacityTarget> owned_adapter_;
  CapacityTarget& target_;
  ProvisionerConfig cfg_;
  SlidingRateMeter misses_;
  TimePoint next_eval_;
  std::vector<ProvisionSample> samples_;
};

struct DynamicProvisioningResult {
  std::vector<ProvisionSample> timeseries;
  KeepAliveCache::Stats stats;
  double average_capacity_mb = 0.0;
  std::uint64_t static_capacity_mb = 0;  // the conservative baseline
};

/// Replay a trace with the controller active; `policy_name` selects the
/// keep-alive policy (the paper uses its GD policy here).
DynamicProvisioningResult run_dynamic_provisioning(
    const Trace& trace, const std::string& policy_name,
    ProvisionerConfig cfg = {});

}  // namespace ilu
