#pragma once

#include <string>
#include <vector>

#include "keepalive/cache.hpp"

/// Trace-driven keep-alive evaluation (the paper's Figs 4 and 5): replay an
/// Azure-derived trace through a KeepAliveCache under a given policy and
/// server memory size, and report cold-start fraction and the increase in
/// execution time caused by cold starts.
namespace ilu {

struct KeepAliveSimResult {
  std::string policy;
  std::uint64_t capacity_mb = 0;
  KeepAliveCache::Stats stats;

  double cold_fraction() const { return stats.cold_fraction(); }
  double exec_increase_pct() const { return stats.exec_increase_pct(); }
};

/// Replay `trace` under a fresh policy instance named `policy_name`.
KeepAliveSimResult run_keepalive_sim(const Trace& trace,
                                     const std::string& policy_name,
                                     std::uint64_t capacity_mb,
                                     bool enable_prewarm = true);

/// Replay under a caller-provided policy instance (needed for policies that
/// cannot be built by name, e.g. the clairvoyant oracle which requires the
/// trace at construction).
KeepAliveSimResult run_keepalive_sim_with(const Trace& trace,
                                          KeepAlivePolicy& policy,
                                          std::uint64_t capacity_mb,
                                          bool enable_prewarm = true);

}  // namespace ilu
