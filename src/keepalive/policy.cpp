#include "keepalive/policy.hpp"

#include <stdexcept>

namespace ilu {

HistPolicy::HistPolicy() : HistPolicy(Params{}) {}

HistPolicy::HistPolicy(Params p) : params_(p) {}

void HistPolicy::on_invocation(FunctionId fn, TimePoint now) {
  auto [it, inserted] = hists_.try_emplace(fn, params_);
  FnHist& h = it->second;
  if (h.last_invocation >= TimePoint::zero() && !inserted) {
    double iat_s = to_sec(now - h.last_invocation);
    h.iat.add(iat_s);
    h.stats.add(iat_s);
  }
  h.last_invocation = now;
}

const HistPolicy::FnHist* HistPolicy::find(FunctionId fn) const {
  auto it = hists_.find(fn);
  return it == hists_.end() ? nullptr : &it->second;
}

bool HistPolicy::predictable(FunctionId fn) const {
  const FnHist* h = find(fn);
  return h != nullptr && h->stats.count() >= params_.min_samples &&
         h->stats.cov() <= params_.cov_threshold;
}

double HistPolicy::cov(FunctionId fn) const {
  const FnHist* h = find(fn);
  return h == nullptr ? 0.0 : h->stats.cov();
}

Duration HistPolicy::window_for(FunctionId fn) const {
  if (!predictable(fn)) return params_.generic_ttl;
  const FnHist* h = find(fn);
  // Keep alive until the tail of the observed IAT distribution (plus one
  // bucket of margin): by then the next invocation should have arrived.
  double tail_s = h->iat.quantile_upper_bound(params_.tail_quantile);
  return secs(tail_s) + params_.bucket;
}

std::optional<TimePoint> HistPolicy::predicted_next(FunctionId fn) const {
  const FnHist* h = find(fn);
  if (h == nullptr || h->last_invocation < TimePoint::zero()) {
    return std::nullopt;
  }
  if (!predictable(fn)) return std::nullopt;
  // Lower edge of the head bucket: the earliest plausible next arrival.
  // (Using the upper edge would schedule prewarms at or after the arrival
  // and lose the race.)
  double head_s = h->iat.quantile_lower_bound(params_.head_quantile);
  return h->last_invocation + secs(head_s);
}

std::optional<TimePoint> HistPolicy::expires_at(const CacheEntry& e) const {
  if (!predictable(e.fn)) return e.last_used + params_.generic_ttl;
  // Eager eviction: if the predicted next arrival ("head" of the histogram)
  // is well beyond the linger window, release the memory now and rely on
  // the prewarm to bring the container back just in time.
  auto next = predicted_next(e.fn);
  if (next.has_value() && *next > e.last_used + 2 * params_.linger) {
    return e.last_used + params_.linger;
  }
  return e.last_used + window_for(e.fn);
}

std::optional<TimePoint> HistPolicy::prewarm_at(FunctionId fn,
                                                TimePoint now) const {
  auto next = predicted_next(fn);
  if (!next.has_value()) return std::nullopt;
  // Aim one linger window ahead of the predicted arrival; never in the past.
  TimePoint target = *next - params_.linger;
  if (target < now) target = now;
  return target;
}

double HistPolicy::eviction_rank(const CacheEntry& e) const {
  // Under memory pressure evict the container whose next use is predicted
  // to be furthest away (unpredictable functions count as generic-TTL far).
  const FnHist* h = find(e.fn);
  TimePoint next;
  if (h != nullptr && predictable(e.fn)) {
    double median_s = h->iat.quantile_upper_bound(0.5);
    next = h->last_invocation + secs(median_s);
  } else {
    next = e.last_used + params_.generic_ttl;
  }
  return -static_cast<double>(next.count());
}

std::unique_ptr<KeepAlivePolicy> make_policy(const std::string& name) {
  if (name == "TTL") return std::make_unique<TtlPolicy>();
  if (name == "LRU") return std::make_unique<LruPolicy>();
  if (name == "FREQ") return std::make_unique<LfuPolicy>();
  if (name == "GD") return std::make_unique<GreedyDualPolicy>();
  if (name == "LND") return std::make_unique<LandlordPolicy>();
  if (name == "HIST") return std::make_unique<HistPolicy>();
  throw std::invalid_argument("unknown keep-alive policy: " + name);
}

}  // namespace ilu
