#include "obs/metrics.hpp"

#include <cmath>

namespace ilu {

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : width_(bucket_width > 0.0 ? bucket_width : 1.0),
      buckets_(num_buckets > 0 ? num_buckets : 1) {}

void Histogram::observe(double x) {
  std::size_t i = 0;
  if (x > 0.0) {
    double b = std::floor(x / width_);
    i = b >= static_cast<double>(buckets_.size() - 1)
            ? buckets_.size() - 1
            : static_cast<std::size_t>(b);
  }
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micro_.fetch_add(static_cast<std::int64_t>(x * 1e6),
                       std::memory_order_relaxed);
}

double Histogram::sum() const {
  return static_cast<double>(sum_micro_.load(std::memory_order_relaxed)) /
         1e6;
}

double Histogram::mean() const {
  std::uint64_t n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::quantile_upper_bound(double q) const {
  std::uint64_t n = count();
  if (n == 0) return 0.0;
  auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (target == 0) target = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += bucket(i);
    if (seen >= target) return width_ * static_cast<double>(i + 1);
  }
  return width_ * static_cast<double>(buckets_.size());
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      double bucket_width,
                                      std::size_t num_buckets) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bucket_width, num_buckets);
  return slot.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData d;
    d.bucket_width = h->bucket_width();
    d.buckets.reserve(h->num_buckets());
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      d.buckets.push_back(h->bucket(i));
    }
    d.count = h->count();
    d.sum = h->sum();
    d.mean = h->mean();
    s.histograms[name] = std::move(d);
  }
  return s;
}

}  // namespace ilu
