#include "obs/metrics.hpp"
// ilu-lint: atomics-floor(relaxed) - histogram cells are independent monotone counters; min/max CAS loops tolerate stale views

#include <cmath>
#include <limits>

namespace ilu {

namespace {

/// Relaxed CAS max/min — lock-free exact extremes; the loop runs only while
/// this observation is actually extending the record.
void atomic_max(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : width_(bucket_width > 0.0 ? bucket_width : 1.0),
      buckets_(num_buckets > 0 ? num_buckets : 1) {}

void Histogram::observe(double x) {
  std::size_t i = 0;
  if (x > 0.0) {
    double b = std::floor(x / width_);
    i = b >= static_cast<double>(buckets_.size() - 1)
            ? buckets_.size() - 1
            : static_cast<std::size_t>(b);
  }
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micro_.fetch_add(static_cast<std::int64_t>(x * 1e6),
                       std::memory_order_relaxed);
  if (x >= width_ * static_cast<double>(buckets_.size())) {
    overflow_count_.fetch_add(1, std::memory_order_relaxed);
    atomic_max(overflow_max_micro_, static_cast<std::int64_t>(x * 1e6));
  }
}

double Histogram::sum() const {
  return static_cast<double>(sum_micro_.load(std::memory_order_relaxed)) /
         1e6;
}

double Histogram::mean() const {
  std::uint64_t n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::overflow_max() const {
  return saturated()
             ? static_cast<double>(
                   overflow_max_micro_.load(std::memory_order_relaxed)) /
                   1e6
             : 0.0;
}

double Histogram::quantile_upper_bound(double q) const {
  std::uint64_t n = count();
  if (n == 0) return 0.0;
  auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (target == 0) target = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += bucket(i);
    if (seen >= target) {
      double upper = width_ * static_cast<double>(i + 1);
      // The final bucket of a saturated histogram has no honest upper edge;
      // the exact overflow max is the tight bound.
      if (i + 1 == buckets_.size() && saturated()) return overflow_max();
      return upper;
    }
  }
  return saturated() ? overflow_max()
                     : width_ * static_cast<double>(buckets_.size());
}

LogHistogram::LogHistogram(double min_value, double max_value,
                           unsigned subbucket_bits)
    : min_(min_value > 0.0 ? min_value : kDefaultMin),
      max_(max_value > min_ ? max_value : min_ * 2.0),
      sub_bits_(subbucket_bits > 0 && subbucket_bits <= 10 ? subbucket_bits
                                                           : 5),
      buckets_(static_cast<std::size_t>(
                   std::ceil(std::log2(max_ / min_)))
               << sub_bits_),
      min_micro_(std::numeric_limits<std::int64_t>::max()),
      max_micro_(std::numeric_limits<std::int64_t>::min()) {}

void LogHistogram::update_extremes(std::int64_t micro) {
  atomic_min(min_micro_, micro);
  atomic_max(max_micro_, micro);
}

double LogHistogram::sum() const {
  return static_cast<double>(sum_micro_.load(std::memory_order_relaxed)) /
         1e6;
}

double LogHistogram::mean() const {
  std::uint64_t n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

double LogHistogram::observed_min() const {
  if (count() == 0) return 0.0;
  return static_cast<double>(min_micro_.load(std::memory_order_relaxed)) /
         1e6;
}

double LogHistogram::observed_max() const {
  if (count() == 0) return 0.0;
  return static_cast<double>(max_micro_.load(std::memory_order_relaxed)) /
         1e6;
}

double LogHistogram::bucket_upper(std::size_t i) const {
  std::size_t octave = i >> sub_bits_;
  std::size_t sub = i & (subbuckets() - 1);
  double octave_base = min_ * static_cast<double>(std::uint64_t{1} << octave);
  return octave_base *
         (1.0 + static_cast<double>(sub + 1) /
                    static_cast<double>(subbuckets()));
}

double LogHistogram::percentile(double q) const {
  std::uint64_t n = count();
  if (n == 0) return 0.0;
  auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  if (target == 0) target = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += bucket(i);
    if (seen >= target) {
      // Clamp to the exact observed max so p100 (and any quantile landing
      // in the top occupied bucket) never overshoots the data.
      return std::min(bucket_upper(i), observed_max());
    }
  }
  // Target lies in the overflow region; the exact max is the tight bound.
  return observed_max();
}

void LogHistogram::merge(const LogHistogram& other) {
  if (!same_geometry(other)) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    std::uint64_t v = other.buckets_[i].load(std::memory_order_relaxed);
    if (v) buckets_[i].fetch_add(v, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_micro_.fetch_add(other.sum_micro_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  overflow_count_.fetch_add(
      other.overflow_count_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  if (other.count_.load(std::memory_order_relaxed) > 0) {
    atomic_min(min_micro_, other.min_micro_.load(std::memory_order_relaxed));
    atomic_max(max_micro_, other.max_micro_.load(std::memory_order_relaxed));
  }
}

void LogHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_micro_.store(0, std::memory_order_relaxed);
  overflow_count_.store(0, std::memory_order_relaxed);
  min_micro_.store(std::numeric_limits<std::int64_t>::max(),
                   std::memory_order_relaxed);
  max_micro_.store(std::numeric_limits<std::int64_t>::min(),
                   std::memory_order_relaxed);
}

Histogram::State Histogram::save_state() const {
  State s;
  s.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    s.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_micro = sum_micro_.load(std::memory_order_relaxed);
  s.overflow_count = overflow_count_.load(std::memory_order_relaxed);
  s.overflow_max_micro = overflow_max_micro_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::load_state(const State& s) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].store(i < s.buckets.size() ? s.buckets[i] : 0,
                      std::memory_order_relaxed);
  }
  count_.store(s.count, std::memory_order_relaxed);
  sum_micro_.store(s.sum_micro, std::memory_order_relaxed);
  overflow_count_.store(s.overflow_count, std::memory_order_relaxed);
  overflow_max_micro_.store(s.overflow_max_micro, std::memory_order_relaxed);
}

LogHistogram::State LogHistogram::save_state() const {
  State s;
  s.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    s.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_micro = sum_micro_.load(std::memory_order_relaxed);
  s.overflow_count = overflow_count_.load(std::memory_order_relaxed);
  s.min_micro = min_micro_.load(std::memory_order_relaxed);
  s.max_micro = max_micro_.load(std::memory_order_relaxed);
  return s;
}

void LogHistogram::load_state(const State& s) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].store(i < s.buckets.size() ? s.buckets[i] : 0,
                      std::memory_order_relaxed);
  }
  count_.store(s.count, std::memory_order_relaxed);
  sum_micro_.store(s.sum_micro, std::memory_order_relaxed);
  overflow_count_.store(s.overflow_count, std::memory_order_relaxed);
  min_micro_.store(s.min_micro, std::memory_order_relaxed);
  max_micro_.store(s.max_micro, std::memory_order_relaxed);
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      double bucket_width,
                                      std::size_t num_buckets) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bucket_width, num_buckets);
  return slot.get();
}

LogHistogram* MetricsRegistry::log_histogram(const std::string& name,
                                             double min_value,
                                             double max_value) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = log_histograms_[name];
  if (!slot) slot = std::make_unique<LogHistogram>(min_value, max_value);
  return slot.get();
}

MetricsRegistry::Values MetricsRegistry::save_values() const {
  Values v;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) v.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) v.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    v.histograms[name] = h->save_state();
  }
  for (const auto& [name, h] : log_histograms_) {
    v.log_histograms[name] = h->save_state();
  }
  return v;
}

void MetricsRegistry::restore_values(const Values& v) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, val] : v.counters) {
    auto it = counters_.find(name);
    if (it != counters_.end()) it->second->reset_to(val);
  }
  for (const auto& [name, val] : v.gauges) {
    auto it = gauges_.find(name);
    if (it != gauges_.end()) it->second->set(val);
  }
  for (const auto& [name, s] : v.histograms) {
    auto it = histograms_.find(name);
    if (it != histograms_.end()) it->second->load_state(s);
  }
  for (const auto& [name, s] : v.log_histograms) {
    auto it = log_histograms_.find(name);
    if (it != log_histograms_.end()) it->second->load_state(s);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData d;
    d.bucket_width = h->bucket_width();
    d.buckets.reserve(h->num_buckets());
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      d.buckets.push_back(h->bucket(i));
    }
    d.count = h->count();
    d.sum = h->sum();
    d.mean = h->mean();
    d.saturated = h->saturated();
    d.overflow_count = h->overflow_count();
    d.overflow_max = h->overflow_max();
    s.histograms[name] = std::move(d);
  }
  for (const auto& [name, h] : log_histograms_) {
    MetricsSnapshot::LogHistogramData d;
    d.count = h->count();
    d.sum = h->sum();
    d.mean = h->mean();
    d.min = h->observed_min();
    d.max = h->observed_max();
    d.p50 = h->percentile(0.50);
    d.p90 = h->percentile(0.90);
    d.p99 = h->percentile(0.99);
    d.p999 = h->percentile(0.999);
    d.saturated = h->saturated();
    d.overflow_count = h->overflow_count();
    s.log_histograms[name] = std::move(d);
  }
  return s;
}

}  // namespace ilu
