#include "obs/flight.hpp"
// ilu-lint: atomics-floor(relaxed) - snapshot reads ride the head_ acquire fence declared in flight.hpp; uid counter is relaxed

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/dcheck.hpp"

namespace ilu::flight {

const char* ev_name(Ev e) {
  switch (e) {
    case Ev::kNone: return "none";
    case Ev::kInvokeArrival: return "invoke_arrival";
    case Ev::kQueueEnq: return "queue_enq";
    case Ev::kQueueDeq: return "queue_deq";
    case Ev::kContainerAcquire: return "container_acquire";
    case Ev::kColdCreate: return "cold_create";
    case Ev::kEviction: return "eviction";
    case Ev::kWindowBarrier: return "window_barrier";
    case Ev::kComplete: return "complete";
    case Ev::kFailure: return "failure";
    case Ev::kPrewarm: return "prewarm";
    case Ev::kLbRoute: return "lb_route";
    case Ev::kSamplerTick: return "sampler_tick";
    case Ev::kMemoryPark: return "memory_park";
    case Ev::kReplayMilestone: return "replay_milestone";
  }
  return "?";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Event unpack(std::uint64_t w0, std::uint64_t w1) {
  Event e;
  e.ts_us = w0;
  e.code = static_cast<std::uint16_t>(w1 & 0xFFFF);
  e.tid = static_cast<std::uint16_t>((w1 >> 16) & 0xFFFF);
  e.arg = static_cast<std::uint32_t>(w1 >> 32);
  return e;
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

class Cursor {
 public:
  Cursor(const std::string& bytes) : b_(bytes) {}
  std::uint16_t u16() { return static_cast<std::uint16_t>(u(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(u(4)); }
  std::uint64_t u64() { return u(8); }
  std::size_t remaining() const { return b_.size() - pos_; }

 private:
  std::uint64_t u(int n) {
    if (pos_ + static_cast<std::size_t>(n) > b_.size())
      throw std::runtime_error("flight dump truncated");
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(b_[pos_ + i]))
           << (8 * i);
    pos_ += static_cast<std::size_t>(n);
    return v;
  }
  const std::string& b_;
  std::size_t pos_ = 0;
};

// uid source for Recorder instances: keys the uid-keyed thread_local ring
// cache so rings of destroyed test recorders are never revived.
std::atomic<std::uint64_t> g_recorder_uid{1};

// Crash-dump registration: a static registrar hands dcheck_fail a plain
// function pointer (no allocation, async-signal-tolerant modulo the mutex
// in snapshot_all, which an aborting thread does not hold).
std::string& crash_path_storage() {
  static std::string path;
  return path;
}

void flight_crash_dump() {
  const std::string& path = crash_path_storage();
  if (path.empty()) return;
  if (Recorder::instance().dump_to_file(path))
    std::fprintf(stderr, "[ilu] flight recorder dumped to %s\n", path.c_str());
}

struct DcheckDumpRegistrar {
  DcheckDumpRegistrar() { ilu::detail::g_dcheck_dump = &flight_crash_dump; }
};
DcheckDumpRegistrar g_dcheck_dump_registrar;

}  // namespace

Ring::Ring(std::size_t capacity_pow2, std::uint16_t tid)
    : slots_(round_up_pow2(std::max<std::size_t>(capacity_pow2, 2))),
      mask_(slots_.size() - 1),
      tid_(tid) {}

std::vector<Event> Ring::snapshot() const {
  std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t n = std::min<std::uint64_t>(head, slots_.size());
  std::vector<Event> out;
  out.reserve(n);
  for (std::uint64_t seq = head - n; seq != head; ++seq) {
    const Slot& s = slots_[seq & mask_];
    out.push_back(unpack(s.w0.load(std::memory_order_relaxed),
                         s.w1.load(std::memory_order_relaxed)));
  }
  return out;
}

Recorder::Recorder(bool enabled, std::size_t ring_capacity)
    : ring_capacity_(ring_capacity),
      uid_(g_recorder_uid.fetch_add(1, std::memory_order_relaxed)),
      enabled_(enabled) {}

Recorder& Recorder::instance() {
  static Recorder r;  // ilu-lint: allow(raw-thread) - process singleton, obs/ is thread-exempt anyway
  return r;
}

Ring& Recorder::local_ring() {
  // Same idiom as TransactionTracer::local_shard(): a uid-keyed
  // thread_local cache so each (thread, recorder) pair resolves its ring
  // with one hash probe after the first record, and rings owned by
  // destroyed recorders are never mistaken for ours.
  thread_local std::unordered_map<std::uint64_t, Ring*> t_rings;
  auto it = t_rings.find(uid_);
  if (it != t_rings.end()) return *it->second;
  std::lock_guard<std::mutex> lk(rings_mu_);
  auto tid = static_cast<std::uint16_t>(rings_.size());
  rings_.push_back(std::make_unique<Ring>(ring_capacity_, tid));
  Ring* r = rings_.back().get();
  t_rings.emplace(uid_, r);
  return *r;
}

std::size_t Recorder::ring_count() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  return rings_.size();
}

std::vector<RingDump> Recorder::snapshot_all() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  std::vector<RingDump> out;
  out.reserve(rings_.size());
  for (const auto& r : rings_) {
    RingDump d;
    d.tid = r->tid();
    d.recorded = r->recorded();
    d.events = r->snapshot();
    out.push_back(std::move(d));
  }
  return out;
}

std::uint64_t Recorder::recorded() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  std::uint64_t total = 0;
  for (const auto& r : rings_) total += r->recorded();
  return total;
}

std::size_t Recorder::dump(std::ostream& out) const {
  std::vector<RingDump> rings = snapshot_all();
  std::string buf;
  put_u64(buf, kDumpMagic);
  put_u32(buf, static_cast<std::uint32_t>(rings.size()));
  for (const RingDump& r : rings) {
    put_u16(buf, r.tid);
    put_u16(buf, 0);
    put_u32(buf, static_cast<std::uint32_t>(r.events.size()));
    put_u64(buf, r.recorded);
    for (const Event& e : r.events) {
      put_u64(buf, e.ts_us);
      put_u64(buf, static_cast<std::uint64_t>(e.code) |
                       (static_cast<std::uint64_t>(e.tid) << 16) |
                       (static_cast<std::uint64_t>(e.arg) << 32));
    }
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  return buf.size();
}

bool Recorder::dump_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  dump(out);
  out.flush();
  return static_cast<bool>(out);
}

void Recorder::install_crash_dump(std::string path) {
  crash_path_storage() = std::move(path);
}

const std::string& Recorder::crash_dump_path() {
  return crash_path_storage();
}

void Recorder::clear() {
  std::lock_guard<std::mutex> lk(rings_mu_);
  for (auto& r : rings_) r->clear();
}

std::vector<RingDump> decode(const std::string& bytes) {
  Cursor c(bytes);
  if (c.u64() != kDumpMagic)
    throw std::runtime_error("not an ilu flight dump (bad magic)");
  std::uint32_t ring_count = c.u32();
  std::vector<RingDump> out;
  out.reserve(ring_count);
  for (std::uint32_t i = 0; i < ring_count; ++i) {
    RingDump d;
    d.tid = c.u16();
    c.u16();  // reserved
    std::uint32_t n = c.u32();
    d.recorded = c.u64();
    d.events.reserve(n);
    for (std::uint32_t j = 0; j < n; ++j) {
      std::uint64_t w0 = c.u64();
      std::uint64_t w1 = c.u64();
      d.events.push_back(unpack(w0, w1));
    }
    out.push_back(std::move(d));
  }
  if (c.remaining() != 0)
    throw std::runtime_error("flight dump has trailing bytes");
  return out;
}

std::vector<RingDump> read_dump(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open flight dump: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return decode(ss.str());
}

std::string chrome_trace_json(const std::vector<RingDump>& rings, int pid) {
  struct Row {
    Event e;
    std::uint64_t pos;  // position within its ring, for stable ordering
  };
  std::vector<Row> rows;
  for (const RingDump& r : rings) {
    std::uint64_t pos = r.recorded >= r.events.size()
                            ? r.recorded - r.events.size()
                            : 0;
    for (const Event& e : r.events) rows.push_back({e, pos++});
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.e.ts_us != b.e.ts_us) return a.e.ts_us < b.e.ts_us;
    if (a.e.tid != b.e.tid) return a.e.tid < b.e.tid;
    return a.pos < b.pos;
  });
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Row& r : rows) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << ev_name(static_cast<Ev>(r.e.code))
        << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << r.e.ts_us
        << ",\"pid\":" << pid << ",\"tid\":" << r.e.tid
        << ",\"args\":{\"arg\":" << r.e.arg << ",\"seq\":" << r.pos << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

}  // namespace ilu::flight
