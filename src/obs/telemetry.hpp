#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
// ilu-lint: allow(include-layering) - timestamps come through the abstract Runtime clock so obs stays sim-deterministic; runtime/runtime.hpp is the interface header only (no scheduler), accepted inversion pending an obs-owned clock interface
#include "runtime/runtime.hpp"
#include "util/json.hpp"

/// Telemetry pipeline (DESIGN.md §12): a periodic sampler that snapshots
/// live instruments into time-series frames — warm-hit ratio, queue depth,
/// pool memory, events/s per shard — exported as CSV/JSON and rendered as a
/// live status line during long `RealRuntime` / `ShardedRuntime` runs.
///
/// The sampler is driven by the owning Runtime's timer queue (the
/// StatusLineReporter pattern), so under virtual time the cadence is exact
/// and deterministic, and under wall-clock time it ticks on the loop thread.
/// Every probe reads relaxed atomics (or takes the registry's snapshot
/// mutex); sampling never mutates simulation state and never touches an
/// RNG, which is what keeps an `ExperimentReport` byte-identical with
/// telemetry on or off.
///
/// Cadence contract: the first frame is captured at start + cadence, then
/// every cadence thereafter until stop() or runtime drain; `sample_now()`
/// appends an extra frame outside the schedule (typically one final frame
/// at end of run). Frames are appended on the runtime's callback thread;
/// read them after the run (the sampler is not internally locked).
namespace ilu {

/// One sample: a named-scalar cut at a runtime timestamp. Keys are sorted
/// (std::map) so exports are deterministic.
struct TelemetryFrame {
  TimePoint ts{};
  std::map<std::string, double> values;
};

class TelemetrySampler {
 public:
  TelemetrySampler(Runtime& rt, Duration cadence);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  // ---- Source wiring (before start()) --------------------------------

  /// Sample every counter and gauge in `reg` each tick, keyed
  /// "<prefix><name>". Counters also emit "<prefix><name>:rate" — the
  /// per-second delta against the previous frame (0 in the first frame).
  /// Log-histograms emit "<prefix><name>:p50/:p99/:p999" tail cuts.
  void add_registry(std::string prefix, const MetricsRegistry* reg);

  /// Point sample (gauge semantics): the probe's value is stored as-is.
  void add_probe(std::string name, std::function<double()> fn);

  /// Cumulative sample (counter semantics): stores the raw value under
  /// `name` and the per-second delta under "name:rate".
  void add_counter_probe(std::string name,
                         std::function<std::uint64_t()> fn);

  /// Derived ratio "name" = frame[numer_key] / frame[denom_key] (0 when the
  /// denominator is 0). Computed after all probes, so both keys may come
  /// from any source in the same frame.
  void add_ratio(std::string name, std::string numer_key,
                 std::string denom_key);

  // ---- Lifecycle ------------------------------------------------------

  void start();
  void stop();
  /// Capture one frame immediately (outside the cadence schedule).
  void sample_now();

  /// Mirror each frame's status line to `out` as it is captured (live
  /// progress during wall-clock runs). nullptr (default) disables.
  void set_status_stream(std::ostream* out) { status_out_ = out; }

  // ---- Results --------------------------------------------------------

  Duration cadence() const { return cadence_; }
  const std::vector<TelemetryFrame>& frames() const { return frames_; }

  /// Compact one-line render of the most recent frame ("[t=12.0s] a=1 ...");
  /// "" when no frame has been captured yet.
  std::string status_line() const;

  /// {"cadence_us":..., "frames":[{"ts_us":..., "values":{...}}, ...]}
  JsonValue to_json() const;
  void write_json(const std::string& path) const;
  /// Wide CSV: ts_us plus one column per key (union across frames, sorted);
  /// frames missing a key write an empty cell.
  void write_csv(const std::string& path) const;

 private:
  void tick();
  void capture();

  Runtime& rt_;
  Duration cadence_;
  std::vector<std::pair<std::string, const MetricsRegistry*>> registries_;
  std::vector<std::pair<std::string, std::function<double()>>> probes_;
  std::vector<std::pair<std::string, std::function<std::uint64_t()>>>
      counter_probes_;
  struct Ratio {
    std::string name, numer, denom;
  };
  std::vector<Ratio> ratios_;
  std::vector<TelemetryFrame> frames_;
  /// Previous cumulative values, for rates (keyed like the frame).
  std::map<std::string, std::pair<TimePoint, double>> prev_cum_;
  std::ostream* status_out_ = nullptr;
  bool running_ = false;
  Runtime::TimerId timer_ = Runtime::kInvalidTimer;
};

}  // namespace ilu
