#include "obs/tracer.hpp"
// ilu-lint: atomics-floor(relaxed) - the tracer uid counter only needs uniqueness

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "util/dcheck.hpp"

namespace ilu {

namespace {
std::atomic<std::uint64_t> g_tracer_uid{0};

/// Per-thread stack of open ScopedSpans (shared across tracers: nesting is a
/// property of the thread's call stack, not of any one tracer). The name is
/// the ScopedSpan's static string, kept so debug-check failures can say what
/// the thread was doing (see span_dcheck_context below).
struct OpenSpan {
  SpanId id = kNoSpan;
  const char* name = nullptr;
};
thread_local std::vector<OpenSpan> t_span_stack;

/// ILU_DCHECK context provider: report the innermost open span on the
/// failing thread, so an ownership-auditor abort names the operation (e.g.
/// "invoke") instead of just a file:line deep in the runtime.
void span_dcheck_context(char* buf, std::size_t n) {
  if (t_span_stack.empty()) return;
  const OpenSpan& s = t_span_stack.back();
  std::snprintf(buf, n, "%s #%llu, depth %zu",
                s.name != nullptr ? s.name : "?",
                static_cast<unsigned long long>(s.id), t_span_stack.size());
}

/// Registered at static-initialization time, before any simulation threads
/// exist (the hook contract in util/dcheck.hpp).
const struct DcheckContextRegistrar {
  DcheckContextRegistrar() {
    detail::g_dcheck_context = &span_dcheck_context;
  }
} g_dcheck_context_registrar;
}  // namespace

TransactionTracer::TransactionTracer(bool enabled,
                                     std::size_t max_records_per_shard)
    : uid_(g_tracer_uid.fetch_add(1, std::memory_order_relaxed) + 1),
      shard_cap_(max_records_per_shard),
      enabled_(enabled) {}

TransactionTracer::~TransactionTracer() = default;

TransactionTracer::Shard& TransactionTracer::local_shard() {
  // Cache shard pointers per (thread, tracer uid). Entries for destroyed
  // tracers are never looked up again (uids are unique), so stale pointers
  // are harmless; they cost a few bytes per tracer a thread ever touched.
  thread_local std::unordered_map<std::uint64_t, Shard*> t_shards;
  auto it = t_shards.find(uid_);
  if (it != t_shards.end()) return *it->second;
  std::lock_guard<std::mutex> lk(shards_mu_);
  auto shard = std::make_unique<Shard>();
  shard->index = static_cast<std::uint32_t>(shards_.size());
  Shard* raw = shard.get();
  shards_.push_back(std::move(shard));
  t_shards.emplace(uid_, raw);
  return *raw;
}

SpanId TransactionTracer::record(TransactionId tx, std::string_view name,
                                 TimePoint start, Duration dur,
                                 SpanId parent) {
  if (!enabled()) return kNoSpan;
  SpanId id = next_span_id();
  record_with_id(id, tx, name, start, dur, parent);
  return id;
}

void TransactionTracer::record_with_id(SpanId id, TransactionId tx,
                                       std::string_view name, TimePoint start,
                                       Duration dur, SpanId parent) {
  if (!enabled()) return;
  Shard& s = local_shard();
  std::lock_guard<SpinLock> lk(s.lock);
  s.agg[std::string(name)].add_ms(dur);
  if (s.records.size() >= shard_cap_) {
    ++s.dropped;
    return;
  }
  SpanRecord r;
  r.tx = tx;
  r.id = id;
  r.parent = parent;
  r.name = std::string(name);
  r.start = start;
  r.dur = dur;
  r.thread = s.index;
  s.records.push_back(std::move(r));
}

void TransactionTracer::record_aggregate(std::string_view name, Duration dur) {
  if (!enabled()) return;
  Shard& s = local_shard();
  std::lock_guard<SpinLock> lk(s.lock);
  s.agg[std::string(name)].add_ms(dur);
}

std::vector<SpanRecord> TransactionTracer::collect() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lk(shards_mu_);
    for (const auto& s : shards_) {
      std::lock_guard<SpinLock> sl(s->lock);
      out.insert(out.end(), s->records.begin(), s->records.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a,
                                       const SpanRecord& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.id < b.id;
  });
  return out;
}

std::map<std::string, Summary> TransactionTracer::aggregate() const {
  std::map<std::string, Summary> out;
  std::lock_guard<std::mutex> lk(shards_mu_);
  for (const auto& s : shards_) {
    std::lock_guard<SpinLock> sl(s->lock);
    for (const auto& [name, summary] : s->agg) out[name].merge(summary);
  }
  return out;
}

std::uint64_t TransactionTracer::dropped_records() const {
  std::uint64_t n = 0;
  std::lock_guard<std::mutex> lk(shards_mu_);
  for (const auto& s : shards_) {
    std::lock_guard<SpinLock> sl(s->lock);
    n += s->dropped;
  }
  return n;
}

void TransactionTracer::clear() {
  std::lock_guard<std::mutex> lk(shards_mu_);
  for (const auto& s : shards_) {
    std::lock_guard<SpinLock> sl(s->lock);
    s->records.clear();
    s->agg.clear();
    s->dropped = 0;
  }
}

ScopedSpan::ScopedSpan(TransactionTracer& tracer, Runtime& rt,
                       TransactionId tx, const char* name)
    : tracer_(tracer), rt_(rt), tx_(tx), name_(name) {
  if (!tracer_.enabled()) return;
  id_ = tracer_.next_span_id();
  parent_ = t_span_stack.empty() ? kNoSpan : t_span_stack.back().id;
  t_span_stack.push_back(OpenSpan{id_, name});
  start_ = rt_.now();
}

ScopedSpan::~ScopedSpan() {
  if (id_ == kNoSpan) return;
  t_span_stack.pop_back();
  tracer_.record_with_id(id_, tx_, name_, start_, rt_.now() - start_,
                         parent_);
}

}  // namespace ilu
