#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// Live metrics: thread-safe counters, gauges, and fixed-bucket histograms
/// with cheap relaxed-atomic updates, collected in a name-keyed registry.
///
/// Registration (looking an instrument up by name) takes a mutex and is a
/// cold-path operation — components resolve their instruments once at wiring
/// time and hold the returned pointers, which stay valid for the registry's
/// lifetime. Updates through those pointers are single atomic RMW ops, so
/// the invoke hot path never locks. snapshot() reads every instrument with
/// relaxed loads: values are individually coherent, not a consistent cut
/// (fine for status lines and end-of-run dumps).
namespace ilu {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed level (queue depth, containers idle, MB in use).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-width bucketed histogram over [0, width * buckets); values past the
/// end land in the final (overflow) bucket, negatives in the first. Each
/// observation is two relaxed atomic adds (bucket + sum) — no lock, no
/// allocation.
class Histogram {
 public:
  Histogram(double bucket_width, std::size_t num_buckets);

  void observe(double x);

  double bucket_width() const { return width_; }
  std::size_t num_buckets() const { return buckets_.size(); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const;
  double mean() const;
  /// Upper edge of the bucket containing quantile q (q in (0, 1]); 0 when
  /// empty. The overflow bucket reports the histogram's upper bound.
  double quantile_upper_bound(double q) const;

 private:
  double width_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  /// Sum in fixed-point (micro-units) so it can be a relaxed integer add.
  std::atomic<std::int64_t> sum_micro_{0};
};

/// Point-in-time copy of every instrument in a registry.
struct MetricsSnapshot {
  struct HistogramData {
    double bucket_width = 0.0;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramData> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. Returned pointers remain valid until the
  /// registry is destroyed. histogram() with a name that already exists
  /// returns the existing instrument (its geometry wins).
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name, double bucket_width,
                       std::size_t num_buckets);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ilu
