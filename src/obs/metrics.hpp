#pragma once
// ilu-lint: atomics-floor(relaxed) - instruments are monotone counters/last-write gauges scraped by the sampler; per-op ordering buys nothing

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// Live metrics: thread-safe counters, gauges, and bucketed histograms with
/// cheap relaxed-atomic updates, collected in a name-keyed registry.
///
/// Registration (looking an instrument up by name) takes a mutex and is a
/// cold-path operation — components resolve their instruments once at wiring
/// time and hold the returned pointers, which stay valid for the registry's
/// lifetime (the registry-lookup-hotpath lint check enforces this).
/// Updates through those pointers are single atomic RMW ops, so the invoke
/// hot path never locks. snapshot() reads every instrument with relaxed
/// loads: values are individually coherent, not a consistent cut (fine for
/// status lines and end-of-run dumps).
///
/// Two histogram shapes:
///   Histogram     fixed-width buckets — legacy; kept for instruments whose
///                 range is genuinely known and narrow.
///   LogHistogram  HDR-style log-bucketed (octave × subbucket) — the default
///                 for latencies, honest p50/p99/p999 over µs→s with bounded
///                 relative error and a deterministic merge (DESIGN.md §12).
namespace ilu {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// Rollback restore only (MetricsRegistry::restore_values): rewinding a
  /// speculative window is the one sanctioned way a counter moves backwards.
  void reset_to(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed level (queue depth, containers idle, MB in use).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-width bucketed histogram over [0, width * buckets); values past the
/// end land in the final bucket, negatives in the first. Each observation is
/// two relaxed atomic adds (bucket + sum) — no lock, no allocation.
///
/// Values at or past the nominal range additionally bump an overflow count
/// and an exact overflow maximum, and mark the histogram `saturated` — so a
/// high quantile landing in the final bucket reports the true observed max
/// instead of silently flattening at the bucket upper bound.
class Histogram {
 public:
  Histogram(double bucket_width, std::size_t num_buckets);

  void observe(double x);

  double bucket_width() const { return width_; }
  std::size_t num_buckets() const { return buckets_.size(); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const;
  double mean() const;
  /// Upper edge of the bucket containing quantile q (q in (0, 1]); 0 when
  /// empty. When the target lands in the final bucket of a saturated
  /// histogram, returns the exact overflow maximum.
  double quantile_upper_bound(double q) const;

  /// Observations at or past width * num_buckets.
  std::uint64_t overflow_count() const {
    return overflow_count_.load(std::memory_order_relaxed);
  }
  /// True when any observation exceeded the nominal range.
  bool saturated() const { return overflow_count() > 0; }
  /// Largest overflowing observation (0 when none).
  double overflow_max() const;

  /// Full mutable state, for speculative-window save/restore
  /// (MetricsRegistry::save_values). Geometry (width, bucket count) is not
  /// part of the state — it is immutable after construction.
  struct State {
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::int64_t sum_micro = 0;
    std::uint64_t overflow_count = 0;
    std::int64_t overflow_max_micro = 0;
  };
  State save_state() const;
  void load_state(const State& s);

 private:
  double width_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  /// Sum in fixed-point (micro-units) so it can be a relaxed integer add.
  std::atomic<std::int64_t> sum_micro_{0};
  std::atomic<std::uint64_t> overflow_count_{0};
  std::atomic<std::int64_t> overflow_max_micro_{0};
};

/// HDR-style log-bucketed histogram over [min_value, max_value): each
/// power-of-two octave of the range is split into 2^subbucket_bits linear
/// subbuckets, so the relative error of any quantile upper bound is at most
/// 1 / 2^subbucket_bits (≈3.1% at the default 32 subbuckets/octave) while
/// the whole µs→s range costs ~1 KB of buckets.
///
/// An observation is a handful of relaxed atomic ops; the bucket index is
/// pure bit arithmetic on a fixed-point mantissa (no log, no loop):
///
///   t      = round(x / min_value * 1024)           (fixed point, 10 frac bits)
///   octave = bit_width(t) - 1 - 10                 (which power of two)
///   sub    = top `subbucket_bits` bits of t below its leading one
///
/// Exact observed min/max are kept via CAS so p0/p100 (and saturated p99s)
/// are exact, not bucket edges. Values below min_value clamp into bucket 0;
/// values at or past max_value are tracked as overflow with an exact max
/// (`saturated()`), mirroring Histogram.
///
/// merge() is a pure integer element-wise add (plus CAS min/max), hence
/// commutative and associative: merging per-shard histograms yields the same
/// result at any shard count, in any order — required by the determinism
/// contract.
class LogHistogram {
 public:
  static constexpr double kDefaultMin = 1e-3;  // 1 µs when values are ms
  static constexpr double kDefaultMax = 1e5;   // 100 s when values are ms

  explicit LogHistogram(double min_value = kDefaultMin,
                        double max_value = kDefaultMax,
                        unsigned subbucket_bits = 5);

  void observe(double x) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_micro_.fetch_add(static_cast<std::int64_t>(x * 1e6),
                         std::memory_order_relaxed);
    update_extremes(static_cast<std::int64_t>(x * 1e6));
    if (x >= max_) {
      // Overflow lives outside the bucket array so the percentile walk can
      // tell "past the range" apart from "in the top bucket".
      overflow_count_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    buckets_[index_of(x)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Upper bound of the value at quantile q (q in (0, 1]); 0 when empty.
  /// Never exceeds the exact observed max; a target landing in the overflow
  /// region returns the exact overflow max.
  double percentile(double q) const;

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const;
  double mean() const;
  /// Exact observed extremes (0 when empty).
  double observed_min() const;
  double observed_max() const;

  std::uint64_t overflow_count() const {
    return overflow_count_.load(std::memory_order_relaxed);
  }
  bool saturated() const { return overflow_count() > 0; }

  double min_value() const { return min_; }
  double max_value() const { return max_; }
  std::size_t subbuckets() const { return std::size_t{1} << sub_bits_; }
  std::size_t num_buckets() const { return buckets_.size(); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper value edge of bucket i.
  double bucket_upper(std::size_t i) const;

  /// True when `other` has identical geometry (merge precondition).
  bool same_geometry(const LogHistogram& other) const {
    return min_ == other.min_ && sub_bits_ == other.sub_bits_ &&
           buckets_.size() == other.buckets_.size();
  }
  /// Element-wise integer merge of `other` into this (deterministic in any
  /// order/grouping). Geometries must match.
  void merge(const LogHistogram& other);

  /// Zero every bucket and scalar, returning the instrument to its
  /// just-constructed state. Not atomic with respect to concurrent
  /// observe() — quiesce writers first (the live-load harness resets
  /// between sweep stages, after each stage has drained).
  void reset();

  /// Full mutable state, for speculative-window save/restore
  /// (MetricsRegistry::save_values). Geometry is immutable and excluded.
  struct State {
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::int64_t sum_micro = 0;
    std::uint64_t overflow_count = 0;
    std::int64_t min_micro = 0;
    std::int64_t max_micro = 0;
  };
  State save_state() const;
  void load_state(const State& s);

 private:
  /// Pure bucket index for x in [0, max_value). Underflow and NaN clamp to
  /// bucket 0.
  std::size_t index_of(double x) const {
    double r = x / min_;
    if (!(r >= 1.0)) return 0;
    auto t = static_cast<std::uint64_t>(r * 1024.0);
    unsigned top = static_cast<unsigned>(std::bit_width(t)) - 1;  // ≥ 10
    std::size_t octave = top - 10;
    std::size_t sub = static_cast<std::size_t>(t >> (top - sub_bits_)) &
                      (subbuckets() - 1);
    std::size_t i = (octave << sub_bits_) | sub;
    return i < buckets_.size() ? i : buckets_.size() - 1;
  }

  void update_extremes(std::int64_t micro);

  double min_;
  double max_;
  unsigned sub_bits_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_micro_{0};
  std::atomic<std::uint64_t> overflow_count_{0};
  std::atomic<std::int64_t> min_micro_;
  std::atomic<std::int64_t> max_micro_;
};

/// Point-in-time copy of every instrument in a registry.
struct MetricsSnapshot {
  struct HistogramData {
    double bucket_width = 0.0;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    bool saturated = false;
    std::uint64_t overflow_count = 0;
    double overflow_max = 0.0;
  };
  /// Scalars only: the ~900 raw buckets stay on the live instrument; the
  /// snapshot carries the digested tail shape every exporter wants.
  struct LogHistogramData {
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    bool saturated = false;
    std::uint64_t overflow_count = 0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, LogHistogramData> log_histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. Returned pointers remain valid until the
  /// registry is destroyed. histogram()/log_histogram() with a name that
  /// already exists returns the existing instrument (its geometry wins).
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name, double bucket_width,
                       std::size_t num_buckets);
  LogHistogram* log_histogram(const std::string& name,
                              double min_value = LogHistogram::kDefaultMin,
                              double max_value = LogHistogram::kDefaultMax);

  MetricsSnapshot snapshot() const;

  /// All mutable instrument state, keyed by name — the registry's
  /// speculative-window checkpoint payload (DESIGN.md §16). Unlike
  /// MetricsSnapshot (a digest for exporters), Values round-trips exactly.
  struct Values {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, Histogram::State> histograms;
    std::map<std::string, LogHistogram::State> log_histograms;
  };
  Values save_values() const;
  /// Restore every instrument named in `v` to its saved state. Instruments
  /// created after the save keep their current values — registration is a
  /// wiring-time act, so a speculative window never creates instruments,
  /// and any it might observe into are rewound by name here.
  void restore_values(const Values& v);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<LogHistogram>> log_histograms_;
};

}  // namespace ilu
