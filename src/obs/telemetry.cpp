#include "obs/telemetry.hpp"

#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/flight.hpp"
#include "util/csv.hpp"

namespace ilu {

namespace {

/// Per-second rate from (prev, cur) cumulative samples; 0 for the first
/// frame or a non-advancing clock.
double rate_per_s(const std::map<std::string, std::pair<TimePoint, double>>&
                      prev_map,
                  const std::string& key, TimePoint now, double cur) {
  auto it = prev_map.find(key);
  if (it == prev_map.end()) return 0.0;
  auto dt_us = (now - it->second.first).count();
  if (dt_us <= 0) return 0.0;
  return (cur - it->second.second) * 1e6 / static_cast<double>(dt_us);
}

}  // namespace

TelemetrySampler::TelemetrySampler(Runtime& rt, Duration cadence)
    : rt_(rt), cadence_(cadence) {}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::add_registry(std::string prefix,
                                    const MetricsRegistry* reg) {
  registries_.emplace_back(std::move(prefix), reg);
}

void TelemetrySampler::add_probe(std::string name,
                                 std::function<double()> fn) {
  probes_.emplace_back(std::move(name), std::move(fn));
}

void TelemetrySampler::add_counter_probe(std::string name,
                                         std::function<std::uint64_t()> fn) {
  counter_probes_.emplace_back(std::move(name), std::move(fn));
}

void TelemetrySampler::add_ratio(std::string name, std::string numer_key,
                                 std::string denom_key) {
  ratios_.push_back(
      {std::move(name), std::move(numer_key), std::move(denom_key)});
}

void TelemetrySampler::start() {
  if (running_ || cadence_ <= Duration::zero()) return;
  running_ = true;
  timer_ = rt_.schedule(cadence_, [this] { tick(); });
}

void TelemetrySampler::stop() {
  running_ = false;
  if (timer_ != Runtime::kInvalidTimer) {
    rt_.cancel(timer_);
    timer_ = Runtime::kInvalidTimer;
  }
}

void TelemetrySampler::sample_now() { capture(); }

void TelemetrySampler::tick() {
  timer_ = Runtime::kInvalidTimer;
  if (!running_) return;
  capture();
  if (running_) timer_ = rt_.schedule(cadence_, [this] { tick(); });
}

void TelemetrySampler::capture() {
  TelemetryFrame f;
  f.ts = rt_.now();
  std::map<std::string, std::pair<TimePoint, double>> next_cum;

  for (const auto& [prefix, reg] : registries_) {
    MetricsSnapshot snap = reg->snapshot();
    for (const auto& [name, v] : snap.counters) {
      std::string key = prefix + name;
      auto cur = static_cast<double>(v);
      f.values[key] = cur;
      f.values[key + ":rate"] = rate_per_s(prev_cum_, key, f.ts, cur);
      next_cum[key] = {f.ts, cur};
    }
    for (const auto& [name, v] : snap.gauges) {
      f.values[prefix + name] = static_cast<double>(v);
    }
    for (const auto& [name, h] : snap.log_histograms) {
      f.values[prefix + name + ":p50"] = h.p50;
      f.values[prefix + name + ":p99"] = h.p99;
      f.values[prefix + name + ":p999"] = h.p999;
    }
  }
  for (const auto& [name, fn] : probes_) f.values[name] = fn();
  for (const auto& [name, fn] : counter_probes_) {
    auto cur = static_cast<double>(fn());
    f.values[name] = cur;
    f.values[name + ":rate"] = rate_per_s(prev_cum_, name, f.ts, cur);
    next_cum[name] = {f.ts, cur};
  }
  for (const Ratio& r : ratios_) {
    auto ni = f.values.find(r.numer);
    auto di = f.values.find(r.denom);
    double numer = ni != f.values.end() ? ni->second : 0.0;
    double denom = di != f.values.end() ? di->second : 0.0;
    f.values[r.name] = denom != 0.0 ? numer / denom : 0.0;
  }

  prev_cum_ = std::move(next_cum);
  frames_.push_back(std::move(f));
  flight::record(rt_.now(), flight::Ev::kSamplerTick,
                 static_cast<std::uint32_t>(frames_.size() - 1));
  if (status_out_ != nullptr) (*status_out_) << status_line() << "\n";
}

std::string TelemetrySampler::status_line() const {
  if (frames_.empty()) return "";
  const TelemetryFrame& f = frames_.back();
  std::ostringstream out;
  out << "[t=" << std::fixed << std::setprecision(1) << to_sec(f.ts) << "s]";
  out.unsetf(std::ios_base::floatfield);
  out.precision(6);
  for (const auto& [key, v] : f.values) {
    // Raw cumulative counters are noise on a status line; their :rate (and
    // everything else) carries the signal.
    if (f.values.count(key + ":rate")) continue;
    out << " " << key << "=" << v;
  }
  return out.str();
}

JsonValue TelemetrySampler::to_json() const {
  JsonArray frames;
  frames.reserve(frames_.size());
  for (const TelemetryFrame& f : frames_) {
    JsonObject values;
    for (const auto& [key, v] : f.values) values[key] = JsonValue(v);
    JsonObject fj;
    fj["ts_us"] = JsonValue(static_cast<std::int64_t>(f.ts.count()));
    fj["values"] = JsonValue(std::move(values));
    frames.emplace_back(std::move(fj));
  }
  JsonObject doc;
  doc["cadence_us"] = JsonValue(static_cast<std::int64_t>(cadence_.count()));
  doc["frames"] = JsonValue(std::move(frames));
  return JsonValue(std::move(doc));
}

void TelemetrySampler::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << to_json().dump(2) << "\n";
}

void TelemetrySampler::write_csv(const std::string& path) const {
  std::set<std::string> keys;
  for (const TelemetryFrame& f : frames_) {
    for (const auto& [key, v] : f.values) keys.insert(key);
  }
  CsvWriter w(path);
  std::vector<std::string> header{"ts_us"};
  header.insert(header.end(), keys.begin(), keys.end());
  w.write_row(header);
  for (const TelemetryFrame& f : frames_) {
    std::vector<std::string> row;
    row.reserve(header.size());
    row.push_back(std::to_string(f.ts.count()));
    for (const std::string& key : keys) {
      auto it = f.values.find(key);
      if (it == f.values.end()) {
        row.emplace_back();
      } else {
        std::ostringstream v;
        v << it->second;
        row.push_back(v.str());
      }
    }
    w.write_row(row);
  }
}

}  // namespace ilu
