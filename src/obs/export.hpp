#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
// ilu-lint: allow(include-layering) - timestamps come through the abstract Runtime clock so obs stays sim-deterministic; runtime/runtime.hpp is the interface header only (no scheduler), accepted inversion pending an obs-owned clock interface
#include "runtime/runtime.hpp"
#include "util/json.hpp"

/// Exporters for the observability layer:
///  - Chrome trace-event JSON for span trees (loadable in Perfetto or
///    chrome://tracing): one complete ("ph":"X") event per span with ts/dur
///    in microseconds, pid = the exporting process/worker, tid = the
///    recording shard.
///  - JSON / CSV snapshots of a MetricsRegistry.
///  - A periodic status-line reporter for long simulations.
namespace ilu {

/// Build the trace-event document. Events are sorted by ts so the output is
/// monotonic regardless of shard merge order.
JsonValue chrome_trace_value(const std::vector<SpanRecord>& spans,
                             int pid = 0);
std::string chrome_trace_json(const std::vector<SpanRecord>& spans,
                              int pid = 0);
void write_chrome_trace(const std::vector<SpanRecord>& spans,
                        const std::string& path, int pid = 0);

/// Metrics snapshot serialization.
JsonValue metrics_json(const MetricsSnapshot& snap);
void write_metrics_json(const MetricsSnapshot& snap, const std::string& path);
/// CSV rows: kind,name,value (histograms add count/mean/p50/p99 rows).
void write_metrics_csv(const MetricsSnapshot& snap, const std::string& path);

/// Periodically renders a one-line status string and writes it to a sink
/// (stderr by default) — live queue/pool/cache visibility during long
/// simulations. Driven by the Runtime so it works under both virtual and
/// wall-clock time; start()/stop() from the runtime's callback thread (or
/// before/after the run), like the worker's own background timers.
class StatusLineReporter {
 public:
  using Render = std::function<std::string()>;

  StatusLineReporter(Runtime& rt, Duration interval, Render render,
                     std::ostream* out = nullptr);
  ~StatusLineReporter();

  StatusLineReporter(const StatusLineReporter&) = delete;
  StatusLineReporter& operator=(const StatusLineReporter&) = delete;

  void start();
  void stop();
  std::uint64_t emitted() const { return emitted_; }

 private:
  void tick();

  Runtime& rt_;
  Duration interval_;
  Render render_;
  std::ostream* out_;
  bool running_ = false;
  Runtime::TimerId timer_ = Runtime::kInvalidTimer;
  std::uint64_t emitted_ = 0;
};

}  // namespace ilu
