#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace ilu {

JsonValue chrome_trace_value(const std::vector<SpanRecord>& spans, int pid) {
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const auto& s : spans) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              if (a->start != b->start) return a->start < b->start;
              return a->id < b->id;
            });

  JsonArray events;
  events.reserve(ordered.size());
  for (const SpanRecord* s : ordered) {
    JsonObject args;
    args["tx"] = JsonValue(s->tx);
    args["span"] = JsonValue(s->id);
    args["parent"] = JsonValue(s->parent);
    JsonObject ev;
    ev["name"] = JsonValue(s->name);
    ev["cat"] = JsonValue("control_plane");
    ev["ph"] = JsonValue("X");
    ev["ts"] = JsonValue(static_cast<std::int64_t>(s->start.count()));
    ev["dur"] = JsonValue(static_cast<std::int64_t>(s->dur.count()));
    ev["pid"] = JsonValue(pid);
    ev["tid"] = JsonValue(static_cast<std::int64_t>(s->thread));
    ev["args"] = JsonValue(std::move(args));
    events.emplace_back(std::move(ev));
  }
  JsonObject doc;
  doc["traceEvents"] = JsonValue(std::move(events));
  doc["displayTimeUnit"] = JsonValue("ms");
  return JsonValue(std::move(doc));
}

std::string chrome_trace_json(const std::vector<SpanRecord>& spans, int pid) {
  return chrome_trace_value(spans, pid).dump();
}

void write_chrome_trace(const std::vector<SpanRecord>& spans,
                        const std::string& path, int pid) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << chrome_trace_json(spans, pid) << "\n";
}

JsonValue metrics_json(const MetricsSnapshot& snap) {
  JsonObject counters;
  for (const auto& [name, v] : snap.counters) counters[name] = JsonValue(v);
  JsonObject gauges;
  for (const auto& [name, v] : snap.gauges) {
    gauges[name] = JsonValue(static_cast<std::int64_t>(v));
  }
  JsonObject histograms;
  for (const auto& [name, h] : snap.histograms) {
    JsonArray buckets;
    buckets.reserve(h.buckets.size());
    for (std::uint64_t b : h.buckets) buckets.emplace_back(b);
    JsonObject hj;
    hj["bucket_width"] = JsonValue(h.bucket_width);
    hj["buckets"] = JsonValue(std::move(buckets));
    hj["count"] = JsonValue(h.count);
    hj["sum"] = JsonValue(h.sum);
    hj["mean"] = JsonValue(h.mean);
    hj["saturated"] = JsonValue(h.saturated);
    hj["overflow_count"] = JsonValue(h.overflow_count);
    hj["overflow_max"] = JsonValue(h.overflow_max);
    histograms[name] = JsonValue(std::move(hj));
  }
  JsonObject log_histograms;
  for (const auto& [name, h] : snap.log_histograms) {
    JsonObject hj;
    hj["count"] = JsonValue(h.count);
    hj["sum"] = JsonValue(h.sum);
    hj["mean"] = JsonValue(h.mean);
    hj["min"] = JsonValue(h.min);
    hj["max"] = JsonValue(h.max);
    hj["p50"] = JsonValue(h.p50);
    hj["p90"] = JsonValue(h.p90);
    hj["p99"] = JsonValue(h.p99);
    hj["p999"] = JsonValue(h.p999);
    hj["saturated"] = JsonValue(h.saturated);
    hj["overflow_count"] = JsonValue(h.overflow_count);
    log_histograms[name] = JsonValue(std::move(hj));
  }
  JsonObject doc;
  doc["counters"] = JsonValue(std::move(counters));
  doc["gauges"] = JsonValue(std::move(gauges));
  doc["histograms"] = JsonValue(std::move(histograms));
  doc["log_histograms"] = JsonValue(std::move(log_histograms));
  return JsonValue(std::move(doc));
}

void write_metrics_json(const MetricsSnapshot& snap, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << metrics_json(snap).dump(2) << "\n";
}

void write_metrics_csv(const MetricsSnapshot& snap, const std::string& path) {
  CsvWriter w(path);
  w.row("kind", "name", "field", "value");
  for (const auto& [name, v] : snap.counters) {
    w.row("counter", name, "value", v);
  }
  for (const auto& [name, v] : snap.gauges) {
    w.row("gauge", name, "value", v);
  }
  for (const auto& [name, h] : snap.histograms) {
    w.row("histogram", name, "count", h.count);
    w.row("histogram", name, "sum", h.sum);
    w.row("histogram", name, "mean", h.mean);
    w.row("histogram", name, "saturated", h.saturated ? 1 : 0);
    w.row("histogram", name, "overflow_max", h.overflow_max);
  }
  for (const auto& [name, h] : snap.log_histograms) {
    w.row("log_histogram", name, "count", h.count);
    w.row("log_histogram", name, "mean", h.mean);
    w.row("log_histogram", name, "min", h.min);
    w.row("log_histogram", name, "max", h.max);
    w.row("log_histogram", name, "p50", h.p50);
    w.row("log_histogram", name, "p90", h.p90);
    w.row("log_histogram", name, "p99", h.p99);
    w.row("log_histogram", name, "p999", h.p999);
    w.row("log_histogram", name, "saturated", h.saturated ? 1 : 0);
  }
}

StatusLineReporter::StatusLineReporter(Runtime& rt, Duration interval,
                                       Render render, std::ostream* out)
    : rt_(rt),
      interval_(interval),
      render_(std::move(render)),
      out_(out) {}

StatusLineReporter::~StatusLineReporter() { stop(); }

void StatusLineReporter::start() {
  if (running_ || interval_ <= Duration::zero() || !render_) return;
  running_ = true;
  timer_ = rt_.schedule(interval_, [this] { tick(); });
}

void StatusLineReporter::stop() {
  running_ = false;
  if (timer_ != Runtime::kInvalidTimer) {
    rt_.cancel(timer_);
    timer_ = Runtime::kInvalidTimer;
  }
}

void StatusLineReporter::tick() {
  timer_ = Runtime::kInvalidTimer;
  if (!running_) return;
  std::string line = render_();
  ++emitted_;
  if (out_ != nullptr) {
    (*out_) << line << "\n";
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  if (running_) timer_ = rt_.schedule(interval_, [this] { tick(); });
}

}  // namespace ilu
