#pragma once
// ilu-lint: atomics-floor(relaxed) - id generators and the enabled_ hint are order-free
// ilu-lint: atomics-floor(acquire: flag_) - SpinLock: test_and_set(acquire)/clear(release) is the lock protocol itself

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/span.hpp"
// ilu-lint: allow(include-layering) - timestamps come through the abstract Runtime clock so obs stays sim-deterministic; runtime/runtime.hpp is the interface header only (no scheduler), accepted inversion pending an obs-owned clock interface
#include "runtime/runtime.hpp"
#include "util/stats.hpp"

/// Transaction-scoped span tracing.
///
/// Each invocation gets a TransactionId; every control-plane stage records a
/// span (name, start, duration, parent) against it. Spans land in per-thread
/// shards — the recording thread only ever touches its own shard, guarded by
/// a spinlock that is uncontended except while a merge is in progress — so
/// the hot path never takes a shared lock. Merging (for export or for the
/// Table 1 aggregate view) walks all shards on demand.
///
/// Two storage layers per shard:
///  - an aggregate map name -> Summary, always maintained while enabled
///    (this is what reproduces Table 1 at any workload scale), and
///  - the bounded span-record log used for Chrome-trace export; once a
///    shard's record cap is reached further records are counted as dropped
///    rather than grown without bound (long trace replays would otherwise
///    accumulate gigabytes of spans).
///
/// When disabled, record() is a single relaxed atomic load and return — the
/// paper ships tracing off by default precisely because the disabled path
/// must cost nothing measurable (bench/obs_overhead.cpp checks this).
namespace ilu {

class TransactionTracer {
 public:
  /// Default cap on span records held per shard (~16 MB of spans); the
  /// aggregate view is unaffected by the cap.
  static constexpr std::size_t kDefaultShardCap = 1u << 18;

  explicit TransactionTracer(bool enabled = true,
                             std::size_t max_records_per_shard =
                                 kDefaultShardCap);
  ~TransactionTracer();

  TransactionTracer(const TransactionTracer&) = delete;
  TransactionTracer& operator=(const TransactionTracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Allocate the transaction id for a new invocation (never 0).
  TransactionId begin_transaction() {
    return next_tx_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Pre-allocate a span id (used by ScopedSpan so children can name their
  /// parent before the parent's record is written).
  SpanId next_span_id() {
    return next_span_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Record a completed span. Returns its id (kNoSpan when disabled).
  SpanId record(TransactionId tx, std::string_view name, TimePoint start,
                Duration dur, SpanId parent = kNoSpan);

  /// Record a span whose id was pre-allocated with next_span_id().
  void record_with_id(SpanId id, TransactionId tx, std::string_view name,
                      TimePoint start, Duration dur, SpanId parent);

  /// Aggregate-only record: contributes to the Table 1 summaries without
  /// appending to the span-record log (legacy SpanTracer::record path).
  void record_aggregate(std::string_view name, Duration dur);

  /// Merge all shards: span records sorted by (start, id).
  std::vector<SpanRecord> collect() const;

  /// Merge all shards' aggregate maps (Table 1 view).
  std::map<std::string, Summary> aggregate() const;

  /// Records refused because a shard hit its cap.
  std::uint64_t dropped_records() const;

  /// Reset all shards (records, aggregates, drop counts). Safe to call
  /// concurrently with recording; ids keep advancing.
  void clear();

 private:
  /// Test-and-set spinlock: per-shard, owned by one writer thread, so it is
  /// contended only while a merge briefly holds it. The uncontended path is
  /// a single successful TAS; on contention we yield rather than burn the
  /// core the merge needs to finish.
  class SpinLock {
   public:
    void lock() {
      while (flag_.test_and_set(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
    void unlock() { flag_.clear(std::memory_order_release); }

   private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  };

  struct Shard {
    SpinLock lock;
    std::vector<SpanRecord> records;
    std::map<std::string, Summary> agg;
    std::uint64_t dropped = 0;
    std::uint32_t index = 0;
  };

  Shard& local_shard();

  const std::uint64_t uid_;  // keys the thread-local shard cache
  const std::size_t shard_cap_;
  std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> next_tx_{0};
  std::atomic<std::uint64_t> next_span_{0};
  mutable std::mutex shards_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// RAII wall-clock span: measures construction-to-destruction against the
/// runtime clock and records it on destruction. Maintains a per-thread span
/// stack so lexically nested ScopedSpans form a parent/child tree without
/// the caller threading parent ids by hand. Strictly LIFO per thread.
class ScopedSpan {
 public:
  ScopedSpan(TransactionTracer& tracer, Runtime& rt, TransactionId tx,
             const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// kNoSpan when the tracer is disabled.
  SpanId id() const { return id_; }

 private:
  TransactionTracer& tracer_;
  Runtime& rt_;
  TransactionId tx_;
  const char* name_;
  TimePoint start_{};
  SpanId id_ = kNoSpan;
  SpanId parent_ = kNoSpan;
};

}  // namespace ilu
