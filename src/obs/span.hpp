#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"

/// Span identity types for the transaction-scoped tracer (Table 1 of the
/// paper is produced by instrumenting every control-plane component with the
/// Rust `tracing` crate; the analogue here is a tree of timed spans keyed by
/// the invocation's transaction id).
namespace ilu {

/// Identifies one end-to-end invocation through the control plane. Every
/// span recorded on behalf of that invocation carries its transaction id,
/// which is what lets a trace dump be re-grouped per invocation.
using TransactionId = std::uint64_t;

/// Identifies one span within a tracer. 0 (`kNoSpan`) means "no span":
/// a parent of kNoSpan marks a root span.
using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// One completed span. `thread` is the index of the per-thread shard that
/// recorded it (exported as the Chrome trace `tid`).
struct SpanRecord {
  TransactionId tx = 0;
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  TimePoint start{};
  Duration dur{};
  std::uint32_t thread = 0;
};

}  // namespace ilu
