#pragma once
// ilu-lint: atomics-floor(relaxed) - per-ring head_ publishes slots with an explicit release store; slot words are relaxed behind it; enabled_ is a sampling hint

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/time.hpp"

/// Always-on flight recorder (DESIGN.md §12).
///
/// A crash-safe, last-N-events trace of what the control plane was doing:
/// every hot-path milestone (invoke arrival, queue enq/deq, container
/// acquire / cold create, eviction, shard window barrier, ...) stamps one
/// fixed-size 16-byte binary record into a per-thread lock-free SPSC ring.
/// The writer is the owning thread; the only reader is a post-mortem or
/// end-of-run drain. Recording is
///
///   1 relaxed enabled-load + 1 thread-local load + 2 relaxed atomic
///   stores + 1 release store
///
/// — a few nanoseconds, cheap enough to leave on in production runs (the
/// paper's control plane is instrumented the same way: observability that is
/// too expensive to leave on never observes the incident). Rings overwrite
/// their oldest records once full, so memory stays bounded at
/// capacity × 16 B per thread regardless of run length.
///
/// Post-mortem: `Recorder::install_crash_dump(path)` hooks the
/// `ILU_DCHECK` failure path (util/dcheck.hpp), so an aborting shard leaves
/// a readable binary dump of the last events on every thread. The dump
/// decodes back with `decode()` / `read_dump()` and converts to Chrome
/// trace-event JSON via `trace_tool flightdump`.
namespace ilu::flight {

/// Event codes. Values are part of the on-disk dump format: append new
/// codes, never renumber existing ones.
enum class Ev : std::uint16_t {
  kNone = 0,
  kInvokeArrival = 1,    // arg = function id
  kQueueEnq = 2,         // arg = function id
  kQueueDeq = 3,         // arg = function id
  kContainerAcquire = 4, // arg = function id (warm hit)
  kColdCreate = 5,       // arg = function id
  kEviction = 6,         // arg = function id of the victim
  kWindowBarrier = 7,    // arg = shard index
  kComplete = 8,         // arg = function id
  kFailure = 9,          // arg = function id
  kPrewarm = 10,         // arg = function id
  kLbRoute = 11,         // arg = worker index
  kSamplerTick = 12,     // arg = frame index
  kMemoryPark = 13,      // arg = function id (cold start parked on memory)
  kReplayMilestone = 14, // arg = percent of trace events submitted (0..100)
};

/// Human-readable name for an event code ("?" for unknown codes).
const char* ev_name(Ev e);

/// One decoded flight record. The in-ring representation is two 64-bit
/// words: word0 = ts_us, word1 = code | (tid << 16) | (arg << 32).
struct Event {
  std::uint64_t ts_us = 0;  ///< Runtime timestamp (virtual or wall µs).
  std::uint16_t code = 0;   ///< Ev value.
  std::uint16_t tid = 0;    ///< Ring index of the recording thread.
  std::uint32_t arg = 0;    ///< Code-specific payload (fn id, shard, ...).
};
static_assert(sizeof(Event) == 16, "flight records are 16 bytes");

/// Lock-free single-producer ring with overwrite-oldest semantics. The
/// writer thread is the sole mutator; any thread may snapshot concurrently.
/// Each slot is two relaxed atomics, so a concurrent snapshot is race-free
/// by atomicity; a record the writer is lapping *during* the snapshot can
/// come out torn across its two words (acceptable for a crash dump — drains
/// of a quiescent ring are exact).
class Ring {
 public:
  Ring(std::size_t capacity_pow2, std::uint16_t tid);

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  /// Writer-thread only. Never blocks, never allocates.
  void record(std::uint64_t ts_us, Ev code, std::uint32_t arg) {
    std::uint64_t seq = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[seq & mask_];
    s.w0.store(ts_us, std::memory_order_relaxed);
    s.w1.store(static_cast<std::uint64_t>(code) |
                   (static_cast<std::uint64_t>(tid_) << 16) |
                   (static_cast<std::uint64_t>(arg) << 32),
               std::memory_order_relaxed);
    head_.store(seq + 1, std::memory_order_release);
  }

  std::uint16_t tid() const { return tid_; }
  std::size_t capacity() const { return mask_ + 1; }
  /// Total records ever written (monotonic; may exceed capacity).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }

  /// The last min(recorded, capacity) records, oldest first. Safe to call
  /// from any thread while the writer is live (see class comment).
  std::vector<Event> snapshot() const;

  /// Reader-side reset (tests): drops all records, keeps the ring.
  void clear() { head_.store(0, std::memory_order_release); }

  /// Writer-thread only: current head sequence, usable with rewind() to
  /// discard records stamped after this point.
  std::uint64_t mark() const { return head_.load(std::memory_order_relaxed); }

  /// Writer-thread only: roll the ring back to a mark() taken earlier on
  /// this thread, erasing every record stamped in between — the optimistic
  /// sharded engine's telemetry rollback (DESIGN.md §16). Best-effort once
  /// the ring has lapped past the mark (> capacity records in between): the
  /// head still rewinds, and the resurrected older slots are the lapped
  /// survivors — same fidelity loss overwrite-oldest already implies.
  void rewind(std::uint64_t m) { head_.store(m, std::memory_order_release); }

 private:
  struct Slot {
    std::atomic<std::uint64_t> w0{0};
    std::atomic<std::uint64_t> w1{0};
  };
  std::vector<Slot> slots_;
  std::uint64_t mask_;
  std::uint16_t tid_;
  std::atomic<std::uint64_t> head_{0};
};

/// Snapshot of one ring, as dumped/decoded.
struct RingDump {
  std::uint16_t tid = 0;
  std::uint64_t recorded = 0;  ///< Lifetime record count (wrap indicator).
  std::vector<Event> events;   ///< Last min(recorded, capacity), oldest first.
};

/// Process-wide recorder: owns one ring per recording thread. Threads get
/// their ring lazily on first record (registration is the only locked path).
/// A distinct instance can be constructed for tests; production call sites
/// go through the `instance()` singleton via the free `record()` below.
class Recorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1u << 14;  // 256 KiB/thread

  explicit Recorder(bool enabled = true,
                    std::size_t ring_capacity = kDefaultRingCapacity);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// The process-wide always-on instance.
  static Recorder& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// The calling thread's ring (registering it on first use).
  Ring& local_ring();

  /// Stamp one record on the calling thread's ring. The enabled check is a
  /// single relaxed load; disabled cost is unmeasurable.
  void record(std::uint64_t ts_us, Ev code, std::uint32_t arg) {
    if (!enabled()) return;
    local_ring().record(ts_us, code, arg);
  }

  std::size_t ring_count() const;
  /// Snapshot every ring (concurrent-safe; see Ring::snapshot).
  std::vector<RingDump> snapshot_all() const;
  /// Total records ever written across all rings.
  std::uint64_t recorded() const;

  /// Binary dump of all rings (format below). Returns bytes written.
  std::size_t dump(std::ostream& out) const;
  /// Dump to a file; returns false (and leaves no file contract) on I/O
  /// error — the abort path must never throw.
  bool dump_to_file(const std::string& path) const;

  /// Arrange for the singleton to dump to `path` when an ILU_DCHECK fails
  /// (hooks util/dcheck.hpp's pre-abort callback). Passing "" uninstalls.
  static void install_crash_dump(std::string path);
  /// Path installed by install_crash_dump ("" when none).
  static const std::string& crash_dump_path();

  /// Drop all records on all rings (tests / between benchmark phases).
  void clear();

 private:
  const std::size_t ring_capacity_;
  const std::uint64_t uid_;  // keys the thread-local ring cache
  std::atomic<bool> enabled_;
  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// Hot-path entry point: stamp on the process-wide recorder.
inline void record(std::uint64_t ts_us, Ev code, std::uint32_t arg) {
  Recorder::instance().record(ts_us, code, arg);
}
/// Convenience overload taking the runtime TimePoint directly.
inline void record(TimePoint ts, Ev code, std::uint32_t arg) {
  record(static_cast<std::uint64_t>(ts.count()), code, arg);
}

/// Mark the calling thread's ring position for a later rewind(). Returns 0
/// when recording is disabled (rewind(0) with recording still disabled is a
/// no-op, so the pair composes either way).
inline std::uint64_t mark() {
  Recorder& r = Recorder::instance();
  return r.enabled() ? r.local_ring().mark() : 0;
}
/// Erase every record the calling thread stamped since `m = mark()` —
/// speculative-window rollback support. Calling-thread-only, like record().
inline void rewind(std::uint64_t m) {
  Recorder& r = Recorder::instance();
  if (r.enabled()) r.local_ring().rewind(m);
}

// --------------------------------------------------------------------------
// Dump format (ilu-flight-v1)
//
//   u64 magic "ILUFDR\x01\0"   (little-endian constant kDumpMagic)
//   u32 ring_count
//   per ring:
//     u16 tid, u16 reserved(0), u32 event_count, u64 recorded,
//     event_count × { u64 w0, u64 w1 }   (oldest first)
//
// All integers little-endian (the serializer writes bytes explicitly, so
// dumps are portable across hosts).
// --------------------------------------------------------------------------

inline constexpr std::uint64_t kDumpMagic = 0x0001524446554C49ull;  // "ILUFDR\x01"

/// Decode a binary dump produced by Recorder::dump. Throws
/// std::runtime_error on malformed input.
std::vector<RingDump> decode(const std::string& bytes);
/// Read + decode a dump file.
std::vector<RingDump> read_dump(const std::string& path);

/// Convert decoded rings to a Chrome trace-event JSON document string:
/// one instant event ("ph":"i") per record, ts in µs, tid = ring id,
/// name = ev_name(code), args = {"arg": arg, "seq": position}. Events are
/// merged across rings and sorted by (ts, tid, position) so the output is
/// stable for a given dump.
std::string chrome_trace_json(const std::vector<RingDump>& rings, int pid = 0);

}  // namespace ilu::flight
