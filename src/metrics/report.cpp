#include "metrics/report.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace ilu {

ExperimentReport::ExperimentReport(std::vector<std::string> names)
    : names_(std::move(names)) {
  global_.name = "TOTAL";
}

FunctionReport& ExperimentReport::row(FunctionId fn) {
  auto [it, inserted] = per_fn_.try_emplace(fn);
  if (inserted) {
    it->second.name = fn < names_.size()
                          ? names_[fn]
                          : "fn_" + std::to_string(fn);
  }
  return it->second;
}

void ExperimentReport::accumulate(FunctionReport& fr, const InvokeResult& r) {
  ++fr.invocations;
  if (r.dropped) {
    ++fr.dropped;
    return;
  }
  if (!r.success) {
    ++fr.failed;
    return;
  }
  if (r.cold) {
    ++fr.cold;
  } else {
    ++fr.warm;
  }
  fr.flow_ms.add_ms(r.flow_time());
  fr.overhead_ms.add_ms(r.overhead());
  fr.exec_ms.add_ms(r.exec_time);
  fr.stretch_sum += r.stretch();
}

void ExperimentReport::add(const InvokeResult& r) {
  accumulate(row(r.fn), r);
  accumulate(global_, r);
}

void ExperimentReport::add_all(const std::vector<InvokeResult>& results) {
  for (const auto& r : results) add(r);
}

std::vector<const FunctionReport*> ExperimentReport::functions() const {
  std::vector<const FunctionReport*> out;
  out.reserve(per_fn_.size());
  for (const auto& [fn, fr] : per_fn_) out.push_back(&fr);
  return out;
}

const FunctionReport* ExperimentReport::function(FunctionId fn) const {
  auto it = per_fn_.find(fn);
  return it == per_fn_.end() ? nullptr : &it->second;
}

std::string ExperimentReport::format() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-24s %8s %7s %7s %6s %6s %10s %10s %9s %7s\n", "function",
                "inv", "warm", "cold", "drop", "fail", "flow p50",
                "flow p99", "ovhd p50", "stretch");
  out += buf;
  auto line = [&](const FunctionReport& fr) {
    std::snprintf(buf, sizeof buf,
                  "%-24s %8llu %7llu %7llu %6llu %6llu %10.1f %10.1f %9.2f "
                  "%7.2f\n",
                  fr.name.c_str(), (unsigned long long)fr.invocations,
                  (unsigned long long)fr.warm, (unsigned long long)fr.cold,
                  (unsigned long long)fr.dropped,
                  (unsigned long long)fr.failed, fr.flow_ms.p50(),
                  fr.flow_ms.p99(), fr.overhead_ms.p50(), fr.mean_stretch());
    out += buf;
  };
  for (const auto* fr : functions()) line(*fr);
  line(global_);
  return out;
}

void ExperimentReport::write_csv(const std::string& path) const {
  CsvWriter w(path);
  w.row("function", "invocations", "warm", "cold", "dropped", "failed",
        "warm_ratio", "flow_p50_ms", "flow_p99_ms", "overhead_p50_ms",
        "overhead_p99_ms", "exec_p50_ms", "mean_stretch");
  auto emit = [&](const FunctionReport& fr) {
    w.row(fr.name, fr.invocations, fr.warm, fr.cold, fr.dropped, fr.failed,
          fr.warm_ratio(), fr.flow_ms.p50(), fr.flow_ms.p99(),
          fr.overhead_ms.p50(), fr.overhead_ms.p99(), fr.exec_ms.p50(),
          fr.mean_stretch());
  };
  for (const auto* fr : functions()) emit(*fr);
  emit(global_);
}

namespace {
JsonValue function_report_json(const FunctionReport& fr) {
  JsonObject o;
  o["name"] = fr.name;
  o["invocations"] = fr.invocations;
  o["warm"] = fr.warm;
  o["cold"] = fr.cold;
  o["dropped"] = fr.dropped;
  o["failed"] = fr.failed;
  o["warm_ratio"] = fr.warm_ratio();
  o["flow_p50_ms"] = fr.flow_ms.p50();
  o["flow_p99_ms"] = fr.flow_ms.p99();
  o["overhead_p50_ms"] = fr.overhead_ms.p50();
  o["overhead_p99_ms"] = fr.overhead_ms.p99();
  o["exec_p50_ms"] = fr.exec_ms.p50();
  o["mean_stretch"] = fr.mean_stretch();
  return JsonValue(std::move(o));
}
}  // namespace

JsonValue ExperimentReport::to_json() const {
  JsonArray fns;
  for (const auto* fr : functions()) fns.push_back(function_report_json(*fr));
  JsonObject root;
  root["functions"] = JsonValue(std::move(fns));
  root["total"] = function_report_json(global_);
  return JsonValue(std::move(root));
}

void ExperimentReport::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << to_json().dump(2) << "\n";
}

}  // namespace ilu
