#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

/// Experiment reporting: aggregate InvokeResults into per-function and
/// global statistics (the analysis layer of the paper's load-generation
/// framework — "a single platform for FaaS experimentation" needs its
/// results digested the same way every time).
namespace ilu {

struct FunctionReport {
  std::string name;
  std::uint64_t invocations = 0;
  std::uint64_t warm = 0;
  std::uint64_t cold = 0;
  std::uint64_t dropped = 0;
  std::uint64_t failed = 0;
  Summary flow_ms;
  Summary overhead_ms;
  Summary exec_ms;
  double stretch_sum = 0.0;

  double warm_ratio() const {
    return warm + cold ? static_cast<double>(warm) /
                             static_cast<double>(warm + cold)
                       : 0.0;
  }
  double mean_stretch() const {
    std::uint64_t n = warm + cold;
    return n ? stretch_sum / static_cast<double>(n) : 0.0;
  }
};

class ExperimentReport {
 public:
  /// `names` labels per-function rows (index = FunctionId); unknown ids get
  /// generated labels.
  explicit ExperimentReport(std::vector<std::string> names = {});

  void add(const InvokeResult& r);
  void add_all(const std::vector<InvokeResult>& results);

  const FunctionReport& global() const { return global_; }
  /// Per-function rows in FunctionId order (only ids seen).
  std::vector<const FunctionReport*> functions() const;
  const FunctionReport* function(FunctionId fn) const;

  /// Human-readable table.
  std::string format() const;

  /// CSV rows: one per function plus a TOTAL row.
  void write_csv(const std::string& path) const;

  /// Structured form: {"functions": [...], "total": {...}} with the same
  /// columns as the CSV, for machine consumption alongside metric snapshots.
  JsonValue to_json() const;
  void write_json(const std::string& path) const;

 private:
  FunctionReport& row(FunctionId fn);
  static void accumulate(FunctionReport& fr, const InvokeResult& r);

  std::vector<std::string> names_;
  std::map<FunctionId, FunctionReport> per_fn_;
  FunctionReport global_;
};

}  // namespace ilu
