#include "exp/live_load.hpp"
// ilu-lint: atomics-floor(relaxed) - counter bumps; completion counts use release to pair with done()'s acquire reads

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "obs/flight.hpp"

namespace ilu {

void LiveLoadStats::reset() {
  submitted.store(0, std::memory_order_relaxed);
  completed.store(0, std::memory_order_relaxed);
  failed.store(0, std::memory_order_relaxed);
  dropped.store(0, std::memory_order_relaxed);
  cold.store(0, std::memory_order_relaxed);
  bypassed.store(0, std::memory_order_relaxed);
  last_done_us.store(0, std::memory_order_relaxed);
  lateness_ms.reset();
  submit_lag_ms.reset();
  overhead_ms.reset();
  queue_wait_ms.reset();
  offered_per_sec = 0.0;
  achieved_per_sec = 0.0;
  wall_s = 0.0;
  timed_out = false;
}

LiveLoadHarness::LiveLoadHarness(RealRuntime& rt, InvokeFn invoke)
    : rt_(rt), invoke_(std::move(invoke)) {}

void LiveLoadHarness::producer(const EventView& events,
                               const LiveLoadConfig& cfg, std::size_t index,
                               std::int64_t base_us, LiveLoadStats* out) {
  const std::size_t n = events.size();
  const std::size_t stride = std::max<std::size_t>(1, cfg.producers);
  const auto epoch = rt_.epoch_steady();

  // Producer 0 stamps flight milestones at the deciles of its own (strided)
  // share — a representative progress signal without cross-thread counting.
  std::size_t mine = 0;
  for (std::size_t i = index; i < n; i += stride) ++mine;
  const bool lead = cfg.milestones && index == 0 && mine > 0;
  std::size_t next_decile = 1;

  std::size_t done = 0;
  for (std::size_t i = index; i < n; i += stride) {
    const auto offset_us = static_cast<std::int64_t>(
        static_cast<double>(events.at(i).count()) * cfg.time_scale);
    const std::int64_t intended_us = base_us + offset_us;
    // Absolute-deadline pacing on the runtime's own clock: no drift
    // accumulation across events, and no wall-clock read to compute it.
    std::this_thread::sleep_until(epoch +
                                  std::chrono::microseconds(intended_us));
    const std::int64_t actual_us = rt_.now().count();
    const std::int64_t late_us = actual_us - intended_us;
    out->lateness_ms.observe(
        late_us > 0 ? static_cast<double>(late_us) / 1000.0 : 0.0);

    const FunctionId fn = events.fn(i);
    LiveLoadStats* s = out;
    // The posted task runs on the runtime loop thread — where the Worker
    // (loop-thread-confined) may be invoked. Its first act is to stamp the
    // producer→loop handoff latency, the exact stage+drain path under test.
    rt_.post([this, s, fn, actual_us] {
      s->submit_lag_ms.observe(
          static_cast<double>(rt_.now().count() - actual_us) / 1000.0);
      invoke_(fn, [s](const InvokeResult& r) {
        // Everything recorded here must happen-before run()'s completion
        // wait releasing the caller thread to read the histograms, so the
        // terminal finished-counter increment is strictly last and
        // release-ordered (finished() loads with acquire).
        if (!r.dropped && r.success) {
          if (r.cold) s->cold.fetch_add(1, std::memory_order_relaxed);
          if (r.bypassed) s->bypassed.fetch_add(1, std::memory_order_relaxed);
          s->overhead_ms.observe(
              static_cast<double>(r.overhead().count()) / 1000.0);
          s->queue_wait_ms.observe(
              static_cast<double>(r.queue_wait.count()) / 1000.0);
        }
        const std::int64_t done_us = r.completed.count();
        std::int64_t cur = s->last_done_us.load(std::memory_order_relaxed);
        while (done_us > cur && !s->last_done_us.compare_exchange_weak(
                                    cur, done_us, std::memory_order_relaxed)) {
        }
        if (r.dropped) {
          s->dropped.fetch_add(1, std::memory_order_release);
        } else if (!r.success) {
          s->failed.fetch_add(1, std::memory_order_release);
        } else {
          s->completed.fetch_add(1, std::memory_order_release);
        }
      });
    });
    out->submitted.fetch_add(1, std::memory_order_relaxed);

    ++done;
    while (lead && next_decile <= 10 && done * 10 >= next_decile * mine) {
      flight::record(static_cast<std::uint64_t>(actual_us),
                     flight::Ev::kReplayMilestone,
                     static_cast<std::uint32_t>(next_decile * 10));
      ++next_decile;
    }
  }
}

void LiveLoadHarness::run(const EventView& events, const LiveLoadConfig& cfg,
                          LiveLoadStats* out) {
  out->reset();
  const std::size_t n = events.size();
  const std::int64_t base_us = rt_.now().count() + cfg.lead_in.count();
  if (cfg.milestones) flight::record(rt_.now(), flight::Ev::kReplayMilestone, 0);

  const std::size_t producers = std::max<std::size_t>(1, cfg.producers);
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([this, &events, &cfg, p, base_us, out] {
      producer(events, cfg, p, base_us, out);
    });
  }
  for (auto& t : threads) t.join();

  // Completion watchdog. Deliberately on the raw clock, not rt_.now(): the
  // timeout must keep ticking no matter what the runtime under test does.
  const std::uint64_t total = out->submitted.load(std::memory_order_relaxed);
  // ilu-lint: allow(wall-clock) - watchdog deadline must be independent of the runtime under test
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(cfg.completion_timeout.count());
  while (out->finished() < total) {
    // ilu-lint: allow(wall-clock) - watchdog poll against the deadline above
    if (std::chrono::steady_clock::now() >= deadline) {
      out->timed_out = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (cfg.milestones)
    flight::record(rt_.now(), flight::Ev::kReplayMilestone, 100);

  const std::int64_t end_us =
      std::max(out->last_done_us.load(std::memory_order_relaxed), base_us);
  out->wall_s = static_cast<double>(end_us - base_us) / 1e6;
  const double span_s =
      n ? static_cast<double>(events.at(n - 1).count()) * cfg.time_scale / 1e6
        : 0.0;
  out->offered_per_sec =
      span_s > 0.0 ? static_cast<double>(n) / span_s : 0.0;
  out->achieved_per_sec =
      out->wall_s > 0.0
          ? static_cast<double>(out->finished()) / out->wall_s
          : 0.0;
}

}  // namespace ilu
