#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "keepalive/simulator.hpp"

/// Cache-size sweeps of the keep-alive simulator (the curves of the paper's
/// Figs 4 and 5). Lives in exp/ — not keepalive/ — because the fan-out rides
/// on exp::SweepRunner and the layer DAG points keepalive → exp, never back.
namespace ilu {

/// Sweep of cache sizes for one policy (one curve of Fig 4/5). Each cell is
/// an independent simulation; `threads` > 1 fans them across cores via the
/// exp::SweepRunner with results in capacity order regardless of thread
/// count (0 = hardware concurrency, 1 = sequential).
std::vector<KeepAliveSimResult> sweep_cache_sizes(
    const Trace& trace, const std::string& policy_name,
    const std::vector<std::uint64_t>& capacities_mb, unsigned threads = 1);

}  // namespace ilu
