#include "exp/keepalive_sweep.hpp"

#include <functional>

#include "exp/sweep.hpp"

namespace ilu {

std::vector<KeepAliveSimResult> sweep_cache_sizes(
    const Trace& trace, const std::string& policy_name,
    const std::vector<std::uint64_t>& capacities_mb, unsigned threads) {
  // Each cell builds its own policy + cache and only reads the shared trace,
  // so the parallel fan-out is deterministic and result order is capacity
  // order whatever the thread count.
  std::vector<std::function<KeepAliveSimResult()>> tasks;
  tasks.reserve(capacities_mb.size());
  for (auto mb : capacities_mb) {
    tasks.emplace_back(
        // ilu-lint: allow(const-ref-capture) - runner.run() joins before this scope exits
        [&trace, &policy_name, mb] {
          return run_keepalive_sim(trace, policy_name, mb);
        });
  }
  exp::SweepRunner runner({.threads = threads});
  return runner.run(tasks);
}

}  // namespace ilu
