#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

/// Parallel experiment sweep engine.
///
/// The paper's trace-scale evaluation (Figs 4/5, the ablations) is a grid of
/// *independent, deterministic* simulations — each task builds its own
/// SimRuntime / KeepAliveCache / Worker from an explicit seed and shares
/// nothing mutable with its siblings. SweepRunner fans such grids across
/// hardware threads with a work-stealing scheduler while preserving the
/// sequential path's observable behaviour exactly:
///
///  * **Determinism contract** — results land in a vector indexed by
///    submission order, so for the same task list and seeds the returned
///    rows are byte-identical at 1, 4, or N threads (and identical to a
///    plain sequential loop). Tasks must not read shared mutable state;
///    immutable inputs (a const Trace&) may be shared freely.
///  * **Log isolation** — each task's log output is captured through the
///    thread-local sink override (set_thread_log_sink) into a per-task
///    buffer and flushed to the real sink in submission order after the
///    sweep, so parallel sims never interleave lines.
///  * **Metrics isolation** — tasks build their own MetricsRegistry /
///    Worker instances; the engine never introduces cross-task instruments.
namespace ilu::exp {

struct SweepOptions {
  /// Worker thread count; 0 means std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Capture per-task log output and flush it in submission order.
  bool capture_logs = true;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opt = {});

  /// The resolved worker count (>= 1).
  unsigned threads() const { return threads_; }

  /// Run all jobs to completion (blocking). Jobs are claimed from
  /// per-worker deques with stealing, so imbalanced grids (one slow cell)
  /// keep every core busy. The first exception thrown by a job is rethrown
  /// here after all workers join.
  void run_jobs(std::vector<std::function<void()>>&& jobs);

  /// Typed convenience wrapper: runs every task, returns results in
  /// submission order.
  template <typename R>
  std::vector<R> run(const std::vector<std::function<R()>>& tasks) {
    std::vector<std::optional<R>> slots(tasks.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      jobs.emplace_back([&slots, &tasks, i] { slots[i].emplace(tasks[i]()); });
    }
    run_jobs(std::move(jobs));
    std::vector<R> out;
    out.reserve(slots.size());
    for (auto& s : slots) out.push_back(std::move(*s));
    return out;
  }

 private:
  SweepOptions opt_;
  unsigned threads_ = 1;
};

/// Strip a `--threads N` flag from argv (any position) and return N; when
/// absent, consult the ILU_THREADS environment variable; when neither is
/// set, return `fallback` (0 = hardware concurrency). Used by every sweep
/// bench so `fig4_exec_increase --threads 8` just works. argv must carry
/// main()'s nullptr terminator at argv[argc]; it is preserved when the
/// flag is stripped.
unsigned threads_from_args(int& argc, char** argv, unsigned fallback = 0);

}  // namespace ilu::exp
