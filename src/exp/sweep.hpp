#pragma once
// ilu-lint: atomics-floor(relaxed) - stop_requested_ is a best-effort cancellation hint polled between cells

#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/time.hpp"

/// Parallel experiment sweep engine.
///
/// The paper's trace-scale evaluation (Figs 4/5, the ablations) is a grid of
/// *independent, deterministic* simulations — each task builds its own
/// SimRuntime / KeepAliveCache / Worker from an explicit seed and shares
/// nothing mutable with its siblings. SweepRunner fans such grids across
/// hardware threads with a work-stealing scheduler while preserving the
/// sequential path's observable behaviour exactly:
///
///  * **Determinism contract** — results land in a vector indexed by
///    submission order, so for the same task list and seeds the returned
///    rows are byte-identical at 1, 4, or N threads (and identical to a
///    plain sequential loop). Tasks must not read shared mutable state;
///    immutable inputs (a const Trace&) may be shared freely.
///  * **Log isolation** — each task's log output is captured through the
///    thread-local sink override (set_thread_log_sink) into a per-task
///    buffer and flushed to the real sink in submission order after the
///    sweep, so parallel sims never interleave lines.
///  * **Metrics isolation** — tasks build their own MetricsRegistry /
///    Worker instances; the engine never introduces cross-task instruments.
namespace ilu::exp {

struct SweepOptions {
  /// Worker thread count; 0 means std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Capture per-task log output and flush it in submission order.
  bool capture_logs = true;
  /// Emit a progress line (cells done, cells/s, ETA) this often while a
  /// grid runs; zero disables. Progress bypasses log capture, so long
  /// sweeps stay observable even though task output is buffered.
  Duration progress_interval{};
  /// Progress destination; nullptr means std::cerr.
  std::ostream* progress_out = nullptr;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opt = {});

  /// The resolved worker count (>= 1).
  unsigned threads() const { return threads_; }

  /// Live sweep instrumentation: "sweep.cells_total" (gauge) and
  /// "sweep.cells_done" (counter) for the current/last run_jobs call. The
  /// progress reporter reads these; external dashboards can too.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Run all jobs (blocking). Jobs are claimed from per-worker deques with
  /// stealing, so imbalanced grids (one slow cell) keep every core busy.
  /// The first exception thrown by a job is rethrown here after all workers
  /// join. If `request_stop` fires mid-run, in-flight jobs finish but no
  /// further jobs start.
  void run_jobs(std::vector<std::function<void()>>&& jobs);

  /// Cooperative cancellation: no further jobs are claimed after this is
  /// called; jobs already running complete normally. Sticky for the
  /// lifetime of the runner, and async-signal-safe (a lock-free atomic
  /// store), so SIGINT handlers may call it directly — the fig4/fig5
  /// drivers do, to print partial grids instead of dying mid-sweep.
  void request_stop() noexcept {
    stop_requested_.store(true, std::memory_order_relaxed);
  }
  bool stop_requested() const noexcept {
    return stop_requested_.load(std::memory_order_relaxed);
  }

  /// Typed wrapper that tolerates cancellation: runs every task, returns
  /// slots in submission order; cells skipped because of `request_stop`
  /// come back empty.
  template <typename R>
  std::vector<std::optional<R>> run_partial(
      const std::vector<std::function<R()>>& tasks) {
    std::vector<std::optional<R>> slots(tasks.size());
    std::vector<std::function<void()>> jobs;
    jobs.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      jobs.emplace_back([&slots, &tasks, i] { slots[i].emplace(tasks[i]()); });
    }
    run_jobs(std::move(jobs));
    return slots;
  }

  /// Typed convenience wrapper: runs every task, returns results in
  /// submission order. Throws if the sweep was cancelled before every cell
  /// completed — callers that want the completed prefix use run_partial.
  template <typename R>
  std::vector<R> run(const std::vector<std::function<R()>>& tasks) {
    std::vector<std::optional<R>> slots = run_partial(tasks);
    std::vector<R> out;
    out.reserve(slots.size());
    for (auto& s : slots) {
      if (!s) {
        throw std::runtime_error(
            "sweep cancelled before all cells completed; use run_partial() "
            "for the finished subset");
      }
      out.push_back(std::move(*s));
    }
    return out;
  }

 private:
  SweepOptions opt_;
  unsigned threads_ = 1;
  MetricsRegistry metrics_;
  Counter* cells_done_ = nullptr;
  Gauge* cells_total_ = nullptr;
  std::atomic<bool> stop_requested_{false};
};

/// Strip a `--threads N` flag from argv (any position) and return N; when
/// absent, consult the ILU_THREADS environment variable; when neither is
/// set, return `fallback` (0 = hardware concurrency). Used by every sweep
/// bench so `fig4_exec_increase --threads 8` just works. argv must carry
/// main()'s nullptr terminator at argv[argc]; it is preserved when the
/// flag is stripped.
unsigned threads_from_args(int& argc, char** argv, unsigned fallback = 0);

/// A machine's slice of a grid that is being split across machines:
/// this process owns every cell index i with i % count == index.
struct SweepShard {
  std::size_t index = 0;
  std::size_t count = 1;

  bool selects(std::size_t cell) const { return cell % count == index; }

  /// Keep only this shard's cells (in order). Apply to the task list
  /// *before* SweepRunner::run so every machine builds the same full grid
  /// and the union of all shards' outputs is exactly the unsharded sweep.
  template <typename T>
  std::vector<T> filter(std::vector<T> cells) const {
    if (count <= 1) return cells;
    std::vector<T> mine;
    mine.reserve(cells.size() / count + 1);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (selects(i)) mine.push_back(std::move(cells[i]));
    }
    return mine;
  }
};

/// Strip a `--shard i/n` flag from argv (any position, 0-based i < n) and
/// return the shard; when absent, consult ILU_SHARD; when neither is set,
/// return the full grid {0, 1}. Malformed specs abort with a message.
SweepShard shard_from_args(int& argc, char** argv);

}  // namespace ilu::exp
