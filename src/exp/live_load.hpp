#pragma once
// ilu-lint: atomics-floor(relaxed) - live counters; done() reads with acquire to pair with the workers' release bumps

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "runtime/real_runtime.hpp"
#include "trace/event_view.hpp"
#include "util/time.hpp"

/// Open-loop live-load harness (DESIGN.md §14): replays an EventView against
/// a wall-clock `RealRuntime` at the trace's own arrival times, from multiple
/// producer threads, and accounts for every microsecond honestly.
///
/// Open loop means arrivals are paced by the *trace clock*, never by the
/// system under test: a producer sleeps until each event's intended instant
/// and submits regardless of how far behind the worker is. A closed-loop
/// driver (wait for the previous response before sending the next request)
/// silently stretches inter-arrival gaps whenever the system stalls, hiding
/// exactly the tail it should be measuring — the "coordinated omission"
/// trap. Here a stall shows up twice, on purpose:
///
///   lateness_ms    how far past its intended instant each submission left
///                  the producer (sleep overshoot + producer scheduling) —
///                  nonzero lateness at high rates means the offered load
///                  was not actually offered, so rate claims must quote it;
///   submit_lag_ms  producer handoff to the runtime loop thread (the
///                  sharded-stage + wheel path under test);
///   overhead_ms    the paper's control-plane overhead (flow - exec) per
///                  completed invocation.
///
/// Producers stride-partition the trace (producer p takes events p, p+P,
/// p+2P, ...) so each thread walks a sorted subsequence of arrival times and
/// a single sleep_until per event suffices. Sleep targets are computed from
/// `RealRuntime::epoch_steady()`, the same clock the runtime schedules
/// against, so "intended" and "actual" are commensurable without any direct
/// wall-clock read on the submit path.
namespace ilu {

struct LiveLoadConfig {
  /// Producer (load) threads. The trace is stride-partitioned across them.
  std::size_t producers = 4;
  /// Multiply trace offsets: 0.5 replays at 2x the trace's native rate.
  double time_scale = 1.0;
  /// Producers begin this far in the future of `now()` so event 0 is not
  /// born late while threads are still spawning.
  Duration lead_in = msecs(100);
  /// After the last submission, wait at most this long for completions.
  Duration completion_timeout = secs(120);
  /// Stamp flight-recorder kReplayMilestone records at submission deciles.
  bool milestones = true;
};

/// Counters and histograms for one run. Atomics — shared by producers, the
/// runtime loop thread, and the observer — so the struct is neither copyable
/// nor movable; callers pass a stable instance into run() and read it after.
struct LiveLoadStats {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> cold{0};
  std::atomic<std::uint64_t> bypassed{0};
  /// Completion timestamp high-water mark (runtime µs), for wall_s.
  std::atomic<std::int64_t> last_done_us{0};

  /// Submission lateness: actual minus intended submit instant (clamped at
  /// zero; sleep_until never wakes early on the same clock).
  LogHistogram lateness_ms;
  /// Producer → runtime-loop-thread handoff (stage + drain + dispatch).
  LogHistogram submit_lag_ms;
  /// Control-plane overhead of completed invocations (flow - exec).
  LogHistogram overhead_ms;
  /// Queue wait component of completed invocations.
  LogHistogram queue_wait_ms;

  // Filled in by run() at the end.
  double offered_per_sec = 0.0;   ///< Trace rate after time_scale.
  double achieved_per_sec = 0.0;  ///< Completions over the measured wall.
  double wall_s = 0.0;  ///< First intended arrival → last completion.
  bool timed_out = false;

  /// Acquire-ordered: pairs with the release increment that is the last
  /// act of each completion callback, so once finished() == submitted the
  /// reader sees every histogram observation those callbacks made.
  std::uint64_t finished() const {
    return completed.load(std::memory_order_acquire) +
           failed.load(std::memory_order_acquire) +
           dropped.load(std::memory_order_acquire);
  }

  /// Return to the just-constructed state. Callers must quiesce all
  /// producers and drain the runtime first (LogHistogram::reset contract).
  void reset();
};

class LiveLoadHarness {
 public:
  /// Submission target: called on the runtime loop thread; must eventually
  /// call the completion callback exactly once (Worker::invoke's contract).
  using CompletionCb = std::function<void(const InvokeResult&)>;
  // ilu-lint: allow(std-function-hotpath) - bench-facing seam bound once per run, invoked through a held copy; not a nullary Task
  using InvokeFn = std::function<void(FunctionId, CompletionCb)>;

  LiveLoadHarness(RealRuntime& rt, InvokeFn invoke);

  /// Replay `events` open-loop; blocks until all producers finished and all
  /// submissions completed (or cfg.completion_timeout elapsed). `out` is
  /// reset at entry and owned by the caller; it must outlive the call (it
  /// is touched from producer threads and the runtime loop thread).
  void run(const EventView& events, const LiveLoadConfig& cfg,
           LiveLoadStats* out);

 private:
  void producer(const EventView& events, const LiveLoadConfig& cfg,
                std::size_t index, std::int64_t base_us, LiveLoadStats* out);

  RealRuntime& rt_;
  InvokeFn invoke_;
};

}  // namespace ilu
