#include "exp/sweep.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/log.hpp"

namespace ilu::exp {

namespace {

/// One worker's job queue: owner pops from the front, thieves steal from
/// the back. A plain mutex per deque is ample here — sweep tasks are whole
/// simulations (milliseconds to minutes), so queue traffic is negligible.
struct WorkDeque {
  std::mutex mu;
  std::deque<std::size_t> jobs;

  bool pop_front(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty()) return false;
    out = jobs.front();
    jobs.pop_front();
    return true;
  }
  bool steal_back(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty()) return false;
    out = jobs.back();
    jobs.pop_back();
    return true;
  }
};

/// RAII capture of one task's log output: installs a thread-local string
/// sink on construction and — even during exception unwinding — restores
/// the previous sink and stores the captured text on destruction, so a
/// throwing job can never leave the thread pointing at a dead sink.
struct ScopedLogCapture {
  std::ostringstream os;
  std::ostream* prev;
  std::string& out;

  explicit ScopedLogCapture(std::string& o)
      : prev(set_thread_log_sink(&os)), out(o) {}
  ~ScopedLogCapture() {
    set_thread_log_sink(prev);
    out = os.str();
  }
};

}  // namespace

SweepRunner::SweepRunner(SweepOptions opt) : opt_(opt) {
  threads_ = opt_.threads != 0 ? opt_.threads
                               : std::thread::hardware_concurrency();
  if (threads_ == 0) threads_ = 1;
}

void SweepRunner::run_jobs(std::vector<std::function<void()>>&& jobs) {
  const std::size_t n = jobs.size();
  if (n == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, n));

  // Per-task captured log text, flushed in submission order afterwards.
  std::vector<std::string> captured(opt_.capture_logs ? n : 0);

  auto run_one = [&](std::size_t idx) {
    if (opt_.capture_logs) {
      ScopedLogCapture capture(captured[idx]);
      jobs[idx]();
    } else {
      jobs[idx]();
    }
  };

  std::exception_ptr first_error;
  std::mutex error_mu;
  auto guarded = [&](std::size_t idx) {
    try {
      run_one(idx);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };

  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) guarded(i);
  } else {
    // Round-robin initial distribution; idle workers steal from the back of
    // their siblings' deques.
    std::vector<WorkDeque> deques(workers);
    for (std::size_t i = 0; i < n; ++i) {
      deques[i % workers].jobs.push_back(i);
    }

    auto worker_loop = [&](unsigned me) {
      std::size_t idx;
      for (;;) {
        if (deques[me].pop_front(idx)) {
          guarded(idx);
          continue;
        }
        bool stole = false;
        for (unsigned k = 1; k < workers; ++k) {
          if (deques[(me + k) % workers].steal_back(idx)) {
            guarded(idx);
            stole = true;
            break;
          }
        }
        // All jobs are distributed up-front and never re-enqueued, so once
        // every deque is empty no work can appear: exit instead of spinning
        // while siblings finish their last jobs (join waits for those).
        if (!stole) return;
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    for (auto& t : pool) t.join();
  }

  if (opt_.capture_logs) {
    for (const auto& text : captured) log_write_raw(text);
  }
  if (first_error) std::rethrow_exception(first_error);
}

unsigned threads_from_args(int& argc, char** argv, unsigned fallback) {
  unsigned value = fallback;
  if (const char* env = std::getenv("ILU_THREADS")) {
    value = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      value = static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
      // Strip the flag and its argument so positional parsing is unaffected;
      // shift includes argv[argc] to keep the required nullptr terminator.
      for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  return value;
}

}  // namespace ilu::exp
