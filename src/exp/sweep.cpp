#include "exp/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/log.hpp"

namespace ilu::exp {

namespace {

/// One worker's job queue: owner pops from the front, thieves steal from
/// the back. A plain mutex per deque is ample here — sweep tasks are whole
/// simulations (milliseconds to minutes), so queue traffic is negligible.
struct WorkDeque {
  std::mutex mu;
  std::deque<std::size_t> jobs;

  bool pop_front(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty()) return false;
    out = jobs.front();
    jobs.pop_front();
    return true;
  }
  bool steal_back(std::size_t& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (jobs.empty()) return false;
    out = jobs.back();
    jobs.pop_back();
    return true;
  }
};

/// RAII capture of one task's log output: installs a thread-local string
/// sink on construction and — even during exception unwinding — restores
/// the previous sink and stores the captured text on destruction, so a
/// throwing job can never leave the thread pointing at a dead sink.
struct ScopedLogCapture {
  std::ostringstream os;
  std::ostream* prev;
  std::string& out;

  explicit ScopedLogCapture(std::string& o)
      : prev(set_thread_log_sink(&os)), out(o) {}
  ~ScopedLogCapture() {
    set_thread_log_sink(prev);
    out = os.str();
  }
};

/// Wall-clock progress reporter: wakes every `interval`, reads the sweep
/// counters, and prints one line with throughput and a remaining-time
/// estimate. Runs on its own thread with the *real* log sink (never a
/// task's capture buffer), and exits promptly when notified.
class ProgressReporter {
 public:
  ProgressReporter(Duration interval, std::ostream& out, std::size_t total,
                   const Counter& done, std::uint64_t base)
      : interval_(interval), out_(out), total_(total), done_(done),
        base_(base), start_(std::chrono::steady_clock::now()),
        thread_([this] { loop(); }) {}

  ~ProgressReporter() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::microseconds(interval_.count()),
                         [this] { return stop_; })) {
      report();
    }
  }

  void report() {
    const std::uint64_t done = done_.value() - base_;
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double rate = elapsed_s > 0.0 ? done / elapsed_s : 0.0;
    char line[160];
    if (done == 0 || rate <= 0.0) {
      std::snprintf(line, sizeof(line),
                    "[sweep] %llu/%zu cells, warming up (%.0fs elapsed)\n",
                    static_cast<unsigned long long>(done), total_, elapsed_s);
    } else {
      const double eta_s = (total_ > done ? total_ - done : 0) / rate;
      std::snprintf(line, sizeof(line),
                    "[sweep] %llu/%zu cells, %.1f cells/s, ETA %.0fs\n",
                    static_cast<unsigned long long>(done), total_, rate,
                    eta_s);
    }
    out_ << line << std::flush;
  }

  Duration interval_;
  std::ostream& out_;
  std::size_t total_;
  const Counter& done_;
  std::uint64_t base_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

SweepRunner::SweepRunner(SweepOptions opt) : opt_(opt) {
  threads_ = opt_.threads != 0 ? opt_.threads
                               : std::thread::hardware_concurrency();
  if (threads_ == 0) threads_ = 1;
  cells_done_ = metrics_.counter("sweep.cells_done");
  cells_total_ = metrics_.gauge("sweep.cells_total");
}

void SweepRunner::run_jobs(std::vector<std::function<void()>>&& jobs) {
  const std::size_t n = jobs.size();
  if (n == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, n));

  cells_total_->set(static_cast<std::int64_t>(n));
  std::unique_ptr<ProgressReporter> progress;
  if (opt_.progress_interval > Duration::zero()) {
    progress = std::make_unique<ProgressReporter>(
        opt_.progress_interval,
        opt_.progress_out ? *opt_.progress_out : std::cerr, n, *cells_done_,
        cells_done_->value());
  }

  // Per-task captured log text, flushed in submission order afterwards.
  std::vector<std::string> captured(opt_.capture_logs ? n : 0);

  auto run_one = [&](std::size_t idx) {
    if (opt_.capture_logs) {
      ScopedLogCapture capture(captured[idx]);
      jobs[idx]();
    } else {
      jobs[idx]();
    }
  };

  std::exception_ptr first_error;
  std::mutex error_mu;
  auto guarded = [&](std::size_t idx) {
    try {
      run_one(idx);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
    cells_done_->inc();
  };

  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (stop_requested()) break;
      guarded(i);
    }
  } else {
    // Round-robin initial distribution; idle workers steal from the back of
    // their siblings' deques.
    std::vector<WorkDeque> deques(workers);
    for (std::size_t i = 0; i < n; ++i) {
      deques[i % workers].jobs.push_back(i);
    }

    auto worker_loop = [&](unsigned me) {
      std::size_t idx;
      for (;;) {
        // Cooperative cancellation: stop claiming; the job in flight (if
        // any) already finished by the time we re-check here.
        if (stop_requested()) return;
        if (deques[me].pop_front(idx)) {
          guarded(idx);
          continue;
        }
        bool stole = false;
        for (unsigned k = 1; k < workers; ++k) {
          if (deques[(me + k) % workers].steal_back(idx)) {
            guarded(idx);
            stole = true;
            break;
          }
        }
        // All jobs are distributed up-front and never re-enqueued, so once
        // every deque is empty no work can appear: exit instead of spinning
        // while siblings finish their last jobs (join waits for those).
        if (!stole) return;
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back(worker_loop, w);
    }
    for (auto& t : pool) t.join();
  }

  progress.reset();  // final stop before logs flush, so lines don't mix
  if (opt_.capture_logs) {
    for (const auto& text : captured) log_write_raw(text);
  }
  if (first_error) std::rethrow_exception(first_error);
}

namespace {

SweepShard parse_shard_spec(const char* spec) {
  char* end = nullptr;
  unsigned long i = std::strtoul(spec, &end, 10);
  if (end == spec || *end != '/') {
    std::fprintf(stderr, "bad shard spec '%s': expected i/n (0-based)\n",
                 spec);
    std::exit(2);
  }
  const char* den = end + 1;
  unsigned long n = std::strtoul(den, &end, 10);
  if (end == den || *end != '\0' || n == 0 || i >= n) {
    std::fprintf(stderr, "bad shard spec '%s': need 0 <= i < n\n", spec);
    std::exit(2);
  }
  return SweepShard{static_cast<std::size_t>(i), static_cast<std::size_t>(n)};
}

}  // namespace

SweepShard shard_from_args(int& argc, char** argv) {
  SweepShard shard{};
  if (const char* env = std::getenv("ILU_SHARD")) {
    shard = parse_shard_spec(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      shard = parse_shard_spec(argv[i + 1]);
      // Strip like threads_from_args: keep argv[argc] == nullptr intact.
      for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  return shard;
}

unsigned threads_from_args(int& argc, char** argv, unsigned fallback) {
  unsigned value = fallback;
  if (const char* env = std::getenv("ILU_THREADS")) {
    value = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      value = static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
      // Strip the flag and its argument so positional parsing is unaffected;
      // shift includes argv[argc] to keep the required nullptr terminator.
      for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  return value;
}

}  // namespace ilu::exp
