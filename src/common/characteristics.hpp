#pragma once

#include <vector>

#include "common/types.hpp"
#include "util/stats.hpp"

/// Per-function learned execution characteristics (§4.2): moving-window
/// warm/cold execution times and inter-arrival times. These drive the
/// size-aware queue policies (SJF/EEDF use expected execution time, RARE
/// uses IAT) and are exposed to all control-plane components, mirroring the
/// paper's data-driven policy support.
namespace ilu {

class CharacteristicsMap {
 public:
  explicit CharacteristicsMap(std::size_t window = 10) : window_(window) {}

  /// Ensure slots exist for function ids < n.
  void ensure(std::size_t n);

  /// Record an arrival (updates IAT tracking).
  void on_arrival(FunctionId fn, TimePoint now);

  /// Record a completed execution.
  void record_warm(FunctionId fn, Duration exec);
  void record_cold(FunctionId fn, Duration exec);

  /// Moving-window expected times; zero when the function is unseen (the
  /// paper prioritizes new functions by treating their time as 0).
  Duration expected_warm(FunctionId fn) const;
  Duration expected_cold(FunctionId fn) const;

  /// Mean inter-arrival time in seconds (0 when < 2 arrivals).
  double mean_iat_s(FunctionId fn) const;

  std::uint64_t arrivals(FunctionId fn) const;
  std::uint64_t warm_count(FunctionId fn) const;
  std::uint64_t cold_count(FunctionId fn) const;

 private:
  struct FnChars {
    explicit FnChars(std::size_t window)
        : warm_ms(window), cold_ms(window) {}
    MovingWindow warm_ms;
    MovingWindow cold_ms;
    Welford iat_s;
    TimePoint last_arrival{-1};
    std::uint64_t arrivals = 0;
    std::uint64_t warm = 0;
    std::uint64_t cold = 0;
  };

  const FnChars* find(FunctionId fn) const;
  FnChars& at(FunctionId fn);

  std::size_t window_;
  std::vector<FnChars> chars_;
};

}  // namespace ilu
