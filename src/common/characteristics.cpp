#include "common/characteristics.hpp"

#include <cassert>

namespace ilu {

void CharacteristicsMap::ensure(std::size_t n) {
  while (chars_.size() < n) chars_.emplace_back(window_);
}

CharacteristicsMap::FnChars& CharacteristicsMap::at(FunctionId fn) {
  ensure(static_cast<std::size_t>(fn) + 1);
  return chars_[fn];
}

const CharacteristicsMap::FnChars* CharacteristicsMap::find(
    FunctionId fn) const {
  if (fn >= chars_.size()) return nullptr;
  return &chars_[fn];
}

void CharacteristicsMap::on_arrival(FunctionId fn, TimePoint now) {
  FnChars& c = at(fn);
  ++c.arrivals;
  if (c.last_arrival >= TimePoint::zero()) {
    c.iat_s.add(to_sec(now - c.last_arrival));
  }
  c.last_arrival = now;
}

void CharacteristicsMap::record_warm(FunctionId fn, Duration exec) {
  FnChars& c = at(fn);
  ++c.warm;
  c.warm_ms.add(to_ms(exec));
}

void CharacteristicsMap::record_cold(FunctionId fn, Duration exec) {
  FnChars& c = at(fn);
  ++c.cold;
  c.cold_ms.add(to_ms(exec));
}

Duration CharacteristicsMap::expected_warm(FunctionId fn) const {
  const FnChars* c = find(fn);
  if (c == nullptr || c->warm_ms.empty()) return Duration::zero();
  return msecs(c->warm_ms.mean());
}

Duration CharacteristicsMap::expected_cold(FunctionId fn) const {
  const FnChars* c = find(fn);
  if (c == nullptr || c->cold_ms.empty()) return Duration::zero();
  return msecs(c->cold_ms.mean());
}

double CharacteristicsMap::mean_iat_s(FunctionId fn) const {
  const FnChars* c = find(fn);
  if (c == nullptr || c->iat_s.count() == 0) return 0.0;
  return c->iat_s.mean();
}

std::uint64_t CharacteristicsMap::arrivals(FunctionId fn) const {
  const FnChars* c = find(fn);
  return c == nullptr ? 0 : c->arrivals;
}

std::uint64_t CharacteristicsMap::warm_count(FunctionId fn) const {
  const FnChars* c = find(fn);
  return c == nullptr ? 0 : c->warm;
}

std::uint64_t CharacteristicsMap::cold_count(FunctionId fn) const {
  const FnChars* c = find(fn);
  return c == nullptr ? 0 : c->cold;
}

}  // namespace ilu
