#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"

/// Types shared by the control plane (core/, baseline/), the workload layer
/// (trace/), and the cluster layer (lb/).
namespace ilu {

/// Dense function identifier: index into a Trace's function table / a
/// worker's registration table.
using FunctionId = std::uint32_t;

/// Static characteristics of a function, as registered with the platform.
///
/// `warm_time` is the pure code execution time in an already-initialized
/// container; a cold start additionally pays `init_time` (code/data
/// dependency initialization: imports, model download, ...). This matches
/// how the paper's Table 3 reports FunctionBench apps: "Run time" is the
/// cold total and "Init time" its initialization component.
struct FunctionProfile {
  std::string name;
  std::uint32_t mem_mb = 128;
  Duration warm_time = msecs(100);
  Duration init_time = msecs(500);
  /// Requested CPU allocation (cgroup weight); 1.0 = one core.
  double cpus = 1.0;

  Duration cold_time() const { return warm_time + init_time; }
};

/// Outcome of one invocation, as observed by the client.
struct InvokeResult {
  bool success = false;
  /// Dropped by admission control / buffer overflow (OpenWhisk behaviour).
  bool dropped = false;
  /// true when a new container had to be created (cold start).
  bool cold = false;
  /// true when the invocation skipped the queue via the bypass path.
  bool bypassed = false;

  FunctionId fn = 0;
  TimePoint submitted{};
  TimePoint exec_started{};
  TimePoint completed{};
  /// Time spent waiting in the invocation queue.
  Duration queue_wait{};
  /// Function execution time (including init for cold starts), as inflated
  /// by CPU contention.
  Duration exec_time{};

  /// End-to-end latency (the paper's "flow time").
  Duration flow_time() const { return completed - submitted; }

  /// Control-plane overhead: flow time minus function execution time.
  /// This is exactly how Fig 1 measures overhead (queueing included).
  Duration overhead() const { return flow_time() - exec_time; }

  /// Normalized end-to-end latency (the paper's "stretch").
  double stretch() const {
    if (exec_time <= Duration::zero()) return 1.0;
    return static_cast<double>(flow_time().count()) /
           static_cast<double>(exec_time.count());
  }
};

}  // namespace ilu
