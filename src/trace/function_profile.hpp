#pragma once

#include <vector>

#include "common/types.hpp"

/// Canned function profiles used by the paper's empirical experiments.
namespace ilu {

/// The seven FunctionBench-derived applications of Table 3, with the paper's
/// exact memory sizes, (cold) run times, and initialization times. The
/// stored `warm_time` is run time minus init time — the appendix confirms
/// this reading ("initialization overhead (1.7 of the total 2 seconds)").
std::vector<FunctionProfile> function_bench();

/// Individual Table 3 entries by name; throws std::out_of_range if unknown.
/// Names: ml_inference, video_encoding, matrix_multiply, disk_bench,
/// image_manip, web_serving, float_op.
FunctionProfile function_bench_app(const std::string& name);

/// The PyAES-style small CPU-bound function used for the Fig 1 overhead
/// scaling experiment: small memory, short warm time.
FunctionProfile pyaes();

/// A lookbusy-style synthetic function with specified CPU burn time and
/// memory footprint (the paper's custom-sized load generator).
FunctionProfile lookbusy(Duration warm_time, std::uint32_t mem_mb,
                         Duration init_time = msecs(500));

}  // namespace ilu
