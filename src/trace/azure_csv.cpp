#include "trace/azure_csv.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "util/csv.hpp"

namespace ilu {

namespace {

struct DurationRow {
  double avg_ms = 0.0;
  double max_ms = 0.0;
};

std::size_t find_column(const std::vector<std::string>& header,
                        const std::string& name) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::runtime_error("azure csv: missing column " + name);
}

double clampd(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace

Trace load_azure_dataset(const std::string& invocations_csv,
                         const std::string& durations_csv,
                         const std::string& memory_csv,
                         const AzureCsvOptions& opts) {
  // Pass 1: per-function durations.
  std::unordered_map<std::string, DurationRow> durations;
  {
    CsvReader r(durations_csv);
    std::vector<std::string> row;
    if (!r.next(row)) throw std::runtime_error("empty durations csv");
    std::size_t fn_col = find_column(row, "HashFunction");
    std::size_t avg_col = find_column(row, "Average");
    std::size_t max_col = find_column(row, "Maximum");
    while (r.next(row)) {
      if (row.size() <= std::max(avg_col, max_col)) continue;
      DurationRow d;
      d.avg_ms = std::stod(row[avg_col]);
      d.max_ms = std::stod(row[max_col]);
      durations[row[fn_col]] = d;
    }
  }

  // Pass 2: per-application memory.
  std::unordered_map<std::string, double> app_mem;
  {
    CsvReader r(memory_csv);
    std::vector<std::string> row;
    if (!r.next(row)) throw std::runtime_error("empty memory csv");
    std::size_t app_col = find_column(row, "HashApp");
    std::size_t mem_col = find_column(row, "AverageAllocatedMb");
    while (r.next(row)) {
      if (row.size() <= std::max(app_col, mem_col)) continue;
      app_mem[row[app_col]] = std::stod(row[mem_col]);
    }
  }

  // Pass 3a: count functions per app (for the even memory split).
  std::unordered_map<std::string, std::size_t> fns_per_app;
  {
    CsvReader r(invocations_csv);
    std::vector<std::string> row;
    if (!r.next(row)) throw std::runtime_error("empty invocations csv");
    std::size_t app_col = find_column(row, "HashApp");
    while (r.next(row)) {
      if (row.size() <= app_col) continue;
      ++fns_per_app[row[app_col]];
    }
  }

  // Pass 3b: build functions and events.
  Trace t;
  CsvReader r(invocations_csv);
  std::vector<std::string> row;
  if (!r.next(row)) throw std::runtime_error("empty invocations csv");
  std::size_t app_col = find_column(row, "HashApp");
  std::size_t fn_col = find_column(row, "HashFunction");
  // Minute columns are named "1".."1440" and follow the metadata columns.
  std::size_t first_minute_col = find_column(row, "1");
  std::size_t num_minutes = row.size() - first_minute_col;
  t.duration = mins(static_cast<double>(num_minutes));

  while (r.next(row)) {
    if (row.size() <= first_minute_col) continue;
    if (opts.max_functions > 0 && t.functions.size() >= opts.max_functions) {
      break;
    }
    // Count total invocations first: the paper drops functions invoked
    // fewer than twice in the day.
    std::uint64_t total = 0;
    for (std::size_t m = first_minute_col; m < row.size(); ++m) {
      if (!row[m].empty()) total += std::stoull(row[m]);
    }
    if (total < 2) continue;

    FunctionProfile p;
    p.name = row[fn_col];
    auto dit = durations.find(row[fn_col]);
    if (dit != durations.end()) {
      p.warm_time = msecs(dit->second.avg_ms);
      double init_ms = dit->second.max_ms - dit->second.avg_ms;
      p.init_time = std::max(opts.min_init, msecs(init_ms));
    } else {
      p.warm_time = opts.default_warm;
      p.init_time = opts.min_init;
    }
    if (p.warm_time <= Duration::zero()) p.warm_time = msecs(1);

    double mem = opts.default_app_mem_mb;
    if (auto mit = app_mem.find(row[app_col]); mit != app_mem.end()) {
      mem = mit->second;
    }
    auto share = fns_per_app[row[app_col]];
    if (share == 0) share = 1;
    p.mem_mb = static_cast<std::uint32_t>(clampd(
        mem / static_cast<double>(share),
        static_cast<double>(opts.min_fn_mem_mb),
        static_cast<double>(opts.max_fn_mem_mb)));

    auto fn_id = static_cast<FunctionId>(t.functions.size());
    t.functions.push_back(std::move(p));

    // Replay rule: 1 invocation -> start of minute; k -> equally spaced.
    for (std::size_t m = first_minute_col; m < row.size(); ++m) {
      if (row[m].empty()) continue;
      std::uint64_t k = std::stoull(row[m]);
      if (k == 0) continue;
      double minute_start_s =
          static_cast<double>(m - first_minute_col) * 60.0;
      double spacing_s = 60.0 / static_cast<double>(k);
      for (std::uint64_t j = 0; j < k; ++j) {
        t.events.push_back(TraceEvent{
            secs(minute_start_s + spacing_s * static_cast<double>(j)),
            fn_id});
      }
    }
  }

  std::stable_sort(t.events.begin(), t.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
  return t;
}

}  // namespace ilu
