#include "trace/trace_io.hpp"

#include <stdexcept>

#include "util/csv.hpp"

namespace ilu {

void save_trace(const Trace& trace, const std::string& prefix) {
  {
    CsvWriter w(prefix + "_functions.csv");
    w.row("name", "mem_mb", "warm_us", "init_us", "cpus", "duration_us");
    bool first = true;
    for (const auto& f : trace.functions) {
      // The trace duration rides along in the first row to avoid a third
      // file; readers take it from there.
      w.row(f.name, f.mem_mb, f.warm_time.count(), f.init_time.count(),
            f.cpus, first ? trace.duration.count() : 0);
      first = false;
    }
  }
  {
    CsvWriter w(prefix + "_events.csv");
    w.row("at_us", "fn");
    for (const auto& e : trace.events) {
      w.row(e.at.count(), e.fn);
    }
  }
}

Trace load_trace(const std::string& prefix) {
  Trace t;
  {
    CsvReader r(prefix + "_functions.csv");
    std::vector<std::string> f;
    if (!r.next(f)) throw std::runtime_error("empty functions csv");
    bool first = true;
    while (r.next(f)) {
      if (f.size() != 6) throw std::runtime_error("bad functions row");
      FunctionProfile p;
      p.name = f[0];
      p.mem_mb = static_cast<std::uint32_t>(std::stoul(f[1]));
      p.warm_time = usecs(std::stoll(f[2]));
      p.init_time = usecs(std::stoll(f[3]));
      p.cpus = std::stod(f[4]);
      if (first) {
        t.duration = usecs(std::stoll(f[5]));
        first = false;
      }
      t.functions.push_back(std::move(p));
    }
  }
  {
    CsvReader r(prefix + "_events.csv");
    std::vector<std::string> f;
    if (!r.next(f)) throw std::runtime_error("empty events csv");
    while (r.next(f)) {
      if (f.size() != 2) throw std::runtime_error("bad events row");
      t.events.push_back(TraceEvent{
          usecs(std::stoll(f[0])),
          static_cast<FunctionId>(std::stoul(f[1]))});
    }
  }
  if (!t.valid()) throw std::runtime_error("loaded trace is invalid");
  return t;
}

}  // namespace ilu
