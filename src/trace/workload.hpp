#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "util/dcheck.hpp"

/// Workload representation: a function table plus a time-ordered invocation
/// stream. This is the open-loop "timeseries of function invocations" the
/// paper's load-generation framework produces for repeatable experiments.
namespace ilu {

struct TraceEvent {
  TimePoint at{};
  FunctionId fn = 0;
};

struct TraceStats {
  std::size_t num_functions = 0;
  std::size_t num_invocations = 0;
  double reqs_per_sec = 0.0;
  /// Mean inter-arrival time across the merged stream (Table 2's "Avg. IAT").
  Duration avg_iat{};
  /// Little's-law expected number of concurrently running invocations:
  /// sum over functions of (arrival rate x mean warm execution time).
  double expected_concurrency = 0.0;
};

struct Trace {
  std::vector<FunctionProfile> functions;
  /// Sorted by `at`, ties in generation order.
  std::vector<TraceEvent> events;
  /// Nominal length of the workload (events all lie in [0, duration]).
  Duration duration{};

  TraceStats stats() const;

  /// Invocations per second, bucketed by minute — the appendix timeseries
  /// figures. Bucket i covers [i min, i+1 min).
  std::vector<double> invocations_per_second_by_minute() const;

  /// Verify events are sorted and reference valid functions.
  bool valid() const;
};

/// Structure-of-arrays event storage for trace generation at scale.
///
/// Generators emit one packed 64-bit key per event — (microsecond << 20) |
/// function id — into a flat arena, sort the keys with a plain std::sort
/// (8-byte moves, no comparator indirection), and unpack into parallel
/// columns. For tens of thousands of functions this beats building an AoS
/// vector<TraceEvent> and stable_sorting 16-byte structs, and replaying
/// from the columns touches half the bytes per event.
///
/// The packed order equals the legacy Trace order: ties at the same
/// microsecond sort by function id, which is exactly what
/// stable_sort-over-function-major-generation produced, and same-(at, fn)
/// duplicates are indistinguishable. TraceArena::to_trace() is therefore
/// byte-identical to the corresponding legacy generator output.
struct TraceArena {
  /// Function id width inside a packed key. Supports ~1M functions and
  /// timestamps to ~2^43 µs (about 100 days) — both asserted at pack time.
  static constexpr int kFnBits = 20;
  static constexpr std::uint64_t kMaxFn = (1ull << kFnBits) - 1;
  static constexpr std::int64_t kMaxUs = (1ll << (63 - kFnBits)) - 1;

  /// Pack one event into its 64-bit key. Bounds are ILU_DCHECKed (debug /
  /// checks-forced builds abort on out-of-range inputs; release packs
  /// garbage, which the arena-file verifier catches downstream).
  static std::uint64_t pack(TimePoint at, FunctionId fn) {
    const std::int64_t us = at.count();
    ILU_DCHECK(us >= 0 && us <= kMaxUs, "event time out of packed-key range");
    ILU_DCHECK(fn <= kMaxFn, "function id out of packed-key range");
    return (static_cast<std::uint64_t>(us) << kFnBits) |
           static_cast<std::uint64_t>(fn);
  }
  /// Unpack the timestamp / function-id halves of a key.
  static TimePoint key_at(std::uint64_t key) {
    return Duration{static_cast<std::int64_t>(key >> kFnBits)};
  }
  static FunctionId key_fn(std::uint64_t key) {
    return static_cast<FunctionId>(key & kMaxFn);
  }

  std::vector<FunctionProfile> functions;
  /// Event columns, sorted ascending by (at_us, fn).
  std::vector<std::int64_t> at_us;
  std::vector<FunctionId> fn;
  Duration duration{};

  std::size_t size() const { return at_us.size(); }
  TimePoint at(std::size_t i) const { return Duration{at_us[i]}; }

  /// Sort `keys` in place and unpack them into the columns (replacing any
  /// previous contents). functions/duration are left to the caller.
  void adopt_keys(std::vector<std::uint64_t>& keys);

  /// Materialize the equivalent AoS trace (same functions, same order).
  Trace to_trace() const;
};

}  // namespace ilu
