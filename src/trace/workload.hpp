#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

/// Workload representation: a function table plus a time-ordered invocation
/// stream. This is the open-loop "timeseries of function invocations" the
/// paper's load-generation framework produces for repeatable experiments.
namespace ilu {

struct TraceEvent {
  TimePoint at{};
  FunctionId fn = 0;
};

struct TraceStats {
  std::size_t num_functions = 0;
  std::size_t num_invocations = 0;
  double reqs_per_sec = 0.0;
  /// Mean inter-arrival time across the merged stream (Table 2's "Avg. IAT").
  Duration avg_iat{};
  /// Little's-law expected number of concurrently running invocations:
  /// sum over functions of (arrival rate x mean warm execution time).
  double expected_concurrency = 0.0;
};

struct Trace {
  std::vector<FunctionProfile> functions;
  /// Sorted by `at`, ties in generation order.
  std::vector<TraceEvent> events;
  /// Nominal length of the workload (events all lie in [0, duration]).
  Duration duration{};

  TraceStats stats() const;

  /// Invocations per second, bucketed by minute — the appendix timeseries
  /// figures. Bucket i covers [i min, i+1 min).
  std::vector<double> invocations_per_second_by_minute() const;

  /// Verify events are sorted and reference valid functions.
  bool valid() const;
};

}  // namespace ilu
