#include "trace/loadgen.hpp"

#include <algorithm>
#include <cassert>

#include "obs/flight.hpp"
#include "util/dcheck.hpp"

// ilu-lint: speculative-zone(flight) - the sharded scheduler brackets every speculative window with flight::mark()/rewind(), so rolled-back milestone records are discarded

namespace ilu {

OpenLoopDriver::OpenLoopDriver(Runtime& rt, InvokeFn invoke)
    : rt_(rt), invoke_(std::move(invoke)) {
  register_snapshotter();
}

void OpenLoopDriver::register_snapshotter() {
  struct State {
    bool started = false;
    TimePoint epoch{};
    std::size_t next = 0;
    std::size_t outstanding = 0;
    bool submitted_all = false;
    std::size_t milestone_step = 0;
    std::size_t next_milestone = 0;
    std::uint64_t streamed = 0;
    std::size_t results_size = 0;
  };
  rt_.add_snapshotter(Snapshotter{
      [this]() -> std::shared_ptr<void> {
        auto s = std::make_shared<State>();
        s->started = started_;
        s->epoch = epoch_;
        s->next = next_;
        s->outstanding = outstanding_;
        s->submitted_all = submitted_all_;
        s->milestone_step = milestone_step_;
        s->next_milestone = next_milestone_;
        s->streamed = streamed_;
        s->results_size = results_.size();
        return s;
      },
      [this](const std::shared_ptr<void>& blob) {
        const auto& s = *static_cast<const State*>(blob.get());
        ILU_DCHECK(!sink_ || streamed_ == s.streamed,
                   "speculative rollback cannot un-call a result sink; "
                   "streaming replays must run under conservative sync");
        streamed_ = s.streamed;
        started_ = s.started;
        epoch_ = s.epoch;
        next_ = s.next;
        outstanding_ = s.outstanding;
        submitted_all_ = s.submitted_all;
        milestone_step_ = s.milestone_step;
        next_milestone_ = s.next_milestone;
        results_.resize(s.results_size);
      }});
}

void OpenLoopDriver::start(EventView events) {
  assert(!started_ && "driver already started");
  started_ = true;
  view_ = events;
  begin();
}

void OpenLoopDriver::begin() {
  epoch_ = rt_.now();
  if (!sink_) results_.reserve(view_.size());
  flight::record(rt_.now(), flight::Ev::kReplayMilestone, 0);
  if (view_.empty()) {
    submitted_all_ = true;
    return;
  }
  milestone_step_ = std::max<std::size_t>(1, view_.size() / 10);
  next_milestone_ = milestone_step_;
  rt_.schedule(view_.at(0), [this] { pump(); });
}

void OpenLoopDriver::pump() {
  // Submit every event due now, then re-arm a single timer for the next.
  const std::size_t count = view_.size();
  TimePoint now = rt_.now() - epoch_;
  while (next_ < count && view_.at(next_) <= now) {
    FunctionId fn = view_.fn(next_);
    ++next_;
    ++outstanding_;
    invoke_(fn, [this](const InvokeResult& r) {
      if (sink_) {
        ++streamed_;
        sink_(r);
      } else {
        results_.push_back(r);
      }
      --outstanding_;
    });
    if (next_ == next_milestone_) {
      flight::record(rt_.now(), flight::Ev::kReplayMilestone,
                     static_cast<std::uint32_t>(next_ * 100 / count));
      next_milestone_ += milestone_step_;
    }
  }
  if (next_ < count) {
    rt_.schedule(view_.at(next_) - now, [this] { pump(); });
  } else {
    submitted_all_ = true;
    flight::record(rt_.now(), flight::Ev::kReplayMilestone, 100);
  }
}

ClosedLoopDriver::ClosedLoopDriver(Runtime& rt, InvokeFn invoke, FunctionId fn,
                                   std::size_t clients)
    : rt_(rt), invoke_(std::move(invoke)), fn_(fn), clients_(clients) {
  assert(clients_ > 0);
}

void ClosedLoopDriver::start(std::size_t iterations_per_client) {
  started_ = true;
  active_clients_ = clients_;
  results_.reserve(clients_ * iterations_per_client);
  for (std::size_t c = 0; c < clients_; ++c) {
    rt_.post([this, iterations_per_client] {
      client_loop(iterations_per_client);
    });
  }
}

void ClosedLoopDriver::client_loop(std::size_t remaining) {
  if (remaining == 0) {
    --active_clients_;
    return;
  }
  invoke_(fn_, [this, remaining](const InvokeResult& r) {
    results_.push_back(r);
    client_loop(remaining - 1);
  });
}

namespace {

/// The synthetic arrival-process generator, independent of event storage:
/// `emit(at, fn)` receives every event in function-major order. Both the
/// AoS and the arena paths draw RNG through this one loop, so they produce
/// the same event multiset by construction.
template <typename Emit>
void generate_synthetic(const std::vector<SyntheticFunctionSpec>& specs,
                        Duration duration, std::uint64_t seed, Emit&& emit) {
  assert(duration > Duration::zero());
  Rng rng(seed);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    assert(spec.mean_iat > Duration::zero());
    Rng frng = rng.substream(i);
    TimePoint at = spec.phase;
    while (at < duration) {
      emit(at, static_cast<FunctionId>(i));
      Duration gap =
          spec.exponential
              ? secs(frng.exponential(to_sec(spec.mean_iat)))
              : spec.mean_iat;
      // Guard against a zero exponential draw stalling the generator.
      if (gap <= Duration::zero()) gap = usecs(1);
      at += gap;
    }
  }
}

}  // namespace

Trace make_synthetic_trace(const std::vector<SyntheticFunctionSpec>& specs,
                           Duration duration, std::uint64_t seed) {
  Trace t;
  t.duration = duration;
  for (const auto& spec : specs) t.functions.push_back(spec.profile);
  generate_synthetic(specs, duration, seed, [&](TimePoint at, FunctionId fn) {
    t.events.push_back(TraceEvent{at, fn});
  });
  std::stable_sort(t.events.begin(), t.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
  return t;
}

TraceArena make_synthetic_arena(const std::vector<SyntheticFunctionSpec>& specs,
                                Duration duration, std::uint64_t seed) {
  TraceArena a;
  a.duration = duration;
  for (const auto& spec : specs) a.functions.push_back(spec.profile);
  std::vector<std::uint64_t> keys;
  generate_synthetic(specs, duration, seed, [&](TimePoint at, FunctionId fn) {
    keys.push_back(TraceArena::pack(at, fn));
  });
  a.adopt_keys(keys);
  return a;
}

Trace make_cyclic_trace(const std::vector<FunctionProfile>& profiles,
                        Duration gap, Duration duration) {
  assert(!profiles.empty() && gap > Duration::zero());
  Trace t;
  t.duration = duration;
  t.functions = profiles;
  TimePoint at{};
  FunctionId fn = 0;
  while (at < duration) {
    t.events.push_back(TraceEvent{at, fn});
    fn = static_cast<FunctionId>((fn + 1) % profiles.size());
    at += gap;
  }
  return t;
}

}  // namespace ilu
