#include "trace/loadgen.hpp"

#include <algorithm>
#include <cassert>

namespace ilu {

OpenLoopDriver::OpenLoopDriver(Runtime& rt, InvokeFn invoke)
    : rt_(rt), invoke_(std::move(invoke)) {}

void OpenLoopDriver::start(const Trace& trace) {
  assert(trace_ == nullptr && "driver already started");
  trace_ = &trace;
  epoch_ = rt_.now();
  results_.reserve(trace.events.size());
  if (trace.events.empty()) {
    submitted_all_ = true;
    return;
  }
  rt_.schedule(trace.events.front().at, [this] { pump(); });
}

void OpenLoopDriver::pump() {
  // Submit every event due now, then re-arm a single timer for the next.
  const auto& events = trace_->events;
  TimePoint now = rt_.now() - epoch_;
  while (next_ < events.size() && events[next_].at <= now) {
    FunctionId fn = events[next_].fn;
    ++next_;
    ++outstanding_;
    invoke_(fn, [this](const InvokeResult& r) {
      results_.push_back(r);
      --outstanding_;
    });
  }
  if (next_ < events.size()) {
    rt_.schedule(events[next_].at - now, [this] { pump(); });
  } else {
    submitted_all_ = true;
  }
}

ClosedLoopDriver::ClosedLoopDriver(Runtime& rt, InvokeFn invoke, FunctionId fn,
                                   std::size_t clients)
    : rt_(rt), invoke_(std::move(invoke)), fn_(fn), clients_(clients) {
  assert(clients_ > 0);
}

void ClosedLoopDriver::start(std::size_t iterations_per_client) {
  started_ = true;
  active_clients_ = clients_;
  results_.reserve(clients_ * iterations_per_client);
  for (std::size_t c = 0; c < clients_; ++c) {
    rt_.post([this, iterations_per_client] {
      client_loop(iterations_per_client);
    });
  }
}

void ClosedLoopDriver::client_loop(std::size_t remaining) {
  if (remaining == 0) {
    --active_clients_;
    return;
  }
  invoke_(fn_, [this, remaining](const InvokeResult& r) {
    results_.push_back(r);
    client_loop(remaining - 1);
  });
}

Trace make_synthetic_trace(const std::vector<SyntheticFunctionSpec>& specs,
                           Duration duration, std::uint64_t seed) {
  assert(duration > Duration::zero());
  Trace t;
  t.duration = duration;
  Rng rng(seed);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    assert(spec.mean_iat > Duration::zero());
    t.functions.push_back(spec.profile);
    Rng frng = rng.substream(i);
    TimePoint at = spec.phase;
    while (at < duration) {
      t.events.push_back(TraceEvent{at, static_cast<FunctionId>(i)});
      Duration gap =
          spec.exponential
              ? secs(frng.exponential(to_sec(spec.mean_iat)))
              : spec.mean_iat;
      // Guard against a zero exponential draw stalling the generator.
      if (gap <= Duration::zero()) gap = usecs(1);
      at += gap;
    }
  }
  std::stable_sort(t.events.begin(), t.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
  return t;
}

Trace make_cyclic_trace(const std::vector<FunctionProfile>& profiles,
                        Duration gap, Duration duration) {
  assert(!profiles.empty() && gap > Duration::zero());
  Trace t;
  t.duration = duration;
  t.functions = profiles;
  TimePoint at{};
  FunctionId fn = 0;
  while (at < duration) {
    t.events.push_back(TraceEvent{at, fn});
    fn = static_cast<FunctionId>((fn + 1) % profiles.size());
    at += gap;
  }
  return t;
}

}  // namespace ilu
