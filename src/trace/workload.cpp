#include "trace/workload.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ilu {

TraceStats Trace::stats() const {
  TraceStats s;
  s.num_functions = functions.size();
  s.num_invocations = events.size();
  if (events.empty()) return s;

  Duration span = duration > Duration::zero()
                      ? duration
                      : events.back().at - events.front().at;
  if (span <= Duration::zero()) span = usecs(1);
  s.reqs_per_sec = static_cast<double>(events.size()) / to_sec(span);
  if (events.size() > 1) {
    s.avg_iat = Duration{(events.back().at - events.front().at).count() /
                         static_cast<std::int64_t>(events.size() - 1)};
  }

  // Little's law: per-function arrival rate x warm execution time.
  std::vector<std::size_t> counts(functions.size(), 0);
  for (const auto& e : events) ++counts[e.fn];
  for (std::size_t f = 0; f < functions.size(); ++f) {
    double rate = static_cast<double>(counts[f]) / to_sec(span);
    s.expected_concurrency += rate * to_sec(functions[f].warm_time);
  }
  return s;
}

std::vector<double> Trace::invocations_per_second_by_minute() const {
  if (events.empty()) return {};
  Duration span = duration > Duration::zero() ? duration : events.back().at;
  auto num_minutes =
      static_cast<std::size_t>(std::ceil(to_sec(span) / 60.0));
  if (num_minutes == 0) num_minutes = 1;
  std::vector<double> out(num_minutes, 0.0);
  for (const auto& e : events) {
    auto m = static_cast<std::size_t>(to_sec(e.at) / 60.0);
    if (m >= out.size()) m = out.size() - 1;
    out[m] += 1.0;
  }
  for (auto& v : out) v /= 60.0;
  return out;
}

bool Trace::valid() const {
  if (!std::is_sorted(events.begin(), events.end(),
                      [](const TraceEvent& a, const TraceEvent& b) {
                        return a.at < b.at;
                      })) {
    return false;
  }
  return std::all_of(events.begin(), events.end(), [&](const TraceEvent& e) {
    return e.fn < functions.size();
  });
}

void TraceArena::adopt_keys(std::vector<std::uint64_t>& keys) {
  std::sort(keys.begin(), keys.end());
  at_us.clear();
  fn.clear();
  at_us.reserve(keys.size());
  fn.reserve(keys.size());
  for (std::uint64_t k : keys) {
    at_us.push_back(key_at(k).count());
    fn.push_back(key_fn(k));
  }
}

Trace TraceArena::to_trace() const {
  Trace t;
  t.functions = functions;
  t.duration = duration;
  t.events.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    t.events.push_back(TraceEvent{Duration{at_us[i]}, fn[i]});
  }
  return t;
}

}  // namespace ilu
