#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "trace/workload.hpp"
#include "util/rng.hpp"

/// Synthetic model of the Azure Functions 2019 trace (Shahrad et al.).
///
/// The real trace is proprietary-scale data we cannot ship; this model
/// reproduces the published marginals the paper's evaluation depends on:
///  - heavy-tailed popularity: ~1% of functions account for ~90% of
///    invocations; over half of functions have inter-arrival times beyond
///    30 minutes (guaranteed cold under a 10-minute TTL),
///  - execution times spanning ~100 ms to minutes (p50 ~1 s, p95 ~1 min),
///  - memory tracked at *application* level and split evenly across the
///    app's functions,
///  - invocations delivered in minute-wide buckets; on replay a single
///    invocation lands at the start of its minute, multiple invocations are
///    equally spaced across it,
///  - a diurnal load swing over the day (appendix Fig "whole trace").
///
/// Cold-start overhead per function is estimated the way the paper does
/// from the dataset: `maximum - average` runtime, i.e. init cost is
/// generated as a function-specific multiple of the execution time.
namespace ilu {

struct AzureModelConfig {
  /// Number of functions in the modeled full trace (the real day-1 data has
  /// ~50k reused functions).
  std::size_t population = 50000;
  /// Trace length in days.
  double days = 1.0;
  std::uint64_t seed = 0xA22BEu;

  /// Per-function mean inter-arrival time: lognormal across functions.
  /// median 45 min with sigma 3.5 yields ~1% of functions carrying ~90% of
  /// invocations and >50% of functions with IAT > 30 min.
  double iat_median_s = 2700.0;
  double iat_sigma = 3.5;
  /// Functions faster than this IAT are clamped (rate cap per function).
  double min_iat_s = 0.25;
  /// Cap on a single function's expected concurrency (warm_exec / IAT):
  /// cloud providers enforce per-function concurrency limits, and without
  /// one a sampled long-running high-rate function floods any server.
  double max_expected_concurrency = 30.0;

  /// Warm execution time: lognormal, p50 1 s / p95 ~1 min => sigma ~2.5.
  double dur_median_s = 1.0;
  double dur_sigma = 2.5;
  double min_dur_s = 0.10;
  double max_dur_s = 600.0;

  /// Init overhead = warm duration x lognormal factor. The paper estimates
  /// cold overhead as (max - average) runtime, which is *small* for most
  /// functions but heavy-tailed; median 0.3 with sigma 0.8 matches that
  /// "generally small (<10%) increase" regime while leaving room for
  /// functions whose init dominates.
  double init_factor_median = 0.25;
  double init_factor_sigma = 1.2;
  double min_init_s = 0.05;
  double max_init_s = 240.0;

  /// Application-level memory (MB), split evenly across the app's functions.
  double app_mem_median_mb = 300.0;
  double app_mem_sigma = 0.8;
  std::uint32_t min_fn_mem_mb = 32;
  std::uint32_t max_fn_mem_mb = 1024;
  /// Functions per application: 1 + Poisson(mean-1).
  double mean_fns_per_app = 2.5;

  /// Fractional amplitude of the diurnal sine modulation.
  double diurnal_amplitude = 0.35;

  /// Temporal locality: each function concentrates most of its traffic in a
  /// daily "active window" (business hours, periodic jobs) — the property
  /// that makes recency a useful eviction signal on the real Azure trace.
  /// Median active-window length in minutes (lognormal across functions);
  /// <= 0 disables activity windows entirely.
  double active_window_median_min = 240.0;
  double active_window_sigma = 0.6;
  /// Relative arrival rate outside the active window (inside is boosted so
  /// the daily total is unchanged).
  double inactive_weight = 0.15;
};

/// Static per-function metadata for the whole modeled population.
struct AzureFunctionMeta {
  double mean_iat_s = 0.0;
  double warm_s = 0.0;
  double init_s = 0.0;
  std::uint32_t mem_mb = 0;
  /// Expected invocations over the whole trace, before bucket sampling.
  double expected_invocations = 0.0;
  /// Daily activity window (minute of day) and its in-window rate boost.
  double active_start_min = 0.0;
  double active_len_min = 1440.0;
  double active_boost = 1.0;
};

class AzureTraceModel {
 public:
  explicit AzureTraceModel(AzureModelConfig cfg = {});

  const AzureModelConfig& config() const { return cfg_; }
  const std::vector<AzureFunctionMeta>& population() const { return pop_; }

  /// The paper's three samplers. If target_rps > 0, per-function rates are
  /// scaled (Little's-law style load adjustment) so the generated trace hits
  /// approximately that request rate.
  Trace sample_rare(std::size_t n, double target_rps = 0.0) const;
  Trace sample_representative(std::size_t n, double target_rps = 0.0) const;
  Trace sample_random(std::size_t n, double target_rps = 0.0) const;

  /// Arena (SoA) variants of the samplers: identical function choice, RNG
  /// draws, and event order as the Trace versions, generated straight into
  /// a flat arena — the fast path for populations of tens of thousands.
  TraceArena sample_rare_arena(std::size_t n, double target_rps = 0.0) const;
  TraceArena sample_representative_arena(std::size_t n,
                                         double target_rps = 0.0) const;
  TraceArena sample_random_arena(std::size_t n, double target_rps = 0.0) const;

  /// Build a trace for an explicit set of population indices.
  Trace build_trace(const std::vector<std::size_t>& fn_indices,
                    double rate_scale = 1.0) const;
  /// SoA counterpart of build_trace (same events, same order).
  TraceArena build_arena(const std::vector<std::size_t>& fn_indices,
                         double rate_scale = 1.0) const;

  /// Stream the events of functions fn_indices[fi_begin, fi_end) —
  /// `emit(at, fi)` sees them in function-major order (unsorted in time),
  /// with fi the *global* position within fn_indices. Each function draws
  /// from its own RNG substream keyed by population index, so any partition
  /// of [0, n) into subranges generates exactly the events of a single
  /// build_arena(fn_indices, rate_scale) call. This is the bounded-memory
  /// entry point the chunked on-disk generator (arena_gen.hpp) is built on.
  void generate_events(
      const std::vector<std::size_t>& fn_indices, double rate_scale,
      std::size_t fi_begin, std::size_t fi_end,
      const std::function<void(TimePoint, FunctionId)>& emit) const;

  /// The FunctionProfile for one population index (the samplers' naming and
  /// unit conversions, one function at a time).
  FunctionProfile profile_for(std::size_t population_index) const;

  /// Expected invocations/second for each minute of the full (unsampled)
  /// trace — the appendix "whole trace" timeseries. One Poisson draw per
  /// minute over the aggregated rate.
  std::vector<double> full_trace_rps_by_minute() const;

  /// Diurnal modulation factor for a given minute of day (mean 1.0).
  double diurnal(double minute_of_day) const;

  /// Per-function activity modulation for a given minute of day (mean 1.0
  /// over the day).
  double activity(const AzureFunctionMeta& m, double minute_of_day) const;

  /// Deterministic index selection shared by the Trace and arena samplers,
  /// public so the on-disk generator (arena_gen / tools/trace_gen) can
  /// reuse the samplers' function choice without materializing a trace.
  std::vector<std::size_t> pick_rare(std::size_t n) const;
  std::vector<std::size_t> pick_representative(std::size_t n) const;
  std::vector<std::size_t> pick_random(std::size_t n) const;

 private:
  std::vector<std::size_t> indices_sorted_by_popularity() const;

  AzureModelConfig cfg_;
  std::vector<AzureFunctionMeta> pop_;
};

}  // namespace ilu
