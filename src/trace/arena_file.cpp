#include "trace/arena_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/hash.hpp"

namespace ilu {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

/// Bounds-checked little-endian reads over the mmap'd bytes.
class ByteReader {
 public:
  ByteReader(const std::byte* p, std::uint64_t len) : p_(p), len_(len) {}

  std::uint64_t pos() const { return pos_; }

  std::uint32_t u32() { return static_cast<std::uint32_t>(raw(4)); }
  std::uint64_t u64() { return raw(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(raw(8)); }
  double f64() {
    std::uint64_t bits = raw(8);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str(std::size_t n) {
    if (len_ - pos_ < n) {
      throw std::runtime_error("arena file: truncated string");
    }
    std::string s(reinterpret_cast<const char*>(p_ + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  std::uint64_t raw(std::size_t n) {
    if (len_ - pos_ < n) {
      throw std::runtime_error("arena file: truncated header");
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(std::to_integer<unsigned>(p_[pos_ + i]))
           << (8 * i);
    }
    pos_ += n;
    return v;
  }

  const std::byte* p_;
  std::uint64_t len_;
  std::uint64_t pos_ = 0;
};

std::string serialize_header(std::uint64_t num_functions,
                             std::uint64_t num_events, std::int64_t duration_us,
                             std::uint64_t keys_offset,
                             std::uint64_t keys_checksum,
                             std::uint64_t meta_checksum) {
  std::string h;
  h.reserve(kArenaHeaderBytes);
  put_u64(h, kArenaMagic);
  put_u32(h, kArenaVersion);
  put_u32(h, kArenaHeaderBytes);
  put_u64(h, num_functions);
  put_u64(h, num_events);
  put_u64(h, static_cast<std::uint64_t>(duration_us));
  put_u64(h, keys_offset);
  put_u64(h, keys_checksum);
  put_u64(h, meta_checksum);
  for (int i = 0; i < 4; ++i) put_u64(h, 0);  // reserved
  return h;
}

std::string serialize_function(const FunctionProfile& f) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(f.name.size()));
  out.append(f.name);
  put_u32(out, f.mem_mb);
  put_u64(out, static_cast<std::uint64_t>(f.warm_time.count()));
  put_u64(out, static_cast<std::uint64_t>(f.init_time.count()));
  put_f64(out, f.cpus);
  return out;
}

[[noreturn]] void io_fail(const std::string& path, const char* what) {
  throw std::runtime_error("arena file " + path + ": " + what + " (" +
                           std::strerror(errno) + ")");
}

}  // namespace

// ---------------------------------------------------------------------------
// ArenaFileWriter
// ---------------------------------------------------------------------------

ArenaFileWriter::ArenaFileWriter(const std::string& path)
    : path_(path), keys_checksum_(kFnv1a64Basis) {
  // "wb+": finalize() reads the function table back to fold it into the
  // meta checksum exactly as written.
  f_ = std::fopen(path.c_str(), "wb+");
  if (f_ == nullptr) io_fail(path_, "cannot open for writing");
}

ArenaFileWriter::~ArenaFileWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void ArenaFileWriter::begin(const std::vector<FunctionProfile>& functions,
                            Duration duration) {
  if (begun_) throw std::logic_error("ArenaFileWriter::begin called twice");
  if (functions.size() > TraceArena::kMaxFn + 1) {
    throw std::logic_error("arena file: too many functions for packed keys");
  }
  if (duration.count() < 0 || duration.count() > TraceArena::kMaxUs) {
    throw std::logic_error("arena file: duration out of packed-key range");
  }
  begun_ = true;
  num_functions_ = functions.size();
  duration_us_ = duration.count();

  std::string meta(kArenaHeaderBytes, '\0');  // placeholder, rewritten last
  for (const auto& f : functions) meta += serialize_function(f);
  keys_offset_ = (meta.size() + kArenaKeyAlign - 1) / kArenaKeyAlign *
                 kArenaKeyAlign;
  meta.resize(keys_offset_, '\0');
  if (std::fwrite(meta.data(), 1, meta.size(), f_) != meta.size()) {
    io_fail(path_, "short write (function table)");
  }
}

void ArenaFileWriter::append_keys(const std::uint64_t* keys, std::size_t n) {
  if (!begun_) throw std::logic_error("ArenaFileWriter: append before begin");
  for (std::size_t i = 0; i < n; ++i) {
    if (keys[i] < last_key_) {
      throw std::logic_error("arena file: keys appended out of order");
    }
    last_key_ = keys[i];
    if (TraceArena::key_fn(keys[i]) >= num_functions_) {
      throw std::logic_error("arena file: key references unknown function");
    }
  }
  // Keys are written in host order; the format is little-endian and the
  // event_view.hpp static_assert pins the build to little-endian hosts.
  if (n > 0 && std::fwrite(keys, sizeof(std::uint64_t), n, f_) != n) {
    io_fail(path_, "short write (keys)");
  }
  keys_checksum_ = fnv1a64_bytes(keys, n * sizeof(std::uint64_t),
                                 keys_checksum_);
  num_events_ += n;
}

std::uint64_t ArenaFileWriter::finalize() {
  if (!begun_) throw std::logic_error("ArenaFileWriter: finalize before begin");
  // Recompute the meta checksum over the function table as written, with a
  // zeroed header placeholder exactly as it currently exists on disk, then
  // drop the real header in.
  if (std::fflush(f_) != 0) io_fail(path_, "flush failed");

  std::string header = serialize_header(num_functions_, num_events_,
                                        duration_us_, keys_offset_,
                                        keys_checksum_, /*meta_checksum=*/0);
  // meta_checksum covers [0, keys_offset) with the checksum field zeroed:
  // hash the header-with-zeroed-field, then the function table from disk.
  std::uint64_t meta_ck = fnv1a64_bytes(header.data(), header.size());
  {
    std::vector<char> buf(1 << 16);
    if (std::fseek(f_, kArenaHeaderBytes, SEEK_SET) != 0) {
      io_fail(path_, "seek failed");
    }
    std::uint64_t remaining = keys_offset_ - kArenaHeaderBytes;
    while (remaining > 0) {
      std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, buf.size()));
      if (std::fread(buf.data(), 1, want, f_) != want) {
        io_fail(path_, "readback failed");
      }
      meta_ck = fnv1a64_bytes(buf.data(), want, meta_ck);
      remaining -= want;
    }
  }
  header = serialize_header(num_functions_, num_events_, duration_us_,
                            keys_offset_, keys_checksum_, meta_ck);
  if (std::fseek(f_, 0, SEEK_SET) != 0) io_fail(path_, "seek failed");
  if (std::fwrite(header.data(), 1, header.size(), f_) != header.size()) {
    io_fail(path_, "short write (header)");
  }
  if (std::fclose(f_) != 0) {
    f_ = nullptr;
    io_fail(path_, "close failed");
  }
  f_ = nullptr;
  return keys_offset_ + num_events_ * sizeof(std::uint64_t);
}

void write_arena_file(const TraceArena& arena, const std::string& path) {
  ArenaFileWriter w(path);
  w.begin(arena.functions, arena.duration);
  std::vector<std::uint64_t> keys;
  keys.reserve(1 << 16);
  for (std::size_t i = 0; i < arena.size(); ++i) {
    keys.push_back(TraceArena::pack(arena.at(i), arena.fn[i]));
    if (keys.size() == keys.capacity()) {
      w.append_keys(keys.data(), keys.size());
      keys.clear();
    }
  }
  w.append_keys(keys.data(), keys.size());
  w.finalize();
}

// ---------------------------------------------------------------------------
// ArenaFile
// ---------------------------------------------------------------------------

ArenaFile::ArenaFile(const std::string& path) : path_(path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) io_fail(path_, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    io_fail(path_, "fstat failed");
  }
  map_len_ = static_cast<std::uint64_t>(st.st_size);
  if (map_len_ < kArenaHeaderBytes) {
    ::close(fd);
    throw std::runtime_error("arena file " + path_ +
                             ": too small for a header");
  }
  map_ = ::mmap(nullptr, map_len_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    io_fail(path_, "mmap failed");
  }

  try {
    const auto* base = static_cast<const std::byte*>(map_);
    ByteReader r(base, map_len_);
    if (r.u64() != kArenaMagic) {
      throw std::runtime_error("arena file " + path_ + ": bad magic");
    }
    std::uint32_t version = r.u32();
    if (version != kArenaVersion) {
      throw std::runtime_error("arena file " + path_ +
                               ": unsupported version " +
                               std::to_string(version));
    }
    if (r.u32() != kArenaHeaderBytes) {
      throw std::runtime_error("arena file " + path_ + ": bad header size");
    }
    std::uint64_t num_functions = r.u64();
    num_events_ = r.u64();
    duration_us_ = r.i64();
    keys_offset_ = r.u64();
    keys_checksum_ = r.u64();
    std::uint64_t meta_ck = r.u64();
    for (int i = 0; i < 4; ++i) r.u64();  // reserved

    if (num_functions > TraceArena::kMaxFn + 1) {
      throw std::runtime_error("arena file " + path_ +
                               ": function count exceeds packed-key range");
    }
    if (duration_us_ < 0 || duration_us_ > TraceArena::kMaxUs) {
      throw std::runtime_error("arena file " + path_ +
                               ": duration out of range");
    }
    if (keys_offset_ < kArenaHeaderBytes || keys_offset_ > map_len_ ||
        keys_offset_ % sizeof(std::uint64_t) != 0) {
      throw std::runtime_error("arena file " + path_ + ": bad keys offset");
    }
    if (map_len_ != keys_offset_ + num_events_ * sizeof(std::uint64_t)) {
      throw std::runtime_error("arena file " + path_ +
                               ": truncated or oversized key column");
    }

    // Meta checksum: header with the checksum field zeroed + function table.
    std::string zeroed = serialize_header(num_functions, num_events_,
                                          duration_us_, keys_offset_,
                                          keys_checksum_, 0);
    std::uint64_t ck = fnv1a64_bytes(zeroed.data(), zeroed.size());
    ck = fnv1a64_bytes(base + kArenaHeaderBytes,
                       keys_offset_ - kArenaHeaderBytes, ck);
    if (ck != meta_ck) {
      throw std::runtime_error("arena file " + path_ +
                               ": header/function-table checksum mismatch");
    }

    functions_.reserve(num_functions);
    for (std::uint64_t i = 0; i < num_functions; ++i) {
      FunctionProfile f;
      std::uint32_t name_len = r.u32();
      f.name = r.str(name_len);
      f.mem_mb = r.u32();
      f.warm_time = usecs(static_cast<std::int64_t>(r.u64()));
      f.init_time = usecs(static_cast<std::int64_t>(r.u64()));
      f.cpus = r.f64();
      functions_.push_back(std::move(f));
    }
    if (r.pos() > keys_offset_) {
      throw std::runtime_error("arena file " + path_ +
                               ": function table overruns key column");
    }

    // The key column is consumed front to back exactly once per replay.
    if (num_events_ > 0) {
      ::madvise(static_cast<std::byte*>(map_) + keys_offset_,
                map_len_ - keys_offset_, MADV_SEQUENTIAL);
    }
  } catch (...) {
    close();
    throw;
  }
}

ArenaFile::~ArenaFile() { close(); }

ArenaFile::ArenaFile(ArenaFile&& other) noexcept
    : path_(std::move(other.path_)),
      map_(other.map_),
      map_len_(other.map_len_),
      keys_offset_(other.keys_offset_),
      num_events_(other.num_events_),
      duration_us_(other.duration_us_),
      keys_checksum_(other.keys_checksum_),
      released_bytes_(other.released_bytes_),
      functions_(std::move(other.functions_)) {
  other.map_ = nullptr;
  other.map_len_ = 0;
  other.num_events_ = 0;
}

ArenaFile& ArenaFile::operator=(ArenaFile&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    map_ = other.map_;
    map_len_ = other.map_len_;
    keys_offset_ = other.keys_offset_;
    num_events_ = other.num_events_;
    duration_us_ = other.duration_us_;
    keys_checksum_ = other.keys_checksum_;
    released_bytes_ = other.released_bytes_;
    functions_ = std::move(other.functions_);
    other.map_ = nullptr;
    other.map_len_ = 0;
    other.num_events_ = 0;
  }
  return *this;
}

void ArenaFile::close() {
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
    map_ = nullptr;
  }
}

void ArenaFile::verify() const {
  const std::uint64_t* k = keys();
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < num_events_; ++i) {
    if (k[i] < prev) {
      throw std::runtime_error("arena file " + path_ + ": keys unsorted at " +
                               std::to_string(i));
    }
    prev = k[i];
    if (TraceArena::key_fn(k[i]) >= functions_.size()) {
      throw std::runtime_error("arena file " + path_ +
                               ": key references unknown function at " +
                               std::to_string(i));
    }
    if (TraceArena::key_at(k[i]).count() > duration_us_) {
      throw std::runtime_error("arena file " + path_ +
                               ": event beyond trace duration at " +
                               std::to_string(i));
    }
  }
  std::uint64_t ck = fnv1a64_bytes(k, num_events_ * sizeof(std::uint64_t));
  if (ck != keys_checksum_) {
    throw std::runtime_error("arena file " + path_ +
                             ": key column checksum mismatch");
  }
}

void ArenaFile::release_keys_before(std::size_t n) {
  if (n > num_events_) n = num_events_;
  // Only whole pages strictly before the first still-needed key.
  std::uint64_t end = keys_offset_ + n * sizeof(std::uint64_t);
  end = end / kArenaKeyAlign * kArenaKeyAlign;
  std::uint64_t begin = keys_offset_ + released_bytes_;
  if (end <= begin) return;
  ::madvise(static_cast<std::byte*>(map_) + begin, end - begin,
            MADV_DONTNEED);
  released_bytes_ = end - keys_offset_;
}

TraceArena ArenaFile::to_arena() const {
  TraceArena a;
  a.functions = functions_;
  a.duration = duration();
  a.at_us.reserve(num_events_);
  a.fn.reserve(num_events_);
  const std::uint64_t* k = keys();
  for (std::size_t i = 0; i < num_events_; ++i) {
    a.at_us.push_back(TraceArena::key_at(k[i]).count());
    a.fn.push_back(TraceArena::key_fn(k[i]));
  }
  return a;
}

}  // namespace ilu
