#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/azure.hpp"

/// Bounded-memory generation of on-disk trace arenas (DESIGN.md §13).
///
/// A million-function, 10^8-invocation day is ~800 MB of packed keys —
/// generating it through build_arena() would materialize every key in RAM
/// and sort them in one shot. generate_arena_file() instead works in chunks
/// of `chunk_functions` functions: each chunk's events are generated
/// in-RAM (the AzureTraceModel draws per-function RNG substreams, so a
/// subrange generates exactly its slice of the full trace), packed, sorted,
/// and spilled to a temporary chunk file; the sorted chunks are then k-way
/// merged into a final ilu-arena-v1 file through ArenaFileWriter. Peak
/// memory is O(chunk events + merge buffers), independent of total trace
/// size.
///
/// Determinism: a sorted merge of sorted chunks of u64 keys equals the
/// global sort TraceArena::adopt_keys performs (equal keys are
/// indistinguishable values), and the per-function RNG substreams make
/// chunked generation draw-for-draw identical to one build_arena() pass.
/// The output file is therefore byte-identical to
/// `write_arena_file(model.build_arena(fn_indices, rate_scale), path)` —
/// tests/test_arena_file.cpp locks this in.
namespace ilu {

struct ArenaGenConfig {
  /// Functions generated and sorted per in-RAM chunk. Smaller = less peak
  /// memory, more chunk files to merge.
  std::size_t chunk_functions = 8192;
  /// Directory for temporary chunk files; empty = alongside the output.
  std::string tmp_dir;
  /// Optional progress callback: (functions generated so far, events
  /// written to chunks so far). Called once per completed chunk.
  std::function<void(std::size_t, std::uint64_t)> progress;
};

struct ArenaGenStats {
  std::size_t functions = 0;
  std::uint64_t events = 0;
  std::size_t chunks = 0;
  std::uint64_t file_bytes = 0;
};

/// Generate the trace of `fn_indices` at `rate_scale` straight to an
/// ilu-arena-v1 file at `out_path`. Throws std::runtime_error on I/O
/// failure; temporary chunk files are removed on both success and failure.
ArenaGenStats generate_arena_file(const AzureTraceModel& model,
                                  const std::vector<std::size_t>& fn_indices,
                                  double rate_scale,
                                  const std::string& out_path,
                                  const ArenaGenConfig& cfg = {});

/// The rate_scale that makes the expected event count of `fn_indices` hit
/// `target_events`. Analytic (no generation pass): the model's diurnal and
/// activity modulations both have mean 1 over a day, so the expectation is
/// rate_scale × Σ expected_invocations. The realized count is one Poisson
/// draw per (function, minute) around that expectation — within ~0.01% at
/// 10^8 events.
double rate_scale_for_target_events(const AzureTraceModel& model,
                                    const std::vector<std::size_t>& fn_indices,
                                    double target_events);

}  // namespace ilu
