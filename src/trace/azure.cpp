#include "trace/azure.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <string>

namespace ilu {

namespace {
double clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}
}  // namespace

AzureTraceModel::AzureTraceModel(AzureModelConfig cfg) : cfg_(cfg) {
  assert(cfg_.population > 0 && cfg_.days > 0.0);
  Rng rng(cfg_.seed);
  pop_.resize(cfg_.population);

  const double trace_secs = cfg_.days * 86400.0;
  std::size_t i = 0;
  while (i < pop_.size()) {
    // One application: shared memory budget, split evenly across functions.
    auto fns_in_app = static_cast<std::size_t>(
        1 + rng.poisson(std::max(0.0, cfg_.mean_fns_per_app - 1.0)));
    fns_in_app = std::min(fns_in_app, pop_.size() - i);
    double app_mem =
        rng.lognormal_median(cfg_.app_mem_median_mb, cfg_.app_mem_sigma);
    auto fn_mem = static_cast<std::uint32_t>(clamp(
        app_mem / static_cast<double>(fns_in_app),
        static_cast<double>(cfg_.min_fn_mem_mb),
        static_cast<double>(cfg_.max_fn_mem_mb)));

    for (std::size_t k = 0; k < fns_in_app; ++k, ++i) {
      AzureFunctionMeta& m = pop_[i];
      m.mean_iat_s = std::max(
          cfg_.min_iat_s,
          rng.lognormal_median(cfg_.iat_median_s, cfg_.iat_sigma));
      m.warm_s = clamp(rng.lognormal_median(cfg_.dur_median_s, cfg_.dur_sigma),
                       cfg_.min_dur_s, cfg_.max_dur_s);
      if (cfg_.max_expected_concurrency > 0.0) {
        m.mean_iat_s = std::max(m.mean_iat_s,
                                m.warm_s / cfg_.max_expected_concurrency);
      }
      m.init_s = clamp(
          m.warm_s * rng.lognormal_median(cfg_.init_factor_median,
                                          cfg_.init_factor_sigma),
          cfg_.min_init_s, cfg_.max_init_s);
      m.mem_mb = fn_mem;
      m.expected_invocations = trace_secs / m.mean_iat_s;

      if (cfg_.active_window_median_min > 0.0) {
        m.active_start_min = rng.uniform(0.0, 1440.0);
        m.active_len_min = std::min(
            1440.0, rng.lognormal_median(cfg_.active_window_median_min,
                                         cfg_.active_window_sigma));
        // Boost inside the window so the daily mean stays 1:
        //   f*boost + (1-f)*inactive = 1.
        double f = m.active_len_min / 1440.0;
        m.active_boost =
            (1.0 - cfg_.inactive_weight * (1.0 - f)) / std::max(f, 1e-6);
      }
    }
  }
}

double AzureTraceModel::activity(const AzureFunctionMeta& m,
                                 double minute_of_day) const {
  if (cfg_.active_window_median_min <= 0.0) return 1.0;
  double offset = minute_of_day - m.active_start_min;
  if (offset < 0.0) offset += 1440.0;
  return offset < m.active_len_min ? m.active_boost : cfg_.inactive_weight;
}

double AzureTraceModel::diurnal(double minute_of_day) const {
  // Peak mid-day, trough at night; mean exactly 1 over a full day.
  return 1.0 + cfg_.diurnal_amplitude *
                   std::sin(2.0 * std::numbers::pi *
                            (minute_of_day - 360.0) / 1440.0);
}

namespace {

/// Minute-bucket generation per function, then the paper's replay rule:
/// a single invocation lands at the start of the minute; k invocations are
/// equally spaced across it. Storage-agnostic — `emit(at, fi)` sees events
/// in function-major order, so the AoS and arena paths below draw RNG
/// identically and produce the same event multiset.
template <typename Emit>
void generate_bucketed(const AzureTraceModel& model,
                       const std::vector<std::size_t>& fn_indices,
                       double rate_scale, std::size_t fi_begin,
                       std::size_t fi_end, Emit&& emit) {
  const AzureModelConfig& cfg = model.config();
  const auto num_minutes =
      static_cast<std::size_t>(std::llround(cfg.days * 1440.0));
  Rng rng = Rng(cfg.seed).substream(0x7ace);
  for (std::size_t fi = fi_begin; fi < fi_end; ++fi) {
    const AzureFunctionMeta& m = model.population()[fn_indices[fi]];
    Rng frng = rng.substream(fn_indices[fi]);
    const double per_min_rate = rate_scale * 60.0 / m.mean_iat_s;
    for (std::size_t minute = 0; minute < num_minutes; ++minute) {
      auto mod = static_cast<double>(minute % 1440);
      double lambda = per_min_rate * model.diurnal(mod) * model.activity(m, mod);
      std::uint64_t k = frng.poisson(lambda);
      if (k == 0) continue;
      double minute_start_s = static_cast<double>(minute) * 60.0;
      double spacing_s = 60.0 / static_cast<double>(k);
      for (std::uint64_t j = 0; j < k; ++j) {
        emit(secs(minute_start_s + spacing_s * static_cast<double>(j)),
             static_cast<FunctionId>(fi));
      }
    }
  }
}

std::vector<FunctionProfile> profiles_for(
    const AzureTraceModel& model, const std::vector<std::size_t>& fn_indices) {
  std::vector<FunctionProfile> out;
  out.reserve(fn_indices.size());
  for (std::size_t idx : fn_indices) out.push_back(model.profile_for(idx));
  return out;
}

}  // namespace

FunctionProfile AzureTraceModel::profile_for(
    std::size_t population_index) const {
  const AzureFunctionMeta& m = pop_.at(population_index);
  FunctionProfile p;
  p.name = "azure_fn_" + std::to_string(population_index);
  p.mem_mb = m.mem_mb;
  p.warm_time = secs(m.warm_s);
  p.init_time = secs(m.init_s);
  return p;
}

void AzureTraceModel::generate_events(
    const std::vector<std::size_t>& fn_indices, double rate_scale,
    std::size_t fi_begin, std::size_t fi_end,
    const std::function<void(TimePoint, FunctionId)>& emit) const {
  assert(rate_scale > 0.0 && fi_begin <= fi_end &&
         fi_end <= fn_indices.size());
  generate_bucketed(*this, fn_indices, rate_scale, fi_begin, fi_end,
                    [&](TimePoint at, FunctionId fn) { emit(at, fn); });
}

Trace AzureTraceModel::build_trace(const std::vector<std::size_t>& fn_indices,
                                   double rate_scale) const {
  assert(rate_scale > 0.0);
  Trace t;
  t.duration = secs(cfg_.days * 86400.0);
  t.functions = profiles_for(*this, fn_indices);
  generate_bucketed(*this, fn_indices, rate_scale, 0, fn_indices.size(),
                    [&](TimePoint at, FunctionId fn) {
                      t.events.push_back(TraceEvent{at, fn});
                    });
  std::stable_sort(t.events.begin(), t.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
  return t;
}

TraceArena AzureTraceModel::build_arena(
    const std::vector<std::size_t>& fn_indices, double rate_scale) const {
  assert(rate_scale > 0.0);
  TraceArena a;
  a.duration = secs(cfg_.days * 86400.0);
  a.functions = profiles_for(*this, fn_indices);
  std::vector<std::uint64_t> keys;
  generate_bucketed(*this, fn_indices, rate_scale, 0, fn_indices.size(),
                    [&](TimePoint at, FunctionId fn) {
                      keys.push_back(TraceArena::pack(at, fn));
                    });
  a.adopt_keys(keys);
  return a;
}

std::vector<std::size_t> AzureTraceModel::indices_sorted_by_popularity()
    const {
  std::vector<std::size_t> idx(pop_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return pop_[a].expected_invocations < pop_[b].expected_invocations;
  });
  return idx;
}

namespace {
/// Two-pass load adjustment: generate at natural rate, then rescale so the
/// trace hits the requested request rate (the paper scales function IAT
/// CDFs to reach a suitable load for the system under test). The rescale
/// factor is events / duration in both storage modes, so the Trace and
/// arena samplers regenerate with bit-identical rate_scale.
double rescale_for(double target_rps, std::size_t events, Duration duration) {
  if (target_rps <= 0.0 || events == 0) return 0.0;
  double natural_rps = static_cast<double>(events) / to_sec(duration);
  return natural_rps > 0.0 ? target_rps / natural_rps : 0.0;
}

Trace with_target_rps(const AzureTraceModel& model,
                      const std::vector<std::size_t>& indices,
                      double target_rps) {
  Trace natural = model.build_trace(indices);
  double s = rescale_for(target_rps, natural.events.size(), natural.duration);
  return s > 0.0 ? model.build_trace(indices, s) : natural;
}

TraceArena with_target_rps_arena(const AzureTraceModel& model,
                                 const std::vector<std::size_t>& indices,
                                 double target_rps) {
  TraceArena natural = model.build_arena(indices);
  double s = rescale_for(target_rps, natural.size(), natural.duration);
  return s > 0.0 ? model.build_arena(indices, s) : natural;
}
}  // namespace

std::vector<std::size_t> AzureTraceModel::pick_rare(std::size_t n) const {
  n = std::min(n, pop_.size());
  // The paper: "a random sample of 1000 of the rarest, most infrequently
  // invoked functions — these will usually result in cold starts under a
  // classic 10-minute TTL". So: uniform sample among functions whose mean
  // IAT exceeds the TTL (but that are re-used at least twice, since the
  // paper drops single-invocation functions).
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < pop_.size(); ++i) {
    if (pop_[i].mean_iat_s > 600.0 && pop_[i].expected_invocations >= 2.0) {
      eligible.push_back(i);
    }
  }
  Rng rng = Rng(cfg_.seed).substream(0x2a2e);
  rng.shuffle(eligible);
  if (eligible.size() > n) eligible.resize(n);
  return eligible;
}

std::vector<std::size_t> AzureTraceModel::pick_representative(
    std::size_t n) const {
  n = std::min(n, pop_.size());
  auto sorted = indices_sorted_by_popularity();
  // Stratified: n/4 uniformly from each popularity quartile.
  std::vector<std::size_t> chosen;
  chosen.reserve(n);
  Rng rng = Rng(cfg_.seed).substream(0x4e9);
  std::size_t q = sorted.size() / 4;
  for (int quartile = 0; quartile < 4; ++quartile) {
    std::size_t lo = static_cast<std::size_t>(quartile) * q;
    std::size_t hi = quartile == 3 ? sorted.size() : lo + q;
    std::size_t want = n / 4 + (static_cast<std::size_t>(quartile) < n % 4);
    for (std::size_t k = 0; k < want && hi > lo; ++k) {
      chosen.push_back(sorted[lo + rng.uniform_index(hi - lo)]);
    }
  }
  return chosen;
}

std::vector<std::size_t> AzureTraceModel::pick_random(std::size_t n) const {
  n = std::min(n, pop_.size());
  Rng rng = Rng(cfg_.seed).substream(0xd0e);
  std::vector<std::size_t> chosen;
  chosen.reserve(n);
  std::vector<bool> taken(pop_.size(), false);
  while (chosen.size() < n) {
    auto i = static_cast<std::size_t>(rng.uniform_index(pop_.size()));
    if (!taken[i]) {
      taken[i] = true;
      chosen.push_back(i);
    }
  }
  return chosen;
}

Trace AzureTraceModel::sample_rare(std::size_t n, double target_rps) const {
  return with_target_rps(*this, pick_rare(n), target_rps);
}

Trace AzureTraceModel::sample_representative(std::size_t n,
                                             double target_rps) const {
  return with_target_rps(*this, pick_representative(n), target_rps);
}

Trace AzureTraceModel::sample_random(std::size_t n, double target_rps) const {
  return with_target_rps(*this, pick_random(n), target_rps);
}

TraceArena AzureTraceModel::sample_rare_arena(std::size_t n,
                                              double target_rps) const {
  return with_target_rps_arena(*this, pick_rare(n), target_rps);
}

TraceArena AzureTraceModel::sample_representative_arena(
    std::size_t n, double target_rps) const {
  return with_target_rps_arena(*this, pick_representative(n), target_rps);
}

TraceArena AzureTraceModel::sample_random_arena(std::size_t n,
                                                double target_rps) const {
  return with_target_rps_arena(*this, pick_random(n), target_rps);
}

std::vector<double> AzureTraceModel::full_trace_rps_by_minute() const {
  const auto num_minutes =
      static_cast<std::size_t>(std::llround(cfg_.days * 1440.0));
  double base_rate_per_min = 0.0;
  for (const auto& m : pop_) base_rate_per_min += 60.0 / m.mean_iat_s;

  Rng rng = Rng(cfg_.seed).substream(0xf011);
  std::vector<double> out(num_minutes, 0.0);
  for (std::size_t minute = 0; minute < num_minutes; ++minute) {
    double lambda =
        base_rate_per_min * diurnal(static_cast<double>(minute % 1440));
    out[minute] = static_cast<double>(rng.poisson(lambda)) / 60.0;
  }
  return out;
}

}  // namespace ilu
