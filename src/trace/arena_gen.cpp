#include "trace/arena_gen.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>

#include "trace/arena_file.hpp"

namespace ilu {

namespace {

[[noreturn]] void io_fail(const std::string& path, const char* what) {
  throw std::runtime_error("arena gen " + path + ": " + what + " (" +
                           std::strerror(errno) + ")");
}

std::string chunk_path(const std::string& out_path, const std::string& tmp_dir,
                       std::size_t index) {
  std::string stem = out_path;
  if (!tmp_dir.empty()) {
    auto slash = out_path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? out_path : out_path.substr(slash + 1);
    stem = tmp_dir + "/" + base;
  }
  return stem + ".tmp-chunk" + std::to_string(index);
}

/// Temp chunk files, removed on scope exit (success or throw).
struct ChunkFiles {
  std::vector<std::string> paths;
  ~ChunkFiles() {
    for (const auto& p : paths) std::remove(p.c_str());
  }
};

/// Buffered sequential reader over one sorted chunk file of raw u64 keys.
class ChunkReader {
 public:
  static constexpr std::size_t kBufKeys = 8192;  // 64 KiB per open chunk

  explicit ChunkReader(const std::string& path) : path_(path) {
    f_ = std::fopen(path.c_str(), "rb");
    if (f_ == nullptr) io_fail(path_, "cannot reopen chunk");
    refill();
  }
  ~ChunkReader() {
    if (f_ != nullptr) std::fclose(f_);
  }
  ChunkReader(const ChunkReader&) = delete;
  ChunkReader& operator=(const ChunkReader&) = delete;

  bool empty() const { return pos_ == len_ && eof_; }
  std::uint64_t head() const { return buf_[pos_]; }
  void pop() {
    if (++pos_ == len_ && !eof_) refill();
  }

 private:
  void refill() {
    len_ = std::fread(buf_, sizeof(std::uint64_t), kBufKeys, f_);
    pos_ = 0;
    if (len_ < kBufKeys) {
      if (std::ferror(f_) != 0) io_fail(path_, "chunk read failed");
      eof_ = true;
    }
  }

  std::string path_;
  std::FILE* f_ = nullptr;
  std::uint64_t buf_[kBufKeys];
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  bool eof_ = false;
};

void write_chunk(const std::string& path,
                 const std::vector<std::uint64_t>& keys) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) io_fail(path, "cannot create chunk");
  std::size_t wrote =
      std::fwrite(keys.data(), sizeof(std::uint64_t), keys.size(), f);
  if (wrote != keys.size() || std::fclose(f) != 0) {
    std::fclose(f);
    io_fail(path, "chunk write failed");
  }
}

}  // namespace

ArenaGenStats generate_arena_file(const AzureTraceModel& model,
                                  const std::vector<std::size_t>& fn_indices,
                                  double rate_scale,
                                  const std::string& out_path,
                                  const ArenaGenConfig& cfg) {
  if (cfg.chunk_functions == 0) {
    throw std::logic_error("arena gen: chunk_functions must be positive");
  }
  ArenaGenStats stats;
  stats.functions = fn_indices.size();

  std::vector<FunctionProfile> functions;
  functions.reserve(fn_indices.size());
  for (std::size_t idx : fn_indices) {
    functions.push_back(model.profile_for(idx));
  }
  const Duration duration = secs(model.config().days * 86400.0);

  ArenaFileWriter writer(out_path);
  writer.begin(functions, duration);

  std::vector<std::uint64_t> keys;
  auto generate_chunk = [&](std::size_t fi_begin, std::size_t fi_end) {
    keys.clear();
    model.generate_events(fn_indices, rate_scale, fi_begin, fi_end,
                          [&](TimePoint at, FunctionId fn) {
                            keys.push_back(TraceArena::pack(at, fn));
                          });
    std::sort(keys.begin(), keys.end());
  };

  if (fn_indices.size() <= cfg.chunk_functions) {
    // Single chunk: sort in RAM, stream straight to the writer.
    generate_chunk(0, fn_indices.size());
    writer.append_keys(keys.data(), keys.size());
    stats.chunks = keys.empty() ? 0 : 1;
    stats.events = keys.size();
    if (cfg.progress) cfg.progress(fn_indices.size(), stats.events);
    stats.file_bytes = writer.finalize();
    return stats;
  }

  ChunkFiles chunks;
  for (std::size_t fi = 0; fi < fn_indices.size();
       fi += cfg.chunk_functions) {
    std::size_t end = std::min(fi + cfg.chunk_functions, fn_indices.size());
    generate_chunk(fi, end);
    if (!keys.empty()) {
      std::string path = chunk_path(out_path, cfg.tmp_dir, chunks.paths.size());
      write_chunk(path, keys);
      chunks.paths.push_back(std::move(path));
      stats.events += keys.size();
    }
    if (cfg.progress) cfg.progress(end, stats.events);
  }
  keys.shrink_to_fit();
  stats.chunks = chunks.paths.size();

  // K-way merge of the sorted chunks into the writer. Equal keys can only
  // come from one function (the key encodes the fn id and each function
  // lives in exactly one chunk), so pop order on ties cannot change the
  // output bytes.
  std::vector<std::unique_ptr<ChunkReader>> readers;
  readers.reserve(chunks.paths.size());
  for (const auto& p : chunks.paths) {
    readers.push_back(std::make_unique<ChunkReader>(p));
  }
  using HeapItem = std::pair<std::uint64_t, std::size_t>;  // (key, reader)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (std::size_t i = 0; i < readers.size(); ++i) {
    if (!readers[i]->empty()) heap.emplace(readers[i]->head(), i);
  }
  std::vector<std::uint64_t> out_buf;
  out_buf.reserve(1 << 16);
  while (!heap.empty()) {
    auto [key, i] = heap.top();
    heap.pop();
    out_buf.push_back(key);
    if (out_buf.size() == out_buf.capacity()) {
      writer.append_keys(out_buf.data(), out_buf.size());
      out_buf.clear();
    }
    readers[i]->pop();
    if (!readers[i]->empty()) heap.emplace(readers[i]->head(), i);
  }
  writer.append_keys(out_buf.data(), out_buf.size());
  stats.file_bytes = writer.finalize();
  return stats;
}

double rate_scale_for_target_events(const AzureTraceModel& model,
                                    const std::vector<std::size_t>& fn_indices,
                                    double target_events) {
  if (target_events <= 0.0) return 1.0;
  double expected = 0.0;
  for (std::size_t idx : fn_indices) {
    expected += model.population().at(idx).expected_invocations;
  }
  return expected > 0.0 ? target_events / expected : 1.0;
}

}  // namespace ilu
