#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "runtime/runtime.hpp"
#include "trace/event_view.hpp"
#include "trace/workload.hpp"
#include "util/rng.hpp"

/// Load generation (the paper's closed/open-loop framework, §6.1).
///
/// Drivers are decoupled from any particular control plane through an
/// InvokeFn, so the same workload can be replayed against an Ilúvatar
/// worker, the OpenWhisk baseline model, or a whole cluster.
namespace ilu {

/// Submit one invocation; the callback fires when it completes (or is
/// dropped).
using InvokeFn =
    std::function<void(FunctionId, std::function<void(const InvokeResult&)>)>;

/// Replays a workload open-loop: invocation i is submitted at trace time
/// events[i].at relative to start(). Uses O(1) outstanding timers by
/// chaining to the next event. All storage layouts — AoS Trace, SoA
/// TraceArena, and packed-key arenas (in RAM or mmap'd from disk) — replay
/// through one EventView hot loop with no per-event branching.
class OpenLoopDriver {
 public:
  OpenLoopDriver(Runtime& rt, InvokeFn invoke);

  /// Begin replay. The viewed storage must outlive the driver's run.
  void start(const Trace& trace) { start(EventView(trace)); }
  void start(const TraceArena& arena) { start(EventView(arena)); }
  void start(EventView events);

  /// Stream completions to `sink` instead of accumulating them in
  /// results(). Mandatory for replays whose event count dwarfs RAM (the
  /// default mode reserves one InvokeResult per event up front); must be
  /// set before start().
  void set_result_sink(std::function<void(const InvokeResult&)> sink) {
    sink_ = std::move(sink);
  }

  bool done() const { return submitted_all_ && outstanding_ == 0; }
  std::size_t submitted() const { return next_; }
  std::size_t outstanding() const { return outstanding_; }
  const std::vector<InvokeResult>& results() const { return results_; }
  std::vector<InvokeResult>& mutable_results() { return results_; }

 private:
  void begin();
  void pump();
  /// Register the driver's replay cursor with the runtime so speculative
  /// (Time Warp) shard execution can roll a replay back: scalars are saved
  /// wholesale and results_ is truncated back to its checkpoint length.
  /// Streaming sinks cannot be un-called, so restoring while a sink is set
  /// is a checked error (ILU_DCHECK).
  void register_snapshotter();

  Runtime& rt_;
  InvokeFn invoke_;
  EventView view_;
  bool started_ = false;
  TimePoint epoch_{};
  std::size_t next_ = 0;
  std::size_t outstanding_ = 0;
  bool submitted_all_ = false;
  /// Replay-progress flight milestones: one record per decile of submitted
  /// events (plus start / submit-complete).
  std::size_t milestone_step_ = 0;
  std::size_t next_milestone_ = 0;
  std::function<void(const InvokeResult&)> sink_;
  /// Completions streamed to sink_ so far; a restore that would rewind past
  /// a streamed completion is a checked error (the sink cannot un-see it).
  std::uint64_t streamed_ = 0;
  std::vector<InvokeResult> results_;
};

/// Closed-loop driver: `clients` concurrent callers repeatedly invoking one
/// function with zero think time (how Fig 1 generates concurrency levels).
class ClosedLoopDriver {
 public:
  ClosedLoopDriver(Runtime& rt, InvokeFn invoke, FunctionId fn,
                   std::size_t clients);

  /// Each client performs `iterations` invocations, then stops.
  void start(std::size_t iterations_per_client);

  bool done() const { return active_clients_ == 0 && started_; }
  const std::vector<InvokeResult>& results() const { return results_; }

 private:
  void client_loop(std::size_t remaining);

  Runtime& rt_;
  InvokeFn invoke_;
  FunctionId fn_;
  std::size_t clients_;
  std::size_t active_clients_ = 0;
  bool started_ = false;
  std::vector<InvokeResult> results_;
};

/// Synthetic workload construction (lookbusy-style custom traffic).
struct SyntheticFunctionSpec {
  FunctionProfile profile;
  /// Mean inter-arrival time for this function.
  Duration mean_iat{};
  /// Exponential (Poisson arrivals) or constant spacing.
  bool exponential = false;
  /// Offset of the first invocation.
  Duration phase{};
};

/// Merge per-function arrival processes into one sorted trace.
Trace make_synthetic_trace(const std::vector<SyntheticFunctionSpec>& specs,
                           Duration duration, std::uint64_t seed = 1);

/// Same workload as make_synthetic_trace (identical RNG draws, identical
/// event order) generated straight into a flat SoA arena — the fast path
/// for large function grids.
TraceArena make_synthetic_arena(const std::vector<SyntheticFunctionSpec>& specs,
                                Duration duration, std::uint64_t seed = 1);

/// Cyclic access pattern: functions are invoked in rotation, one every
/// `gap` (Fig 6's "cyclic" skewed workload).
Trace make_cyclic_trace(const std::vector<FunctionProfile>& profiles,
                        Duration gap, Duration duration);

}  // namespace ilu
