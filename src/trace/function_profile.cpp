#include "trace/function_profile.hpp"

#include <stdexcept>

namespace ilu {

std::vector<FunctionProfile> function_bench() {
  // Table 3: {name, mem MB, cold run time, init time}; warm = run - init.
  return {
      {.name = "ml_inference", .mem_mb = 512, .warm_time = secs(2.0), .init_time = secs(4.5)},
      {.name = "video_encoding", .mem_mb = 500, .warm_time = secs(53.0), .init_time = secs(3.0)},
      {.name = "matrix_multiply", .mem_mb = 256, .warm_time = secs(0.3), .init_time = secs(2.2)},
      {.name = "disk_bench", .mem_mb = 256, .warm_time = secs(0.4), .init_time = secs(1.8)},
      {.name = "image_manip", .mem_mb = 300, .warm_time = secs(3.0), .init_time = secs(6.0)},
      {.name = "web_serving", .mem_mb = 64, .warm_time = secs(0.4), .init_time = secs(2.0)},
      {.name = "float_op", .mem_mb = 128, .warm_time = secs(0.3), .init_time = secs(1.7)},
  };
}

FunctionProfile function_bench_app(const std::string& name) {
  for (auto& p : function_bench()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown FunctionBench app: " + name);
}

FunctionProfile pyaes() {
  return {.name = "pyaes",
          .mem_mb = 128,
          .warm_time = msecs(300),
          .init_time = msecs(1200)};
}

FunctionProfile lookbusy(Duration warm_time, std::uint32_t mem_mb,
                         Duration init_time) {
  return {.name = "lookbusy",
          .mem_mb = mem_mb,
          .warm_time = warm_time,
          .init_time = init_time};
}

}  // namespace ilu
