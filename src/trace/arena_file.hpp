#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/event_view.hpp"
#include "trace/workload.hpp"

/// On-disk trace arenas: the `ilu-arena-v1` binary format (DESIGN.md §13).
///
/// The in-RAM TraceArena tops out around 20k-function grids; Azure-scale
/// experiments need day-long traces of a million functions and 10^8
/// invocations — tens of gigabytes of events that must never be
/// materialized. This file format stores the function-profile table (small,
/// O(functions)) followed by one flat column of packed
/// `(at_us << 20) | fn` u64 keys, sorted ascending — exactly the
/// TraceArena::pack representation, so an mmap of the key column *is* a
/// replayable EventView with zero decode.
///
/// Layout (all integers little-endian; keys page-aligned so the column can
/// be madvised and released independently of the header):
///
///   offset 0: header, 96 bytes
///     u64 magic            "ILUARN\x01\0" (kArenaMagic)
///     u32 version          1
///     u32 header_bytes     96
///     u64 num_functions
///     u64 num_events
///     i64 duration_us
///     u64 keys_offset      4096-aligned start of the key column
///     u64 keys_checksum    FNV-1a over the raw key bytes
///     u64 meta_checksum    FNV-1a over bytes [0, keys_offset) with this
///                          field zeroed — covers header + function table
///     u64 reserved[4]      0
///   offset 96: function table, num_functions records
///     u32 name_len, name bytes, u32 mem_mb, i64 warm_us, i64 init_us,
///     f64 cpus
///   zero padding to keys_offset
///   offset keys_offset: num_events × u64 packed keys, sorted ascending
///
/// Opening is strict and O(functions): magic, version, sizes, counts, and
/// the meta checksum are all verified, and the file size must equal
/// keys_offset + 8 × num_events exactly. Key-column integrity (sortedness,
/// fn bounds, checksum) is an O(events) scan deferred to verify(), so that
/// replay itself touches each key page exactly once.
namespace ilu {

inline constexpr std::uint64_t kArenaMagic = 0x00014E5241554C49ull;  // "ILUARN\x01\0"
inline constexpr std::uint32_t kArenaVersion = 1;
inline constexpr std::uint32_t kArenaHeaderBytes = 96;
inline constexpr std::size_t kArenaKeyAlign = 4096;

/// Streaming writer: header + function table up front, then sorted key
/// chunks appended in order (the chunked generator's k-way merge feeds
/// this), finalized by rewriting the header with the real counts and
/// checksums. Appends are validated: a key below its predecessor throws, so
/// an unsorted arena can never be produced by this writer.
class ArenaFileWriter {
 public:
  explicit ArenaFileWriter(const std::string& path);
  ~ArenaFileWriter();

  ArenaFileWriter(const ArenaFileWriter&) = delete;
  ArenaFileWriter& operator=(const ArenaFileWriter&) = delete;

  /// Write the header placeholder and function table. Must be called once,
  /// before any append_keys.
  void begin(const std::vector<FunctionProfile>& functions, Duration duration);

  /// Append `n` keys, ascending within the chunk and not below the last key
  /// of the previous chunk (throws std::logic_error otherwise).
  void append_keys(const std::uint64_t* keys, std::size_t n);

  /// Rewrite the header with final counts/checksums and close the file.
  /// Returns total file bytes. The writer is unusable afterwards.
  std::uint64_t finalize();

  std::uint64_t events_written() const { return num_events_; }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  std::size_t num_functions_ = 0;
  std::int64_t duration_us_ = 0;
  std::uint64_t keys_offset_ = 0;
  std::uint64_t num_events_ = 0;
  std::uint64_t keys_checksum_;
  std::uint64_t last_key_ = 0;
  bool begun_ = false;
};

/// Write an in-RAM arena to `path` (packs the columns back into keys).
void write_arena_file(const TraceArena& arena, const std::string& path);

/// Memory-mapped reader. Opening parses and strictly validates the header
/// and function table (throws std::runtime_error on any malformation), maps
/// the whole file read-only, and advises the kernel that the key column
/// will be read sequentially. Peak RSS of a replay is O(functions) plus the
/// sliding window of key pages the kernel keeps resident; call
/// release_keys_before() during replay to actively drop consumed pages.
class ArenaFile {
 public:
  explicit ArenaFile(const std::string& path);
  ~ArenaFile();

  ArenaFile(const ArenaFile&) = delete;
  ArenaFile& operator=(const ArenaFile&) = delete;
  ArenaFile(ArenaFile&& other) noexcept;
  ArenaFile& operator=(ArenaFile&& other) noexcept;

  const std::string& path() const { return path_; }
  const std::vector<FunctionProfile>& functions() const { return functions_; }
  Duration duration() const { return Duration{duration_us_}; }
  std::size_t size() const { return num_events_; }
  std::uint64_t file_bytes() const { return map_len_; }
  std::uint64_t keys_checksum() const { return keys_checksum_; }

  /// The mmap'd key column (valid while the ArenaFile lives).
  const std::uint64_t* keys() const {
    return reinterpret_cast<const std::uint64_t*>(
        static_cast<const std::byte*>(map_) + keys_offset_);
  }
  TimePoint at(std::size_t i) const { return TraceArena::key_at(keys()[i]); }
  FunctionId fn(std::size_t i) const { return TraceArena::key_fn(keys()[i]); }

  /// Replay view over the mmap'd keys — feed straight to OpenLoopDriver.
  EventView view() const { return EventView::packed(keys(), num_events_); }

  /// Full O(events) integrity scan: keys sorted ascending, every fn within
  /// the function table, timestamps within [0, duration], and the stored
  /// key checksum matches. Throws std::runtime_error on the first failure.
  /// Reads every key page (don't interleave with a streaming replay).
  void verify() const;

  /// Drop the mmap'd pages holding keys [0, n) back to the kernel
  /// (MADV_DONTNEED on the fully-consumed whole pages). Called periodically
  /// by streaming replays so peak RSS stays a window, not the file size.
  /// Re-reading released keys is legal (they fault back in from the file).
  void release_keys_before(std::size_t n);

  /// Materialize an in-RAM TraceArena (tests / small files only: O(events)
  /// memory by definition).
  TraceArena to_arena() const;

 private:
  void close();

  std::string path_;
  void* map_ = nullptr;
  std::uint64_t map_len_ = 0;
  std::uint64_t keys_offset_ = 0;
  std::uint64_t num_events_ = 0;
  std::int64_t duration_us_ = 0;
  std::uint64_t keys_checksum_ = 0;
  std::uint64_t released_bytes_ = 0;
  std::vector<FunctionProfile> functions_;
};

}  // namespace ilu
