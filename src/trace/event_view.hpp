#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "trace/workload.hpp"

/// Branch-free replay view over any event storage (DESIGN.md §13).
///
/// OpenLoopDriver used to keep two replay paths — AoS `TraceEvent*` and SoA
/// arena columns — selected by a per-event branch. EventView collapses all
/// event layouts into one description: each logical column (at_us, fn) is a
/// strided load plus a constant shift/mask, so the same hot loop replays
///
///   - AoS `Trace`        (16-byte TraceEvent stride),
///   - SoA `TraceArena`   (separate i64 / u32 columns),
///   - packed u64 keys    ((at_us << 20) | fn, in RAM or mmap'd from an
///                         ilu-arena-v1 file)
///
/// with zero per-event branching. Loads go through std::memcpy, so the view
/// is alignment- and aliasing-safe over mmap'd bytes; the packed-key layout
/// additionally assumes little-endian hosts (asserted below), which is also
/// what the on-disk format specifies.
namespace ilu {

static_assert(std::endian::native == std::endian::little,
              "packed event views and the ilu-arena-v1 format are "
              "little-endian");

class EventView {
 public:
  EventView() = default;

  /// View over an AoS trace. The trace must outlive the view.
  explicit EventView(const Trace& t)
      : at_base_(reinterpret_cast<const std::byte*>(t.events.data())),
        fn_base_(reinterpret_cast<const std::byte*>(t.events.data()) +
                 offsetof(TraceEvent, fn)),
        count_(t.events.size()),
        at_stride_(sizeof(TraceEvent)),
        fn_stride_(sizeof(TraceEvent)) {}

  /// View over SoA arena columns. The arena must outlive the view.
  explicit EventView(const TraceArena& a)
      : at_base_(reinterpret_cast<const std::byte*>(a.at_us.data())),
        fn_base_(reinterpret_cast<const std::byte*>(a.fn.data())),
        count_(a.size()),
        at_stride_(sizeof(std::int64_t)),
        fn_stride_(sizeof(FunctionId)) {}

  /// View over `n` packed `(at_us << 20) | fn` keys (sorted or not — the
  /// view itself imposes no order). The storage must outlive the view.
  static EventView packed(const std::uint64_t* keys, std::size_t n) {
    EventView v;
    v.at_base_ = reinterpret_cast<const std::byte*>(keys);
    // Little-endian: the low 32 bits of a key are its first 4 bytes, and
    // the fn field lives entirely inside them.
    v.fn_base_ = reinterpret_cast<const std::byte*>(keys);
    v.count_ = n;
    v.at_stride_ = sizeof(std::uint64_t);
    v.fn_stride_ = sizeof(std::uint64_t);
    v.at_shift_ = TraceArena::kFnBits;
    v.fn_mask_ = static_cast<std::uint32_t>(TraceArena::kMaxFn);
    return v;
  }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  TimePoint at(std::size_t i) const {
    std::uint64_t w;
    std::memcpy(&w, at_base_ + i * at_stride_, sizeof w);
    return Duration{static_cast<std::int64_t>(w >> at_shift_)};
  }

  FunctionId fn(std::size_t i) const {
    std::uint32_t w;
    std::memcpy(&w, fn_base_ + i * fn_stride_, sizeof w);
    return static_cast<FunctionId>(w & fn_mask_);
  }

 private:
  const std::byte* at_base_ = nullptr;
  const std::byte* fn_base_ = nullptr;
  std::size_t count_ = 0;
  std::size_t at_stride_ = 0;
  std::size_t fn_stride_ = 0;
  unsigned at_shift_ = 0;
  std::uint32_t fn_mask_ = 0xFFFFFFFFu;
};

}  // namespace ilu
