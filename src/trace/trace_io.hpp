#pragma once

#include <string>

#include "trace/workload.hpp"

/// Trace persistence: a trace is stored as two CSV files so generated
/// workloads can be inspected, shared, and replayed bit-identically.
///   <prefix>_functions.csv : name, mem_mb, warm_us, init_us, cpus
///   <prefix>_events.csv    : at_us, fn
namespace ilu {

void save_trace(const Trace& trace, const std::string& prefix);

/// Throws std::runtime_error on missing/malformed files.
Trace load_trace(const std::string& prefix);

}  // namespace ilu
