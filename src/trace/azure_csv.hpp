#pragma once

#include <string>

#include "trace/workload.hpp"

/// Importer for the public Azure Functions 2019 dataset
/// (https://github.com/Azure/AzurePublicDataset), so the experiments can be
/// re-run against the *real* trace when it is available. Follows the
/// paper's preparation rules exactly (§"Adapting the Azure Functions
/// Trace"):
///  - functions with fewer than two invocations in the day are dropped,
///  - application-level memory is split evenly across the app's functions,
///  - a single invocation in a minute bucket lands at the start of the
///    minute; k invocations are equally spaced across it,
///  - cold-start (init) cost is estimated as Maximum - Average runtime.
///
/// Expected file schemas (day-1 files of the dataset):
///  invocations: HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440
///  durations:   HashOwner,HashApp,HashFunction,Average,Count,Minimum,
///               Maximum,...   (milliseconds; extra columns ignored)
///  memory:      HashOwner,HashApp,SampleCount,AverageAllocatedMb,...
namespace ilu {

struct AzureCsvOptions {
  /// Functions appearing in the invocations file but missing from the
  /// durations file get this warm time.
  Duration default_warm = secs(1);
  /// Lower bound on the estimated init cost (Maximum - Average can be 0).
  Duration min_init = msecs(50);
  /// Memory assigned when the app is missing from the memory file.
  std::uint32_t default_app_mem_mb = 170;
  std::uint32_t min_fn_mem_mb = 32;
  std::uint32_t max_fn_mem_mb = 4096;
  /// Keep at most this many functions (0 = all), selected in file order —
  /// sampling beyond that is the caller's business (see AzureTraceModel's
  /// samplers for the paper's RARE/REPRESENTATIVE/RANDOM schemes).
  std::size_t max_functions = 0;
};

/// Build a Trace from the three dataset CSVs. Throws std::runtime_error on
/// unreadable files or malformed headers.
Trace load_azure_dataset(const std::string& invocations_csv,
                         const std::string& durations_csv,
                         const std::string& memory_csv,
                         const AzureCsvOptions& opts = {});

}  // namespace ilu
