#include "baseline/openwhisk.hpp"

#include <stdexcept>

namespace ilu {

OpenWhiskModel::OpenWhiskModel(Runtime& rt, OpenWhiskConfig cfg)
    : rt_(rt),
      cfg_(cfg),
      rng_(cfg.seed),
      cpu_(rt, cfg.cores),
      ka_policy_(cfg.keepalive_policy == "TTL"
                     ? std::make_unique<TtlPolicy>(cfg.keepalive_ttl)
                     : make_policy(cfg.keepalive_policy)),
      pool_(rt, *ka_policy_,
            ContainerPool::Config{.capacity_mb = cfg.memory_mb,
                                  // OpenWhisk evicts on demand, not in the
                                  // background, and keeps no free buffer.
                                  .free_buffer_mb = 0,
                                  .sweep_interval = secs(10)},
            [this](const Container&) {
              // Sandbox teardown happens asynchronously in Docker; nothing
              // else observes it in this model.
              rt_.post([this] { pump_buffer(); });
            }),
      backend_(std::make_unique<SimContainerBackend>(
          rt, cpu_, rng_.substream(0x99), cfg.backend)) {}

OpenWhiskModel::~OpenWhiskModel() { shutdown(); }

void OpenWhiskModel::start() { pool_.start(); }

void OpenWhiskModel::shutdown() { pool_.stop(); }

FunctionId OpenWhiskModel::register_function(FunctionProfile profile) {
  auto id = static_cast<FunctionId>(functions_.size());
  functions_.push_back(std::move(profile));
  warm_by_fn_.push_back(0);
  cold_by_fn_.push_back(0);
  dropped_by_fn_.push_back(0);
  return id;
}

Duration OpenWhiskModel::stage_latency(const LatencyModel& m) {
  Duration d = m.sample(rng_);
  // Shared-queue / DB contention grows with in-flight invocations.
  d += msecs(cfg_.queue_contention_ms_per_inflight *
             static_cast<double>(inflight_));
  // JVM GC pressure also grows with load.
  double gc_p = cfg_.gc_pause_prob *
                (1.0 + static_cast<double>(inflight_) / cfg_.gc_load_scale);
  if (rng_.bernoulli(std::min(0.5, gc_p))) d += cfg_.gc_pause.sample(rng_);
  return d;
}

void OpenWhiskModel::invoke(FunctionId fn, InvokeCb cb) {
  if (fn >= functions_.size()) {
    throw std::out_of_range("openwhisk invoke: unregistered function");
  }
  // Admission control: "429 system overloaded" when the in-flight cap is
  // reached (the drop path the litmus experiments exercise).
  if (cfg_.max_inflight > 0 && inflight_ >= cfg_.max_inflight) {
    ++dropped_;
    ++dropped_by_fn_[fn];
    InvokeResult r;
    r.success = false;
    r.dropped = true;
    r.fn = fn;
    r.submitted = rt_.now();
    r.completed = rt_.now();
    if (cb) cb(r);
    return;
  }
  PendingHandle p = pending_.emplace();
  Pending& rec = pending_.get(p);
  rec.fn = fn;
  rec.submitted = rt_.now();
  rec.cb = std::move(cb);
  ++inflight_;

  // NGINX -> controller -> Kafka publish/consume, all on the critical path.
  Duration path = stage_latency(cfg_.nginx) + stage_latency(cfg_.controller) +
                  stage_latency(cfg_.kafka);
  rt_.schedule(path, [this, p] { arrive_at_invoker(p); });
}

void OpenWhiskModel::arrive_at_invoker(PendingHandle p) { try_start(p); }

void OpenWhiskModel::try_start(PendingHandle p) {
  FunctionId fn = pending_.get(p).fn;
  ContainerHandle warm = pool_.acquire(fn, rt_.now());
  if (warm.valid()) {
    run_on(p, warm, /*cold=*/false);
    return;
  }
  ContainerHandle fresh = pool_.add_container(fn, functions_[fn], rt_.now());
  if (!fresh.valid()) {
    // No memory: buffer the activation; beyond capacity or timeout, drop it
    // (OpenWhisk "buffers and eventually drops requests").
    if (memory_buffer_.size() >= cfg_.buffer_capacity) {
      drop(p);
      return;
    }
    pending_.get(p).buffered_at = rt_.now();
    memory_buffer_.push_back(p);
    rt_.schedule(cfg_.buffer_timeout, [this, p] {
      // Still buffered after the timeout? Drop it. (If the activation
      // already started, its slot was erased or recycled, so the handle in
      // the buffer no longer compares equal.)
      for (auto it = memory_buffer_.begin(); it != memory_buffer_.end();
           ++it) {
        if (*it == p) {
          memory_buffer_.erase(it);
          drop(p);
          return;
        }
      }
    });
    return;
  }
  // Cold start through Docker; OpenWhisk creates the netns on the critical
  // path every time (no namespace pooling).
  Duration netns_cost = LatencyModel::lognormal(msecs(100), 0.2).sample(rng_);
  rt_.schedule(netns_cost, [this, p, fresh] {
    FunctionId fn = pending_.get(p).fn;
    backend_->create_container(functions_[fn], [this, p, fresh](bool ok) {
      if (!ok) {
        pool_.remove(fresh);
        drop(p);
        return;
      }
      Container& c = pool_.get(fresh);
      c.state = ContainerState::Launching;
      c.state = ContainerState::Running;
      ++c.entry.uses;
      c.entry.last_used = rt_.now();
      run_on(p, fresh, /*cold=*/true);
    });
  });
}

void OpenWhiskModel::run_on(PendingHandle p, ContainerHandle c, bool cold) {
  FunctionId fn = pending_.get(p).fn;
  double work =
      to_sec(cold ? functions_[fn].cold_time() : functions_[fn].warm_time);
  // No concurrency regulation: every invocation lands on the CPU at once.
  backend_->invoke(work, functions_[fn].cpus,
                   [this, p, c, cold](bool, Duration actual) {
                     complete(p, c, cold, actual);
                   });
}

void OpenWhiskModel::complete(PendingHandle p, ContainerHandle c, bool cold,
                              Duration actual) {
  // Result logging to CouchDB is on the critical path.
  Duration db = stage_latency(cfg_.couchdb_write);
  rt_.schedule(db, [this, p, c, cold, actual] {
    pool_.return_container(c, rt_.now());
    --inflight_;
    Pending& rec = pending_.get(p);
    InvokeResult r;
    r.success = true;
    r.cold = cold;
    r.fn = rec.fn;
    r.submitted = rec.submitted;
    r.completed = rt_.now();
    r.exec_time = actual;
    ++completed_;
    if (cold) {
      ++cold_count_;
      ++cold_by_fn_[rec.fn];
    } else {
      ++warm_count_;
      ++warm_by_fn_[rec.fn];
    }
    // The callback may reenter invoke() and grow the slab; retire first.
    InvokeCb cb = std::move(rec.cb);
    pending_.erase(p);
    if (cb) cb(r);
    pump_buffer();
  });
}

void OpenWhiskModel::drop(PendingHandle p) {
  --inflight_;
  ++dropped_;
  Pending& rec = pending_.get(p);
  ++dropped_by_fn_[rec.fn];
  InvokeResult r;
  r.success = false;
  r.dropped = true;
  r.fn = rec.fn;
  r.submitted = rec.submitted;
  r.completed = rt_.now();
  InvokeCb cb = std::move(rec.cb);
  pending_.erase(p);
  if (cb) cb(r);
}

void OpenWhiskModel::pump_buffer() {
  if (memory_buffer_.empty()) return;
  PendingHandle p = memory_buffer_.front();
  memory_buffer_.pop_front();
  try_start(p);
}

}  // namespace ilu
