#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "containers/backend.hpp"
#include "containers/cpu_model.hpp"
#include "keepalive/policy.hpp"
#include "keepalive/pool.hpp"
#include "runtime/latency.hpp"
#include "runtime/runtime.hpp"
#include "runtime/slab.hpp"

/// Behavioural model of the OpenWhisk control plane, the paper's baseline.
///
/// Only externally visible behaviour is modeled, with every number taken
/// from the paper's own measurements and description (§2.2/§2.3):
///  - invocation path: NGINX reverse proxy -> Scala controller (CH-BL
///    variant) -> shared Kafka queue -> invoker; Kafka and CouchDB sit on
///    the critical path and "add 100s of ms";
///  - the controller adds <3 ms even under heavy load (the paper measured
///    this), so worker-side costs dominate;
///  - JVM garbage collection causes large, rare latency spikes ("large and
///    unpredictable latency spikes"), which grow with concurrency;
///  - shared-queue contention: Kafka latency degrades with in-flight load;
///  - keep-alive: fixed 10-minute TTL, LRU eviction when memory is full;
///  - no queue-based load regulation: CPU is overcommitted freely, and
///    invocations that cannot get memory are buffered and eventually
///    *dropped* (the Fig 6/7 behaviour);
///  - result writes go to CouchDB (up to half a second under load).
namespace ilu {

struct OpenWhiskConfig {
  double cores = 48.0;
  std::uint64_t memory_mb = 48 * 1024;
  /// Keep-alive policy. Vanilla OpenWhisk uses "TTL"; configuring "GD"
  /// turns this model into FaasCache (the paper's modified OpenWhisk).
  std::string keepalive_policy = "TTL";
  Duration keepalive_ttl = mins(10);

  LatencyModel nginx = LatencyModel::lognormal(msecs(0.8), 0.3);
  LatencyModel controller = LatencyModel::lognormal(msecs(2.0), 0.4);
  LatencyModel kafka = LatencyModel::lognormal(msecs(3.0), 0.6);
  LatencyModel couchdb_write = LatencyModel::lognormal(msecs(6.0), 0.8);
  /// Extra Kafka/CouchDB latency per unit of in-flight load (shared-queue
  /// contention; reaches "100s of ms" at high concurrency).
  double queue_contention_ms_per_inflight = 0.35;
  /// JVM GC pauses: probability per stage, sampled duration.
  double gc_pause_prob = 0.015;
  LatencyModel gc_pause = LatencyModel::lognormal(msecs(120), 0.9);
  /// GC pressure grows with concurrency: effective probability is
  /// gc_pause_prob * (1 + inflight / gc_load_scale).
  double gc_load_scale = 32.0;

  /// Docker is OpenWhisk's container layer.
  BackendLatencyProfile backend = BackendLatencyProfile::docker();
  /// Invocations wait at most this long for memory before being dropped.
  Duration buffer_timeout = secs(30);
  /// Max buffered (memory-waiting) invocations; beyond this, drop.
  std::size_t buffer_capacity = 256;
  /// OpenWhisk's admission limit on concurrently in-flight activations
  /// (controller-side per-invoker slots / Kafka queue depth). Arrivals
  /// beyond it are rejected immediately with "429 system overloaded" —
  /// the mechanism behind the paper's dropped-request counts: slow (cold)
  /// invocations hold slots longer, shrinking effective capacity.
  /// 0 disables the cap.
  std::size_t max_inflight = 0;

  std::uint64_t seed = 7;
};

class OpenWhiskModel {
 public:
  using InvokeCb = std::function<void(const InvokeResult&)>;

  OpenWhiskModel(Runtime& rt, OpenWhiskConfig cfg);
  ~OpenWhiskModel();

  FunctionId register_function(FunctionProfile profile);
  void invoke(FunctionId fn, InvokeCb cb);

  std::uint64_t completed() const { return completed_; }
  std::uint64_t warm_starts() const { return warm_count_; }
  std::uint64_t cold_starts() const { return cold_count_; }
  std::uint64_t dropped() const { return dropped_; }
  const std::vector<std::uint64_t>& warm_by_fn() const { return warm_by_fn_; }
  const std::vector<std::uint64_t>& cold_by_fn() const { return cold_by_fn_; }
  const std::vector<std::uint64_t>& dropped_by_fn() const {
    return dropped_by_fn_;
  }
  CpuModel& cpu() { return cpu_; }

  /// Stop background timers (pool sweeps) so simulations can drain.
  void shutdown();
  void start();

 private:
  struct Pending {
    FunctionId fn = 0;
    TimePoint submitted{};
    TimePoint buffered_at{};
    InvokeCb cb;
  };
  /// Slab handle to an in-flight activation (DESIGN.md §11). The buffer
  /// timeout keeps a handle past the activation's possible completion; the
  /// generation check makes that safe — a recycled slot never matches.
  struct PendingHandle {
    std::uint32_t index = 0;
    std::uint32_t gen = 0;
    bool valid() const { return gen != 0; }
    friend bool operator==(const PendingHandle&,
                           const PendingHandle&) = default;
  };
  using PendingStore = Slab<Pending, PendingHandle>;

  Duration stage_latency(const LatencyModel& m);
  void arrive_at_invoker(PendingHandle p);
  void try_start(PendingHandle p);
  void run_on(PendingHandle p, ContainerHandle c, bool cold);
  void complete(PendingHandle p, ContainerHandle c, bool cold,
                Duration actual);
  /// Complete `p` as dropped; consumes (erases) the pending.
  void drop(PendingHandle p);
  void pump_buffer();

  Runtime& rt_;
  OpenWhiskConfig cfg_;
  Rng rng_;
  std::vector<FunctionProfile> functions_;
  CpuModel cpu_;
  std::unique_ptr<KeepAlivePolicy> ka_policy_;
  ContainerPool pool_;
  std::unique_ptr<SimContainerBackend> backend_;

  std::size_t inflight_ = 0;
  PendingStore pending_;
  std::deque<PendingHandle> memory_buffer_;

  std::uint64_t completed_ = 0;
  std::uint64_t warm_count_ = 0;
  std::uint64_t cold_count_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<std::uint64_t> warm_by_fn_;
  std::vector<std::uint64_t> cold_by_fn_;
  std::vector<std::uint64_t> dropped_by_fn_;
};

}  // namespace ilu
