#include "core/config.hpp"

#include <stdexcept>

namespace ilu {

BackendLatencyProfile backend_profile_by_name(const std::string& name) {
  if (name == "containerd") return BackendLatencyProfile::containerd();
  if (name == "docker") return BackendLatencyProfile::docker();
  if (name == "crun") return BackendLatencyProfile::crun();
  if (name == "null") return BackendLatencyProfile::null_backend();
  throw std::invalid_argument("unknown container backend: " + name);
}

WorkerConfig worker_config_from_json(const JsonValue& v) {
  WorkerConfig cfg;
  cfg.name = v.string_or("name", cfg.name);
  cfg.cores = v.number_or("cores", cfg.cores);
  cfg.memory_mb = static_cast<std::uint64_t>(
      v.number_or("memory_mb", static_cast<double>(cfg.memory_mb)));
  cfg.queue_policy = v.string_or("queue_policy", cfg.queue_policy);
  cfg.keepalive_policy = v.string_or("keepalive_policy", cfg.keepalive_policy);
  cfg.regulator.limit = v.number_or("concurrency_limit", cfg.regulator.limit);
  cfg.regulator.dynamic =
      v.bool_or("dynamic_concurrency", cfg.regulator.dynamic);
  cfg.regulator.congestion_threshold = v.number_or(
      "congestion_threshold", cfg.regulator.congestion_threshold);
  cfg.bypass_threshold = msecs(v.number_or("bypass_ms", 0.0));
  cfg.bypass_load_limit =
      v.number_or("bypass_load_limit", cfg.bypass_load_limit);
  if (const JsonValue* b = v.find("backend")) {
    cfg.backend = backend_profile_by_name(b->as_string());
  }
  cfg.netns.target_size = static_cast<std::size_t>(v.number_or(
      "netns_pool_size", static_cast<double>(cfg.netns.target_size)));
  cfg.pool.free_buffer_mb = static_cast<std::uint64_t>(v.number_or(
      "free_buffer_mb", static_cast<double>(cfg.pool.free_buffer_mb)));
  cfg.pool.sweep_interval = msecs(v.number_or(
      "sweep_interval_ms", to_ms(cfg.pool.sweep_interval)));
  cfg.create_retries = static_cast<int>(
      v.number_or("create_retries", cfg.create_retries));
  cfg.tracing = v.bool_or("tracing", cfg.tracing);
  cfg.seed = static_cast<std::uint64_t>(
      v.number_or("seed", static_cast<double>(cfg.seed)));
  // Validate enums eagerly so a bad config fails at load time, not at the
  // first invocation.
  make_queue_policy(cfg.queue_policy);
  make_policy(cfg.keepalive_policy);
  return cfg;
}

OpenWhiskConfig openwhisk_config_from_json(const JsonValue& v) {
  OpenWhiskConfig cfg;
  cfg.cores = v.number_or("cores", cfg.cores);
  cfg.memory_mb = static_cast<std::uint64_t>(
      v.number_or("memory_mb", static_cast<double>(cfg.memory_mb)));
  cfg.keepalive_policy = v.string_or("keepalive_policy", cfg.keepalive_policy);
  cfg.keepalive_ttl = mins(v.number_or("ttl_minutes", 10.0));
  cfg.buffer_capacity = static_cast<std::size_t>(v.number_or(
      "buffer_capacity", static_cast<double>(cfg.buffer_capacity)));
  cfg.buffer_timeout = secs(v.number_or("buffer_timeout_s",
                                        to_sec(cfg.buffer_timeout)));
  cfg.seed = static_cast<std::uint64_t>(
      v.number_or("seed", static_cast<double>(cfg.seed)));
  if (cfg.keepalive_policy != "TTL") make_policy(cfg.keepalive_policy);
  return cfg;
}

ClusterConfig cluster_config_from_json(const JsonValue& v) {
  ClusterConfig cfg;
  cfg.num_workers = static_cast<std::size_t>(v.number_or(
      "num_workers", static_cast<double>(cfg.num_workers)));
  std::string lb = v.string_or("lb", "chbl");
  if (lb == "chbl") cfg.lb = LbPolicy::ChBl;
  else if (lb == "rr") cfg.lb = LbPolicy::RoundRobin;
  else if (lb == "least") cfg.lb = LbPolicy::LeastLoaded;
  else throw std::invalid_argument("unknown lb policy: " + lb);
  cfg.chbl.bound_factor = v.number_or("bound_factor", cfg.chbl.bound_factor);
  if (const JsonValue* w = v.find("worker")) {
    cfg.worker = worker_config_from_json(*w);
  }
  return cfg;
}

JsonValue worker_config_to_json(const WorkerConfig& cfg) {
  JsonObject o;
  o["name"] = cfg.name;
  o["cores"] = cfg.cores;
  o["memory_mb"] = static_cast<double>(cfg.memory_mb);
  o["queue_policy"] = cfg.queue_policy;
  o["keepalive_policy"] = cfg.keepalive_policy;
  o["concurrency_limit"] = cfg.regulator.limit;
  o["dynamic_concurrency"] = cfg.regulator.dynamic;
  o["congestion_threshold"] = cfg.regulator.congestion_threshold;
  o["bypass_ms"] = to_ms(cfg.bypass_threshold);
  o["bypass_load_limit"] = cfg.bypass_load_limit;
  o["backend"] = cfg.backend.name;
  o["netns_pool_size"] = static_cast<double>(cfg.netns.target_size);
  o["free_buffer_mb"] = static_cast<double>(cfg.pool.free_buffer_mb);
  o["sweep_interval_ms"] = to_ms(cfg.pool.sweep_interval);
  o["create_retries"] = cfg.create_retries;
  o["tracing"] = cfg.tracing;
  o["seed"] = static_cast<double>(cfg.seed);
  return JsonValue(std::move(o));
}

JsonValue openwhisk_config_to_json(const OpenWhiskConfig& cfg) {
  JsonObject o;
  o["cores"] = cfg.cores;
  o["memory_mb"] = static_cast<double>(cfg.memory_mb);
  o["keepalive_policy"] = cfg.keepalive_policy;
  o["ttl_minutes"] = to_sec(cfg.keepalive_ttl) / 60.0;
  o["buffer_capacity"] = static_cast<double>(cfg.buffer_capacity);
  o["buffer_timeout_s"] = to_sec(cfg.buffer_timeout);
  o["seed"] = static_cast<double>(cfg.seed);
  return JsonValue(std::move(o));
}

JsonValue cluster_config_to_json(const ClusterConfig& cfg) {
  JsonObject o;
  o["num_workers"] = static_cast<double>(cfg.num_workers);
  switch (cfg.lb) {
    case LbPolicy::ChBl: o["lb"] = "chbl"; break;
    case LbPolicy::RoundRobin: o["lb"] = "rr"; break;
    case LbPolicy::LeastLoaded: o["lb"] = "least"; break;
  }
  o["bound_factor"] = cfg.chbl.bound_factor;
  o["worker"] = worker_config_to_json(cfg.worker);
  return JsonValue(std::move(o));
}

WorkerConfig load_worker_config(const std::string& path) {
  return worker_config_from_json(json_parse_file(path));
}

ClusterConfig load_cluster_config(const std::string& path) {
  return cluster_config_from_json(json_parse_file(path));
}

}  // namespace ilu
