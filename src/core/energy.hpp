#pragma once

#include <cstdint>

#include "util/time.hpp"

/// Server energy model (§6.1: the worker tracks "system energy usage using
/// RAPL and external power meters"; this testbed has neither, so a linear
/// CPU power model provides the same signal for research policies).
///
/// Package power is modeled as the usual affine function of utilization:
///   P(u) = idle_watts + (max_watts - idle_watts) * u,  u = demand / cores.
/// Demand is piecewise constant between CPU-model events, so the integral
/// is exact: the meter observes every demand change (via
/// CpuModel::set_demand_observer) and accumulates joules in closed form.
namespace ilu {

class EnergyMeter {
 public:
  struct Params {
    double idle_watts = 120.0;  // 48-core dual-socket idle floor
    double max_watts = 420.0;   // package + DRAM at full utilization
  };

  explicit EnergyMeter(double cores) : EnergyMeter(cores, Params{}) {}
  EnergyMeter(double cores, Params params)
      : cores_(cores), params_(params) {}

  /// Demand-change notification: `demand` is the new total core demand,
  /// effective from time `now` (the previous demand held until now).
  void on_demand_change(TimePoint now, double demand);

  /// Total energy consumed up to `now` (joules).
  double total_joules(TimePoint now) const;

  /// Energy attributable to function execution (above the idle floor).
  double active_joules(TimePoint now) const;

  /// Average power over [0, now] in watts.
  double average_watts(TimePoint now) const;

 private:
  double power(double demand) const {
    double u = demand / cores_;
    if (u > 1.0) u = 1.0;
    return params_.idle_watts + (params_.max_watts - params_.idle_watts) * u;
  }
  /// Joules accumulated in (last_change_, now] at the current demand.
  double pending(TimePoint now, bool active_only) const;

  double cores_;
  Params params_;
  TimePoint last_change_{};
  double demand_ = 0.0;
  double joules_ = 0.0;
  double active_joules_ = 0.0;
};

}  // namespace ilu
