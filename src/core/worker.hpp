#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "containers/backend.hpp"
#include "containers/netns_pool.hpp"
#include "common/characteristics.hpp"
#include "containers/cpu_model.hpp"
#include "core/span_tracer.hpp"
#include "keepalive/pool.hpp"
#include "obs/metrics.hpp"
#include "queueing/invocation_queue.hpp"
#include "queueing/regulator.hpp"
#include "runtime/runtime.hpp"
#include "runtime/slab.hpp"

/// The Ilúvatar worker (§4): the worker-centric control plane that owns a
/// function registry, a per-worker invocation queue with a concurrency
/// regulator and bypass, a keep-alive container pool with background
/// eviction, a netns pool, and a pluggable container backend.
namespace ilu {

/// Per-span latency models for the worker control plane, calibrated to the
/// paper's Table 1 (values in ms for a single warm invocation). In
/// simulation these model the cost of the real system's Rust control plane
/// plus agent HTTP communication; the jitter shape is lognormal with a rare
/// OS-noise spike.
struct ControlPlaneLatencies {
  LatencyModel invoke;
  LatencyModel sync_invoke;
  LatencyModel enqueue_invocation;
  LatencyModel add_item_to_q;
  LatencyModel spawn_worker;
  LatencyModel dequeue;
  LatencyModel acquire_container;
  LatencyModel try_lock_container;
  LatencyModel prepare_invoke;
  LatencyModel call_container;
  LatencyModel download_result;
  LatencyModel return_container;
  LatencyModel return_results;
  /// First agent call on a fresh container pays HTTP connection setup;
  /// cached clients (§4.3.1) skip it on warm starts.
  LatencyModel http_connect;

  static ControlPlaneLatencies iluvatar_defaults();
};

struct WorkerConfig {
  std::string name = "worker0";
  double cores = 48.0;
  std::uint64_t memory_mb = 32 * 1024;

  /// Queue discipline: FCFS, SJF, EEDF (default, §5.2), RARE.
  std::string queue_policy = "EEDF";
  /// Keep-alive policy: TTL, LRU, FREQ, GD (default), LND, HIST.
  std::string keepalive_policy = "GD";

  RegulatorConfig regulator{.limit = 96.0};  // 2x overcommit by default
  /// Short-function bypass: functions with expected warm time below this
  /// skip the queue (0 disables).
  Duration bypass_threshold{};
  /// ... as long as normalized load average is below this bound.
  double bypass_load_limit = 1.0;

  ContainerPool::Config pool{};  // capacity_mb is overridden by memory_mb
  NetnsPool::Config netns{};
  BackendLatencyProfile backend = BackendLatencyProfile::containerd();
  BackendFaults faults{};
  ControlPlaneLatencies latencies = ControlPlaneLatencies::iluvatar_defaults();

  /// Control-plane slowdown per unit of CPU overcommit (the control plane
  /// shares the machine with function execution).
  double cp_contention_factor = 0.4;
  /// Retry budget for failed container creations.
  int create_retries = 2;
  /// Let prefetching keep-alive policies (HIST) schedule prewarms through
  /// the worker when their predictions fire.
  bool predictive_prewarm = true;
  bool tracing = true;
  std::uint64_t seed = 42;
};

class Worker {
 public:
  // ilu-lint: allow(std-function-hotpath) - result callback takes an argument and is copied into retry paths; not a nullary Task
  using InvokeCb = std::function<void(const InvokeResult&)>;
  using AsyncToken = std::uint64_t;

  Worker(Runtime& rt, WorkerConfig cfg);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Begin background services (pool eviction sweeps, AIMD ticks).
  void start();
  /// Stop background timers so a simulation can drain.
  void shutdown();

  /// Register a function (image preparation happens out of band, §4.2).
  FunctionId register_function(FunctionProfile profile);
  const FunctionProfile& profile(FunctionId fn) const;
  std::size_t num_functions() const { return functions_.size(); }

  /// Synchronous invocation API: cb fires on completion or failure.
  void invoke(FunctionId fn, InvokeCb cb);

  /// Asynchronous API: returns a token immediately; poll for the result.
  AsyncToken async_invoke(FunctionId fn);
  std::optional<InvokeResult> async_result(AsyncToken token);

  /// Start a warm container ahead of demand (§4.2 prewarm).
  // ilu-lint: allow(std-function-hotpath) - optional bool-taking callback with a default-empty state; prewarms are rare control events
  void prewarm(FunctionId fn, std::function<void(bool)> cb = {});

  /// Load/status view used by the load balancer (§4.1): queue length is the
  /// paper's preferred low-staleness load signal.
  struct Status {
    std::size_t queue_len = 0;
    std::size_t running = 0;
    double load_average = 0.0;
    double normalized_load = 0.0;
    std::uint64_t used_mb = 0;
    std::uint64_t free_mb = 0;
    double concurrency_limit = 0.0;
  };
  Status status() const;

  /// Aggregate counters.
  std::uint64_t completed() const { return completed_; }
  std::uint64_t warm_starts() const { return warm_count_; }
  std::uint64_t cold_starts() const { return cold_count_; }
  std::uint64_t bypassed() const { return bypass_count_; }
  std::uint64_t failures() const { return failure_count_; }
  std::uint64_t prewarms() const { return prewarm_count_; }

  /// Component access for tests, benches, and research instrumentation.
  SpanTracer& tracer() { return tracer_; }
  /// Live metrics (counters/gauges/histograms) for this worker: invocation
  /// counts, in-flight level, queue depth/wait, pool occupancy, overheads.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  CpuModel& cpu() { return cpu_; }
  ContainerPool& pool() { return pool_; }
  NetnsPool& netns() { return netns_; }
  const CharacteristicsMap& characteristics() const { return chars_; }
  const WorkerConfig& config() const { return cfg_; }
  Runtime& runtime() { return rt_; }

 private:
  struct Pending {
    FunctionId fn = 0;
    TimePoint submitted{};
    TimePoint exec_started{};
    Duration pre_overhead{};
    InvokeCb cb;
    bool bypassed = false;
    int create_attempts = 0;
    /// Transaction-scoped tracing: every span of this invocation carries
    /// `tx`; the first span recorded becomes the root of its span tree.
    TransactionId tx = 0;
    SpanId root = kNoSpan;
  };
  /// Full control-plane checkpoint for speculative (Time Warp) execution:
  /// every per-event mutable member of the worker and its components, minus
  /// wiring (config, latency models, instrument pointers) and the span
  /// tracer (observability-only; spans recorded during a rolled-back window
  /// are a documented skew, DESIGN.md §16). Registered with the runtime in
  /// the constructor; a no-op on runtimes without snapshot support.
  struct Snapshot;
  void register_snapshotter();

  /// Generation-checked reference to an in-flight invocation in the pending
  /// slab (DESIGN.md §11); continuations capture this 8-byte value instead
  /// of a shared_ptr, so the steady-state invoke path never touches the
  /// allocator or a refcount.
  struct PendingHandle {
    std::uint32_t index = 0;
    std::uint32_t gen = 0;
    bool valid() const { return gen != 0; }
    friend bool operator==(const PendingHandle&,
                           const PendingHandle&) = default;
  };
  using PendingStore = Slab<Pending, PendingHandle>;

  /// Sample a span latency (scaled by current control-plane contention),
  /// record it under p's transaction starting `offset` after now, and
  /// return it. The first span recorded for p becomes its tree root;
  /// subsequent ones are its children.
  Duration span(Pending& p, const char* name, const LatencyModel& model,
                Duration offset = Duration::zero());
  double cp_scale() const;

  void enqueue(PendingHandle p);
  void pump();
  void dispatch(PendingHandle p);
  void cold_start(PendingHandle p);
  void launch_exec(PendingHandle p, ContainerHandle c, bool cold);
  void finish(PendingHandle p, ContainerHandle c, bool cold, bool ok,
              Duration actual_exec);
  /// Complete `p` with a failure result; consumes (erases) the pending.
  void fail(PendingHandle p);
  void on_memory_released();
  void schedule_regulator_tick();

  Runtime& rt_;
  WorkerConfig cfg_;
  Rng rng_;

  std::vector<FunctionProfile> functions_;
  CharacteristicsMap chars_;
  SpanTracer tracer_;
  MetricsRegistry metrics_;
  /// Instruments resolved once at construction; hot-path updates are
  /// single relaxed atomics through these pointers.
  struct Instruments {
    Counter* invocations = nullptr;
    Counter* completed = nullptr;
    Counter* warm = nullptr;
    Counter* cold = nullptr;
    Counter* failures = nullptr;
    Counter* bypassed = nullptr;
    Counter* prewarms = nullptr;
    Gauge* inflight = nullptr;
    /// Log-bucketed: queue waits and overheads span µs (bypass hits) to
    /// seconds (cold-start storms); fixed-width buckets flatten that tail.
    LogHistogram* queue_wait_ms = nullptr;
    LogHistogram* overhead_ms = nullptr;
  } ins_;
  CpuModel cpu_;
  std::unique_ptr<KeepAlivePolicy> ka_policy_;
  ContainerPool pool_;
  NetnsPool netns_;
  std::unique_ptr<ContainerBackend> backend_;
  std::unique_ptr<QueuePolicy> q_policy_;
  InvocationQueue queue_;
  ConcurrencyRegulator regulator_;

  std::size_t running_ = 0;
  /// All in-flight invocations; erased on completion/failure so slots
  /// recycle and steady state never allocates.
  PendingStore pending_;
  /// Invocations that could not reserve memory; retried when memory frees.
  std::vector<PendingHandle> waiting_memory_;
  /// Mean execution-time inflation of recent completions (AIMD's optional
  /// congestion signal: actual execution / expected uncontended execution).
  MovingWindow recent_stretch_{32};

  bool started_ = false;
  Runtime::TimerId regulator_timer_ = Runtime::kInvalidTimer;

  std::uint64_t completed_ = 0;
  std::uint64_t warm_count_ = 0;
  std::uint64_t cold_count_ = 0;
  std::uint64_t bypass_count_ = 0;
  std::uint64_t failure_count_ = 0;
  std::uint64_t prewarm_count_ = 0;

  AsyncToken next_token_ = 1;
  std::unordered_map<AsyncToken, InvokeResult> async_results_;
  /// Functions with a policy-requested prewarm already scheduled.
  std::unordered_set<FunctionId> pending_prewarms_;
};

}  // namespace ilu
