#pragma once

#include <map>
#include <string>

#include "util/stats.hpp"

/// Per-component latency tracing (the paper's `tracing`-crate instrumenting,
/// which produces Table 1). The worker records the latency of every named
/// span it executes; summaries are grouped the same way Table 1 groups them.
namespace ilu {

/// Canonical span names, in invocation order (Table 1 rows).
namespace spans {
inline constexpr const char* kInvoke = "invoke";
inline constexpr const char* kSyncInvoke = "sync_invoke";
inline constexpr const char* kEnqueueInvocation = "enqueue_invocation";
inline constexpr const char* kAddItemToQ = "add_item_to_q";
inline constexpr const char* kSpawnWorker = "spawn_worker";
inline constexpr const char* kDequeue = "dequeue";
inline constexpr const char* kAcquireContainer = "acquire_container";
inline constexpr const char* kTryLockContainer = "try_lock_container";
inline constexpr const char* kPrepareInvoke = "prepare_invoke";
inline constexpr const char* kCallContainer = "call_container";
inline constexpr const char* kDownloadResult = "download_result";
inline constexpr const char* kReturnContainer = "return_container";
inline constexpr const char* kReturnResults = "return_results";
}  // namespace spans

class SpanTracer {
 public:
  /// Enabled by default; disable to remove all bookkeeping cost (the paper
  /// ships tracing off by default for the same reason).
  explicit SpanTracer(bool enabled = true) : enabled_(enabled) {}

  void record(const std::string& name, Duration d) {
    if (!enabled_) return;
    summaries_[name].add_ms(d);
  }

  bool enabled() const { return enabled_; }

  /// Mean latency of a span in ms (0 if never recorded).
  double mean_ms(const std::string& name) const;
  std::uint64_t count(const std::string& name) const;

  /// All recorded spans, sorted by name.
  const std::map<std::string, Summary>& all() const { return summaries_; }

  void clear() { summaries_.clear(); }

 private:
  bool enabled_;
  std::map<std::string, Summary> summaries_;
};

}  // namespace ilu
