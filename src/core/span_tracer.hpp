#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/tracer.hpp"
#include "util/stats.hpp"

/// Per-component latency tracing (the paper's `tracing`-crate instrumenting,
/// which produces Table 1). The worker records the latency of every named
/// span it executes; summaries are grouped the same way Table 1 groups them.
///
/// Since the observability PR this is a thin facade over the
/// transaction-scoped TransactionTracer (obs/tracer.hpp): spans carry the
/// invocation's TransactionId and a parent id (forming a per-invocation span
/// tree, exportable as a Chrome trace), are recorded into per-thread shards
/// with no shared lock on the hot path, and the Table 1 aggregate view is
/// computed by merging the shards on demand.
namespace ilu {

/// Canonical span names, in invocation order (Table 1 rows).
namespace spans {
inline constexpr const char* kInvoke = "invoke";
inline constexpr const char* kSyncInvoke = "sync_invoke";
inline constexpr const char* kEnqueueInvocation = "enqueue_invocation";
inline constexpr const char* kAddItemToQ = "add_item_to_q";
inline constexpr const char* kSpawnWorker = "spawn_worker";
inline constexpr const char* kDequeue = "dequeue";
inline constexpr const char* kAcquireContainer = "acquire_container";
inline constexpr const char* kTryLockContainer = "try_lock_container";
inline constexpr const char* kPrepareInvoke = "prepare_invoke";
inline constexpr const char* kCallContainer = "call_container";
inline constexpr const char* kDownloadResult = "download_result";
inline constexpr const char* kReturnContainer = "return_container";
inline constexpr const char* kReturnResults = "return_results";
}  // namespace spans

class SpanTracer {
 public:
  /// Enabled by default; disable to remove all bookkeeping cost (the paper
  /// ships tracing off by default for the same reason).
  explicit SpanTracer(bool enabled = true)
      : tx_(std::make_unique<TransactionTracer>(enabled)) {}

  SpanTracer(SpanTracer&&) = default;
  SpanTracer& operator=(SpanTracer&&) = default;

  /// Aggregate-only record (no span tree / trace-dump entry): kept for
  /// callers that have a duration but no transaction context.
  void record(const std::string& name, Duration d) {
    tx_->record_aggregate(name, d);
  }

  /// Allocate a transaction id for a new invocation.
  TransactionId begin_transaction() { return tx_->begin_transaction(); }

  /// Record a span in transaction `tx` with an explicit start time and
  /// parent (kNoSpan = root). Returns the span's id for child linking.
  SpanId record_tx(TransactionId tx, const char* name, TimePoint start,
                   Duration d, SpanId parent = kNoSpan) {
    return tx_->record(tx, name, start, d, parent);
  }

  bool enabled() const { return tx_->enabled(); }

  /// Mean latency of a span in ms (0 if never recorded).
  double mean_ms(const std::string& name) const;
  std::uint64_t count(const std::string& name) const;

  /// All recorded spans merged across shards, keyed and sorted by name.
  std::map<std::string, Summary> all() const { return tx_->aggregate(); }

  /// The merged span records (for Chrome-trace export), sorted by start.
  std::vector<SpanRecord> spans() const { return tx_->collect(); }

  void clear() { tx_->clear(); }

  /// The underlying transaction-scoped tracer.
  TransactionTracer& tx() { return *tx_; }
  const TransactionTracer& tx() const { return *tx_; }

 private:
  std::unique_ptr<TransactionTracer> tx_;
};

}  // namespace ilu
