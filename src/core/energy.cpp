#include "core/energy.hpp"

namespace ilu {

double EnergyMeter::pending(TimePoint now, bool active_only) const {
  double dt = to_sec(now - last_change_);
  if (dt <= 0.0) return 0.0;
  double p = power(demand_);
  if (active_only) p -= params_.idle_watts;
  return p * dt;
}

void EnergyMeter::on_demand_change(TimePoint now, double demand) {
  joules_ += pending(now, false);
  active_joules_ += pending(now, true);
  last_change_ = now;
  demand_ = demand;
}

double EnergyMeter::total_joules(TimePoint now) const {
  return joules_ + pending(now, false);
}

double EnergyMeter::active_joules(TimePoint now) const {
  return active_joules_ + pending(now, true);
}

double EnergyMeter::average_watts(TimePoint now) const {
  double t = to_sec(now);
  if (t <= 0.0) return power(demand_);
  return total_joules(now) / t;
}

}  // namespace ilu
