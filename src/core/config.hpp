#pragma once

#include <string>

#include "baseline/openwhisk.hpp"
#include "core/worker.hpp"
#include "lb/cluster.hpp"
#include "util/json.hpp"

/// JSON configuration loading (§6: "Workers are configured with a json file
/// on startup, with the various policy options (such as queuing),
/// keep-alive, timeouts, ..."). Every knob that the benchmark harness
/// sweeps is exposed; unknown keys are ignored so configs stay forward
/// compatible, and all values default to the in-code defaults.
///
/// Worker schema (all optional):
///   { "name": "worker0", "cores": 48, "memory_mb": 49152,
///     "queue_policy": "EEDF", "keepalive_policy": "GD",
///     "concurrency_limit": 96, "dynamic_concurrency": false,
///     "congestion_threshold": 1.0,
///     "bypass_ms": 0, "bypass_load_limit": 1.0,
///     "backend": "containerd" | "docker" | "crun" | "null",
///     "netns_pool_size": 32, "free_buffer_mb": 2048,
///     "sweep_interval_ms": 500, "create_retries": 2,
///     "tracing": true, "seed": 42 }
///
/// OpenWhisk schema:
///   { "cores": 48, "memory_mb": 49152, "keepalive_policy": "TTL",
///     "ttl_minutes": 10, "buffer_capacity": 256,
///     "buffer_timeout_s": 30, "seed": 7 }
///
/// Cluster schema:
///   { "num_workers": 4, "lb": "chbl" | "rr" | "least",
///     "bound_factor": 2.0, "worker": { ...worker schema... } }
namespace ilu {

/// Build configs from parsed JSON; throws JsonError / std::invalid_argument
/// on type mismatches or unknown enum values.
WorkerConfig worker_config_from_json(const JsonValue& v);
OpenWhiskConfig openwhisk_config_from_json(const JsonValue& v);
ClusterConfig cluster_config_from_json(const JsonValue& v);

/// Serialize back to JSON (the sweepable knobs; latency models keep their
/// defaults and are not round-tripped).
JsonValue worker_config_to_json(const WorkerConfig& cfg);
JsonValue openwhisk_config_to_json(const OpenWhiskConfig& cfg);
JsonValue cluster_config_to_json(const ClusterConfig& cfg);

/// Convenience file loaders.
WorkerConfig load_worker_config(const std::string& path);
ClusterConfig load_cluster_config(const std::string& path);

/// Resolve a backend latency profile by name; throws std::invalid_argument.
BackendLatencyProfile backend_profile_by_name(const std::string& name);

}  // namespace ilu
