#include "core/worker.hpp"

#include <cassert>
#include <stdexcept>

#include "keepalive/policy.hpp"
#include "obs/flight.hpp"
#include "util/log.hpp"

// ilu-lint: speculative-zone(flight, metrics) - the flight ring is mark()/rewind() bracketed per speculative window and the worker Snapshot checkpoints/restores its registry values

namespace ilu {

namespace {
/// Table 1 calibration helper: lognormal around the paper's measured median
/// with a modest tail, plus a rare OS-noise spike.
LatencyModel tab1(double ms) {
  return LatencyModel::spiky(LatencyModel::lognormal(msecs(ms), 0.25),
                             /*p=*/0.0005,
                             LatencyModel::lognormal(msecs(2.0), 0.8));
}
}  // namespace

ControlPlaneLatencies ControlPlaneLatencies::iluvatar_defaults() {
  ControlPlaneLatencies l;
  l.invoke = tab1(0.026);
  l.sync_invoke = tab1(0.013);
  l.enqueue_invocation = tab1(0.017);
  l.add_item_to_q = tab1(0.020);
  l.spawn_worker = tab1(0.029);
  l.dequeue = tab1(0.020);
  l.acquire_container = tab1(0.096);
  l.try_lock_container = tab1(0.014);
  l.prepare_invoke = tab1(0.154);
  l.call_container = tab1(1.364);
  l.download_result = tab1(0.032);
  l.return_container = tab1(0.017);
  l.return_results = tab1(0.266);
  l.http_connect = LatencyModel::lognormal(msecs(3.0), 0.20);
  return l;
}

Worker::Worker(Runtime& rt, WorkerConfig cfg)
    : rt_(rt),
      cfg_(std::move(cfg)),
      rng_(cfg_.seed),
      cpu_(rt, cfg_.cores),
      ka_policy_(make_policy(cfg_.keepalive_policy)),
      pool_(rt, *ka_policy_,
            [&] {
              auto pc = cfg_.pool;
              pc.capacity_mb = cfg_.memory_mb;
              return pc;
            }(),
            [this](const Container& c) {
              // Destroy the sandbox off the critical path; memory was
              // already released by the pool. The record dies when this
              // callback returns, so copy out the netns id.
              std::uint64_t ns = c.netns_id;
              backend_->destroy_container([this, ns](bool) {
                netns_.release(ns);
                on_memory_released();
              });
            }),
      netns_(rt, rng_.substream(0x41), cfg_.netns),
      backend_(std::make_unique<SimContainerBackend>(
          rt, cpu_, rng_.substream(0x42), cfg_.backend, cfg_.faults)),
      q_policy_(make_queue_policy(cfg_.queue_policy)),
      queue_(*q_policy_, chars_),
      regulator_(cfg_.regulator) {
  tracer_ = SpanTracer(cfg_.tracing);
  ins_.invocations = metrics_.counter("worker.invocations");
  ins_.completed = metrics_.counter("worker.completed");
  ins_.warm = metrics_.counter("worker.warm_starts");
  ins_.cold = metrics_.counter("worker.cold_starts");
  ins_.failures = metrics_.counter("worker.failures");
  ins_.bypassed = metrics_.counter("worker.bypassed");
  ins_.prewarms = metrics_.counter("worker.prewarms");
  ins_.inflight = metrics_.gauge("worker.inflight");
  ins_.queue_wait_ms = metrics_.log_histogram("queue.wait_ms");
  ins_.overhead_ms = metrics_.log_histogram("worker.overhead_ms");
  queue_.set_depth_gauge(metrics_.gauge("queue.depth"));
  queue_.set_flight_clock(&rt_);
  pool_.set_metrics({.evictions = metrics_.counter("pool.evictions"),
                     .expirations = metrics_.counter("pool.expirations"),
                     .prewarm_parks = metrics_.counter("pool.prewarm_parks"),
                     .total = metrics_.gauge("pool.containers"),
                     .idle = metrics_.gauge("pool.idle"),
                     .busy = metrics_.gauge("pool.busy"),
                     .prewarmed = metrics_.gauge("pool.prewarmed"),
                     .used_mb = metrics_.gauge("pool.used_mb")});
  if (cfg_.predictive_prewarm) {
    pool_.set_prewarm_requester([this](FunctionId fn, TimePoint at) {
      if (!started_ || pending_prewarms_.count(fn) > 0) return;
      pending_prewarms_.insert(fn);
      Duration delay = at > rt_.now() ? at - rt_.now() : Duration::zero();
      rt_.schedule(delay, [this, fn] {
        pending_prewarms_.erase(fn);
        if (!started_ || pool_.has_idle(fn)) return;
        prewarm(fn);
      });
    });
  }
  register_snapshotter();
}

/// One blob per worker: every mutable member touched by event handlers.
/// Wiring (config, latency models, resolved instrument pointers, policy
/// identity) is immutable after construction and excluded; the span tracer
/// is deliberately out of rollback scope (DESIGN.md §16).
struct Worker::Snapshot {
  Rng rng;
  std::vector<FunctionProfile> functions;
  CharacteristicsMap chars;
  CpuModel::State cpu;
  std::shared_ptr<void> ka_policy;
  ContainerPool::State pool;
  NetnsPool::State netns;
  std::shared_ptr<void> backend;
  InvocationQueue::Snapshot queue;
  ConcurrencyRegulator regulator{RegulatorConfig{}};
  std::size_t running = 0;
  PendingStore::Snapshot pending;
  std::vector<PendingHandle> waiting_memory;
  MovingWindow recent_stretch;
  bool started = false;
  Runtime::TimerId regulator_timer = Runtime::kInvalidTimer;
  std::uint64_t completed = 0;
  std::uint64_t warm = 0;
  std::uint64_t cold = 0;
  std::uint64_t bypass = 0;
  std::uint64_t failure = 0;
  std::uint64_t prewarm = 0;
  AsyncToken next_token = 1;
  std::unordered_map<AsyncToken, InvokeResult> async_results;
  std::unordered_set<FunctionId> pending_prewarms;
  MetricsRegistry::Values metrics;
};

void Worker::register_snapshotter() {
  rt_.add_snapshotter(Snapshotter{
      [this]() -> std::shared_ptr<void> {
        auto s = std::make_shared<Snapshot>();
        s->rng = rng_;
        s->functions = functions_;
        s->chars = chars_;
        s->cpu = cpu_.save_state();
        s->ka_policy = ka_policy_->save_state();
        s->pool = pool_.save_state();
        s->netns = netns_.save_state();
        s->backend = backend_->save_state();
        s->queue = queue_.snapshot();
        s->regulator = regulator_;
        s->running = running_;
        s->pending = pending_.snapshot();
        s->waiting_memory = waiting_memory_;
        s->recent_stretch = recent_stretch_;
        s->started = started_;
        s->regulator_timer = regulator_timer_;
        s->completed = completed_;
        s->warm = warm_count_;
        s->cold = cold_count_;
        s->bypass = bypass_count_;
        s->failure = failure_count_;
        s->prewarm = prewarm_count_;
        s->next_token = next_token_;
        s->async_results = async_results_;
        s->pending_prewarms = pending_prewarms_;
        s->metrics = metrics_.save_values();
        return s;
      },
      [this](const std::shared_ptr<void>& blob) {
        const auto& s = *static_cast<const Snapshot*>(blob.get());
        rng_ = s.rng;
        functions_ = s.functions;
        chars_ = s.chars;
        cpu_.load_state(s.cpu);
        ka_policy_->load_state(s.ka_policy);
        pool_.load_state(s.pool);
        netns_.load_state(s.netns);
        backend_->load_state(s.backend);
        queue_.restore(s.queue);
        regulator_ = s.regulator;
        running_ = s.running;
        pending_.restore(s.pending);
        waiting_memory_ = s.waiting_memory;
        recent_stretch_ = s.recent_stretch;
        started_ = s.started;
        regulator_timer_ = s.regulator_timer;
        completed_ = s.completed;
        warm_count_ = s.warm;
        cold_count_ = s.cold;
        bypass_count_ = s.bypass;
        failure_count_ = s.failure;
        prewarm_count_ = s.prewarm;
        next_token_ = s.next_token;
        async_results_ = s.async_results;
        pending_prewarms_ = s.pending_prewarms;
        // Last, so the instrument values of record overwrite whatever the
        // component restores mirrored into the gauges along the way.
        metrics_.restore_values(s.metrics);
      }});
}

Worker::~Worker() { shutdown(); }

void Worker::start() {
  if (started_) return;
  started_ = true;
  pool_.start();
  if (regulator_.config().dynamic) schedule_regulator_tick();
}

void Worker::shutdown() {
  started_ = false;
  pool_.stop();
  if (regulator_timer_ != Runtime::kInvalidTimer) {
    rt_.cancel(regulator_timer_);
    regulator_timer_ = Runtime::kInvalidTimer;
  }
}

void Worker::schedule_regulator_tick() {
  regulator_timer_ =
      rt_.schedule(regulator_.config().interval, [this] {
        regulator_timer_ = Runtime::kInvalidTimer;
        if (!started_) return;
        regulator_.tick(cpu_.load_average() / cfg_.cores,
                        recent_stretch_.mean());
        pump();
        schedule_regulator_tick();
      });
}

FunctionId Worker::register_function(FunctionProfile profile) {
  // Image fetch and layer preparation happen out of band (§4.2); only the
  // registry bookkeeping is on this path.
  auto id = static_cast<FunctionId>(functions_.size());
  functions_.push_back(std::move(profile));
  chars_.ensure(functions_.size());
  return id;
}

const FunctionProfile& Worker::profile(FunctionId fn) const {
  return functions_.at(fn);
}

double Worker::cp_scale() const {
  double over = (cpu_.demand() - cfg_.cores) / cfg_.cores;
  if (over <= 0.0) return 1.0;
  return 1.0 + cfg_.cp_contention_factor * over;
}

Duration Worker::span(Pending& p, const char* name, const LatencyModel& model,
                      Duration offset) {
  Duration d = model.sample(rng_);
  d = Duration{static_cast<std::int64_t>(
      static_cast<double>(d.count()) * cp_scale())};
  // The first span of the transaction (kInvoke) becomes the root of the
  // invocation's span tree; every later stage hangs off it.
  SpanId id = tracer_.record_tx(p.tx, name, rt_.now() + offset, d, p.root);
  if (p.root == kNoSpan) p.root = id;
  return d;
}

void Worker::invoke(FunctionId fn, InvokeCb cb) {
  if (fn >= functions_.size()) {
    throw std::out_of_range("invoke: unregistered function");
  }
  PendingHandle p = pending_.emplace();
  Pending& rec = pending_.get(p);
  rec.fn = fn;
  rec.submitted = rt_.now();
  rec.cb = std::move(cb);
  rec.tx = tracer_.begin_transaction();
  flight::record(rec.submitted, flight::Ev::kInvokeArrival, fn);
  ins_.invocations->inc();
  chars_.on_arrival(fn, rec.submitted);
  // Keep-alive policies observe every arrival (HIST builds its IAT
  // histograms from this, independent of cache contents).
  ka_policy_->on_invocation(fn, rec.submitted);

  // Ingestion spans (Table 1 group 1), laid out back to back in time.
  const auto& L = cfg_.latencies;
  Duration ingest{};
  ingest += span(rec, spans::kInvoke, L.invoke, ingest);
  ingest += span(rec, spans::kSyncInvoke, L.sync_invoke, ingest);
  ingest += span(rec, spans::kEnqueueInvocation, L.enqueue_invocation, ingest);
  ingest += span(rec, spans::kAddItemToQ, L.add_item_to_q, ingest);
  rec.pre_overhead = ingest;
  rt_.schedule(ingest, [this, p] { enqueue(p); });
}

Worker::AsyncToken Worker::async_invoke(FunctionId fn) {
  AsyncToken token = next_token_++;
  invoke(fn, [this, token](const InvokeResult& r) {
    async_results_[token] = r;
  });
  return token;
}

std::optional<InvokeResult> Worker::async_result(AsyncToken token) {
  auto it = async_results_.find(token);
  if (it == async_results_.end()) return std::nullopt;
  InvokeResult r = it->second;
  async_results_.erase(it);
  return r;
}

void Worker::enqueue(PendingHandle p) {
  Pending& rec = pending_.get(p);
  // Short-function bypass (§5.1): skip the queue entirely when the function
  // is known-short and the system is not overloaded.
  if (cfg_.bypass_threshold > Duration::zero()) {
    Duration expected = chars_.expected_warm(rec.fn);
    double norm_load = cpu_.load_average() / cfg_.cores;
    if (expected > Duration::zero() && expected <= cfg_.bypass_threshold &&
        norm_load < cfg_.bypass_load_limit) {
      rec.bypassed = true;
      ++bypass_count_;
      ins_.bypassed->inc();
      ++running_;
      ins_.inflight->set(static_cast<std::int64_t>(running_));
      dispatch(p);
      return;
    }
  }
  FunctionId fn = rec.fn;
  QueueItem item;
  item.fn = fn;
  item.arrival = rec.submitted;
  item.dispatch = [this, p] {
    ++running_;
    ins_.inflight->set(static_cast<std::int64_t>(running_));
    dispatch(p);
  };
  queue_.push(std::move(item), pool_.has_idle(fn));
  pump();
}

void Worker::pump() {
  while (!queue_.empty() && regulator_.can_dispatch(running_)) {
    auto item = queue_.pop();
    item->dispatch();
  }
}

void Worker::dispatch(PendingHandle p) {
  const auto& L = cfg_.latencies;
  Pending& rec = pending_.get(p);
  Duration d{};
  d += span(rec, spans::kSpawnWorker, L.spawn_worker, d);
  d += span(rec, spans::kDequeue, L.dequeue, d);
  d += span(rec, spans::kAcquireContainer, L.acquire_container, d);
  ContainerHandle c = pool_.acquire(rec.fn, rt_.now());
  if (c.valid()) {
    d += span(rec, spans::kTryLockContainer, L.try_lock_container, d);
    rec.pre_overhead += d;
    rt_.schedule(d, [this, p, c] { launch_exec(p, c, /*cold=*/false); });
    return;
  }
  rec.pre_overhead += d;
  rt_.schedule(d, [this, p] { cold_start(p); });
}

void Worker::cold_start(PendingHandle p) {
  FunctionId fn = pending_.get(p).fn;
  std::size_t sync_evictions = 0;
  ContainerHandle c =
      pool_.add_container(fn, functions_[fn], rt_.now(), &sync_evictions);
  if (!c.valid()) {
    // Memory exhausted by busy containers: park until something frees.
    flight::record(rt_.now(), flight::Ev::kMemoryPark, fn);
    --running_;
    ins_.inflight->set(static_cast<std::int64_t>(running_));
    waiting_memory_.push_back(p);
    return;
  }
  // Victims evicted synchronously must be torn down before their memory is
  // truly reusable: that teardown lands on this invocation's critical path
  // (the jitter that background eviction with a free buffer avoids,
  // §4.3.2).
  Duration evict_penalty{};
  for (std::size_t i = 0; i < sync_evictions; ++i) {
    evict_penalty += cfg_.backend.destroy.sample(rng_);
  }
  netns_.acquire([this, p, c, evict_penalty](std::uint64_t netns_id,
                                             Duration penalty) {
    pool_.get(c).netns_id = netns_id;
    // The netns penalty (if any) is on the critical path before create.
    rt_.schedule(penalty + evict_penalty, [this, p, c] {
      FunctionId fn = pending_.get(p).fn;
      backend_->create_container(functions_[fn], [this, p, c](bool ok) {
        if (!ok) {
          pool_.remove(c);
          Pending& rec = pending_.get(p);
          ++rec.create_attempts;
          if (rec.create_attempts <= cfg_.create_retries) {
            cold_start(p);
          } else {
            --running_;
            ins_.inflight->set(static_cast<std::int64_t>(running_));
            fail(p);
            pump();
          }
          return;
        }
        Container& cc = pool_.get(c);
        cc.state = ContainerState::Launching;
        assert(valid_transition(ContainerState::Launching,
                                ContainerState::Running));
        cc.state = ContainerState::Running;
        ++cc.entry.uses;
        cc.entry.last_used = rt_.now();
        launch_exec(p, c, /*cold=*/true);
      });
    });
  });
}

void Worker::launch_exec(PendingHandle p, ContainerHandle c, bool cold) {
  const auto& L = cfg_.latencies;
  Pending& rec = pending_.get(p);
  Duration d{};
  d += span(rec, spans::kPrepareInvoke, L.prepare_invoke, d);
  d += span(rec, spans::kCallContainer, L.call_container, d);
  Container& cc = pool_.get(c);
  if (!cc.http_client_cached) {
    // First call to this container: HTTP client setup (§4.3.1).
    d += L.http_connect.sample(rng_);
    cc.http_client_cached = true;
  }
  rec.pre_overhead += d;
  rt_.schedule(d, [this, p, c, cold] {
    Pending& r = pending_.get(p);
    r.exec_started = rt_.now();
    FunctionId fn = r.fn;
    double work = to_sec(cold ? functions_[fn].cold_time()
                              : functions_[fn].warm_time);
    backend_->invoke(work, functions_[fn].cpus,
                     [this, p, c, cold](bool ok, Duration actual) {
                       finish(p, c, cold, ok, actual);
                     });
  });
}

void Worker::finish(PendingHandle p, ContainerHandle c, bool cold, bool ok,
                    Duration actual_exec) {
  const auto& L = cfg_.latencies;
  Pending& rec = pending_.get(p);
  Duration d{};
  d += span(rec, spans::kDownloadResult, L.download_result, d);
  d += span(rec, spans::kReturnContainer, L.return_container, d);
  d += span(rec, spans::kReturnResults, L.return_results, d);
  rt_.schedule(d, [this, p, c, cold, ok, actual_exec] {
    pool_.return_container(c, rt_.now());
    --running_;
    ins_.inflight->set(static_cast<std::int64_t>(running_));
    if (ok) {
      Pending& rec = pending_.get(p);
      InvokeResult r;
      r.success = true;
      r.cold = cold;
      r.bypassed = rec.bypassed;
      r.fn = rec.fn;
      r.submitted = rec.submitted;
      r.exec_started = rec.exec_started;
      r.completed = rt_.now();
      r.exec_time = actual_exec;
      r.queue_wait = (rec.exec_started - rec.submitted) - rec.pre_overhead;
      if (r.queue_wait < Duration::zero()) r.queue_wait = Duration::zero();
      ++completed_;
      flight::record(r.completed, flight::Ev::kComplete, rec.fn);
      ins_.completed->inc();
      ins_.queue_wait_ms->observe(to_ms(r.queue_wait));
      ins_.overhead_ms->observe(to_ms(r.overhead()));
      // Congestion signal per §5.1: "the increase in execution time" —
      // contention inflation of execution, NOT flow stretch (flow stretch
      // includes queueing, so shrinking the limit would raise the signal
      // and death-spiral the controller).
      Duration base =
          cold ? functions_[rec.fn].cold_time() : functions_[rec.fn].warm_time;
      if (base > Duration::zero()) {
        recent_stretch_.add(static_cast<double>(actual_exec.count()) /
                            static_cast<double>(base.count()));
      }
      if (cold) {
        ++cold_count_;
        ins_.cold->inc();
        chars_.record_cold(rec.fn, actual_exec);
      } else {
        ++warm_count_;
        ins_.warm->inc();
        chars_.record_warm(rec.fn, actual_exec);
      }
      // The callback may reenter invoke() and grow the slab, so retire the
      // pending first and call the moved-out callback last.
      InvokeCb cb = std::move(rec.cb);
      pending_.erase(p);
      if (cb) cb(r);
    } else {
      fail(p);
    }
    on_memory_released();
    pump();
  });
}

void Worker::fail(PendingHandle p) {
  ++failure_count_;
  ins_.failures->inc();
  Pending& rec = pending_.get(p);
  flight::record(rt_.now(), flight::Ev::kFailure, rec.fn);
  InvokeResult r;
  r.success = false;
  r.fn = rec.fn;
  r.submitted = rec.submitted;
  r.completed = rt_.now();
  InvokeCb cb = std::move(rec.cb);
  pending_.erase(p);
  if (cb) cb(r);
}

void Worker::on_memory_released() {
  if (waiting_memory_.empty()) return;
  // Give parked invocations another chance, preserving arrival order.
  auto parked = std::move(waiting_memory_);
  waiting_memory_.clear();
  for (PendingHandle p : parked) {
    Pending& rec = pending_.get(p);
    FunctionId fn = rec.fn;
    QueueItem item;
    item.fn = fn;
    item.arrival = rec.submitted;
    item.dispatch = [this, p] {
      ++running_;
      ins_.inflight->set(static_cast<std::int64_t>(running_));
      dispatch(p);
    };
    queue_.push(std::move(item), pool_.has_idle(fn));
  }
  pump();
}

void Worker::prewarm(FunctionId fn, std::function<void(bool)> cb) {
  if (fn >= functions_.size()) {
    throw std::out_of_range("prewarm: unregistered function");
  }
  ContainerHandle c = pool_.add_container(fn, functions_[fn], rt_.now());
  if (!c.valid()) {
    if (cb) cb(false);
    return;
  }
  netns_.acquire([this, fn, c, cb](std::uint64_t netns_id, Duration penalty) {
    pool_.get(c).netns_id = netns_id;
    rt_.schedule(penalty, [this, fn, c, cb] {
      backend_->create_container(functions_[fn], [this, fn, c, cb](bool ok) {
        if (!ok) {
          pool_.remove(c);
          if (cb) cb(false);
          return;
        }
        pool_.get(c).state = ContainerState::Launching;
        pool_.park_prewarmed(c, rt_.now());
        ++prewarm_count_;
        flight::record(rt_.now(), flight::Ev::kPrewarm, fn);
        ins_.prewarms->inc();
        if (cb) cb(true);
      });
    });
  });
}

Worker::Status Worker::status() const {
  Status s;
  s.queue_len = queue_.size();
  s.running = running_;
  s.load_average = cpu_.load_average();
  s.normalized_load = s.load_average / cfg_.cores;
  s.used_mb = pool_.used_mb();
  s.free_mb = pool_.free_mb();
  s.concurrency_limit = regulator_.limit();
  return s;
}

}  // namespace ilu
