#include "core/span_tracer.hpp"

namespace ilu {

double SpanTracer::mean_ms(const std::string& name) const {
  auto agg = tx_->aggregate();
  auto it = agg.find(name);
  return it == agg.end() ? 0.0 : it->second.mean();
}

std::uint64_t SpanTracer::count(const std::string& name) const {
  auto agg = tx_->aggregate();
  auto it = agg.find(name);
  return it == agg.end() ? 0 : it->second.count();
}

}  // namespace ilu
