#pragma once

/// Umbrella header: the full public API of the Ilúvatar/FaasCache
/// control-plane reproduction.
///
/// Layered exactly as DESIGN.md describes:
///   runtime/   deterministic (SimRuntime) and wall-clock (RealRuntime)
///              execution engines, the time-parallel ShardedRuntime
///              (conservative-window synchronization), + latency models
///   trace/     workloads: FunctionBench profiles, the Azure trace model,
///              load generators, trace I/O, mmap'd on-disk arenas
///              (ilu-arena-v1) with bounded-memory chunked generation
///   containers container records, backends (containerd/docker/crun/null
///              latency profiles), netns pool
///   keepalive/ caching-based keep-alive: policies (TTL/LRU/FREQ/GD/LND/
///              HIST), the container pool, the trace simulator, dynamic
///              provisioning
///   queueing/  invocation queue disciplines (FCFS/SJF/EEDF/RARE),
///              concurrency regulator (fixed/AIMD), bypass
///   obs/       observability: transaction-scoped span trees, the metrics
///              registry (fixed-width + log-bucketed histograms), the
///              always-on flight recorder, the telemetry time-series
///              sampler, and Chrome-trace/JSON exporters
///   core/      the Ilúvatar worker and its substrates (CPU model, span
///              tracer, function characteristics)
///   baseline/  the OpenWhisk behavioural model (and FaasCache, via its
///              keep-alive policy knob)
///   lb/        CH-BL consistent hashing with bounded loads + cluster
///   exp/       parallel experiment sweep engine: work-stealing fan-out of
///              independent deterministic simulations with submission-order
///              result collection and per-task log isolation

#include "baseline/openwhisk.hpp"
#include "common/types.hpp"
#include "containers/backend.hpp"
#include "containers/container.hpp"
#include "containers/netns_pool.hpp"
#include "common/characteristics.hpp"
#include "containers/cpu_model.hpp"
#include "core/span_tracer.hpp"
#include "core/energy.hpp"
#include "core/worker.hpp"
#include "exp/keepalive_sweep.hpp"
#include "exp/live_load.hpp"
#include "exp/sweep.hpp"
#include "keepalive/cache.hpp"
#include "keepalive/policy.hpp"
#include "keepalive/pool.hpp"
#include "keepalive/provisioner.hpp"
#include "keepalive/simulator.hpp"
#include "lb/chbl.hpp"
#include "lb/cluster.hpp"
#include "metrics/report.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/span.hpp"
#include "obs/tracer.hpp"
#include "queueing/invocation_queue.hpp"
#include "queueing/queue_policy.hpp"
#include "queueing/regulator.hpp"
#include "runtime/real_runtime.hpp"
#include "runtime/sharded_runtime.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/timer_wheel.hpp"
#include "trace/arena_file.hpp"
#include "trace/arena_gen.hpp"
#include "trace/azure.hpp"
#include "trace/event_view.hpp"
#include "trace/function_profile.hpp"
#include "trace/loadgen.hpp"
#include "trace/trace_io.hpp"
#include "trace/workload.hpp"
#include "util/csv.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"
