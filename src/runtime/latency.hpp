#pragma once

#include <memory>

#include "util/rng.hpp"
#include "util/time.hpp"

/// Parametric latency distributions for modeling substrate operations that
/// this testbed does not physically run (containerd RPCs, Docker API calls,
/// agent HTTP round-trips, Kafka publish/consume, CouchDB reads/writes, JVM
/// GC stalls). Each model is calibrated from numbers the paper itself
/// reports; see containers/backend.hpp and baseline/openwhisk.hpp.
namespace ilu {

class LatencyModel {
 public:
  /// Always 0.
  static LatencyModel zero();
  /// Always exactly `d`.
  static LatencyModel constant(Duration d);
  /// Uniform in [lo, hi].
  static LatencyModel uniform(Duration lo, Duration hi);
  /// Normal(mean, sd), clamped at >= 0.
  static LatencyModel normal(Duration mean, Duration sd);
  /// Log-normal with given median and log-space sigma: the canonical shape
  /// for service latencies (long right tail).
  static LatencyModel lognormal(Duration median, double sigma);
  /// With probability p, adds a sample of `spike` on top of `base` —
  /// models GC pauses / lock-convoy stalls.
  static LatencyModel spiky(LatencyModel base, double p, LatencyModel spike);

  /// `floor + base`: a hard minimum (serialization + wire + interrupt
  /// latency that no sample can undercut) plus a jitter distribution. The
  /// floor shows up in lower_bound(), which conservative parallel
  /// simulation uses as cross-shard lookahead.
  static LatencyModel shifted(Duration floor, LatencyModel base);

  /// Draw one latency sample.
  Duration sample(Rng& rng) const;

  /// Analytic expectation (exact for all shapes; used for sanity checks and
  /// capacity math).
  Duration mean() const;

  /// Infimum of the support: no sample is ever below this. Zero for the
  /// unbounded shapes (normal, lognormal); the floor for shifted models.
  Duration lower_bound() const;

  LatencyModel() : LatencyModel(zero()) {}

 private:
  enum class Kind { Zero, Constant, Uniform, Normal, LogNormal, Spiky, Shifted };

  LatencyModel(Kind kind, double a, double b);

  Kind kind_;
  // Interpretation depends on kind: Constant{a=us}, Uniform{a=lo,b=hi},
  // Normal{a=mean,b=sd}, LogNormal{a=median,b=sigma}, Shifted{a=floor_us}.
  double a_ = 0.0;
  double b_ = 0.0;
  // Spiky and Shifted composition.
  std::shared_ptr<const LatencyModel> base_;
  std::shared_ptr<const LatencyModel> spike_;
  double spike_p_ = 0.0;
};

}  // namespace ilu
