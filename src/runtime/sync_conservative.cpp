#include "runtime/sharded_runtime.hpp"
// ilu-lint: atomics-floor(relaxed) - events_ publication is ordered by the round barriers (shard_sync.hpp)

#include <algorithm>

/// Conservative (Chandy–Misra bounded-lag) round: the original window
/// engine, now one of ShardedRuntime's pluggable strategies. With T_min the
/// agreed earliest pending deadline and every cross-shard send at least
/// `lookahead` out, no event executed anywhere this round can create work
/// before T_min + lookahead — so running each shard to that bound is safe
/// without checkpoints, stragglers, or rollback. One barrier round buys
/// exactly one lookahead of virtual time; see sync_optimistic.cpp for the
/// engine that trades that guarantee for speculation.
namespace ilu {

void ShardedRuntime::round_conservative(std::size_t me, std::int64_t tmin,
                                        std::int64_t cap_us,
                                        shard_sync::SpinBarrier& barrier) {
  SimRuntime& rt = *shards_[me];
  const TimePoint w{std::min(tmin + lookahead_.count(), cap_us)};
  rt.run_before(w);
  commit_round(me, barrier);
}

}  // namespace ilu
