#include "runtime/real_runtime.hpp"

#include <cassert>
#include <utility>

namespace ilu {

RealRuntime::RealRuntime()
    : epoch_(std::chrono::steady_clock::now()),
      loop_thread_([this] { loop(); }) {}

RealRuntime::~RealRuntime() { shutdown(); }

TimePoint RealRuntime::now() const {
  return std::chrono::duration_cast<Duration>(std::chrono::steady_clock::now() -
                                              epoch_);
}

Runtime::TimerId RealRuntime::schedule(Duration delay, Task fn) {
  assert(delay >= Duration::zero());
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return kInvalidTimer;
  TimerId id = next_id_++;
  heap_.push(Event{now() + delay, next_seq_++, id, std::move(fn)});
  cv_.notify_one();
  return id;
}

bool RealRuntime::cancel(TimerId id) {
  if (id == kInvalidTimer) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= next_id_) return false;
  return cancelled_.insert(id).second;
}

void RealRuntime::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return stopping_ || (heap_.size() == cancelled_.size() && !executing_);
  });
}

void RealRuntime::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already shut down (dtor after explicit shutdown()).
      if (!loop_thread_.joinable()) return;
    }
    stopping_ = true;
    cv_.notify_all();
    idle_cv_.notify_all();
  }
  if (loop_thread_.joinable()) loop_thread_.join();
}

void RealRuntime::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    // Discard cancelled events at the head.
    while (!heap_.empty()) {
      auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) break;
      cancelled_.erase(it);
      heap_.pop();
    }
    if (heap_.empty()) {
      idle_cv_.notify_all();
      cv_.wait(lock, [this] { return stopping_ || !heap_.empty(); });
      continue;
    }
    TimePoint deadline = heap_.top().deadline;
    TimePoint current = now();
    if (deadline > current) {
      cv_.wait_for(lock, deadline - current);
      continue;  // re-check: new earlier event or cancellation may have come
    }
    // priority_queue::top is const; moving from it is safe right before pop.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    executing_ = true;
    lock.unlock();
    ev.fn();
    executed_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    executing_ = false;
    if (heap_.size() == cancelled_.size()) idle_cv_.notify_all();
  }
}

}  // namespace ilu
