#include "runtime/real_runtime.hpp"
// ilu-lint: atomics-floor(relaxed) - stopping_ is a level flag re-checked under cv_mu_; executed_ is a stats counter
// ilu-lint: atomics-floor(seq_cst: sleeping_) - consumer half of the Dekker sleep handshake: the true-store must totally order against the producer's staged_pushes_ bump

#include <cassert>
#include <utility>

namespace ilu {

RealRuntime::RealRuntime()
    : epoch_(std::chrono::steady_clock::now()),
      loop_thread_([this] { loop(); }) {}

RealRuntime::~RealRuntime() { shutdown(); }

TimePoint RealRuntime::now() const {
  return std::chrono::duration_cast<Duration>(std::chrono::steady_clock::now() -
                                              epoch_);
}

Runtime::TimerId RealRuntime::schedule(Duration delay, Task fn) {
  assert(delay >= Duration::zero());
  if (stopping_.load(std::memory_order_acquire)) return kInvalidTimer;
  const std::uint64_t deadline_us =
      now_us() + static_cast<std::uint64_t>(
                     delay.count() > 0 ? delay.count() : 0);
  // Loop-thread schedules (callback chains, the worker's own timers) link
  // straight into the wheel: no staging hop, no mutex, no wake.
  if (on_loop_thread()) return wheel_.arm(deadline_us, std::move(fn));
  const TimerId id = wheel_.stage(deadline_us, std::move(fn));
  // Dekker handshake with loop(): stage() bumped the staged-push counter
  // seq_cst; if we still see sleeping_ == false here, the loop's pre-wait
  // check is guaranteed to see our push and skip the sleep. The empty
  // lock_guard closes the window between the sleeper's predicate check
  // and its actual block.
  if (sleeping_.load(std::memory_order_seq_cst)) {
    { std::lock_guard<std::mutex> lk(wake_mu_); }
    wake_cv_.notify_one();
  }
  return id;
}

bool RealRuntime::cancel(TimerId id) {
  const bool cancelled = wheel_.cancel(id, on_loop_thread());
  if (cancelled && wheel_.live() == 0) {
    std::lock_guard<std::mutex> lk(idle_mu_);
    idle_cv_.notify_all();
  }
  return cancelled;
}

void RealRuntime::drain() {
  std::unique_lock<std::mutex> lk(idle_mu_);
  idle_cv_.wait(lk, [this] {
    return stopping_.load(std::memory_order_acquire) || wheel_.live() == 0;
  });
}

void RealRuntime::shutdown() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
  }
  idle_cv_.notify_all();
  std::lock_guard<std::mutex> jl(join_mu_);
  if (loop_thread_.joinable()) loop_thread_.join();
}

void RealRuntime::loop() {
  wheel_.bind_consumer();
  for (;;) {
    wheel_.drain_staged();
    for (;;) {
      const std::size_t fired = wheel_.advance(now_us());
      if (fired != 0) {
        executed_.fetch_add(fired, std::memory_order_relaxed);
        wheel_.drain_staged();
        continue;
      }
      // Nothing due; pick up any last-instant submissions before deciding
      // whether to sleep.
      if (wheel_.drain_staged() == 0) break;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    if (wheel_.live() == 0) {
      std::lock_guard<std::mutex> lk(idle_mu_);
      idle_cv_.notify_all();
    }
    std::uint64_t hint_us = 0;
    const bool has_hint = wheel_.next_deadline_hint(&hint_us);
    std::unique_lock<std::mutex> lk(wake_mu_);
    sleeping_.store(true, std::memory_order_seq_cst);
    if (wheel_.has_staged() || stopping_.load(std::memory_order_relaxed)) {
      // ilu-lint: allow(atomics-discipline) - clearing, not arming: only the true-store races the producer's staged-check; a stale false here at worst costs one notify_one
      sleeping_.store(false, std::memory_order_relaxed);
      continue;
    }
    const auto pred = [this] {
      return stopping_.load(std::memory_order_relaxed) || wheel_.has_staged();
    };
    if (has_hint)
      wake_cv_.wait_until(lk, epoch_ + std::chrono::microseconds(hint_us),
                          pred);
    else
      wake_cv_.wait(lk, pred);
    // ilu-lint: allow(atomics-discipline) - clearing after wake, still under wake_mu_; the Dekker ordering matters only for the true-store above
    sleeping_.store(false, std::memory_order_relaxed);
  }
}

}  // namespace ilu
