#pragma once

#include <cstdint>

/// Shard-synchronization strategy selection for ShardedRuntime (DESIGN.md
/// §9/§16).
///
/// The conservative engine (Chandy–Misra bounded lag) never executes an
/// event that could be invalidated, at the price of one barrier round per
/// `lookahead` of virtual time: when the lookahead (the cross-shard RPC
/// latency floor) is small relative to event density, the barriers dominate.
/// The optimistic engine (Time Warp) checkpoints each shard, speculates
/// several lookaheads past the safe bound, and rolls back when a straggler
/// message lands in a shard's executed past — fewer barriers when
/// speculation commits, wasted work when it does not. kAuto starts
/// conservative, measures event density over a probe period, switches to
/// optimistic in the sparse regime the conservative engine handles worst,
/// and reverts permanently if the observed rollback rate says speculation is
/// not paying for itself.
///
/// Strategy choice is a pure performance knob: both engines (and any auto
/// schedule between them) deliver cross-shard messages with identical
/// (deliver time, tag) keys, so simulation results are byte-identical across
/// strategies and shard counts — the property bench/cluster_scaling asserts.
namespace ilu {

enum class SyncStrategy : std::uint8_t {
  kConservative = 0,
  kOptimistic = 1,
  kAuto = 2,
};

/// Name for logs/CSV ("conservative" | "optimistic" | "auto").
inline const char* to_string(SyncStrategy s) {
  switch (s) {
    case SyncStrategy::kConservative: return "conservative";
    case SyncStrategy::kOptimistic: return "optimistic";
    case SyncStrategy::kAuto: return "auto";
  }
  return "?";
}

struct SyncConfig {
  SyncStrategy strategy = SyncStrategy::kConservative;

  /// Optimistic speculation depth: each speculative window runs to
  /// min-horizon + speculation × lookahead (clamped to the run limit)
  /// instead of + 1 × lookahead. Values <= 1 make the optimistic engine
  /// behave conservatively (it never checkpoints when there is nothing to
  /// speculate past).
  double speculation = 4.0;

  /// kAuto: number of conservative probe rounds before the controller
  /// considers switching.
  std::uint64_t auto_probe_windows = 32;
  /// kAuto: switch to optimistic when the probe-phase mean events per round
  /// per shard falls below this (sparse windows = barrier-bound).
  double auto_density_threshold = 64.0;
  /// kAuto: revert permanently to conservative when the optimistic-phase
  /// rollback rate (rollbacks per round) exceeds this.
  double auto_max_rollback_rate = 0.25;
};

}  // namespace ilu
