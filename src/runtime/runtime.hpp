#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "runtime/task.hpp"
#include "util/time.hpp"

/// Execution runtime abstraction (the paper's tokio stand-in).
///
/// All control-plane logic is written in continuation-passing style against
/// this interface, which provides the paper's headline in-situ simulation
/// property: the *same* worker code runs under the deterministic virtual-time
/// SimRuntime (for trace-scale experiments) and the wall-clock RealRuntime
/// (for microbenchmarks) — only the clock and the timer implementation
/// differ.
///
/// Contract: callbacks are executed one at a time (event-loop semantics), in
/// non-decreasing time order, with FIFO order among equal deadlines. Code
/// running inside a callback therefore never needs locks to protect state
/// shared only among callbacks.
namespace ilu {

/// Checkpoint hook for components that keep rollback-relevant state outside
/// the event heap (DESIGN.md §16). A component registers one Snapshotter per
/// runtime it lives on; a checkpointable runtime (SimRuntime) calls `save`
/// at every checkpoint and `restore` — with the matching blob, in
/// registration order — on rollback. The blob is opaque to the runtime;
/// components typically stash a by-value copy of their mutable state.
/// Runtimes without checkpoint support ignore registrations entirely, so
/// registering is always safe. The registering component must outlive every
/// checkpoint taken from the runtime (all are discarded when a sharded run
/// returns, so object-graph teardown order is unaffected).
struct Snapshotter {
  // ilu-lint: allow(std-function-hotpath) - invoked once per checkpoint window, never on the per-event path
  std::function<std::shared_ptr<void>()> save;
  // ilu-lint: allow(std-function-hotpath) - invoked only on rollback, never on the per-event path
  std::function<void(const std::shared_ptr<void>&)> restore;
};

class Runtime {
 public:
  /// Move-only small-buffer-optimized callable (see runtime/task.hpp):
  /// captures up to 48 B schedule without any heap allocation.
  using Task = ilu::Task;
  /// Identifies a scheduled timer; usable with cancel().
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  virtual ~Runtime() = default;

  /// Register a component state checkpoint hook. Default: discard — only
  /// runtimes that can actually checkpoint (supports_snapshot()) keep the
  /// hooks, so components register unconditionally and pay nothing under
  /// RealRuntime.
  virtual void add_snapshotter(Snapshotter) {}
  /// True when this runtime records snapshotters and can checkpoint/restore
  /// (SimRuntime; used by the optimistic sharded engine).
  virtual bool supports_snapshot() const { return false; }

  /// Current time since the runtime epoch.
  virtual TimePoint now() const = 0;

  /// Run `fn` after `delay` (>= 0). Returns a cancellable id.
  virtual TimerId schedule(Duration delay, Task fn) = 0;

  /// Cancel a pending timer. Returns true if it had not fired yet.
  virtual bool cancel(TimerId id) = 0;

  /// Run `fn` as soon as possible (after currently queued tasks).
  TimerId post(Task fn) { return schedule(Duration::zero(), std::move(fn)); }
};

}  // namespace ilu
