#pragma once

#include <cstdint>

#include "runtime/task.hpp"
#include "util/time.hpp"

/// Execution runtime abstraction (the paper's tokio stand-in).
///
/// All control-plane logic is written in continuation-passing style against
/// this interface, which provides the paper's headline in-situ simulation
/// property: the *same* worker code runs under the deterministic virtual-time
/// SimRuntime (for trace-scale experiments) and the wall-clock RealRuntime
/// (for microbenchmarks) — only the clock and the timer implementation
/// differ.
///
/// Contract: callbacks are executed one at a time (event-loop semantics), in
/// non-decreasing time order, with FIFO order among equal deadlines. Code
/// running inside a callback therefore never needs locks to protect state
/// shared only among callbacks.
namespace ilu {

class Runtime {
 public:
  /// Move-only small-buffer-optimized callable (see runtime/task.hpp):
  /// captures up to 48 B schedule without any heap allocation.
  using Task = ilu::Task;
  /// Identifies a scheduled timer; usable with cancel().
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  virtual ~Runtime() = default;

  /// Current time since the runtime epoch.
  virtual TimePoint now() const = 0;

  /// Run `fn` after `delay` (>= 0). Returns a cancellable id.
  virtual TimerId schedule(Duration delay, Task fn) = 0;

  /// Cancel a pending timer. Returns true if it had not fired yet.
  virtual bool cancel(TimerId id) = 0;

  /// Run `fn` as soon as possible (after currently queued tasks).
  TimerId post(Task fn) { return schedule(Duration::zero(), std::move(fn)); }
};

}  // namespace ilu
