#pragma once
// ilu-lint: atomics-floor(relaxed) - executed_ is a monotone stats counter read after join

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "runtime/runtime.hpp"
#include "runtime/timer_wheel.hpp"

/// Wall-clock runtime: a single event-loop thread drives a hierarchical
/// timer wheel (`runtime/timer_wheel.hpp`, DESIGN.md §14) and executes
/// callbacks serially (preserving the Runtime contract), while any thread
/// may schedule work. This mirrors a single-threaded tokio executor: the
/// control plane itself is cheap (the paper reports <20% of one core
/// under full 48-core load), so one loop thread suffices and keeps the
/// callback code lock-free.
///
/// Hot-path shape (vs the former global mutex + priority_queue +
/// tombstone set):
///  - schedule() from the loop thread links straight into the wheel, no
///    lock at all; from any other thread it stages through one of eight
///    per-producer submission shards, so N load threads never convoy on a
///    single mutex.
///  - cancel() is an O(1) generation-checked CAS: cancel-after-fire
///    returns false (the old tombstone design returned true and leaked
///    the tombstone forever), and cancelled timers are reclaimed lazily,
///    keeping memory bounded by the in-flight window.
///  - the loop thread sleeps on a condvar only when truly idle; producers
///    wake it through a Dekker-style seq_cst handshake that costs them a
///    single atomic load when the loop is busy (the common case at load).
namespace ilu {

class RealRuntime final : public Runtime {
 public:
  RealRuntime();
  ~RealRuntime() override;

  RealRuntime(const RealRuntime&) = delete;
  RealRuntime& operator=(const RealRuntime&) = delete;

  /// Monotonic time since construction.
  TimePoint now() const override;

  TimerId schedule(Duration delay, Task fn) override;
  bool cancel(TimerId id) override;

  /// Block until no pending timers remain (used by tests/benches to join).
  void drain();

  /// Stop the loop thread; pending timers are dropped. Called by the dtor.
  void shutdown();

  /// Callbacks executed so far. Readable from any thread — the telemetry
  /// sampler's events/s source.
  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Timers scheduled and not yet fired or cancelled. Any thread.
  std::uint64_t pending() const { return wheel_.live(); }

  /// The steady_clock instant that maps to now() == 0. Lets open-loop
  /// load generators convert trace offsets into absolute sleep_until
  /// targets on the same clock this runtime schedules against.
  std::chrono::steady_clock::time_point epoch_steady() const { return epoch_; }

 private:
  void loop();
  bool on_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_.get_id();
  }
  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(now().count());
  }

  const std::chrono::steady_clock::time_point epoch_;
  TimerWheel wheel_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  /// True while the loop thread is committed to (or inside) a condvar
  /// wait. seq_cst store/load pairs with TimerWheel::stage's seq_cst
  /// staged-push counter: either the sleeper's pre-wait check sees the
  /// push, or the producer sees sleeping_ == true and rings the condvar.
  std::atomic<bool> sleeping_{false};

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> executed_{0};
  std::mutex join_mu_;  // serializes concurrent shutdown() joins
  std::thread loop_thread_;
};

}  // namespace ilu
