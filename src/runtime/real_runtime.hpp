#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "runtime/runtime.hpp"

/// Wall-clock runtime: a single event-loop thread drains a timer heap and
/// executes callbacks serially (preserving the Runtime contract), while any
/// thread may schedule work. This mirrors a single-threaded tokio executor:
/// the control plane itself is cheap (the paper reports <20% of one core
/// under full 48-core load), so one loop thread suffices and keeps the
/// callback code lock-free.
namespace ilu {

class RealRuntime final : public Runtime {
 public:
  RealRuntime();
  ~RealRuntime() override;

  RealRuntime(const RealRuntime&) = delete;
  RealRuntime& operator=(const RealRuntime&) = delete;

  /// Monotonic time since construction.
  TimePoint now() const override;

  TimerId schedule(Duration delay, Task fn) override;
  bool cancel(TimerId id) override;

  /// Block until no pending timers remain (used by tests/benches to join).
  void drain();

  /// Stop the loop thread; pending timers are dropped. Called by the dtor.
  void shutdown();

  /// Callbacks executed so far. Readable from any thread without touching
  /// the loop mutex — the telemetry sampler's events/s source.
  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Event {
    TimePoint deadline;
    std::uint64_t seq;
    TimerId id;
    Task fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  void loop();

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<TimerId> cancelled_;
  std::uint64_t next_seq_ = 0;
  TimerId next_id_ = 1;
  bool stopping_ = false;
  bool executing_ = false;
  std::atomic<std::uint64_t> executed_{0};
  std::thread loop_thread_;
};

}  // namespace ilu
