#pragma once

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "runtime/runtime.hpp"

/// Deterministic discrete-event runtime.
///
/// Events are ordered by (deadline, sequence number), so runs are bit-exact
/// reproducible for a given seed/workload. Cancellation is lazy: cancelled
/// ids are skipped when popped, keeping schedule() and cancel() O(log n)
/// and O(1) respectively.
namespace ilu {

class SimRuntime final : public Runtime {
 public:
  SimRuntime() = default;

  TimePoint now() const override { return now_; }
  TimerId schedule(Duration delay, Task fn) override;
  bool cancel(TimerId id) override;

  /// Execute the next event, advancing virtual time to its deadline.
  /// Returns false when no events remain.
  bool step();

  /// Run until the event queue is empty.
  void run();

  /// Run events with deadline <= t, then advance time to exactly t.
  void run_until(TimePoint t);

  /// Run for a further `d` of virtual time.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return heap_.size() - cancelled_.size(); }

  /// Total events executed so far (for engine micro-benchmarks).
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    TimePoint deadline;
    std::uint64_t seq;
    TimerId id;
    Task fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  /// Pop the next live event; false if none.
  bool pop_next(Event& out);

  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  TimerId next_id_ = 1;  // 0 is kInvalidTimer
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<TimerId> cancelled_;
};

}  // namespace ilu
