#pragma once

#include <cstdint>

#include "runtime/indexed_heap.hpp"
#include "runtime/runtime.hpp"

/// Deterministic discrete-event runtime.
///
/// Events are ordered by (deadline, sequence number), so runs are bit-exact
/// reproducible for a given seed/workload. The queue is an indexed d-ary
/// heap over slab-allocated event nodes (see indexed_heap.hpp):
///
///  * schedule() is O(log n) and allocation-free in steady state — the
///    closure lives inline in the recycled slot (ilu::Task SBO) and the
///    sift moves only (deadline, seq, slot) keys;
///  * cancel() is a true O(log n) removal keyed by a generation-checked
///    handle — no tombstone set, so a cancel after the timer fired is
///    detected exactly (returns false) and pending() is always the real
///    number of queued events.
namespace ilu {

class SimRuntime final : public Runtime {
 public:
  SimRuntime() = default;

  TimePoint now() const override { return now_; }
  TimerId schedule(Duration delay, Task fn) override;
  bool cancel(TimerId id) override;

  /// Execute the next event, advancing virtual time to its deadline.
  /// Returns false when no events remain.
  bool step();

  /// Run until the event queue is empty.
  void run();

  /// Run events with deadline <= t, then advance time to exactly t.
  void run_until(TimePoint t);

  /// Run for a further `d` of virtual time.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Number of pending (non-cancelled) events. Exact: cancellation removes
  /// the event immediately.
  std::size_t pending() const { return heap_.size(); }

  /// Total events executed so far (for engine micro-benchmarks).
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct EventKey {
    TimePoint deadline;
    std::uint64_t seq;
    bool operator<(const EventKey& o) const {
      if (deadline != o.deadline) return deadline < o.deadline;
      return seq < o.seq;
    }
  };
  using Heap = IndexedHeap<EventKey, Task>;

  /// TimerIds encode the heap handle: (generation << 32) | slot. Slot
  /// generations start at 1, so no valid id is ever kInvalidTimer (0).
  static TimerId encode(Heap::Handle h) {
    return (static_cast<TimerId>(h.gen) << 32) | h.slot;
  }
  static Heap::Handle decode(TimerId id) {
    return Heap::Handle{static_cast<std::uint32_t>(id & 0xffffffffu),
                        static_cast<std::uint32_t>(id >> 32)};
  }

  /// Deadline of the next event, or nullptr when idle — the single peek
  /// implementation shared by step() and run_until().
  const EventKey* peek() const { return heap_.peek_key(); }

  /// Pop and execute the next event unconditionally (heap must be
  /// non-empty), advancing virtual time to its deadline.
  void fire_next();

  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  Heap heap_;
};

}  // namespace ilu
