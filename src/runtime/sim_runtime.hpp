#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "runtime/indexed_heap.hpp"
#include "runtime/runtime.hpp"
#include "util/dcheck.hpp"

/// Deterministic discrete-event runtime.
///
/// Events are ordered by (deadline, sequence number), so runs are bit-exact
/// reproducible for a given seed/workload. The queue is an indexed d-ary
/// heap over slab-allocated event nodes (see indexed_heap.hpp):
///
///  * schedule() is O(log n) and allocation-free in steady state — the
///    closure lives inline in the recycled slot (ilu::Task SBO) and the
///    sift moves only (deadline, seq, slot) keys;
///  * cancel() is a true O(log n) removal keyed by a generation-checked
///    handle — no tombstone set, so a cancel after the timer fired is
///    detected exactly (returns false) and pending() is always the real
///    number of queued events.
///
/// Events scheduled with schedule() tie-break at equal deadlines by
/// scheduling order. schedule_tagged() places an event in a *lower* sequence
/// band keyed by a caller-supplied tag: at equal deadlines, tagged events
/// run before plain ones, ordered among themselves by tag. ShardedRuntime
/// uses this for cross-shard message delivery, whose ordering must be a pure
/// function of (deliver time, sender, sender sequence) — independent of the
/// scheduling interleaving, which differs between shard counts.
///
/// Thread confinement: a SimRuntime is owned by exactly one thread at a
/// time — the one that constructed it, until bind_owner() hands it off
/// (ShardedRuntime rebinds shards to their window threads and back to the
/// driver around every run). In debug builds (DESIGN.md §10) every
/// schedule/cancel/now/run access asserts it runs on the owner thread, so a
/// cross-shard data race aborts deterministically instead of relying on
/// TSan to observe the interleaving; Release builds compile the auditor out
/// entirely.
namespace ilu {

class SimRuntime final : public Runtime {
 private:
  // Declared ahead of the public section so Checkpoint can embed the heap
  // type; everything else stays in the private block below.
  struct EventKey {
    TimePoint deadline;
    std::uint64_t seq;
    bool operator<(const EventKey& o) const {
      if (deadline != o.deadline) return deadline < o.deadline;
      return seq < o.seq;
    }
  };
  using Heap = IndexedHeap<EventKey, Task>;

 public:
  SimRuntime() = default;

  /// A full rollback point: clock, sequence counters, a deep copy of the
  /// pending-event heap (closures cloned via Task::clone — every capture
  /// scheduled on a checkpointable shard must be copy-constructible), and
  /// one opaque blob per registered Snapshotter. Move-only; the heap copy
  /// preserves slot generations, so TimerIds issued before the checkpoint
  /// remain valid after restore(). Produced/consumed only by the optimistic
  /// sharded engine (DESIGN.md §16).
  struct Checkpoint {
    TimePoint now{};
    std::uint64_t next_seq = 0;
    std::uint64_t processed = 0;
    Heap heap;
    std::vector<std::shared_ptr<void>> blobs;
  };

  TimePoint now() const override {
    ILU_ASSERT_OWNER(owner_, "SimRuntime::now");
    return now_;
  }
  TimerId schedule(Duration delay, Task fn) override;
  bool cancel(TimerId id) override;

  /// Schedule at an absolute deadline `at` (>= now) with an explicit
  /// tie-break tag (< kTagBand, unique per (at, tag) by the caller's
  /// construction). At equal deadlines, tagged events run before plain
  /// schedule()d ones and in ascending tag order.
  TimerId schedule_tagged(TimePoint at, std::uint64_t tag, Task fn);

  /// Execute the next event, advancing virtual time to its deadline.
  /// Returns false when no events remain.
  bool step();

  /// Run until the event queue is empty.
  void run();

  /// Run events with deadline <= t, then advance time to exactly t.
  void run_until(TimePoint t);

  /// Run events with deadline strictly < t. Unlike run_until, does NOT
  /// advance the clock to t: time stops at the last fired deadline, so
  /// events delivered later at >= t still satisfy schedule_tagged's
  /// `at >= now` precondition. This is the conservative-window primitive
  /// used by ShardedRuntime.
  void run_before(TimePoint t);

  /// Run for a further `d` of virtual time.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Deadline of the earliest pending event, if any.
  std::optional<TimePoint> next_deadline() const {
    const EventKey* k = peek();
    return k ? std::optional<TimePoint>(k->deadline) : std::nullopt;
  }

  /// Number of pending (non-cancelled) events. Exact: cancellation removes
  /// the event immediately.
  std::size_t pending() const { return heap_.size(); }

  /// Total events executed so far (for engine micro-benchmarks).
  std::uint64_t events_processed() const { return processed_; }

  /// Tags passed to schedule_tagged must be below this band; plain
  /// schedule() events carry kTagBand | n and therefore always lose ties
  /// against tagged deliveries at the same deadline.
  static constexpr std::uint64_t kTagBand = 1ull << 63;

  /// Hand ownership of this runtime to the calling thread (debug-build
  /// ownership auditing; no-op in Release). Callers must externally
  /// synchronize the handoff — ShardedRuntime does so with its window
  /// barriers and thread joins.
  void bind_owner() noexcept { owner_.bind(); }
  /// The ownership auditor, for callers (ShardedRuntime::send) that assert
  /// confinement on behalf of this runtime.
  const OwnerRecord& owner() const noexcept { return owner_; }

  /// Snapshotters registered here are saved into every Checkpoint and
  /// replayed (in registration order) by restore().
  void add_snapshotter(Snapshotter s) override {
    snapshotters_.push_back(std::move(s));
  }
  bool supports_snapshot() const override { return true; }

  /// Capture a rollback point: clock, counters, a deep heap copy, and every
  /// registered component blob. O(pending events + component state); called
  /// once per speculative window by the optimistic sharded engine.
  Checkpoint checkpoint() const;

  /// Rewind to a previously captured Checkpoint, consuming it. Every event
  /// scheduled and every component mutation made since the checkpoint is
  /// discarded; TimerIds issued before it remain valid.
  void restore(Checkpoint&& cp);

 private:
  /// TimerIds encode the heap handle: (generation << 32) | slot. Slot
  /// generations start at 1, so no valid id is ever kInvalidTimer (0).
  static TimerId encode(Heap::Handle h) {
    return (static_cast<TimerId>(h.gen) << 32) | h.slot;
  }
  static Heap::Handle decode(TimerId id) {
    return Heap::Handle{static_cast<std::uint32_t>(id & 0xffffffffu),
                        static_cast<std::uint32_t>(id >> 32)};
  }

  /// Deadline of the next event, or nullptr when idle — the single peek
  /// implementation shared by step() and run_until().
  const EventKey* peek() const { return heap_.peek_key(); }

  /// Pop and execute the next event unconditionally (heap must be
  /// non-empty), advancing virtual time to its deadline.
  void fire_next();

  TimePoint now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  Heap heap_;
  /// Component checkpoint hooks, in registration order (== blob order in
  /// every Checkpoint taken from this runtime).
  std::vector<Snapshotter> snapshotters_;
  /// Debug-build shard-ownership auditor (empty in Release).
  [[no_unique_address]] OwnerRecord owner_;
};

}  // namespace ilu
