#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

/// Indexed d-ary min-heap: the shared ordering primitive behind SimRuntime's
/// event queue and the worker's InvocationQueue.
///
/// Structural choices that drive the hot-path cost down versus the previous
/// `std::priority_queue` + tombstone-set / `std::map` implementations:
///
///  * **Indexed**: every entry's heap position is tracked in a dense
///    4-byte-per-slot position array, so `erase` (timer cancellation) is a
///    true O(log n) removal — no tombstone set, no reconciliation pass in
///    pop, and `size()` is always exact. The position array is separate
///    from the payload slab so the sift loops touch only small contiguous
///    arrays (keys + positions), never the payloads.
///  * **Slab + free list**: values (event closures, queue items) live in a
///    recycled slot array; pushing after steady state never allocates.
///  * **d-ary (d=4)**: a 4-ary layout halves the tree depth of a binary
///    heap and keeps child scans inside one or two cache lines of the
///    key array.
///
/// Handles are (slot, generation) pairs: freeing a slot bumps its
/// generation, so a stale handle (popped or already-erased entry) can never
/// alias a recycled slot — `erase` on it just returns false.
///
/// **Staleness bound**: generations are 32-bit, so a handle is only
/// guaranteed stale-safe for the first 2^32 - 1 frees of *its* slot. At the
/// measured ~66M schedule/cancel ops/s a single maximally-hot slot could
/// wrap in about a minute of wall time, after which a handle retained from
/// before the wrap would falsely validate. Callers must therefore treat
/// handles as short-lived (check/erase them within a bounded number of
/// events of issue, as SimRuntime's timers and InvocationQueue's entries
/// do), not as durable references to park indefinitely.
namespace ilu {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class IndexedHeap {
 public:
  static constexpr std::uint32_t kArity = 4;

  struct Handle {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  explicit IndexedHeap(Compare cmp = Compare{}) : cmp_(std::move(cmp)) {}

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  void reserve(std::size_t n) {
    heap_.reserve(n);
    slots_.reserve(n);
    pos_.reserve(n);
  }

  Handle push(Key key, Value value) {
    std::uint32_t slot = alloc_slot(std::move(value));
    std::uint32_t pos = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(HeapItem{std::move(key), slot});
    pos_[slot] = pos;
    sift_up(pos);
    return Handle{slot, slots_[slot].gen};
  }

  /// Key of the minimum entry; nullptr when empty.
  const Key* peek_key() const { return heap_.empty() ? nullptr : &heap_[0].key; }

  /// Value of the minimum entry without removing it; nullptr when empty.
  const Value* peek_min() const {
    return heap_.empty() ? nullptr : &slots_[heap_[0].slot].value;
  }

  /// Remove and return the minimum entry's value (heap must be non-empty);
  /// the key is moved into *key_out when provided.
  Value pop_min(Key* key_out = nullptr) {
    assert(!heap_.empty());
    std::uint32_t slot = heap_[0].slot;
    if (key_out != nullptr) *key_out = std::move(heap_[0].key);
    Value v = std::move(slots_[slot].value);
    free_slot(slot);
    remove_at(0);
    return v;
  }

  /// True while the entry for `h` is still queued.
  bool contains(Handle h) const {
    return h.slot < slots_.size() && slots_[h.slot].gen == h.gen;
  }

  /// Remove the entry for `h`; false if it was already popped or erased.
  bool erase(Handle h) {
    if (!contains(h)) return false;
    std::uint32_t pos = pos_[h.slot];
    slots_[h.slot].value = Value{};  // release payload resources
    free_slot(h.slot);
    remove_at(pos);
    return true;
  }

  /// Deep copy with a caller-supplied value cloner (`Value(const Value&)`
  /// substitute for move-only payloads such as ilu::Task). The structural
  /// state — key array, positions, slot generations, and the free list — is
  /// reproduced exactly, so Handles issued by the original remain valid
  /// against the clone. SimRuntime's checkpoint/restore relies on that:
  /// TimerIds held by live components keep cancelling the right events after
  /// a rollback swaps the heap out for a checkpointed copy. Only slots
  /// currently queued have their value cloned; free slots get a
  /// default-constructed payload (their old payloads were already released).
  template <typename Cloner>
  IndexedHeap clone_with(Cloner&& cloner) const {
    IndexedHeap out(cmp_);
    out.heap_ = heap_;
    out.pos_ = pos_;
    out.free_head_ = free_head_;
    out.slots_.resize(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      out.slots_[i].gen = slots_[i].gen;
      out.slots_[i].next_free = slots_[i].next_free;
    }
    for (const HeapItem& item : heap_) {
      out.slots_[item.slot].value = cloner(slots_[item.slot].value);
    }
    return out;
  }

 private:
  struct HeapItem {
    Key key;
    std::uint32_t slot;
  };
  struct Slot {
    Value value{};
    /// Bumped on every free; handles carry the generation they were issued
    /// under, so stale handles never match. Starts at 1 so callers can use
    /// generation 0 / encoded id 0 as an "invalid" sentinel.
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoFree;
  };
  static constexpr std::uint32_t kNoFree = 0xffffffffu;

  std::uint32_t alloc_slot(Value v) {
    std::uint32_t slot;
    if (free_head_ != kNoFree) {
      slot = free_head_;
      free_head_ = slots_[slot].next_free;
      slots_[slot].value = std::move(v);
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
      slots_[slot].value = std::move(v);
      pos_.push_back(0);
    }
    return slot;
  }

  /// Caller is responsible for the payload (moved out in pop_min, reset in
  /// erase) before the slot goes on the free list.
  void free_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = slot;
  }

  /// Remove heap_[pos], restoring the heap invariant.
  void remove_at(std::uint32_t pos) {
    std::uint32_t last = static_cast<std::uint32_t>(heap_.size()) - 1;
    if (pos == last) {
      heap_.pop_back();
      return;
    }
    heap_[pos] = std::move(heap_[last]);
    pos_[heap_[pos].slot] = pos;
    heap_.pop_back();
    // The relocated entry may violate the invariant in either direction.
    if (pos > 0 && cmp_(heap_[pos].key, heap_[(pos - 1) / kArity].key)) {
      sift_up(pos);
    } else {
      sift_down(pos);
    }
  }

  void sift_up(std::uint32_t pos) {
    HeapItem item = std::move(heap_[pos]);
    while (pos > 0) {
      std::uint32_t parent = (pos - 1) / kArity;
      if (!cmp_(item.key, heap_[parent].key)) break;
      heap_[pos] = std::move(heap_[parent]);
      pos_[heap_[pos].slot] = pos;
      pos = parent;
    }
    heap_[pos] = std::move(item);
    pos_[heap_[pos].slot] = pos;
  }

  void sift_down(std::uint32_t pos) {
    std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
    HeapItem item = std::move(heap_[pos]);
    for (;;) {
      std::uint32_t first = pos * kArity + 1;
      if (first >= n) break;
      std::uint32_t best = first;
      std::uint32_t end = first + kArity < n ? first + kArity : n;
      for (std::uint32_t c = first + 1; c < end; ++c) {
        if (cmp_(heap_[c].key, heap_[best].key)) best = c;
      }
      if (!cmp_(heap_[best].key, item.key)) break;
      heap_[pos] = std::move(heap_[best]);
      pos_[heap_[pos].slot] = pos;
      pos = best;
    }
    heap_[pos] = std::move(item);
    pos_[heap_[pos].slot] = pos;
  }

  Compare cmp_;
  std::vector<HeapItem> heap_;
  /// Heap position of each live slot (dense, 4 B/slot: L1-resident during
  /// sifts even for large queues).
  std::vector<std::uint32_t> pos_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFree;
};

}  // namespace ilu
