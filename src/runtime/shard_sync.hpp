#pragma once
// ilu-lint: atomics-floor(acquire: gen_) - the barrier generation publishes every shard's pre-barrier writes; its bump is acq_rel, waiters spin on acquire

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>

#include "runtime/sim_runtime.hpp"

/// Internal synchronization primitives shared by ShardedRuntime's engine
/// core (sharded_runtime.cpp) and its two strategy TUs
/// (sync_conservative.cpp / sync_optimistic.cpp). Not part of the public
/// surface — include sharded_runtime.hpp instead.
namespace ilu::shard_sync {

/// Published horizon value for a shard with no pending events.
inline constexpr std::int64_t kIdle = std::numeric_limits<std::int64_t>::max();

/// Sense-reversing spin barrier. Windows are short (often a handful of
/// events per shard), so a futex-parked barrier would dominate the loop;
/// this one completes in a few hundred ns when all threads are running, and
/// degrades to yielding when the host is oversubscribed (1-core CI).
/// Synchronization: every arrival is an acq_rel RMW on count_, the last
/// arrival publishes through an acq_rel RMW on gen_, and waiters acquire
/// gen_ — so all writes made before the barrier are visible after it.
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned n) : n_(n) {}

  void arrive_and_wait() {
    std::uint64_t gen = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      count_.store(0, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      int spins = 0;
      while (gen_.load(std::memory_order_acquire) == gen) {
        if (++spins > 4096) std::this_thread::yield();
      }
    }
  }

 private:
  unsigned n_;
  std::atomic<unsigned> count_{0};
  std::atomic<std::uint64_t> gen_{0};
};

inline std::int64_t horizon_of(const SimRuntime& rt) {
  auto d = rt.next_deadline();
  return d ? d->count() : kIdle;
}

}  // namespace ilu::shard_sync
