#include "runtime/latency.hpp"

#include <cassert>
#include <cmath>

namespace ilu {

LatencyModel::LatencyModel(Kind kind, double a, double b)
    : kind_(kind), a_(a), b_(b) {}

LatencyModel LatencyModel::zero() { return LatencyModel(Kind::Zero, 0, 0); }

LatencyModel LatencyModel::constant(Duration d) {
  assert(d >= Duration::zero());
  return LatencyModel(Kind::Constant, static_cast<double>(d.count()), 0);
}

LatencyModel LatencyModel::uniform(Duration lo, Duration hi) {
  assert(Duration::zero() <= lo && lo <= hi);
  return LatencyModel(Kind::Uniform, static_cast<double>(lo.count()),
                      static_cast<double>(hi.count()));
}

LatencyModel LatencyModel::normal(Duration mean, Duration sd) {
  assert(mean >= Duration::zero() && sd >= Duration::zero());
  return LatencyModel(Kind::Normal, static_cast<double>(mean.count()),
                      static_cast<double>(sd.count()));
}

LatencyModel LatencyModel::lognormal(Duration median, double sigma) {
  assert(median > Duration::zero() && sigma >= 0.0);
  return LatencyModel(Kind::LogNormal, static_cast<double>(median.count()),
                      sigma);
}

LatencyModel LatencyModel::spiky(LatencyModel base, double p,
                                 LatencyModel spike) {
  assert(p >= 0.0 && p <= 1.0);
  LatencyModel m(Kind::Spiky, 0, 0);
  m.base_ = std::make_shared<const LatencyModel>(std::move(base));
  m.spike_ = std::make_shared<const LatencyModel>(std::move(spike));
  m.spike_p_ = p;
  return m;
}

LatencyModel LatencyModel::shifted(Duration floor, LatencyModel base) {
  assert(floor >= Duration::zero());
  LatencyModel m(Kind::Shifted, static_cast<double>(floor.count()), 0);
  m.base_ = std::make_shared<const LatencyModel>(std::move(base));
  return m;
}

Duration LatencyModel::sample(Rng& rng) const {
  switch (kind_) {
    case Kind::Zero:
      return Duration::zero();
    case Kind::Constant:
      return Duration{static_cast<std::int64_t>(a_)};
    case Kind::Uniform:
      return Duration{static_cast<std::int64_t>(rng.uniform(a_, b_))};
    case Kind::Normal: {
      double v = rng.normal(a_, b_);
      if (v < 0.0) v = 0.0;
      return Duration{static_cast<std::int64_t>(v)};
    }
    case Kind::LogNormal:
      return Duration{
          static_cast<std::int64_t>(rng.lognormal_median(a_, b_))};
    case Kind::Spiky: {
      Duration v = base_->sample(rng);
      if (rng.bernoulli(spike_p_)) v += spike_->sample(rng);
      return v;
    }
    case Kind::Shifted:
      return Duration{static_cast<std::int64_t>(a_)} + base_->sample(rng);
  }
  return Duration::zero();
}

Duration LatencyModel::mean() const {
  switch (kind_) {
    case Kind::Zero:
      return Duration::zero();
    case Kind::Constant:
      return Duration{static_cast<std::int64_t>(a_)};
    case Kind::Uniform:
      return Duration{static_cast<std::int64_t>((a_ + b_) / 2.0)};
    case Kind::Normal:
      // Clamping at 0 shifts the mean slightly; negligible for the sd/mean
      // ratios used here, so report the unclamped expectation.
      return Duration{static_cast<std::int64_t>(a_)};
    case Kind::LogNormal:
      // E[X] = median * exp(sigma^2 / 2).
      return Duration{
          static_cast<std::int64_t>(a_ * std::exp(b_ * b_ / 2.0))};
    case Kind::Spiky:
      return base_->mean() +
             Duration{static_cast<std::int64_t>(
                 spike_p_ * static_cast<double>(spike_->mean().count()))};
    case Kind::Shifted:
      return Duration{static_cast<std::int64_t>(a_)} + base_->mean();
  }
  return Duration::zero();
}

Duration LatencyModel::lower_bound() const {
  switch (kind_) {
    case Kind::Zero:
    case Kind::Normal:     // clamped at 0
    case Kind::LogNormal:  // support (0, inf), infimum 0
      return Duration::zero();
    case Kind::Constant:
      return Duration{static_cast<std::int64_t>(a_)};
    case Kind::Uniform:
      return Duration{static_cast<std::int64_t>(a_)};
    case Kind::Spiky:
      // The spike only ever adds latency.
      return base_->lower_bound();
    case Kind::Shifted:
      return Duration{static_cast<std::int64_t>(a_)} + base_->lower_bound();
  }
  return Duration::zero();
}

}  // namespace ilu
