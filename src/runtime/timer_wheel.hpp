#pragma once
// ilu-lint: atomics-floor(relaxed) - node words/freelist publish via explicit release/acquire pairs; seq/live counters and intra-bucket links are relaxed by design (bucket spinlocks order them)
// ilu-lint: atomics-floor(seq_cst: staged_pushes_) - producer half of the Dekker sleep handshake: must totally order against the consumer's sleeping_ flag

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/task.hpp"
#include "util/dcheck.hpp"

/// Hierarchical timer wheel with sharded MPSC submission (DESIGN.md §14).
///
/// This is the live-side replacement for the mutex + priority_queue +
/// tombstone-set event loop that `RealRuntime` shipped with: a four-level
/// hashed wheel (256 slots per level, 1.024 ms ticks — spans ~0.26 s /
/// ~67 s / ~4.8 h / ~51 d per level, farther deadlines clamp into the top
/// level and re-cascade) whose consumer-side operations are all O(1):
/// link, unlink, cancel, and per-tick expiry. Producers never touch the
/// wheel structure itself — `stage()` allocates a node from a lock-free
/// pool, publishes it Live, and pushes the node *index* onto one of
/// `kSubmitShards` mutex-striped staging vectors (shard picked per
/// producer thread), so N load threads contend on N/8 tiny mutexes
/// instead of one global lock. The single consumer thread swap-drains
/// each shard per batch and links the nodes.
///
/// Identity and cancellation follow the `indexed_heap.hpp` idiom: a
/// TimerId packs (generation << 32 | node index), and each node carries
/// one atomic word `(generation << 2) | state` with states
/// Free/Live/Firing/Cancelled. Packing generation and state into a single
/// word is what makes cross-thread cancel exact without a tombstone set:
/// cancel CASes (gen|Live) -> (gen|Cancelled) and fails — returning
/// false — if the timer already fired (the free bumped the generation) or
/// was already cancelled. Cancelled nodes are reaped lazily when the
/// consumer next touches their slot (drain, cascade, or expiry), so
/// memory stays bounded by the in-flight window instead of growing with
/// cancel history. The 2^32 generation wrap shares `indexed_heap.hpp`'s
/// documented staleness bound: an id held across exactly 2^32 reuses of
/// one slot could alias; generations ≡ 0 (mod 2^32) are skipped so a
/// valid id never equals kInvalidTimer.
///
/// Node storage never moves: nodes live in 1024-node chunks reached
/// through a fixed directory of atomic chunk pointers, so producers can
/// allocate (Treiber free-stack pop, tagged against ABA, with a bump
/// cursor fallback that grows under a mutex) while the consumer walks
/// lists, without any reallocation ever invalidating a Node*.
///
/// Threading contract: `arm`, `advance`, `drain_staged`, and
/// `next_deadline_hint` are consumer-thread-only (audited by
/// ILU_ASSERT_OWNER in debug builds); `stage`, `cancel`, `live`, and
/// `has_staged` are any-thread. The wheel does not read any clock — the
/// caller supplies `now_us`, which keeps the structure deterministic and
/// unit-testable with synthetic time.
namespace ilu {

class TimerWheel {
 public:
  using TimerId = std::uint64_t;

  static constexpr TimerId kInvalidId = 0;
  /// log2 of the tick width in microseconds: 1.024 ms per tick.
  static constexpr unsigned kTickShiftUs = 10;
  static constexpr unsigned kLevelBits = 8;
  static constexpr unsigned kLevels = 4;
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kLevelBits;
  static constexpr std::size_t kSubmitShards = 8;

  TimerWheel() { heads_.fill(kNil); }

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  ~TimerWheel() {
    // Node destructors release any still-pending Task payloads (staged,
    // linked, or cancelled-but-unreaped nodes at shutdown).
    const std::uint64_t cap = capacity_.load(std::memory_order_acquire);
    for (std::uint64_t c = 0; c * kChunkSize < cap; ++c)
      delete[] directory_[c].load(std::memory_order_acquire);
  }

  /// Hand consumer-side ownership to the calling thread (debug audit).
  void bind_consumer() { owner_.bind(); }

  /// Consumer-thread schedule: allocate, publish Live, link directly into
  /// the wheel. No staging hop, no shard mutex.
  TimerId arm(std::uint64_t deadline_us, Task fn) {
    ILU_ASSERT_OWNER(owner_, "TimerWheel::arm");
    const std::uint32_t idx = alloc_node();
    Node& n = node(idx);
    const std::uint64_t gen = n.word.load(std::memory_order_relaxed) >> kStateBits;
    n.deadline_us = deadline_us;
    n.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    n.task = std::move(fn);
    live_count_.fetch_add(1, std::memory_order_relaxed);
    n.word.store((gen << kStateBits) | kStateLive, std::memory_order_release);
    link(idx, deadline_us);
    return make_id(gen, idx);
  }

  /// Any-thread schedule: allocate + publish Live, then hand the node
  /// index to the consumer through this producer's staging shard. The
  /// returned id is valid for cancel() immediately.
  TimerId stage(std::uint64_t deadline_us, Task fn) {
    const std::uint32_t idx = alloc_node();
    Node& n = node(idx);
    const std::uint64_t gen = n.word.load(std::memory_order_relaxed) >> kStateBits;
    n.deadline_us = deadline_us;
    n.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    n.prev = kNil;
    n.home.store(kNotLinked, std::memory_order_relaxed);
    n.task = std::move(fn);
    live_count_.fetch_add(1, std::memory_order_relaxed);
    n.word.store((gen << kStateBits) | kStateLive, std::memory_order_release);
    SubmitShard& s = shards_[submit_shard_hint() & (kSubmitShards - 1)];
    {
      std::lock_guard<std::mutex> lk(s.mu);
      // ilu-lint: allow(blocking-under-lock) - staged is swap-drained every tick, so capacity is retained and push_back amortizes to a store; the shard mutex is striped 8 ways exactly to absorb this
      s.staged.push_back(idx);
    }
    // seq_cst pairs with the consumer's seq_cst sleeping-flag handshake
    // (Dekker): either the consumer's pre-sleep check sees this push, or
    // this producer sees the consumer's sleeping flag and wakes it.
    staged_pushes_.fetch_add(1, std::memory_order_seq_cst);
    return make_id(gen, idx);
  }

  /// Any-thread cancel. Returns true iff the timer was Live (scheduled
  /// and not yet fired or cancelled) — cancel after fire returns false,
  /// always, because the fire path bumps the node generation before the
  /// callback even runs. `on_consumer_thread` lets the owner thread
  /// unlink + reap eagerly; other threads only flip the state word and
  /// leave reclamation to the consumer's next pass over the slot.
  bool cancel(TimerId id, bool on_consumer_thread = false) {
    if (id == kInvalidId) return false;
    const std::uint32_t idx = static_cast<std::uint32_t>(id & 0xffffffffu);
    const std::uint64_t gen32 = id >> 32;
    if (idx >= capacity_.load(std::memory_order_acquire)) return false;
    Node& n = node(idx);
    std::uint64_t w = n.word.load(std::memory_order_acquire);
    for (;;) {
      if ((w & kStateMask) != kStateLive ||
          ((w >> kStateBits) & 0xffffffffu) != gen32)
        return false;
      if (n.word.compare_exchange_weak(w, (w & ~kStateMask) | kStateCancelled,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire))
        break;
    }
    live_count_.fetch_sub(1, std::memory_order_release);
    if (on_consumer_thread) {
      // Only reap when the node is linked into the wheel. home ==
      // kNotLinked means it is sitting in a staging shard or in the
      // current fire batch; those paths observe Cancelled and reap.
      const std::uint32_t home = n.home.load(std::memory_order_relaxed);
      if (home != kNotLinked) {
        ILU_ASSERT_OWNER(owner_, "TimerWheel::cancel(eager)");
        unlink(n, home);
        reap(n, idx);
      }
    }
    return true;
  }

  /// Consumer: move every staged node into the wheel (or reap ones that
  /// were cancelled while still in the shard). Returns nodes drained.
  std::size_t drain_staged() {
    ILU_ASSERT_OWNER(owner_, "TimerWheel::drain_staged");
    std::size_t total = 0;
    for (SubmitShard& s : shards_) {
      drain_scratch_.clear();
      {
        std::lock_guard<std::mutex> lk(s.mu);
        s.staged.swap(drain_scratch_);
      }
      for (std::uint32_t idx : drain_scratch_) {
        Node& n = node(idx);
        const std::uint64_t w = n.word.load(std::memory_order_acquire);
        if ((w & kStateMask) == kStateCancelled)
          reap(n, idx);
        else
          link(idx, n.deadline_us);
      }
      total += drain_scratch_.size();
    }
    if (total != 0) staged_drained_.fetch_add(total, std::memory_order_release);
    return total;
  }

  /// Consumer: advance wheel time to `now_us`, cascading overflow levels
  /// at every 256^k tick boundary, and fire every due timer in
  /// (deadline, seq) order. A timer never fires before its deadline: fully
  /// elapsed ticks are flushed whole, and the still-open current tick only
  /// contributes nodes with deadline_us <= now_us. Returns callbacks run.
  std::size_t advance(std::uint64_t now_us) {
    ILU_ASSERT_OWNER(owner_, "TimerWheel::advance");
    batch_.clear();
    const std::uint64_t now_tick = now_us >> kTickShiftUs;
    while (current_tick_ < now_tick) {
      // Fast-forward across empty level-0 stretches (an idle loop waking
      // after seconds would otherwise walk every elapsed tick): jump to
      // the next cascade boundary or now_tick, whichever is closer.
      const std::array<std::uint64_t, 4>& l0 = bitmap_[0];
      if ((l0[0] | l0[1] | l0[2] | l0[3]) == 0) {
        const std::uint64_t boundary = (current_tick_ | kSlotMask) + 1;
        current_tick_ = std::min(boundary, now_tick);
        cascade_at(current_tick_);
        continue;
      }
      collect_slot(static_cast<std::uint32_t>(current_tick_ & kSlotMask),
                   ~std::uint64_t{0});
      ++current_tick_;
      cascade_at(current_tick_);
    }
    collect_slot(static_cast<std::uint32_t>(current_tick_ & kSlotMask), now_us);
    if (batch_.empty()) return 0;
    std::sort(batch_.begin(), batch_.end(), [](const Due& a, const Due& b) {
      return a.deadline_us != b.deadline_us ? a.deadline_us < b.deadline_us
                                            : a.seq < b.seq;
    });
    std::size_t fired = 0;
    for (const Due& d : batch_) fired += fire_one(d) ? 1u : 0u;
    return fired;
  }

  /// Consumer: lower bound on the earliest pending deadline (exact for
  /// current-tick timers, cascade-boundary-rounded for far ones). False
  /// when the wheel holds nothing to wake for.
  bool next_deadline_hint(std::uint64_t* out_us) const {
    ILU_ASSERT_OWNER(owner_, "TimerWheel::next_deadline_hint");
    std::uint64_t best = ~std::uint64_t{0};
    const std::uint32_t cur0 = static_cast<std::uint32_t>(current_tick_ & kSlotMask);
    for (std::uint32_t idx = heads_[cur0]; idx != kNil;) {
      const Node& n = node(idx);
      if ((n.word.load(std::memory_order_acquire) & kStateMask) == kStateLive)
        best = std::min(best, n.deadline_us);
      idx = n.next.load(std::memory_order_relaxed);
    }
    for (unsigned level = 0; level < kLevels; ++level) {
      const std::uint64_t base = current_tick_ >> (kLevelBits * level);
      const int d = first_set_distance(level, static_cast<std::uint32_t>(base & kSlotMask));
      if (d > 0) {
        const std::uint64_t cand_tick = (base + static_cast<std::uint64_t>(d))
                                        << (kLevelBits * level);
        best = std::min(best, cand_tick << kTickShiftUs);
      }
    }
    if (best == ~std::uint64_t{0}) return false;
    *out_us = best;
    return true;
  }

  /// Timers scheduled and not yet fired or cancelled (staged + linked +
  /// currently firing). Any thread.
  std::uint64_t live() const {
    return live_count_.load(std::memory_order_acquire);
  }

  /// True while any producer push has not been drained yet. Any thread.
  /// The seq_cst load is half of the sleep/wake Dekker handshake.
  bool has_staged() const {
    return staged_pushes_.load(std::memory_order_seq_cst) !=
           staged_drained_.load(std::memory_order_acquire);
  }

  /// Node slots ever materialized (chunk granularity) — the memory
  /// footprint bound the regression tests pin down.
  std::uint64_t node_capacity() const {
    return capacity_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kNotLinked = 0xffffffffu;
  static constexpr std::uint32_t kSlotMask = kSlotsPerLevel - 1;
  static constexpr unsigned kStateBits = 2;
  static constexpr std::uint64_t kStateMask = 0x3;
  static constexpr std::uint64_t kStateFree = 0;
  static constexpr std::uint64_t kStateLive = 1;
  static constexpr std::uint64_t kStateFiring = 2;
  static constexpr std::uint64_t kStateCancelled = 3;
  static constexpr unsigned kChunkShift = 10;
  static constexpr std::size_t kChunkSize = 1u << kChunkShift;
  static constexpr std::size_t kMaxChunks = 4096;  // 4M concurrent timers

  struct Node {
    /// (generation << 2) | state. Generation starts at 1 and is bumped on
    /// every free (skipping multiples of 2^32), so a TimerId's 32-bit
    /// generation slice matches at most one lifecycle of this slot.
    std::atomic<std::uint64_t> word{(1ull << kStateBits) | kStateFree};
    std::uint64_t deadline_us = 0;
    std::uint64_t seq = 0;
    /// Intrusive slot list / free-stack link. Atomic (relaxed) because a
    /// losing free-stack pop may read it while the winner's consumer
    /// relinks the node.
    std::atomic<std::uint32_t> next{kNil};
    std::uint32_t prev = kNil;  // consumer-only
    /// Flat slot index (level * 256 + slot) while linked, kNotLinked while
    /// staged or batched. Written by producer (stage) and consumer (link),
    /// read by consumer-side eager cancel — atomic to keep that hint
    /// race-free.
    std::atomic<std::uint32_t> home{kNotLinked};
    Task task;
  };

  struct Due {
    std::uint64_t deadline_us;
    std::uint64_t seq;
    std::uint64_t gen;
    std::uint32_t idx;
  };

  struct alignas(64) SubmitShard {
    std::mutex mu;
    std::vector<std::uint32_t> staged;
  };

  static TimerId make_id(std::uint64_t gen, std::uint32_t idx) {
    return ((gen & 0xffffffffu) << 32) | idx;
  }

  /// Per-thread shard pick: round-robin at first use of each thread, so
  /// up to kSubmitShards producers never share a staging mutex.
  static std::uint32_t submit_shard_hint() {
    static std::atomic<std::uint32_t> counter{0};
    thread_local const std::uint32_t shard =
        counter.fetch_add(1, std::memory_order_relaxed);
    return shard;
  }

  Node& node(std::uint32_t idx) const {
    return directory_[idx >> kChunkShift].load(std::memory_order_acquire)
        [idx & (kChunkSize - 1)];
  }

  std::uint32_t alloc_node() {
    // Treiber pop, tagged against ABA on both push and pop.
    std::uint64_t head = free_head_.load(std::memory_order_acquire);
    while ((head & 0xffffffffu) != kNil) {
      const std::uint32_t idx = static_cast<std::uint32_t>(head & 0xffffffffu);
      const std::uint32_t nxt = node(idx).next.load(std::memory_order_relaxed);
      const std::uint64_t tag = (head >> 32) + 1;
      if (free_head_.compare_exchange_weak(head, (tag << 32) | nxt,
                                           std::memory_order_acquire,
                                           std::memory_order_acquire))
        return idx;
    }
    const std::uint64_t i = bump_.fetch_add(1, std::memory_order_relaxed);
    while (i >= capacity_.load(std::memory_order_acquire)) grow(i);
    return static_cast<std::uint32_t>(i);
  }

  void grow(std::uint64_t need_index) {
    std::lock_guard<std::mutex> lk(grow_mu_);
    std::uint64_t cap = capacity_.load(std::memory_order_relaxed);
    while (cap <= need_index) {
      const std::uint64_t chunk = cap >> kChunkShift;
      if (chunk >= kMaxChunks) {
        // ilu-lint: allow(blocking-under-lock) - terminal path: the process aborts right after, lock latency is irrelevant
        std::fprintf(stderr,
                     "TimerWheel: node pool exhausted (%zu chunks x %zu)\n",
                     kMaxChunks, kChunkSize);
        std::abort();
      }
      // ilu-lint: allow(blocking-under-lock) - grow_mu_ exists to serialize exactly this doubling; submitters never take it (they CAS the freelist) and hit it at most log2(peak/4096) times per run
      directory_[chunk].store(new Node[kChunkSize], std::memory_order_release);
      cap += kChunkSize;
      capacity_.store(cap, std::memory_order_release);
    }
  }

  void push_free(std::uint32_t idx) {
    Node& n = node(idx);
    std::uint64_t head = free_head_.load(std::memory_order_relaxed);
    for (;;) {
      n.next.store(static_cast<std::uint32_t>(head & 0xffffffffu),
                   std::memory_order_relaxed);
      const std::uint64_t tag = (head >> 32) + 1;
      if (free_head_.compare_exchange_weak(head, (tag << 32) | idx,
                                           std::memory_order_release,
                                           std::memory_order_relaxed))
        return;
    }
  }

  /// Retire a node: bump generation (invalidating every outstanding id
  /// for this lifecycle), mark Free, recycle. Task must already be moved
  /// out or reset.
  void free_node(Node& n, std::uint32_t idx) {
    const std::uint64_t gen = n.word.load(std::memory_order_relaxed) >> kStateBits;
    std::uint64_t ng = gen + 1;
    if ((ng & 0xffffffffu) == 0) ++ng;  // id gen slice must never be 0
    n.word.store((ng << kStateBits) | kStateFree, std::memory_order_release);
    push_free(idx);
  }

  void reap(Node& n, std::uint32_t idx) {
    n.task.reset();
    free_node(n, idx);
  }

  void bitmap_set(std::uint32_t flat) {
    bitmap_[flat >> kLevelBits][(flat & kSlotMask) >> 6] |=
        1ull << ((flat & kSlotMask) & 63);
  }

  void bitmap_clear(std::uint32_t flat) {
    bitmap_[flat >> kLevelBits][(flat & kSlotMask) >> 6] &=
        ~(1ull << ((flat & kSlotMask) & 63));
  }

  /// Smallest cyclic distance d in [1, 256] from `cur` to an occupied slot
  /// at `level` (d == 256 probes cur itself after a full wrap); -1 if the
  /// level is empty.
  int first_set_distance(unsigned level, std::uint32_t cur) const {
    const std::array<std::uint64_t, 4>& bits = bitmap_[level];
    const std::uint32_t start = (cur + 1) & kSlotMask;
    std::uint32_t scanned = 0;
    while (scanned < kSlotsPerLevel) {
      const std::uint32_t pos = (start + scanned) & kSlotMask;
      const std::uint32_t word_i = pos >> 6;
      const std::uint32_t bit_i = pos & 63;
      const std::uint32_t avail = 64 - bit_i;
      const std::uint32_t take =
          std::min(avail, kSlotsPerLevel - scanned);
      std::uint64_t w = bits[word_i] >> bit_i;
      if (take < 64) w &= (1ull << take) - 1;
      if (w != 0)
        return static_cast<int>(scanned + static_cast<std::uint32_t>(
                                              std::countr_zero(w)) + 1);
      scanned += take;
    }
    return -1;
  }

  /// Link a Live node at the level matching its distance from now. Late
  /// deadlines clamp to the current tick; deadlines beyond the top
  /// level's horizon clamp to its farthest slot and re-cascade later.
  void link(std::uint32_t idx, std::uint64_t deadline_us) {
    Node& n = node(idx);
    const std::uint64_t tick = deadline_us >> kTickShiftUs;
    const std::uint64_t delta = tick > current_tick_ ? tick - current_tick_ : 0;
    unsigned level = 0;
    while (level < kLevels - 1 &&
           delta >= (std::uint64_t{1} << (kLevelBits * (level + 1))))
      ++level;
    std::uint64_t place = current_tick_ + delta;
    const std::uint64_t horizon = std::uint64_t{1} << (kLevelBits * kLevels);
    if (delta >= horizon) place = current_tick_ + horizon - 1;
    const std::uint32_t slot =
        static_cast<std::uint32_t>((place >> (kLevelBits * level)) & kSlotMask);
    const std::uint32_t flat = level * kSlotsPerLevel + slot;
    const std::uint32_t old = heads_[flat];
    n.next.store(old, std::memory_order_relaxed);
    n.prev = kNil;
    if (old != kNil) node(old).prev = idx;
    heads_[flat] = idx;
    n.home.store(flat, std::memory_order_relaxed);
    bitmap_set(flat);
  }

  void unlink(Node& n, std::uint32_t flat) {
    const std::uint32_t p = n.prev;
    const std::uint32_t x = n.next.load(std::memory_order_relaxed);
    if (p == kNil)
      heads_[flat] = x;
    else
      node(p).next.store(x, std::memory_order_relaxed);
    if (x != kNil) node(x).prev = p;
    if (heads_[flat] == kNil) bitmap_clear(flat);
  }

  /// Collect due (deadline <= cutoff) Live nodes from a level-0 slot into
  /// batch_, reaping cancelled ones in passing.
  void collect_slot(std::uint32_t slot0, std::uint64_t due_cutoff_us) {
    const std::uint32_t flat = slot0;  // level 0
    std::uint32_t idx = heads_[flat];
    while (idx != kNil) {
      Node& n = node(idx);
      const std::uint32_t nxt = n.next.load(std::memory_order_relaxed);
      const std::uint64_t w = n.word.load(std::memory_order_acquire);
      if ((w & kStateMask) == kStateCancelled) {
        unlink(n, flat);
        reap(n, idx);
      } else if (n.deadline_us <= due_cutoff_us) {
        unlink(n, flat);
        n.home.store(kNotLinked, std::memory_order_relaxed);
        batch_.push_back(Due{n.deadline_us, n.seq, w >> kStateBits, idx});
      }
      idx = nxt;
    }
  }

  /// At each 256^k boundary, pull the arriving higher-level slots down.
  /// Highest rolling level first, so its spill lands in lower-level slots
  /// strictly after the ones about to cascade themselves.
  void cascade_at(std::uint64_t tick) {
    if ((tick & kSlotMask) != 0) return;
    unsigned top = 1;
    if ((tick & 0xffffu) == 0) top = 2;
    if ((tick & 0xffffffu) == 0) top = 3;
    for (unsigned level = top; level >= 1; --level) {
      const std::uint32_t slot = static_cast<std::uint32_t>(
          (tick >> (kLevelBits * level)) & kSlotMask);
      const std::uint32_t flat = level * kSlotsPerLevel + slot;
      std::uint32_t idx = heads_[flat];
      heads_[flat] = kNil;
      bitmap_clear(flat);
      while (idx != kNil) {
        Node& n = node(idx);
        const std::uint32_t nxt = n.next.load(std::memory_order_relaxed);
        const std::uint64_t w = n.word.load(std::memory_order_acquire);
        if ((w & kStateMask) == kStateCancelled)
          reap(n, idx);
        else
          link(idx, n.deadline_us);
        idx = nxt;
      }
    }
  }

  /// Fire one collected node. The Live -> Firing CAS happens here, at
  /// fire time rather than collect time, so a callback earlier in the
  /// same batch can still cancel a later same-tick timer and be told the
  /// truth. The node is freed (generation bumped) *before* the callback
  /// runs: cancel-after-fire is false even from inside the callback, and
  /// a schedule() from the callback can reuse the hot slot.
  bool fire_one(const Due& d) {
    Node& n = node(d.idx);
    std::uint64_t expected = (d.gen << kStateBits) | kStateLive;
    if (!n.word.compare_exchange_strong(expected,
                                        (d.gen << kStateBits) | kStateFiring,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      // Lost to a cross-thread cancel after collection: the canceller
      // could not reap (home was already kNotLinked), so we do.
      if ((expected >> kStateBits) == d.gen &&
          (expected & kStateMask) == kStateCancelled)
        reap(n, d.idx);
      return false;
    }
    Task t = std::move(n.task);
    free_node(n, d.idx);
    t();
    live_count_.fetch_sub(1, std::memory_order_release);
    return true;
  }

  // --- node pool ---
  std::unique_ptr<std::atomic<Node*>[]> directory_{
      new std::atomic<Node*>[kMaxChunks] {}};
  std::atomic<std::uint64_t> capacity_{0};
  std::atomic<std::uint64_t> bump_{0};
  std::atomic<std::uint64_t> free_head_{kNil};  // (aba_tag << 32) | index
  std::mutex grow_mu_;

  // --- wheel (consumer-owned) ---
  std::uint64_t current_tick_ = 0;
  std::array<std::uint32_t, kLevels * kSlotsPerLevel> heads_;
  std::array<std::array<std::uint64_t, 4>, kLevels> bitmap_{};
  std::vector<Due> batch_;
  std::vector<std::uint32_t> drain_scratch_;

  // --- submission ---
  std::array<SubmitShard, kSubmitShards> shards_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> staged_pushes_{0};
  std::atomic<std::uint64_t> staged_drained_{0};
  std::atomic<std::uint64_t> live_count_{0};

  [[no_unique_address]] OwnerRecord owner_;
};

}  // namespace ilu
