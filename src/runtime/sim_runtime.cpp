#include "runtime/sim_runtime.hpp"

#include <cassert>
#include <utility>

namespace ilu {

Runtime::TimerId SimRuntime::schedule(Duration delay, Task fn) {
  ILU_ASSERT_OWNER(owner_, "SimRuntime::schedule");
  assert(delay >= Duration::zero());
  return encode(heap_.push(EventKey{now_ + delay, kTagBand | next_seq_++},
                           std::move(fn)));
}

Runtime::TimerId SimRuntime::schedule_tagged(TimePoint at, std::uint64_t tag,
                                             Task fn) {
  ILU_ASSERT_OWNER(owner_, "SimRuntime::schedule_tagged");
  assert(at >= now_);
  assert(tag < kTagBand);
  return encode(heap_.push(EventKey{at, tag}, std::move(fn)));
}

bool SimRuntime::cancel(TimerId id) {
  ILU_ASSERT_OWNER(owner_, "SimRuntime::cancel");
  if (id == kInvalidTimer) return false;
  // erase() checks the slot generation: an id whose event already fired (or
  // was cancelled before) no longer matches and returns false exactly.
  return heap_.erase(decode(id));
}

void SimRuntime::fire_next() {
  EventKey key;
  Task fn = heap_.pop_min(&key);
  assert(key.deadline >= now_);
  now_ = key.deadline;
  ++processed_;
  fn();
}

bool SimRuntime::step() {
  ILU_ASSERT_OWNER(owner_, "SimRuntime::step");
  if (peek() == nullptr) return false;
  fire_next();
  return true;
}

void SimRuntime::run() {
  ILU_ASSERT_OWNER(owner_, "SimRuntime::run");
  while (peek() != nullptr) fire_next();
}

void SimRuntime::run_until(TimePoint t) {
  ILU_ASSERT_OWNER(owner_, "SimRuntime::run_until");
  for (const EventKey* k = peek(); k != nullptr && k->deadline <= t;
       k = peek()) {
    fire_next();
  }
  if (now_ < t) now_ = t;
}

void SimRuntime::run_before(TimePoint t) {
  ILU_ASSERT_OWNER(owner_, "SimRuntime::run_before");
  for (const EventKey* k = peek(); k != nullptr && k->deadline < t;
       k = peek()) {
    fire_next();
  }
}

SimRuntime::Checkpoint SimRuntime::checkpoint() const {
  ILU_ASSERT_OWNER(owner_, "SimRuntime::checkpoint");
  Checkpoint cp;
  cp.now = now_;
  cp.next_seq = next_seq_;
  cp.processed = processed_;
  cp.heap = heap_.clone_with([](const Task& t) { return t.clone(); });
  cp.blobs.reserve(snapshotters_.size());
  for (const Snapshotter& s : snapshotters_) cp.blobs.push_back(s.save());
  return cp;
}

void SimRuntime::restore(Checkpoint&& cp) {
  ILU_ASSERT_OWNER(owner_, "SimRuntime::restore");
  ILU_DCHECK(cp.blobs.size() == snapshotters_.size(),
             "checkpoint does not match this runtime's snapshotter set "
             "(snapshotter registered between checkpoint and restore?)");
  now_ = cp.now;
  next_seq_ = cp.next_seq;
  processed_ = cp.processed;
  heap_ = std::move(cp.heap);
  for (std::size_t i = 0; i < snapshotters_.size(); ++i) {
    snapshotters_[i].restore(cp.blobs[i]);
  }
}

}  // namespace ilu
