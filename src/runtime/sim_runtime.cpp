#include "runtime/sim_runtime.hpp"

#include <cassert>
#include <utility>

namespace ilu {

Runtime::TimerId SimRuntime::schedule(Duration delay, Task fn) {
  assert(delay >= Duration::zero());
  TimerId id = next_id_++;
  heap_.push(Event{now_ + delay, next_seq_++, id, std::move(fn)});
  return id;
}

bool SimRuntime::cancel(TimerId id) {
  if (id == kInvalidTimer || id >= next_id_) return false;
  // Only mark if it is plausibly still pending; a duplicate cancel of an
  // already-fired timer is a no-op returning false. We cannot cheaply know
  // whether it fired, so track cancelled ids and let pop_next reconcile.
  auto [it, inserted] = cancelled_.insert(id);
  (void)it;
  return inserted;
}

bool SimRuntime::pop_next(Event& out) {
  while (!heap_.empty()) {
    // priority_queue::top is const; we only move from it immediately before
    // popping, which is safe because pop() destroys the element.
    Event& top = const_cast<Event&>(heap_.top());
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      heap_.pop();
      continue;
    }
    out = std::move(top);
    heap_.pop();
    return true;
  }
  return false;
}

bool SimRuntime::step() {
  Event ev;
  if (!pop_next(ev)) return false;
  assert(ev.deadline >= now_);
  now_ = ev.deadline;
  ++processed_;
  ev.fn();
  return true;
}

void SimRuntime::run() {
  while (step()) {
  }
}

void SimRuntime::run_until(TimePoint t) {
  Event ev;
  while (!heap_.empty()) {
    // Peek at the next live event without executing it.
    while (!heap_.empty()) {
      const Event& top = heap_.top();
      auto it = cancelled_.find(top.id);
      if (it == cancelled_.end()) break;
      cancelled_.erase(it);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().deadline > t) break;
    if (!pop_next(ev)) break;
    now_ = ev.deadline;
    ++processed_;
    ev.fn();
  }
  if (now_ < t) now_ = t;
}

}  // namespace ilu
