#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/dcheck.hpp"

/// Generation-checked slab store: the shared object-ownership primitive
/// behind the container pool's `ContainerStore` and the worker/baseline
/// `PendingStore`s (DESIGN.md §11). It generalizes the slot/free-list/
/// generation idiom `runtime/indexed_heap.hpp` established for heap entries
/// into a standalone owner of hot-path records:
///
///  * **Stable 8-byte handles instead of heap pointers.** A record is
///    addressed by `{index, generation}`; the index is dense and small, so
///    handle order is a canonical, run-to-run-stable order (unlike pointer
///    values, which the `ptr-order` lint check has to police). Handles are
///    trivially copyable, so continuation lambdas capture them by value with
///    no refcount traffic.
///  * **Free-list recycling.** `emplace` after steady state never touches
///    the allocator: slots are recycled LIFO. `allocations()` counts slot
///    growth events so tests can assert the steady state really is
///    allocation-free.
///  * **Stale-handle detection.** Freeing a slot bumps its generation, so a
///    retained handle can never silently alias a recycled record:
///    `contains` is always exact, and `get` on a stale handle aborts under
///    ILU_DEBUG_CHECKS.
///
/// Liveness is encoded in generation parity: live slots carry an odd
/// generation, free slots an even one. Handles are only ever issued with
/// odd generations, so a handle can never match a free slot and the slab
/// needs no separate liveness bit.
///
/// Same staleness bound as the indexed heap: generations are 32-bit, so a
/// handle parked across ~2^31 reuse cycles of its slot would falsely
/// validate. Callers keep handles only for the lifetime of the logical
/// object (an in-flight invocation, a pooled container), far below the
/// bound.
///
/// The handle type is a template parameter (any struct with u32 `index` and
/// `gen` members) so each store gets a distinct, non-interchangeable handle
/// type: a `ContainerHandle` cannot be passed where a `PendingHandle` is
/// expected.
namespace ilu {

/// Canonical handle shape. Stores can use this directly or define their own
/// struct with the same two fields for type safety.
struct SlabHandle {
  std::uint32_t index = 0;
  /// Live generations are odd; 0 marks a default-constructed (invalid)
  /// handle.
  std::uint32_t gen = 0;

  bool valid() const { return gen != 0; }
  friend bool operator==(const SlabHandle&, const SlabHandle&) = default;
};

template <typename T, typename HandleT = SlabHandle>
class Slab {
 public:
  using Handle = HandleT;

  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }
  /// Total slots ever created (live + free).
  std::size_t slot_count() const { return slots_.size(); }
  /// Number of slot-vector growth events; constant while the free list can
  /// satisfy every emplace (the zero-steady-state-allocation assertion).
  std::uint64_t allocations() const { return allocations_; }

  void reserve(std::size_t n) { slots_.reserve(n); }

  /// True while `h` refers to a live record.
  bool contains(Handle h) const {
    return h.index < slots_.size() && slots_[h.index].gen == h.gen &&
           (h.gen & 1u) != 0;
  }

  /// References are invalidated by emplace (slot-vector growth); re-fetch
  /// after any call that may create records.
  T& get(Handle h) {
    ILU_DCHECK(contains(h), "stale slab handle dereference");
    return slots_[h.index].value;
  }
  const T& get(Handle h) const {
    ILU_DCHECK(contains(h), "stale slab handle dereference");
    return slots_[h.index].value;
  }

  /// Construct a record in a recycled (or new) slot.
  template <typename... Args>
  Handle emplace(Args&&... args) {
    std::uint32_t index;
    if (free_head_ != kNoFree) {
      index = free_head_;
      free_head_ = slots_[index].next_free;
      ++slots_[index].gen;  // even (free) -> odd (live)
      slots_[index].value = T{std::forward<Args>(args)...};
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();  // Slot{} starts live at gen 1
      slots_[index].value = T{std::forward<Args>(args)...};
      ++allocations_;
    }
    ++live_;
    return Handle{index, slots_[index].gen};
  }

  /// Destroy the record for `h` (resets the slot payload so held resources
  /// are released now, not at recycle time) and invalidate every copy of
  /// the handle.
  void erase(Handle h) {
    ILU_DCHECK(contains(h), "erase of stale slab handle");
    Slot& s = slots_[h.index];
    s.value = T{};
    ++s.gen;  // odd (live) -> even (free); wraps harmlessly through 0
    s.next_free = free_head_;
    free_head_ = h.index;
    --live_;
  }

  /// A point-in-time copy of the slab's complete state: payloads, slot
  /// generations, free-list threading, and the allocation counter. Because
  /// the slab is a contiguous slot array plus a free-list head, a snapshot
  /// is a bounded copy — no per-record graph walk — which is what makes
  /// per-window checkpointing affordable for the optimistic sharded runtime
  /// (DESIGN.md §16). Requires T to be copy-constructible.
  using Snapshot = Slab;

  Snapshot snapshot() const { return *this; }

  /// Replace this slab's state wholesale with a snapshot. Generations are
  /// restored exactly: handles issued before the snapshot stay valid, and
  /// handles issued *after* it (by slots recycled during the speculation
  /// being rolled back) go stale again — `contains` is exact and `get`
  /// aborts on them, same as any other stale handle.
  void restore(Snapshot&& snap) { *this = std::move(snap); }
  void restore(const Snapshot& snap) { *this = snap; }

  /// Visit every live record in canonical (index) order — the deterministic
  /// replacement for iterating an unordered_map of pointers. `f` must not
  /// add or erase records during the walk.
  template <typename F>
  void for_each(F&& f) {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if ((slots_[i].gen & 1u) != 0) f(Handle{i, slots_[i].gen}, slots_[i].value);
    }
  }
  template <typename F>
  void for_each(F&& f) const {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if ((slots_[i].gen & 1u) != 0) f(Handle{i, slots_[i].gen}, slots_[i].value);
    }
  }

 private:
  static constexpr std::uint32_t kNoFree = 0xffffffffu;

  struct Slot {
    T value{};
    /// Odd while live, even while free; bumped on every transition. New
    /// slots are born live at generation 1.
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoFree;
  };

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFree;
  std::size_t live_ = 0;
  std::uint64_t allocations_ = 0;
};

}  // namespace ilu
