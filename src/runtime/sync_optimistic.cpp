#include "runtime/sharded_runtime.hpp"
// ilu-lint: atomics-floor(relaxed) - straggler_min_/events_ are published between the round's barriers (shard_sync.hpp supplies the ordering)

#include <algorithm>

#include "obs/flight.hpp"

/// Optimistic (Time Warp) round, barrier-synchronized (DESIGN.md §16).
///
/// Where the conservative engine buys exactly one `lookahead` of virtual
/// time per barrier round, this engine speculates `speculation` lookaheads
/// ahead of the agreed T_min and usually commits them all for the same
/// barrier cost. The price is the machinery to undo a round when the bet
/// fails:
///
///   checkpoint   SimRuntime::checkpoint() — deep event-heap copy plus one
///                blob per registered component Snapshotter, taken at the
///                round's start, when the merge has left the outbox matrix
///                empty (a globally consistent cut).
///   speculate    run_before(H), H = min(T_min + speculation·lookahead, cap).
///   detect       after the first closing barrier each shard scans its
///                inbox column for stragglers: messages with deliver time
///                <= its (speculative) clock. Later-dated mail is provably
///                safe — run_before(H) fired *every* event below the shard's
///                clock, so a message above it can still be delivered at the
///                next merge in correct order. The scan publishes the
///                per-shard minimum; a second barrier makes the global
///                minimum `min_at` — the earliest causality violation
///                anywhere — common knowledge.
///   rollback     if min_at exists, every shard cancels the messages it
///                sent this round (its anti-messages: nothing was delivered
///                yet, so cancellation is clearing its own outbox rows),
///                restores its checkpoint, rewinds its flight ring to the
///                round's mark, and re-runs to W = min(T_min + lookahead,
///                min_at) — below every straggler, so the re-run commits.
///                Re-issued sends are a deterministic prefix of the scanned
///                ones, which is why one global rollback per round suffices.
///
/// Committed state is identical to what the conservative engine would have
/// produced — rounds just cover differently-sized safe prefixes of the same
/// (deliver time, tag)-ordered event sequence.
namespace ilu {

void ShardedRuntime::round_optimistic(std::size_t me, std::int64_t tmin,
                                      std::int64_t cap_us,
                                      shard_sync::SpinBarrier& barrier) {
  using shard_sync::kIdle;
  SimRuntime& rt = *shards_[me];
  const std::int64_t look = lookahead_.count();
  const std::int64_t safe = std::min(tmin + look, cap_us);
  std::int64_t span = static_cast<std::int64_t>(
      static_cast<double>(look) * cfg_.speculation);
  if (span < look) span = look;
  const std::int64_t spec =
      tmin > kIdle - span ? kIdle : std::min(tmin + span, cap_us);
  if (spec <= safe) {
    // The run limit (or a degenerate speculation factor) already clamps the
    // round to the conservative bound: nothing to bet on, so skip the
    // checkpoint and run the round as a plain safe window.
    rt.run_before(TimePoint{safe});
    commit_round(me, barrier);
    return;
  }

  const std::uint64_t fmark = flight::mark();
  SimRuntime::Checkpoint cp = rt.checkpoint();
  rt.run_before(TimePoint{spec});
  barrier.arrive_and_wait();  // speculation done: clocks and outboxes final

  // Straggler scan: read-only pass over this shard's inbox column (the rows
  // are quiescent between the two closing barriers; senders touch them
  // again only after the second one).
  const std::size_t s = shards_.size();
  const std::int64_t my_now = rt.now().count();
  std::int64_t my_min = kIdle;
  for (std::size_t src = 0; src < s; ++src) {
    if (src == me) continue;
    for (const Msg& m : outbox_[src * s + me]) {
      const std::int64_t at = m.at.count();
      if (at <= my_now && at < my_min) my_min = at;
    }
  }
  straggler_min_[me].store(my_min, std::memory_order_relaxed);
  barrier.arrive_and_wait();  // all straggler minima published

  std::int64_t min_at = kIdle;
  for (auto& sm : straggler_min_) {
    min_at = std::min(min_at, sm.load(std::memory_order_relaxed));
  }
  if (min_at == kIdle) {
    // Every message everywhere landed above its destination's clock: the
    // whole speculation is causally sound and commits as-is.
    if (me == 0) ++speculative_windows_;
    commit_round(me, barrier);
    return;
  }

  // Rollback. Senders execute at deadlines >= T_min and optimistic sends
  // are strictly future-dated (send()'s ILU_DCHECK), so min_at > T_min —
  // the re-run bound below always clears T_min and the round still makes
  // progress.
  const std::uint64_t base_events = cp.processed;
  const std::uint64_t spec_events = rt.events_processed() - base_events;
  std::uint64_t cancelled = 0;
  for (std::size_t dst = 0; dst < s; ++dst) {
    if (dst == me) continue;
    auto& box = outbox_[me * s + dst];
    cancelled += box.size();
    box.clear();
  }
  anti_[me] += cancelled;
  rt.restore(std::move(cp));
  flight::rewind(fmark);
  // Safe even against sub-lookahead stragglers: every send the re-run
  // re-issues is a prefix replay of one already scanned, hence dated
  // >= min_at >= this bound — the re-run itself cannot re-straggle.
  rt.run_before(TimePoint{std::min(safe, min_at)});
  // The re-run prefix is committed work; only the undone suffix was wasted.
  wasted_[me] += spec_events - (rt.events_processed() - base_events);
  if (me == 0) ++rollbacks_;
  commit_round(me, barrier);
}

}  // namespace ilu
