#pragma once
// ilu-lint: atomics-floor(relaxed) - events_/horizon_/straggler_min_/mode_ are published between barriers (the barrier supplies the ordering); events_ doubles as a monotone telemetry counter

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/shard_sync.hpp"
#include "runtime/sim_runtime.hpp"
#include "runtime/sync_strategy.hpp"

/// Time-parallel discrete-event simulation: N SimRuntime shards, each owned
/// by one thread, synchronized by a pluggable SyncStrategy (DESIGN.md
/// §9/§16).
///
/// Every cross-shard interaction must go through send(), which models a
/// link whose latency is at least `lookahead` (> 0). Each synchronization
/// round starts the same way under either strategy: every shard drains its
/// inbox (messages sorted by (deliver time, tag)) into its event heap,
/// publishes its next-event horizon, and crosses a barrier; all shards then
/// agree on T_min, the globally earliest pending deadline (the GVT — no
/// event can ever again be created before it).
///
/// **Conservative** (Chandy–Misra bounded lag): the lookahead bound makes a
/// window safe outright — no event executed anywhere can cause a new event
/// before T_min + lookahead, so every shard runs run_before(T_min +
/// lookahead) and can never receive a message "from the past".
///
/// **Optimistic** (Time Warp, barrier-synchronized): each shard checkpoints
/// (SimRuntime::checkpoint — event heap plus registered component
/// snapshotters), then speculates to T_min + speculation × lookahead. At
/// the closing barrier shards scan their inboxes for stragglers — messages
/// addressed into a shard's already-executed past. If any exists anywhere,
/// every shard cancels the messages it sent this round (its anti-messages:
/// none were delivered yet, so cancellation is a row clear), restores its
/// checkpoint, rewinds its flight-recorder ring to the round's mark, and
/// re-runs to the straggler-free bound min(T_min + lookahead, earliest
/// straggler time); otherwise the round commits several windows' worth of
/// progress for one barrier round. Speculative sends must be in the
/// sender's *strict* future (not a full lookahead out), which both keeps
/// re-runs progressing (the earliest straggler is strictly after T_min) and
/// is exactly the relaxation that lets optimism outrun the lookahead floor.
///
/// **Auto** starts conservative and switches per the SyncConfig controller
/// (see sync_strategy.hpp). The controller reads only deterministic
/// simulation state, so the strategy schedule — like the strategy itself —
/// never changes simulation results.
///
/// Determinism: the delivery order of cross-shard messages is a pure
/// function of (deliver time, tag), where callers derive the tag from a
/// logical sender id and a per-sender sequence number — NOT from shard ids
/// or wall-clock interleaving. Tagged events also order *before* any
/// plain-scheduled local event at the same deadline (see
/// SimRuntime::schedule_tagged). Strategies only re-partition execution
/// into differently-sized safe prefixes of the same event order, so a run's
/// observable behaviour is identical at any shard count under any strategy,
/// including 1 shard: run_until() then forwards straight to the underlying
/// SimRuntime (no threads, no barriers, no outboxes) and send() degenerates
/// to a schedule_tagged call with the very same (deliver time, tag) key.
namespace ilu {

class ShardedRuntime {
 public:
  /// `lookahead` must be strictly positive: it is the minimum cross-shard
  /// message latency callers promise to respect in send() (conservative
  /// mode enforces the full lookahead; optimistic mode relaxes it to the
  /// sender's strict future and repairs violations of the *destination's*
  /// past by rollback).
  ShardedRuntime(std::size_t shards, Duration lookahead, SyncConfig cfg = {});

  std::size_t shards() const { return shards_.size(); }
  Duration lookahead() const { return lookahead_; }
  SimRuntime& shard(std::size_t i) { return *shards_[i]; }
  const SimRuntime& shard(std::size_t i) const { return *shards_[i]; }

  /// The configured strategy (kAuto reports kAuto; see mode() for what the
  /// controller currently runs).
  SyncStrategy strategy() const { return cfg_.strategy; }
  /// The strategy the engine is executing right now (== strategy() unless
  /// kAuto). Driver-thread reads between runs are exact.
  SyncStrategy mode() const { return mode_.load(std::memory_order_relaxed); }

  /// Virtual time of shard 0 (all shards agree after run_until returns).
  TimePoint now() const { return shards_[0]->now(); }

  /// Deliver `fn` on shard `dst` at absolute time `at`. Must be called
  /// either from the owning thread of shard `src` during a window, or from
  /// outside run_until/run entirely. Requires tag < SimRuntime::kTagBand
  /// and, in conservative mode, at >= src's now + lookahead (the link
  /// latency promise — violations abort under ILU_DEBUG_CHECKS). In
  /// optimistic mode the requirement weakens to at > src's now: a message
  /// landing in the *destination's* executed past is a straggler and
  /// triggers rollback instead of an abort.
  void send(std::size_t src, std::size_t dst, TimePoint at, std::uint64_t tag,
            Task fn);

  /// Run all shards up to and including events at time t, then advance
  /// every shard's clock to exactly t. Blocking; spawns one thread per
  /// shard (none when shards() == 1).
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now() + d); }

  /// Run until globally quiescent (all heaps empty, all mailboxes drained).
  /// Only terminates for workloads without self-rescheduling timers.
  void run();

  /// True when no shard has pending events.
  bool idle() const;

  /// Synchronization windows executed so far (0 on the single-shard path).
  /// A rolled-back round still counts once: its re-run is the round's
  /// committed window.
  std::uint64_t windows() const { return windows_; }
  /// Cross-shard messages delivered through mailboxes so far.
  std::uint64_t messages() const;

  /// Optimistic-engine telemetry (all 0 under conservative / single shard).
  /// Rounds that speculated past the conservative bound and committed:
  std::uint64_t speculative_windows() const { return speculative_windows_; }
  /// Rounds undone by a straggler (each also re-ran and committed):
  std::uint64_t rollbacks() const { return rollbacks_; }
  /// Cross-shard messages cancelled by rollbacks before delivery:
  std::uint64_t anti_messages() const;
  /// Speculatively executed events discarded by rollbacks (re-executed
  /// events are not wasted — this counts only the undone suffix):
  std::uint64_t wasted_events() const;

  /// Events processed by shard `i`, as last published at a window barrier
  /// (refreshed at every committed round while a run is in flight, exact
  /// once it returns — speculative progress is published only on commit, so
  /// concurrent readers never observe counts that a rollback would retract).
  /// Readable from any thread — this is the telemetry sampler's
  /// events/s-per-shard source; reading it never perturbs the simulation.
  std::uint64_t shard_events(std::size_t i) const {
    return events_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t total_events() const;

 private:
  struct Msg {
    TimePoint at{};
    std::uint64_t tag = 0;
    Task fn;
  };

  /// The window loop body shared by run_until (bounded) and run
  /// (unbounded). `limit` is the inclusive time bound; TimePoint::max()
  /// means run to quiescence.
  void run_windows(TimePoint limit);
  void merge_inbox(std::size_t dst);

  /// One committed round for shard `me` under the respective engine, from
  /// agreed T_min to the trailing barrier. Defined in sync_conservative.cpp
  /// and sync_optimistic.cpp so each engine reads as one unit.
  void round_conservative(std::size_t me, std::int64_t tmin,
                          std::int64_t cap_us, shard_sync::SpinBarrier& barrier);
  void round_optimistic(std::size_t me, std::int64_t tmin, std::int64_t cap_us,
                        shard_sync::SpinBarrier& barrier);
  /// Tail shared by both engines (and by the optimistic engine's rollback
  /// re-run): publish committed progress, stamp the flight ring, count the
  /// window, cross the trailing barrier.
  void commit_round(std::size_t me, shard_sync::SpinBarrier& barrier);

  /// kAuto controller, run by shard 0's thread between rounds (before the
  /// horizon barrier, so the mode every shard reads after it is uniform).
  /// Decides from deterministic simulation state only.
  void update_mode();

  Duration lookahead_;
  SyncConfig cfg_;
  std::vector<std::unique_ptr<SimRuntime>> shards_;
  /// outbox_[src * S + dst]: written only by src's thread during a window,
  /// drained only by dst's thread at the barrier (and scanned read-only by
  /// dst between the optimistic engine's two closing barriers).
  std::vector<std::vector<Msg>> outbox_;
  /// Per-shard merge scratch (sorting buffer), owned by the dst thread.
  std::vector<std::vector<Msg>> scratch_;
  /// Published next-event horizon per shard (µs; INT64_MAX when idle).
  /// Plain values would race; the window barriers order the accesses, and
  /// atomics make the publication explicit for the sanitizer.
  std::vector<std::atomic<std::int64_t>> horizon_;
  /// Per-shard processed-event counters, published (relaxed) at committed
  /// rounds for concurrent telemetry readers.
  std::vector<std::atomic<std::uint64_t>> events_;
  /// Earliest straggler deliver-time observed by each shard in the closing
  /// scan of an optimistic round (kIdle when none).
  std::vector<std::atomic<std::int64_t>> straggler_min_;
  /// Strategy currently executed (fixed unless cfg_.strategy == kAuto, in
  /// which case shard 0 retunes it between rounds).
  std::atomic<SyncStrategy> mode_;
  /// Messages delivered per destination shard (owner-thread writes only).
  std::vector<std::uint64_t> delivered_;
  /// Per-shard rollback accounting (owner-thread writes, summed after join).
  std::vector<std::uint64_t> anti_;
  std::vector<std::uint64_t> wasted_;
  std::uint64_t windows_ = 0;
  std::uint64_t speculative_windows_ = 0;
  std::uint64_t rollbacks_ = 0;
  /// kAuto controller state (shard-0 thread only).
  std::uint64_t auto_rounds_ = 0;
  std::uint64_t auto_opt_rounds_ = 0;
  std::uint64_t auto_opt_rollback_base_ = 0;
  bool auto_locked_conservative_ = false;
};

}  // namespace ilu
