#pragma once
// ilu-lint: atomics-floor(relaxed) - events_ are per-shard monotone counters, summed after join

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/sim_runtime.hpp"

/// Time-parallel discrete-event simulation: N SimRuntime shards, each owned
/// by one thread, synchronized with conservative time windows
/// (Chandy–Misra-style bounded lag).
///
/// Every cross-shard interaction must go through send(), which models a
/// link whose latency is at least `lookahead` (> 0). That bound is what
/// makes windows safe: if the globally earliest pending event is at T, then
/// no event executed anywhere can cause a new event before T + lookahead,
/// so every shard may process all events with deadline < T + lookahead
/// without ever receiving a message "from the past". Each window is
///
///   1. all shards run_before(W) where W = min(T_min + lookahead, cap),
///      appending outbound messages to single-writer outboxes;
///   2. barrier; each shard drains its inbox — messages sorted by
///      (deliver time, tag) — into its own event heap via schedule_tagged;
///   3. barrier; every shard recomputes T_min from the published horizons
///      and starts the next window.
///
/// Determinism: the delivery order of cross-shard messages is a pure
/// function of (deliver time, tag), where callers derive the tag from a
/// logical sender id and a per-sender sequence number — NOT from shard ids
/// or wall-clock interleaving. Tagged events also order *before* any
/// plain-scheduled local event at the same deadline (see
/// SimRuntime::schedule_tagged). Both facts together make a run's
/// observable behaviour identical at any shard count, including 1: with a
/// single shard, run_until() forwards straight to the underlying SimRuntime
/// (no threads, no barriers, no outboxes) and send() degenerates to a
/// schedule_tagged call with the very same (deliver time, tag) key.
namespace ilu {

class ShardedRuntime {
 public:
  /// `lookahead` must be strictly positive: it is the minimum cross-shard
  /// message latency callers promise to respect in send().
  ShardedRuntime(std::size_t shards, Duration lookahead);

  std::size_t shards() const { return shards_.size(); }
  Duration lookahead() const { return lookahead_; }
  SimRuntime& shard(std::size_t i) { return *shards_[i]; }
  const SimRuntime& shard(std::size_t i) const { return *shards_[i]; }

  /// Virtual time of shard 0 (all shards agree after run_until returns).
  TimePoint now() const { return shards_[0]->now(); }

  /// Deliver `fn` on shard `dst` at absolute time `at`. Must be called
  /// either from the owning thread of shard `src` during a window, or from
  /// outside run_until/run entirely. Requires at >= src's now + lookahead
  /// (the link latency promise) and tag < SimRuntime::kTagBand.
  void send(std::size_t src, std::size_t dst, TimePoint at, std::uint64_t tag,
            Task fn);

  /// Run all shards up to and including events at time t, then advance
  /// every shard's clock to exactly t. Blocking; spawns one thread per
  /// shard (none when shards() == 1).
  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now() + d); }

  /// Run until globally quiescent (all heaps empty, all mailboxes drained).
  /// Only terminates for workloads without self-rescheduling timers.
  void run();

  /// True when no shard has pending events.
  bool idle() const;

  /// Synchronization windows executed so far (0 on the single-shard path).
  std::uint64_t windows() const { return windows_; }
  /// Cross-shard messages delivered through mailboxes so far.
  std::uint64_t messages() const;

  /// Events processed by shard `i`, as last published at a window barrier
  /// (refreshed continuously while a run is in flight, exact once it
  /// returns). Readable from any thread — this is the telemetry sampler's
  /// events/s-per-shard source; reading it never perturbs the simulation.
  std::uint64_t shard_events(std::size_t i) const {
    return events_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t total_events() const;

 private:
  struct Msg {
    TimePoint at{};
    std::uint64_t tag = 0;
    Task fn;
  };

  /// The window loop body shared by run_until (bounded) and run
  /// (unbounded). `limit` is the inclusive time bound; TimePoint::max()
  /// means run to quiescence.
  void run_windows(TimePoint limit);
  void merge_inbox(std::size_t dst);

  Duration lookahead_;
  std::vector<std::unique_ptr<SimRuntime>> shards_;
  /// outbox_[src * S + dst]: written only by src's thread during a window,
  /// drained only by dst's thread at the barrier.
  std::vector<std::vector<Msg>> outbox_;
  /// Per-shard merge scratch (sorting buffer), owned by the dst thread.
  std::vector<std::vector<Msg>> scratch_;
  /// Published next-event horizon per shard (µs; INT64_MAX when idle).
  /// Plain values would race; the window barriers order the accesses, and
  /// atomics make the publication explicit for the sanitizer.
  std::vector<std::atomic<std::int64_t>> horizon_;
  /// Per-shard processed-event counters, published (relaxed) by each window
  /// thread for concurrent telemetry readers.
  std::vector<std::atomic<std::uint64_t>> events_;
  /// Messages delivered per destination shard (owner-thread writes only).
  std::vector<std::uint64_t> delivered_;
  std::uint64_t windows_ = 0;
};

}  // namespace ilu
