#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/dcheck.hpp"

/// Small-buffer-optimized move-only callable used for every scheduled event.
///
/// The discrete-event hot path schedules, moves (heap sifts), and fires
/// millions of closures per second; `std::function` heap-allocates for any
/// capture larger than the libstdc++ 16-byte SBO and drags copy machinery we
/// never use. `Task` stores captures up to 48 bytes inline (a cache line
/// together with its dispatch pointer), never copies, and erases through a
/// static ops table — so the schedule/fire cycle of a typical worker closure
/// (a few pointers and a TimePoint) does zero allocations.
namespace ilu {

class Task {
 public:
  /// Captures up to this size (and alignof <= kInlineAlign, nothrow-movable)
  /// are stored inline; larger ones fall back to a single heap node.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  Task() noexcept = default;
  Task(std::nullptr_t) noexcept {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    emplace(std::forward<F>(f));
  }

  Task(Task&& other) noexcept { move_from(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when the callable lives in the inline buffer (for tests/benches).
  bool is_inline() const noexcept { return ops_ != nullptr && ops_->inline_stored; }

  /// True when the stored callable is copy-constructible, i.e. clone() is
  /// legal on this task. An empty task is trivially clonable.
  bool clonable() const noexcept { return ops_ == nullptr || ops_->clone != nullptr; }

  /// Duplicate the stored callable into a fresh Task. Tasks stay move-only
  /// on every scheduling path — clone() exists solely for checkpointing:
  /// SimRuntime::checkpoint() copies the pending-event heap so an optimistic
  /// shard can roll back (DESIGN.md §16). Aborts (ILU_DCHECK) when the
  /// callable is not copy-constructible; such closures must not be scheduled
  /// on a shard that can speculate.
  Task clone() const {
    if (ops_ == nullptr) return Task{};
    ILU_DCHECK(ops_->clone != nullptr,
               "Task::clone of a non-copyable callable (checkpointed shards "
               "require copy-constructible captures)");
    return ops_->clone(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*) noexcept;
    /// Move-construct into dst from src, then destroy src.
    void (*relocate)(void* dst, void* src) noexcept;
    /// Copy the stored callable into a fresh Task; nullptr when the callable
    /// type is not copy-constructible (clone() then aborts).
    Task (*clone)(const void* src);
    bool inline_stored;
  };

  template <typename D>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<D*>(p))(); }
    static void destroy(void* p) noexcept { static_cast<D*>(p)->~D(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    }
    static Task clone(const void* src) {
      Task t;
      t.emplace(*static_cast<const D*>(src));
      return t;
    }
  };

  template <typename D>
  struct HeapOps {
    static D* ptr(void* p) noexcept { return *static_cast<D**>(p); }
    static const D* ptr(const void* p) noexcept {
      return *static_cast<D* const*>(p);
    }
    static void invoke(void* p) { (*ptr(p))(); }
    static void destroy(void* p) noexcept { delete ptr(p); }
    static void relocate(void* dst, void* src) noexcept {
      *static_cast<D**>(dst) = ptr(src);
    }
    static Task clone(const void* src) {
      Task t;
      t.emplace(*ptr(src));
      return t;
    }
  };

  /// &Ops::clone when D is copyable, nullptr otherwise — evaluated at the
  /// table-building stage so non-copyable captures never instantiate a copy
  /// constructor.
  template <typename OpsT, typename D>
  static constexpr auto clone_of() -> Task (*)(const void*) {
    if constexpr (std::is_copy_constructible_v<D>) {
      return &OpsT::clone;
    } else {
      return nullptr;
    }
  }

  template <typename D>
  static constexpr Ops kInlineOps{&InlineOps<D>::invoke, &InlineOps<D>::destroy,
                                  &InlineOps<D>::relocate,
                                  clone_of<InlineOps<D>, D>(), true};
  template <typename D>
  static constexpr Ops kHeapOps{&HeapOps<D>::invoke, &HeapOps<D>::destroy,
                                &HeapOps<D>::relocate,
                                clone_of<HeapOps<D>, D>(), false};

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    // The move must be noexcept for inline storage: heap sifts and Task moves
    // are declared noexcept.
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(buf_)) =
          new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  void move_from(Task& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace ilu
