#include "runtime/sharded_runtime.hpp"
// ilu-lint: atomics-floor(relaxed) - horizon_/events_/straggler_min_/mode_ are per-shard slots published between barriers; the barrier (shard_sync.hpp) supplies the ordering

#include <algorithm>
#include <cassert>
#include <thread>

#include "obs/flight.hpp"

namespace ilu {

using shard_sync::kIdle;
using shard_sync::SpinBarrier;
using shard_sync::horizon_of;

ShardedRuntime::ShardedRuntime(std::size_t shards, Duration lookahead,
                               SyncConfig cfg)
    : lookahead_(lookahead),
      cfg_(cfg),
      mode_(cfg.strategy == SyncStrategy::kOptimistic
                ? SyncStrategy::kOptimistic
                : SyncStrategy::kConservative) {
  assert(shards >= 1);
  assert(lookahead_ > Duration::zero() &&
         "window synchronization needs strictly positive lookahead");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<SimRuntime>());
  }
  outbox_.resize(shards * shards);
  scratch_.resize(shards);
  horizon_ = std::vector<std::atomic<std::int64_t>>(shards);
  events_ = std::vector<std::atomic<std::uint64_t>>(shards);
  straggler_min_ = std::vector<std::atomic<std::int64_t>>(shards);
  delivered_.assign(shards, 0);
  anti_.assign(shards, 0);
  wasted_.assign(shards, 0);
}

void ShardedRuntime::send(std::size_t src, std::size_t dst, TimePoint at,
                          std::uint64_t tag, Task fn) {
  assert(src < shards_.size() && dst < shards_.size());
  // send() must run on src's owning thread (its window thread during a run,
  // the driver otherwise) — that confinement is what makes the outbox rows
  // single-writer.
  ILU_ASSERT_OWNER(shards_[src]->owner(), "ShardedRuntime::send");
  if (mode_.load(std::memory_order_relaxed) == SyncStrategy::kOptimistic) {
    // Speculative sends may land in the *destination's* executed past (the
    // straggler scan repairs that by rollback) but must stay in the
    // sender's strict future: senders execute at deadlines >= the round's
    // T_min, so every straggler is strictly after T_min and the rollback
    // re-run always makes progress.
    ILU_DCHECK(at > shards_[src]->now(),
               "optimistic send must be in the sender's strict future");
  } else {
    ILU_DCHECK(at >= shards_[src]->now() + lookahead_,
               "cross-shard send violates the lookahead promise");
  }
  if (src == dst) {
    // Same event loop: deliver directly, with the identical (at, tag)
    // ordering key a mailbox delivery would use.
    shards_[dst]->schedule_tagged(at, tag, std::move(fn));
    return;
  }
  outbox_[src * shards_.size() + dst].push_back(Msg{at, tag, std::move(fn)});
}

void ShardedRuntime::merge_inbox(std::size_t dst) {
  const std::size_t s = shards_.size();
  auto& in = scratch_[dst];
  in.clear();
  for (std::size_t src = 0; src < s; ++src) {
    auto& box = outbox_[src * s + dst];
    for (auto& m : box) in.push_back(std::move(m));
    box.clear();
  }
  if (in.empty()) return;
  std::sort(in.begin(), in.end(), [](const Msg& a, const Msg& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.tag < b.tag;
  });
  for (auto& m : in) {
    shards_[dst]->schedule_tagged(m.at, m.tag, std::move(m.fn));
  }
  delivered_[dst] += in.size();
  in.clear();
}

void ShardedRuntime::commit_round(std::size_t me, SpinBarrier& barrier) {
  SimRuntime& rt = *shards_[me];
  // Publish progress for concurrent telemetry readers and stamp the barrier
  // crossing on this thread's flight ring (ts = the shard clock after the
  // window, arg = shard index). Published only here — at committed rounds —
  // so readers never observe speculative counts a rollback would retract.
  events_[me].store(rt.events_processed(), std::memory_order_relaxed);
  flight::record(rt.now(), flight::Ev::kWindowBarrier,
                 static_cast<std::uint32_t>(me));
  if (me == 0) ++windows_;
  barrier.arrive_and_wait();  // all outboxes complete
}

void ShardedRuntime::update_mode() {
  if (cfg_.strategy != SyncStrategy::kAuto || auto_locked_conservative_) {
    return;
  }
  // Runs on shard 0's thread between the trailing barrier of one round and
  // the horizon barrier of the next, so every input below is a stable,
  // deterministic function of committed simulation state — the mode
  // schedule is identical on every run and can never perturb results.
  ++auto_rounds_;
  if (auto_rounds_ <= cfg_.auto_probe_windows) return;
  const std::size_t s = shards_.size();
  if (mode_.load(std::memory_order_relaxed) == SyncStrategy::kConservative) {
    std::uint64_t ev = 0;
    for (const auto& e : events_) ev += e.load(std::memory_order_relaxed);
    const double density = windows_ == 0
                               ? 0.0
                               : static_cast<double>(ev) /
                                     static_cast<double>(windows_) /
                                     static_cast<double>(s);
    if (density < cfg_.auto_density_threshold) {
      mode_.store(SyncStrategy::kOptimistic, std::memory_order_relaxed);
      auto_opt_rounds_ = 0;
      auto_opt_rollback_base_ = rollbacks_;
    }
  } else {
    ++auto_opt_rounds_;
    if (auto_opt_rounds_ >= 8) {
      const double rate =
          static_cast<double>(rollbacks_ - auto_opt_rollback_base_) /
          static_cast<double>(auto_opt_rounds_);
      if (rate > cfg_.auto_max_rollback_rate) {
        // Speculation is thrashing on this workload; stop probing for good.
        mode_.store(SyncStrategy::kConservative, std::memory_order_relaxed);
        auto_locked_conservative_ = true;
      }
    }
  }
}

void ShardedRuntime::run_windows(TimePoint limit) {
  const std::size_t s = shards_.size();
  const std::int64_t limit_us = limit.count();
  const std::int64_t cap_us = limit_us == kIdle ? kIdle : limit_us + 1;
  SpinBarrier barrier(static_cast<unsigned>(s));

  auto loop = [&](std::size_t me) {
    SimRuntime& rt = *shards_[me];
    // Window threads own their shard for the duration of the run; the
    // spawning of this thread (resp. the call into run_windows for shard 0)
    // synchronizes the handoff from the previous owner.
    rt.bind_owner();
    for (;;) {
      // Merge BEFORE publishing the horizon: messages parked in the inbox
      // (sent during the previous window, or before run() even started)
      // must count toward this shard's next deadline, or a shard whose
      // only work arrives by mail would report idle and stall the window
      // computation. Between the trailing barrier and this point no shard
      // is executing events, so the outboxes are stable. The merge also
      // leaves the whole outbox matrix empty — the checkpoint an
      // optimistic round then takes is a globally consistent cut.
      merge_inbox(me);
      horizon_[me].store(horizon_of(rt), std::memory_order_relaxed);
      if (me == 0) update_mode();
      barrier.arrive_and_wait();  // all merges done, horizons + mode stable
      // Every thread computes the same round bound from the published
      // horizons, so they all agree on the mode, the bound, and when to
      // stop.
      std::int64_t tmin = kIdle;
      for (auto& h : horizon_) {
        tmin = std::min(tmin, h.load(std::memory_order_relaxed));
      }
      if (tmin == kIdle || tmin > limit_us) break;
      if (mode_.load(std::memory_order_relaxed) == SyncStrategy::kOptimistic) {
        round_optimistic(me, tmin, cap_us, barrier);
      } else {
        round_conservative(me, tmin, cap_us, barrier);
      }
    }
    if (limit_us != kIdle) rt.run_until(limit);
    events_[me].store(rt.events_processed(), std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  threads.reserve(s - 1);
  for (std::size_t i = 1; i < s; ++i) threads.emplace_back(loop, i);
  loop(0);
  for (auto& t : threads) t.join();
  // Ownership returns to the driver thread (the joins synchronize): after a
  // run the caller may inspect clocks and schedule follow-up work on any
  // shard from its own thread.
  for (auto& sh : shards_) sh->bind_owner();
}

void ShardedRuntime::run_until(TimePoint t) {
  if (shards_.size() == 1) {
    // Entry through the sharded API is an ownership handoff, matching the
    // N-shard path where run_windows binds shards to window threads.
    shards_[0]->bind_owner();
    shards_[0]->run_until(t);
    events_[0].store(shards_[0]->events_processed(),
                     std::memory_order_relaxed);
    return;
  }
  run_windows(t);
}

void ShardedRuntime::run() {
  if (shards_.size() == 1) {
    shards_[0]->bind_owner();
    shards_[0]->run();
    events_[0].store(shards_[0]->events_processed(),
                     std::memory_order_relaxed);
    return;
  }
  run_windows(TimePoint{kIdle});
}

bool ShardedRuntime::idle() const {
  for (const auto& rt : shards_) {
    if (rt->next_deadline()) return false;
  }
  return true;
}

std::uint64_t ShardedRuntime::messages() const {
  std::uint64_t total = 0;
  for (auto d : delivered_) total += d;
  return total;
}

std::uint64_t ShardedRuntime::anti_messages() const {
  std::uint64_t total = 0;
  for (auto a : anti_) total += a;
  return total;
}

std::uint64_t ShardedRuntime::wasted_events() const {
  std::uint64_t total = 0;
  for (auto w : wasted_) total += w;
  return total;
}

std::uint64_t ShardedRuntime::total_events() const {
  std::uint64_t total = 0;
  for (const auto& e : events_) total += e.load(std::memory_order_relaxed);
  return total;
}

}  // namespace ilu
