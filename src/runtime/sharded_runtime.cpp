#include "runtime/sharded_runtime.hpp"
// ilu-lint: atomics-floor(relaxed) - horizon_/events_ are per-shard monotone slots; conservative reads only delay GVT
// ilu-lint: atomics-floor(acquire: gen_) - the barrier generation publishes every shard's pre-barrier writes; its bump is acq_rel, waiters spin on acquire

#include <algorithm>
#include <cassert>
#include <limits>
#include <thread>

#include "obs/flight.hpp"

namespace ilu {

namespace {

constexpr std::int64_t kIdle = std::numeric_limits<std::int64_t>::max();

/// Sense-reversing spin barrier. Windows are short (often a handful of
/// events per shard), so a futex-parked barrier would dominate the loop;
/// this one completes in a few hundred ns when all threads are running, and
/// degrades to yielding when the host is oversubscribed (1-core CI).
/// Synchronization: every arrival is an acq_rel RMW on count_, the last
/// arrival publishes through an acq_rel RMW on gen_, and waiters acquire
/// gen_ — so all writes made before the barrier are visible after it.
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned n) : n_(n) {}

  void arrive_and_wait() {
    std::uint64_t gen = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      count_.store(0, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      int spins = 0;
      while (gen_.load(std::memory_order_acquire) == gen) {
        if (++spins > 4096) std::this_thread::yield();
      }
    }
  }

 private:
  unsigned n_;
  std::atomic<unsigned> count_{0};
  std::atomic<std::uint64_t> gen_{0};
};

std::int64_t horizon_of(const SimRuntime& rt) {
  auto d = rt.next_deadline();
  return d ? d->count() : kIdle;
}

}  // namespace

ShardedRuntime::ShardedRuntime(std::size_t shards, Duration lookahead)
    : lookahead_(lookahead) {
  assert(shards >= 1);
  assert(lookahead_ > Duration::zero() &&
         "conservative windows need strictly positive lookahead");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<SimRuntime>());
  }
  outbox_.resize(shards * shards);
  scratch_.resize(shards);
  horizon_ = std::vector<std::atomic<std::int64_t>>(shards);
  events_ = std::vector<std::atomic<std::uint64_t>>(shards);
  delivered_.assign(shards, 0);
}

void ShardedRuntime::send(std::size_t src, std::size_t dst, TimePoint at,
                          std::uint64_t tag, Task fn) {
  assert(src < shards_.size() && dst < shards_.size());
  // send() must run on src's owning thread (its window thread during a run,
  // the driver otherwise) — that confinement is what makes the outbox rows
  // single-writer.
  ILU_ASSERT_OWNER(shards_[src]->owner(), "ShardedRuntime::send");
  assert(at >= shards_[src]->now() + lookahead_ &&
         "cross-shard send violates the lookahead promise");
  if (src == dst) {
    // Same event loop: deliver directly, with the identical (at, tag)
    // ordering key a mailbox delivery would use.
    shards_[dst]->schedule_tagged(at, tag, std::move(fn));
    return;
  }
  outbox_[src * shards_.size() + dst].push_back(Msg{at, tag, std::move(fn)});
}

void ShardedRuntime::merge_inbox(std::size_t dst) {
  const std::size_t s = shards_.size();
  auto& in = scratch_[dst];
  in.clear();
  for (std::size_t src = 0; src < s; ++src) {
    auto& box = outbox_[src * s + dst];
    for (auto& m : box) in.push_back(std::move(m));
    box.clear();
  }
  if (in.empty()) return;
  std::sort(in.begin(), in.end(), [](const Msg& a, const Msg& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.tag < b.tag;
  });
  for (auto& m : in) {
    shards_[dst]->schedule_tagged(m.at, m.tag, std::move(m.fn));
  }
  delivered_[dst] += in.size();
  in.clear();
}

void ShardedRuntime::run_windows(TimePoint limit) {
  const std::size_t s = shards_.size();
  const std::int64_t limit_us = limit.count();
  const std::int64_t cap_us = limit_us == kIdle ? kIdle : limit_us + 1;
  const std::int64_t look_us = lookahead_.count();
  SpinBarrier barrier(static_cast<unsigned>(s));

  auto loop = [&](std::size_t me) {
    SimRuntime& rt = *shards_[me];
    // Window threads own their shard for the duration of the run; the
    // spawning of this thread (resp. the call into run_windows for shard 0)
    // synchronizes the handoff from the previous owner.
    rt.bind_owner();
    for (;;) {
      // Merge BEFORE publishing the horizon: messages parked in the inbox
      // (sent during the previous window, or before run() even started)
      // must count toward this shard's next deadline, or a shard whose
      // only work arrives by mail would report idle and stall the window
      // computation. Between the trailing barrier and this point no shard
      // is executing events, so the outboxes are stable.
      merge_inbox(me);
      horizon_[me].store(horizon_of(rt), std::memory_order_relaxed);
      barrier.arrive_and_wait();  // all merges done, horizons stable
      // Every thread computes the same window from the published horizons,
      // so they all agree on both the bound and on when to stop.
      std::int64_t tmin = kIdle;
      for (auto& h : horizon_) {
        tmin = std::min(tmin, h.load(std::memory_order_relaxed));
      }
      if (tmin == kIdle || tmin > limit_us) break;
      TimePoint w{std::min(tmin + look_us, cap_us)};
      rt.run_before(w);
      // Publish progress for concurrent telemetry readers and stamp the
      // barrier crossing on this thread's flight ring (ts = the shard clock
      // after the window, arg = shard index).
      events_[me].store(rt.events_processed(), std::memory_order_relaxed);
      flight::record(rt.now(), flight::Ev::kWindowBarrier,
                     static_cast<std::uint32_t>(me));
      if (me == 0) ++windows_;
      barrier.arrive_and_wait();  // all outboxes complete
    }
    if (limit_us != kIdle) rt.run_until(limit);
    events_[me].store(rt.events_processed(), std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  threads.reserve(s - 1);
  for (std::size_t i = 1; i < s; ++i) threads.emplace_back(loop, i);
  loop(0);
  for (auto& t : threads) t.join();
  // Ownership returns to the driver thread (the joins synchronize): after a
  // run the caller may inspect clocks and schedule follow-up work on any
  // shard from its own thread.
  for (auto& sh : shards_) sh->bind_owner();
}

void ShardedRuntime::run_until(TimePoint t) {
  if (shards_.size() == 1) {
    // Entry through the sharded API is an ownership handoff, matching the
    // N-shard path where run_windows binds shards to window threads.
    shards_[0]->bind_owner();
    shards_[0]->run_until(t);
    events_[0].store(shards_[0]->events_processed(),
                     std::memory_order_relaxed);
    return;
  }
  run_windows(t);
}

void ShardedRuntime::run() {
  if (shards_.size() == 1) {
    shards_[0]->bind_owner();
    shards_[0]->run();
    events_[0].store(shards_[0]->events_processed(),
                     std::memory_order_relaxed);
    return;
  }
  run_windows(TimePoint{kIdle});
}

bool ShardedRuntime::idle() const {
  for (const auto& rt : shards_) {
    if (rt->next_deadline()) return false;
  }
  return true;
}

std::uint64_t ShardedRuntime::messages() const {
  std::uint64_t total = 0;
  for (auto d : delivered_) total += d;
  return total;
}

std::uint64_t ShardedRuntime::total_events() const {
  std::uint64_t total = 0;
  for (const auto& e : events_) total += e.load(std::memory_order_relaxed);
  return total;
}

}  // namespace ilu
