#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "runtime/runtime.hpp"

/// The pre-wheel RealRuntime, preserved verbatim (header-only) as the
/// micro_ops / run_all baseline: one global mutex guarding a
/// std::priority_queue of events plus an unordered_set of cancelled
/// TimerIds (tombstones). Every schedule() from every producer thread
/// serializes on mu_, cancel is O(heap) deferred, and tombstones for
/// already-fired timers leak forever — exactly the contention and memory
/// behavior the sharded timer wheel replaces (DESIGN.md §14). Not linted
/// or shipped: bench-only.
namespace ilu::bench {

class MutexHeapRuntime final : public Runtime {
 public:
  MutexHeapRuntime()
      : epoch_(std::chrono::steady_clock::now()),
        loop_thread_([this] { loop(); }) {}

  ~MutexHeapRuntime() override { shutdown(); }

  MutexHeapRuntime(const MutexHeapRuntime&) = delete;
  MutexHeapRuntime& operator=(const MutexHeapRuntime&) = delete;

  TimePoint now() const override {
    return std::chrono::duration_cast<Duration>(
        std::chrono::steady_clock::now() - epoch_);
  }

  TimerId schedule(Duration delay, Task fn) override {
    assert(delay >= Duration::zero());
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return kInvalidTimer;
    TimerId id = next_id_++;
    heap_.push(Event{now() + delay, next_seq_++, id, std::move(fn)});
    cv_.notify_one();
    return id;
  }

  bool cancel(TimerId id) override {
    if (id == kInvalidTimer) return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= next_id_) return false;
    return cancelled_.insert(id).second;
  }

  void drain() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] {
      return stopping_ || (heap_.size() == cancelled_.size() && !executing_);
    });
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        if (!loop_thread_.joinable()) return;
      }
      stopping_ = true;
      cv_.notify_all();
      idle_cv_.notify_all();
    }
    if (loop_thread_.joinable()) loop_thread_.join();
  }

  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Timers in the heap, tombstones included — this design cannot tell the
  /// difference without a scan, which is itself part of the comparison.
  /// Bench-side backpressure only.
  std::uint64_t pending() const {
    std::lock_guard<std::mutex> lk(mu_);
    return heap_.size();
  }

 private:
  struct Event {
    TimePoint deadline;
    std::uint64_t seq;
    TimerId id;
    Task fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_) {
      while (!heap_.empty()) {
        auto it = cancelled_.find(heap_.top().id);
        if (it == cancelled_.end()) break;
        cancelled_.erase(it);
        heap_.pop();
      }
      if (heap_.empty()) {
        idle_cv_.notify_all();
        cv_.wait(lock, [this] { return stopping_ || !heap_.empty(); });
        continue;
      }
      TimePoint deadline = heap_.top().deadline;
      TimePoint current = now();
      if (deadline > current) {
        cv_.wait_for(lock, deadline - current);
        continue;
      }
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      executing_ = true;
      lock.unlock();
      ev.fn();
      executed_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
      executing_ = false;
      if (heap_.size() == cancelled_.size()) idle_cv_.notify_all();
    }
  }

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<TimerId> cancelled_;
  std::uint64_t next_seq_ = 0;
  TimerId next_id_ = 1;
  bool stopping_ = false;
  bool executing_ = false;
  std::atomic<std::uint64_t> executed_{0};
  std::thread loop_thread_;
};

}  // namespace ilu::bench
