// Ablation: invocation-queue disciplines (§5.2) and the short-function
// bypass (§5.1) under a saturating heterogeneous workload. SJF minimizes
// short-function waiting but can starve long functions; EEDF (the default)
// balances both; the bypass lets known-short functions skip the queue
// entirely. Reported per policy: flow-time percentiles for short vs long
// functions and the max stretch (the starvation indicator).

#include "bench_util.hpp"

namespace {

using namespace ilu;
using namespace ilu::bench;

struct Out {
  Summary short_flow, long_flow;
  double max_stretch = 0.0;
  double mean_stretch = 0.0;
};

Out run(const std::string& policy, Duration bypass) {
  SimRuntime rt;
  WorkerConfig cfg;
  cfg.cores = 8;
  cfg.memory_mb = 16 * 1024;
  cfg.regulator.limit = 8;  // no overcommit: queueing is the bottleneck
  cfg.queue_policy = policy;
  cfg.bypass_threshold = bypass;
  cfg.seed = 3;
  Worker w(rt, cfg);
  auto short_fn = w.register_function(lookbusy(msecs(80), 128, msecs(300)));
  auto long_fn = w.register_function(lookbusy(secs(4), 256, secs(1)));
  w.start();

  // Saturating open-loop mix: shorts at 40/s, longs at 2.5/s
  // (demand ~ 40*0.08 + 2.5*4 = 13.2 core-equivalents on 8 cores).
  std::vector<SyntheticFunctionSpec> specs = {
      {.profile = w.profile(short_fn), .mean_iat = msecs(25),
       .exponential = true},
      {.profile = w.profile(long_fn), .mean_iat = msecs(400),
       .exponential = true},
  };
  auto trace = make_synthetic_trace(specs, mins(2), 17);

  Out out;
  double stretch_sum = 0.0;
  std::size_t n = 0;
  auto results = replay_trace(
      rt,
      [&](FunctionId fn, std::function<void(const InvokeResult&)> cb) {
        w.invoke(fn, std::move(cb));
      },
      trace, mins(10));
  for (const auto& r : results) {
    if (!r.success) continue;
    (r.fn == short_fn ? out.short_flow : out.long_flow).add_ms(r.flow_time());
    out.max_stretch = std::max(out.max_stretch, r.stretch());
    stretch_sum += r.stretch();
    ++n;
  }
  out.mean_stretch = n ? stretch_sum / static_cast<double>(n) : 0.0;
  w.shutdown();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = ilu::exp::threads_from_args(argc, argv);
  banner("Ablation — queue disciplines x bypass under saturation");
  std::printf("%-8s %-8s | %9s %9s | %9s %9s | %9s %9s\n", "policy",
              "bypass", "short p50", "short p99", "long p50", "long p99",
              "mean str", "max str");
  CsvWriter csv(results_dir() + "/ablation_queue_policies.csv");
  csv.row("policy", "bypass_ms", "short_p50_ms", "short_p99_ms",
          "long_p50_ms", "long_p99_ms", "mean_stretch", "max_stretch");

  // Each (policy, bypass) cell is a self-contained worker simulation;
  // fan the grid out and report in submission order.
  struct Cell {
    const char* policy;
    ilu::Duration bypass;
  };
  std::vector<Cell> cells;
  for (const char* policy : {"FCFS", "SJF", "EEDF", "RARE"}) {
    for (ilu::Duration bypass : {ilu::Duration::zero(), ilu::msecs(200)}) {
      cells.push_back({policy, bypass});
    }
  }
  std::vector<std::function<Out()>> tasks;
  for (const auto& c : cells) {
    tasks.emplace_back([c] { return run(c.policy, c.bypass); });
  }
  auto results = ilu::exp::SweepRunner({.threads = threads}).run(tasks);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    const auto& o = results[i];
    std::printf("%-8s %-8s | %9.0f %9.0f | %9.0f %9.0f | %9.2f %9.1f\n",
                c.policy, c.bypass > ilu::Duration::zero() ? "on" : "off",
                o.short_flow.p50(), o.short_flow.p99(), o.long_flow.p50(),
                o.long_flow.p99(), o.mean_stretch, o.max_stretch);
    csv.row(c.policy, to_ms(c.bypass), o.short_flow.p50(),
            o.short_flow.p99(), o.long_flow.p50(), o.long_flow.p99(),
            o.mean_stretch, o.max_stretch);
  }
  std::printf(
      "\nExpected shape: SJF gives shorts the best waits but the worst\n"
      "long-function tail (starvation); EEDF balances; bypass helps shorts\n"
      "under every discipline.\n");
  return 0;
}
