// Ablation: the concurrency regulator (§5.1). Sweeps fixed concurrency
// limits (the overcommitment ratio) and compares the AIMD dynamic modes
// (load-average signal and the paper-suggested stretch signal) on a bursty
// workload: throughput, p99 flow time, and mean stretch.

#include "bench_util.hpp"

namespace {

using namespace ilu;
using namespace ilu::bench;

struct Out {
  std::size_t completed = 0;
  double p99_flow_ms = 0.0;
  double mean_stretch = 0.0;
  double final_limit = 0.0;
};

Out run(RegulatorConfig reg) {
  SimRuntime rt;
  WorkerConfig cfg;
  cfg.cores = 16;
  cfg.memory_mb = 24 * 1024;
  cfg.regulator = reg;
  cfg.seed = 6;
  Worker w(rt, cfg);
  auto fn = w.register_function(lookbusy(msecs(500), 192, secs(1)));
  w.start();

  // Bursty arrivals: 3x the core count arrives in pulses every 4 s.
  auto trace = [&] {
    Trace t;
    t.functions = {w.profile(fn)};
    t.duration = mins(3);
    for (Duration at{}; at < t.duration; at += secs(4)) {
      for (int i = 0; i < 48; ++i) t.events.push_back({at, 0});
    }
    return t;
  }();

  Summary flow;
  double stretch_sum = 0.0;
  auto results = replay_trace(
      rt,
      [&](FunctionId f, std::function<void(const InvokeResult&)> cb) {
        w.invoke(f, std::move(cb));
      },
      trace, mins(10));
  for (const auto& r : results) {
    if (!r.success) continue;
    flow.add_ms(r.flow_time());
    stretch_sum += r.stretch();
  }
  Out out;
  out.completed = flow.count();
  out.p99_flow_ms = flow.p99();
  out.mean_stretch =
      flow.count() ? stretch_sum / static_cast<double>(flow.count()) : 0.0;
  out.final_limit = w.status().concurrency_limit;
  w.shutdown();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = ilu::exp::threads_from_args(argc, argv);
  banner("Ablation — concurrency regulator: fixed limits vs AIMD");
  std::printf("%-22s %10s %12s %10s %10s\n", "mode", "completed",
              "p99 flow ms", "mean str", "limit@end");
  CsvWriter csv(results_dir() + "/ablation_regulator.csv");
  csv.row("mode", "completed", "p99_flow_ms", "mean_stretch", "final_limit");

  // Build the mode list (fixed limits + both AIMD signals), fan the
  // independent simulations out, report in submission order.
  struct Mode {
    std::string print_name;
    std::string csv_name;
    RegulatorConfig reg;
  };
  std::vector<Mode> modes;
  for (double limit : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    std::string name = "fixed:" + std::to_string(static_cast<int>(limit));
    modes.push_back({name, name, RegulatorConfig{.limit = limit}});
  }
  {
    RegulatorConfig reg{.limit = 16.0, .dynamic = true};
    reg.interval = secs(1);
    modes.push_back({"aimd:load", "aimd_load", reg});
  }
  {
    RegulatorConfig reg{.limit = 16.0, .dynamic = true};
    reg.signal = CongestionSignal::Stretch;
    reg.stretch_threshold = 2.5;
    reg.interval = secs(1);
    modes.push_back({"aimd:stretch", "aimd_stretch", reg});
  }

  std::vector<std::function<Out()>> tasks;
  for (const auto& m : modes) {
    tasks.emplace_back([reg = m.reg] { return run(reg); });
  }
  auto results = ilu::exp::SweepRunner({.threads = threads}).run(tasks);

  for (std::size_t i = 0; i < modes.size(); ++i) {
    const auto& o = results[i];
    std::printf("%-22s %10zu %12.0f %10.2f %10.0f\n",
                modes[i].print_name.c_str(), o.completed, o.p99_flow_ms,
                o.mean_stretch, o.final_limit);
    csv.row(modes[i].csv_name, o.completed, o.p99_flow_ms, o.mean_stretch,
            o.final_limit);
  }
  std::printf(
      "\nLow fixed limits queue bursts (high p99 flow, low stretch); high\n"
      "limits timeshare (low queueing, inflated execution). AIMD finds the\n"
      "knee without manual tuning — the §5.1 tradeoff.\n");
  return 0;
}
