// Fig 8: dynamic vertical scaling of the keep-alive cache. A proportional
// controller keeps the miss speed (cold starts/sec) near a target with a
// 30% error deadband; the average cache size comes out well below the
// conservative static 10,000 MB provisioning — the paper reports a ~30%
// reduction without hurting performance.

#include "bench_util.hpp"

int main() {
  using namespace ilu;
  using namespace ilu::bench;

  AzureModelConfig mcfg;
  mcfg.population = 50000;
  mcfg.days = 1.0;
  AzureTraceModel model(mcfg);
  auto trace = model.sample_representative(400);

  // The controller's objective (as in the paper): hold a fixed acceptable
  // miss speed with as little memory as possible. We calibrate the target
  // as the steady-state miss speed of a 7,000 MB cache — i.e. "the
  // performance a right-sized server would give" — measured after the
  // first two hours so the cold-start ramp does not inflate it. (The
  // paper's absolute 0.0015/s corresponds to its much lower-rate replay.)
  auto baseline = run_keepalive_sim(trace, "GD", 10000);

  // Measure the 7 GB baseline through the exact estimator the controller
  // uses (a 30-minute sliding window sampled every 2 minutes, cold starts
  // plus drops), averaging after the first two hours of warm-up.
  double target = 0.0;
  {
    auto policy = make_policy("GD");
    KeepAliveCache cache(*policy, {.capacity_mb = 7000}, trace.functions);
    SlidingRateMeter meter(mins(30));
    double sum = 0.0;
    std::size_t n = 0;
    TimePoint next_sample = mins(2);
    for (const auto& e : trace.events) {
      while (next_sample <= e.at) {
        if (next_sample >= secs(7200)) {
          sum += meter.rate_per_sec(next_sample);
          ++n;
        }
        next_sample += mins(2);
      }
      auto out = cache.on_invocation(e.fn, e.at);
      if (!out.warm) meter.record(e.at);
    }
    target = n ? sum / static_cast<double>(n) : 1.0;
  }

  ProvisionerConfig cfg;
  cfg.initial_capacity_mb = 10000;
  cfg.target_miss_rate = target;
  cfg.error_tolerance = 0.30;
  cfg.interval = mins(2);
  cfg.window = mins(30);
  cfg.gain = 0.10;
  // Floor well above the cold-storm bistability region: below ~3 GB this
  // workload collapses into a self-sustaining drop regime.
  cfg.min_capacity_mb = 4096;
  cfg.max_capacity_mb = 20000;

  auto r = run_dynamic_provisioning(trace, "GD", cfg);

  banner("Fig 8 — dynamic cache-size adjustment (GD, representative trace)");
  double static_rate = static_cast<double>(baseline.stats.cold_starts) /
                       to_sec(trace.duration);
  std::printf(
      "target miss speed: %.4f /s (7 GB steady state); static 10,000 MB "
      "full-day rate: %.4f /s\n\n",
      cfg.target_miss_rate, static_rate);
  std::printf("%10s %14s %14s %8s\n", "t (min)", "miss rate /s",
              "capacity MB", "resized");
  CsvWriter csv(results_dir() + "/fig8_dynamic_provisioning.csv");
  csv.row("t_min", "miss_rate_per_s", "capacity_mb", "resized");
  for (std::size_t i = 0; i < r.timeseries.size(); ++i) {
    const auto& s = r.timeseries[i];
    csv.row(to_sec(s.at) / 60.0, s.miss_rate, s.capacity_mb,
            s.resized ? 1 : 0);
    if (i % 5 == 0) {
      std::printf("%10.0f %14.4f %14llu %8s\n", to_sec(s.at) / 60.0,
                  s.miss_rate, (unsigned long long)s.capacity_mb,
                  s.resized ? "yes" : "");
    }
  }
  double reduction =
      100.0 * (1.0 - r.average_capacity_mb /
                         static_cast<double>(r.static_capacity_mb));
  std::printf("\naverage capacity: %.0f MB vs static %llu MB  (%.1f%% reduction)\n",
              r.average_capacity_mb,
              (unsigned long long)r.static_capacity_mb, reduction);
  std::printf("dynamic run cold fraction: %.4f (static baseline %.4f)\n",
              r.stats.cold_fraction(), baseline.cold_fraction());
  std::printf("\nPaper reference: ~30%% average reduction (<7000 MB vs 10000 MB)\n"
              "while keeping miss speed near target.\n");
  return 0;
}
