#pragma once

#include <cassert>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "containers/container.hpp"
#include "keepalive/policy.hpp"

/// Faithful replica of the pointer-identity ContainerPool this repo shipped
/// before the slab/handle refactor (DESIGN.md §11): per-container
/// `make_unique`, ownership in an `unordered_map<Container*, unique_ptr>`,
/// per-function idle vectors, and a `multimap` eviction-rank index with an
/// iterator side-map. Kept ONLY as the before/after baseline for
/// `bench/pool_churn` — production code uses the slab-backed pool in
/// src/keepalive/pool.hpp. Background sweeping and metrics are stripped;
/// the churn-path semantics (add/evict/acquire/return) are unchanged.
namespace ilu {

class PointerContainerPool {
 public:
  PointerContainerPool(KeepAlivePolicy& policy, std::uint64_t capacity_mb)
      : policy_(policy), capacity_mb_(capacity_mb) {}

  Container* acquire(FunctionId fn, TimePoint now) {
    auto it = idle_by_fn_.find(fn);
    if (it == idle_by_fn_.end() || it->second.empty()) return nullptr;
    Container* c = it->second.back();
    remove_idle(c);
    c->state = ContainerState::Running;
    ++c->entry.uses;
    c->entry.last_used = now;
    policy_.on_access(c->entry, now);
    return c;
  }

  Container* add_container(FunctionId fn, const FunctionProfile& profile,
                           TimePoint now) {
    if (!make_room(profile.mem_mb)) return nullptr;
    auto owned = std::make_unique<Container>();
    Container* c = owned.get();
    c->id = next_id_++;
    c->fn = fn;
    c->profile = profile;
    c->state = ContainerState::Provisioning;
    c->entry.fn = fn;
    c->entry.mem_mb = profile.mem_mb;
    c->entry.created = now;
    c->entry.last_used = now;
    used_mb_ += profile.mem_mb;
    containers_.emplace(c, std::move(owned));
    return c;
  }

  void return_container(Container* c, TimePoint now) {
    c->state = ContainerState::Idle;
    c->entry.last_used = now;
    policy_.on_access(c->entry, now);
    rank_pos_[c] = idle_rank_.emplace(policy_.eviction_rank(c->entry), c);
    idle_by_fn_[c->fn].push_back(c);
  }

  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t used_mb() const { return used_mb_; }
  std::size_t total_count() const { return containers_.size(); }

 private:
  void remove_idle(Container* c) {
    auto it = rank_pos_.find(c);
    assert(it != rank_pos_.end());
    idle_rank_.erase(it->second);
    rank_pos_.erase(it);
    auto& vec = idle_by_fn_[c->fn];
    for (auto rit = vec.rbegin(); rit != vec.rend(); ++rit) {
      if (*rit == c) {
        vec.erase(std::next(rit).base());
        break;
      }
    }
  }

  bool make_room(std::uint32_t mem_mb) {
    while (used_mb_ + mem_mb > capacity_mb_ && !idle_rank_.empty()) {
      Container* victim = idle_rank_.begin()->second;
      remove_idle(victim);
      policy_.on_evict(victim->entry);
      ++evictions_;
      auto it = containers_.find(victim);
      used_mb_ -= victim->profile.mem_mb;
      containers_.erase(it);  // unique_ptr destroys the record
    }
    return used_mb_ + mem_mb <= capacity_mb_;
  }

  KeepAlivePolicy& policy_;
  std::uint64_t capacity_mb_;
  std::uint64_t used_mb_ = 0;
  ContainerId next_id_ = 1;
  std::uint64_t evictions_ = 0;

  std::unordered_map<Container*, std::unique_ptr<Container>> containers_;
  std::unordered_map<FunctionId, std::vector<Container*>> idle_by_fn_;
  std::multimap<double, Container*> idle_rank_;
  std::unordered_map<Container*, std::multimap<double, Container*>::iterator>
      rank_pos_;
};

}  // namespace ilu
