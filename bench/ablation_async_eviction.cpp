// Ablation: asynchronous keep-alive eviction (§4.3.2). The worker evicts
// in a background sweep that maintains a free-memory buffer; the ablation
// disables the sweep so every cold start must synchronously evict victims
// on the critical path. Under memory pressure the synchronous variant
// shows higher cold-start latency variance — the jitter the paper's design
// removes.

#include "bench_util.hpp"

namespace {

using namespace ilu;
using namespace ilu::bench;

struct Out {
  Summary cold_overhead;
  std::uint64_t colds = 0;
};

Out run(bool background_eviction) {
  SimRuntime rt;
  WorkerConfig cfg;
  cfg.cores = 48;
  cfg.memory_mb = 6 * 1024;  // tight: ~12 x 512 MB containers
  if (background_eviction) {
    cfg.pool.free_buffer_mb = 1024;
    cfg.pool.sweep_interval = msecs(500);
  } else {
    cfg.pool.free_buffer_mb = 0;
    cfg.pool.sweep_interval = Duration::zero();  // sync eviction only
  }
  cfg.seed = 9;
  Worker w(rt, cfg);
  // 24 chunky functions invoked round-robin: constant eviction pressure.
  std::vector<FunctionId> fns;
  for (int i = 0; i < 24; ++i) {
    auto p = lookbusy(msecs(400), 512, secs(1));
    p.name = "fn_" + std::to_string(i);
    fns.push_back(w.register_function(p));
  }
  w.start();
  Out out;
  std::size_t done = 0, issued = 0;
  constexpr std::size_t kTotal = 600;
  std::function<void()> next = [&] {
    if (issued == kTotal) return;
    FunctionId fn = fns[issued % fns.size()];
    ++issued;
    w.invoke(fn, [&](const InvokeResult& r) {
      if (r.cold) {
        out.cold_overhead.add_ms(r.overhead());
        ++out.colds;
      }
      ++done;
      next();
    });
    // Two in flight to keep the pool churning.
    if (issued < 2) next();
  };
  next();
  while (done < kTotal) rt.run_for(secs(10));
  w.shutdown();
  return out;
}

}  // namespace

int main() {
  banner("Ablation — background vs synchronous keep-alive eviction");
  auto async_ev = run(true);
  auto sync_ev = run(false);
  std::printf("%-24s %10s %10s %10s %8s\n", "mode", "p50 ms", "p99 ms",
              "max ms", "colds");
  std::printf("%-24s %10.1f %10.1f %10.1f %8llu\n", "background + buffer",
              async_ev.cold_overhead.p50(), async_ev.cold_overhead.p99(),
              async_ev.cold_overhead.max(),
              (unsigned long long)async_ev.colds);
  std::printf("%-24s %10.1f %10.1f %10.1f %8llu\n", "synchronous only",
              sync_ev.cold_overhead.p50(), sync_ev.cold_overhead.p99(),
              sync_ev.cold_overhead.max(),
              (unsigned long long)sync_ev.colds);
  CsvWriter csv(results_dir() + "/ablation_async_eviction.csv");
  csv.row("mode", "p50_ms", "p99_ms", "max_ms", "colds");
  csv.row("background", async_ev.cold_overhead.p50(),
          async_ev.cold_overhead.p99(), async_ev.cold_overhead.max(),
          async_ev.colds);
  csv.row("synchronous", sync_ev.cold_overhead.p50(),
          sync_ev.cold_overhead.p99(), sync_ev.cold_overhead.max(),
          sync_ev.colds);
  std::printf(
      "\nBackground eviction keeps a free-memory buffer so cold starts\n"
      "rarely wait for victim selection on the critical path (§4.3.2).\n");
  return 0;
}
