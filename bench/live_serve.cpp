// In-situ open-loop serving benchmark: pushes a synthetic arrival trace
// through a live Worker on a RealRuntime (wall-clock, sharded-stage timer
// wheel) at a sweep of offered rates, and reports invoke-overhead tails.
//
//   ./build/bench/live_serve [--rates r1,r2,... (per minute)]
//                            [--duration SECS] [--producers N]
//                            [--out PATH] [--status] [--smoke]
//
// Default sweep: 0.25M, 0.5M, 1M, 1.25M invocations/minute for 8 s each.
// Each stage gets a fresh Worker; functions are warmed once before the
// measured window so the sweep compares steady-state overhead, not cold
// storms. The harness is open-loop (src/exp/live_load.hpp): arrivals are
// paced by the trace clock, and submission lateness is reported alongside
// the rate so saturation cannot hide behind coordinated omission.
//
// --smoke (wired into ctest under the `perf` label) runs one small stage
// and asserts only shape, not rate: sanitizer builds run the same test.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <cmath>
#include <thread>
#include <vector>

#include "bench_util.hpp"

namespace ilu {
namespace {

struct StageResult {
  double target_per_min = 0.0;
  double offered_per_sec = 0.0;
  double achieved_per_sec = 0.0;
  double wall_s = 0.0;
  bool timed_out = false;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t cold = 0;
  std::uint64_t bypassed = 0;
  double lateness_p50_ms = 0.0;
  double lateness_p99_ms = 0.0;
  double submit_lag_p50_ms = 0.0;
  double submit_lag_p99_ms = 0.0;
  double overhead_p50_ms = 0.0;
  double overhead_p99_ms = 0.0;
  double overhead_p999_ms = 0.0;
};

constexpr std::size_t kFunctions = 64;

/// A worker provisioned so the *control plane* is the bottleneck under
/// load, not the modeled machine: the paper's overhead claims are about the
/// invoke path, so the sweep gives the modeled executor ample cores/memory
/// and turns span tracing off (the flight recorder stays on — it is the
/// always-on layer).
WorkerConfig live_worker_config() {
  WorkerConfig cfg;
  cfg.name = "live";
  cfg.cores = 384.0;
  cfg.memory_mb = 512 * 1024;
  cfg.regulator.limit = 2048.0;
  cfg.bypass_threshold = msecs(50);
  cfg.bypass_load_limit = 64.0;
  cfg.netns.target_size = 2048;
  cfg.netns.low_watermark = 512;
  cfg.tracing = false;
  cfg.predictive_prewarm = false;
  return cfg;
}

std::vector<SyntheticFunctionSpec> make_specs(double per_sec) {
  std::vector<SyntheticFunctionSpec> specs;
  specs.reserve(kFunctions);
  const double fn_iat_us = 1e6 * static_cast<double>(kFunctions) / per_sec;
  for (std::size_t i = 0; i < kFunctions; ++i) {
    SyntheticFunctionSpec s;
    s.profile.name = "live_fn_" + std::to_string(i);
    s.profile.mem_mb = 128;
    s.profile.warm_time = msecs(4);
    s.profile.init_time = msecs(20);
    s.mean_iat = usecs(static_cast<std::int64_t>(fn_iat_us));
    // Constant spacing with staggered phases: the aggregate arrival process
    // is uniform at exactly the target rate, so "sustained N/min" is a
    // statement about the offered trace, not a sampling accident.
    s.exponential = false;
    s.phase = usecs(static_cast<std::int64_t>(
        fn_iat_us * static_cast<double>(i) / kFunctions));
    specs.push_back(std::move(s));
  }
  return specs;
}

StageResult run_stage(double per_min, Duration duration,
                      std::size_t producers, bool status) {
  StageResult out;
  out.target_per_min = per_min;
  const double per_sec = per_min / 60.0;

  RealRuntime rt;
  WorkerConfig cfg = live_worker_config();
  Worker w(rt, cfg);
  std::vector<FunctionId> fns;
  auto specs = make_specs(per_sec);
  for (auto& s : specs) fns.push_back(w.register_function(s.profile));
  w.start();

  // Provision warm capacity for the offered concurrency before measuring:
  // with one container per function, overlapping arrivals on the same
  // function trigger cold creates whose modeled containerd latency holds
  // memory and netns slots long enough to self-amplify into a cold storm.
  // Prewarm enough containers per function to absorb the peak overlap
  // (per-fn rate × ~6 ms busy window, with 4x headroom), then invoke each
  // function once so client caches are hot too.
  {
    const double per_fn_per_sec = per_sec / static_cast<double>(kFunctions);
    const auto prewarms = static_cast<std::size_t>(
        std::max(4.0, std::ceil(per_fn_per_sec * 0.006 * 4.0)));
    // release/acquire: the final increment must happen-before main leaving
    // the wait loop — `warmed` is stack-scoped and its slot is reused.
    std::atomic<std::size_t> warmed{0};
    const std::size_t expected = fns.size() * prewarms;
    for (FunctionId f : fns) {
      for (std::size_t k = 0; k < prewarms; ++k) {
        rt.post([&w, &warmed, f] {
          w.prewarm(f, [&warmed](bool) {
            warmed.fetch_add(1, std::memory_order_release);
          });
        });
      }
    }
    while (warmed.load(std::memory_order_acquire) < expected) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    warmed.store(0, std::memory_order_relaxed);
    for (FunctionId f : fns) {
      rt.post([&w, &warmed, f] {
        w.invoke(f, [&warmed](const InvokeResult&) {
          warmed.fetch_add(1, std::memory_order_release);
        });
      });
    }
    while (warmed.load(std::memory_order_acquire) < fns.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  TraceArena arena = make_synthetic_arena(specs, duration, /*seed=*/17);
  EventView view(arena);

  TelemetrySampler sampler(rt, msecs(500));
  sampler.add_registry("w:", &w.metrics());
  sampler.add_counter_probe("rt:executed", [&rt] { return rt.executed(); });
  sampler.add_probe("rt:pending",
                    [&rt] { return static_cast<double>(rt.pending()); });
  LiveLoadStats stats;
  sampler.add_counter_probe("load:submitted", [&stats] {
    return stats.submitted.load(std::memory_order_relaxed);
  });
  sampler.add_counter_probe("load:finished",
                            [&stats] { return stats.finished(); });
  if (status) sampler.set_status_stream(&std::cerr);
  sampler.start();

  LiveLoadHarness harness(
      rt, [&w](FunctionId f, LiveLoadHarness::CompletionCb cb) {
        w.invoke(f, std::move(cb));
      });
  LiveLoadConfig lcfg;
  lcfg.producers = producers;
  harness.run(view, lcfg, &stats);

  sampler.stop();
  sampler.sample_now();

  // Worker teardown belongs to the loop thread (it is loop-confined).
  std::atomic<bool> down{false};
  rt.post([&w, &down] {
    w.shutdown();
    down.store(true, std::memory_order_release);
  });
  while (!down.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  out.offered_per_sec = stats.offered_per_sec;
  out.achieved_per_sec = stats.achieved_per_sec;
  out.wall_s = stats.wall_s;
  out.timed_out = stats.timed_out;
  out.submitted = stats.submitted.load(std::memory_order_relaxed);
  out.completed = stats.completed.load(std::memory_order_relaxed);
  out.failed = stats.failed.load(std::memory_order_relaxed);
  out.dropped = stats.dropped.load(std::memory_order_relaxed);
  out.cold = stats.cold.load(std::memory_order_relaxed);
  out.bypassed = stats.bypassed.load(std::memory_order_relaxed);
  out.lateness_p50_ms = stats.lateness_ms.percentile(0.50);
  out.lateness_p99_ms = stats.lateness_ms.percentile(0.99);
  out.submit_lag_p50_ms = stats.submit_lag_ms.percentile(0.50);
  out.submit_lag_p99_ms = stats.submit_lag_ms.percentile(0.99);
  out.overhead_p50_ms = stats.overhead_ms.percentile(0.50);
  out.overhead_p99_ms = stats.overhead_ms.percentile(0.99);
  out.overhead_p999_ms = stats.overhead_ms.percentile(0.999);
  return out;
}

void print_stage(const StageResult& r) {
  std::printf(
      "%9.0f/min  offered %8.0f/s  achieved %8.0f/s  wall %6.2fs%s\n"
      "             submitted %8llu  completed %8llu  failed %llu  "
      "dropped %llu  cold %llu  bypassed %llu\n"
      "             late p50/p99 %7.3f/%7.3f ms   lag p50/p99 %7.3f/%7.3f "
      "ms\n"
      "             overhead p50/p99/p999 %7.3f/%7.3f/%7.3f ms\n",
      r.target_per_min, r.offered_per_sec, r.achieved_per_sec, r.wall_s,
      r.timed_out ? "  [TIMED OUT]" : "",
      static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.failed),
      static_cast<unsigned long long>(r.dropped),
      static_cast<unsigned long long>(r.cold),
      static_cast<unsigned long long>(r.bypassed), r.lateness_p50_ms,
      r.lateness_p99_ms, r.submit_lag_p50_ms, r.submit_lag_p99_ms,
      r.overhead_p50_ms, r.overhead_p99_ms, r.overhead_p999_ms);
}

JsonObject stage_json(const StageResult& r) {
  JsonObject o;
  o["target_per_min"] = r.target_per_min;
  o["offered_per_sec"] = r.offered_per_sec;
  o["achieved_per_sec"] = r.achieved_per_sec;
  o["wall_s"] = r.wall_s;
  o["timed_out"] = r.timed_out;
  o["submitted"] = r.submitted;
  o["completed"] = r.completed;
  o["failed"] = r.failed;
  o["dropped"] = r.dropped;
  o["cold"] = r.cold;
  o["bypassed"] = r.bypassed;
  o["lateness_p50_ms"] = r.lateness_p50_ms;
  o["lateness_p99_ms"] = r.lateness_p99_ms;
  o["submit_lag_p50_ms"] = r.submit_lag_p50_ms;
  o["submit_lag_p99_ms"] = r.submit_lag_p99_ms;
  o["overhead_p50_ms"] = r.overhead_p50_ms;
  o["overhead_p99_ms"] = r.overhead_p99_ms;
  o["overhead_p999_ms"] = r.overhead_p999_ms;
  return o;
}

}  // namespace
}  // namespace ilu

int main(int argc, char** argv) {
  using namespace ilu;
  std::vector<double> rates_per_min = {250000, 500000, 1000000, 1250000};
  double duration_s = 8.0;
  std::size_t producers = 4;
  std::string out_path;
  bool smoke = false;
  bool status = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rates") == 0 && i + 1 < argc) {
      rates_per_min.clear();
      std::string arg = argv[++i];
      std::size_t pos = 0;
      while (pos < arg.size()) {
        std::size_t comma = arg.find(',', pos);
        rates_per_min.push_back(
            std::stod(arg.substr(pos, comma - pos)));
        pos = comma == std::string::npos ? arg.size() : comma + 1;
      }
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration_s = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--producers") == 0 && i + 1 < argc) {
      producers = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--status") == 0) {
      status = true;
    }
  }

  if (smoke) {
    // Shape check only: one small stage, generous bounds, no rate
    // assertion — sanitizer builds (TSan ~10x slower) run this same test.
    rates_per_min = {30000};
    duration_s = 2.0;
    producers = 2;
  }

  bench::banner("live_serve — open-loop in-situ Worker serving sweep");
  std::printf("producers %zu, stage duration %.1f s, %zu functions\n\n",
              producers, duration_s, kFunctions);

  std::vector<StageResult> results;
  for (double rate : rates_per_min) {
    results.push_back(run_stage(
        rate, usecs(static_cast<std::int64_t>(duration_s * 1e6)), producers,
        status));
    print_stage(results.back());
  }

  if (!out_path.empty()) {
    JsonObject doc;
    doc["schema"] = "ilu-live-serve-v1";
    doc["producers"] = static_cast<std::uint64_t>(producers);
    doc["duration_s"] = duration_s;
    JsonArray stages;
    for (const auto& r : results) stages.emplace_back(stage_json(r));
    doc["stages"] = stages;
    std::ofstream out(out_path);
    out << JsonValue(doc).dump(2) << "\n";
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  if (smoke) {
    const StageResult& r = results.front();
    if (r.completed == 0 || r.overhead_p50_ms <= 0.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: overhead histogram not populated "
                   "(completed=%llu p50=%f)\n",
                   static_cast<unsigned long long>(r.completed),
                   r.overhead_p50_ms);
      return 1;
    }
    if (r.timed_out) {
      std::fprintf(stderr, "SMOKE FAIL: completion wait timed out\n");
      return 1;
    }
    if (r.overhead_p99_ms > 2500.0) {
      std::fprintf(stderr, "SMOKE FAIL: overhead p99 %.1f ms over bound\n",
                   r.overhead_p99_ms);
      return 1;
    }
    std::printf("\nsmoke OK: %llu completed, overhead p99 %.3f ms\n",
                static_cast<unsigned long long>(r.completed),
                r.overhead_p99_ms);
  }
  return 0;
}
