// Cluster-layer study (§4.1's CH-BL adoption): warm-start rate, latency,
// and load balance for CH-BL vs round-robin vs least-loaded as the cluster
// scales, and a sweep of the CH-BL load-bound factor. Not a paper figure —
// it validates the load-balancing layer the paper builds on (FaasLB,
// HPDC '22) at trace scale.

#include "bench_util.hpp"

namespace {

using namespace ilu;
using namespace ilu::bench;

struct Out {
  double warm_pct = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double imbalance = 0.0;  // max/mean routed
  std::uint64_t forwarded = 0;
};

Out run(std::size_t workers, LbPolicy lb, double bound_factor) {
  SimRuntime rt;
  ClusterConfig cfg;
  cfg.num_workers = workers;
  cfg.lb = lb;
  cfg.chbl.bound_factor = bound_factor;
  cfg.worker.cores = 8;
  cfg.worker.memory_mb = 8 * 1024;
  Cluster cluster(rt, cfg);

  std::vector<SyntheticFunctionSpec> specs;
  Rng rng(23);
  auto bench_fns = function_bench();
  for (int i = 0; i < 64; ++i) {
    auto p = bench_fns[i % bench_fns.size()];
    if (p.name == "video_encoding") p = bench_fns[(i + 1) % bench_fns.size()];
    p.name += "_" + std::to_string(i);
    specs.push_back({.profile = p,
                     .mean_iat = secs(rng.uniform(1.5, 10.0)),
                     .exponential = true});
  }
  auto trace = make_synthetic_trace(specs, mins(8), 29);
  for (const auto& f : trace.functions) cluster.register_function(f);
  cluster.start();

  OpenLoopDriver d(rt, [&](FunctionId fn,
                           std::function<void(const InvokeResult&)> cb) {
    cluster.invoke(fn, std::move(cb));
  });
  d.start(trace);
  while (!d.done()) rt.run_for(secs(20));
  cluster.shutdown();

  Out out;
  std::uint64_t warm = 0, cold = 0;
  for (std::size_t i = 0; i < cluster.num_workers(); ++i) {
    warm += cluster.worker(i).warm_starts();
    cold += cluster.worker(i).cold_starts();
  }
  out.warm_pct = 100.0 * warm / std::max<std::uint64_t>(1, warm + cold);
  Summary lat;
  for (const auto& r : d.results()) {
    if (r.success) lat.add_ms(r.flow_time());
  }
  out.p50_ms = lat.p50();
  out.p99_ms = lat.p99();
  double total = 0.0, mx = 0.0;
  for (auto c : cluster.routed()) {
    total += static_cast<double>(c);
    mx = std::max(mx, static_cast<double>(c));
  }
  out.imbalance = mx / std::max(1.0, total / static_cast<double>(workers));
  out.forwarded = cluster.forwarded();
  return out;
}

}  // namespace

int main() {
  banner("Cluster scaling — CH-BL vs RR vs least-loaded");
  std::printf("%8s %-14s %8s %9s %10s %10s %10s\n", "workers", "lb", "warm%",
              "p50 ms", "p99 ms", "imbalance", "forwarded");
  CsvWriter csv(results_dir() + "/cluster_scaling.csv");
  csv.row("workers", "lb", "bound", "warm_pct", "p50_ms", "p99_ms",
          "imbalance", "forwarded");
  for (std::size_t workers : {2u, 4u, 8u}) {
    struct {
      LbPolicy lb;
      const char* name;
    } policies[] = {{LbPolicy::ChBl, "chbl"},
                    {LbPolicy::RoundRobin, "rr"},
                    {LbPolicy::LeastLoaded, "least"}};
    for (auto [lb, name] : policies) {
      auto o = run(workers, lb, 2.0);
      std::printf("%8zu %-14s %8.1f %9.0f %10.0f %10.2f %10llu\n", workers,
                  name, o.warm_pct, o.p50_ms, o.p99_ms, o.imbalance,
                  (unsigned long long)o.forwarded);
      csv.row(workers, name, 2.0, o.warm_pct, o.p50_ms, o.p99_ms,
              o.imbalance, o.forwarded);
    }
  }
  std::printf("\nCH-BL bound-factor sweep (8 workers): locality vs balance\n");
  std::printf("%8s %8s %9s %10s %10s %10s\n", "bound", "warm%", "p50 ms",
              "p99 ms", "imbalance", "forwarded");
  for (double bound : {1.1, 1.5, 2.0, 4.0}) {
    auto o = run(8, LbPolicy::ChBl, bound);
    std::printf("%8.1f %8.1f %9.0f %10.0f %10.2f %10llu\n", bound,
                o.warm_pct, o.p50_ms, o.p99_ms, o.imbalance,
                (unsigned long long)o.forwarded);
    csv.row(8, "chbl", bound, o.warm_pct, o.p50_ms, o.p99_ms, o.imbalance,
            o.forwarded);
  }
  std::printf(
      "\nCH-BL keeps warm rates high via locality; tighter bounds trade\n"
      "locality (more forwarding, more cold starts) for balance.\n");
  return 0;
}
