// Cluster-layer study (§4.1's CH-BL adoption): warm-start rate, latency,
// and load balance for CH-BL vs round-robin vs least-loaded as the cluster
// scales, and a sweep of the CH-BL load-bound factor. Not a paper figure —
// it validates the load-balancing layer the paper builds on (FaasLB,
// HPDC '22) at trace scale.
//
// Second section: time-parallel simulation. The same 32-worker scenario is
// run on a ShardedRuntime at 1/2/4/8 shards; every run must produce a
// byte-identical ExperimentReport (the conservative-window determinism
// contract), and the wall-clock times show the speedup. `--shards N`
// restricts the sweep to {1, N}. On a 1-core host the sharded runs can't
// be faster — equivalence is still asserted. `--arena FILE` replays an
// ilu-arena-v1 on-disk arena (tools/trace_gen) through the sharded cluster
// instead of the built-in synthetic workload — the mmap'd key column feeds
// the same EventView hot loop the in-RAM storage does.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>

#include "bench_util.hpp"

namespace {

using namespace ilu;
using namespace ilu::bench;

struct Out {
  double warm_pct = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double imbalance = 0.0;  // max/mean routed
  std::uint64_t forwarded = 0;
};

Out run(std::size_t workers, LbPolicy lb, double bound_factor) {
  SimRuntime rt;
  ClusterConfig cfg;
  cfg.num_workers = workers;
  cfg.lb = lb;
  cfg.chbl.bound_factor = bound_factor;
  cfg.worker.cores = 8;
  cfg.worker.memory_mb = 8 * 1024;
  Cluster cluster(rt, cfg);

  std::vector<SyntheticFunctionSpec> specs;
  Rng rng(23);
  auto bench_fns = function_bench();
  for (int i = 0; i < 64; ++i) {
    auto p = bench_fns[i % bench_fns.size()];
    if (p.name == "video_encoding") p = bench_fns[(i + 1) % bench_fns.size()];
    p.name += "_" + std::to_string(i);
    specs.push_back({.profile = p,
                     .mean_iat = secs(rng.uniform(1.5, 10.0)),
                     .exponential = true});
  }
  auto trace = make_synthetic_trace(specs, mins(8), 29);
  for (const auto& f : trace.functions) cluster.register_function(f);
  cluster.start();

  OpenLoopDriver d(rt, [&](FunctionId fn,
                           std::function<void(const InvokeResult&)> cb) {
    cluster.invoke(fn, std::move(cb));
  });
  d.start(trace);
  while (!d.done()) rt.run_for(secs(20));
  cluster.shutdown();

  Out out;
  std::uint64_t warm = 0, cold = 0;
  for (std::size_t i = 0; i < cluster.num_workers(); ++i) {
    warm += cluster.worker(i).warm_starts();
    cold += cluster.worker(i).cold_starts();
  }
  out.warm_pct = 100.0 * warm / std::max<std::uint64_t>(1, warm + cold);
  Summary lat;
  for (const auto& r : d.results()) {
    if (r.success) lat.add_ms(r.flow_time());
  }
  out.p50_ms = lat.p50();
  out.p99_ms = lat.p99();
  double total = 0.0, mx = 0.0;
  for (auto c : cluster.routed()) {
    total += static_cast<double>(c);
    mx = std::max(mx, static_cast<double>(c));
  }
  out.imbalance = mx / std::max(1.0, total / static_cast<double>(workers));
  out.forwarded = cluster.forwarded();
  return out;
}

/// The sharded scenario: 32 workers under CH-BL, dense synthetic traffic
/// (~1000 req/s — ~30 req/s per worker, paper-plausible for 8-core
/// workers) replayed from a SoA arena. The density matters: conservative
/// windows only pay off when each shard executes many events per window,
/// so the barrier cost amortizes.
TraceArena sharded_workload() {
  std::vector<SyntheticFunctionSpec> specs;
  Rng rng(23);
  auto bench_fns = function_bench();
  for (int i = 0; i < 96; ++i) {
    auto p = bench_fns[i % bench_fns.size()];
    if (p.name == "video_encoding") p = bench_fns[(i + 1) % bench_fns.size()];
    p.name += "_" + std::to_string(i);
    specs.push_back({.profile = p,
                     .mean_iat = secs(rng.uniform(0.06, 0.3)),
                     .exponential = true});
  }
  return make_synthetic_arena(specs, mins(2), 31);
}

/// A shorter cut of the same traffic shape for the sync-strategy matrix.
/// Optimistic sync pays a full control-plane checkpoint per speculative
/// window and re-executes rolled-back work, so on this message-dense
/// cluster workload it is expected to run far behind conservative sync
/// (the crossover experiment in EXPERIMENTS.md maps where it wins); the
/// matrix exists to prove byte-identical results under every strategy x
/// placement combination, and a short trace proves that just as well.
TraceArena matrix_workload() {
  std::vector<SyntheticFunctionSpec> specs;
  Rng rng(23);
  auto bench_fns = function_bench();
  for (int i = 0; i < 96; ++i) {
    auto p = bench_fns[i % bench_fns.size()];
    if (p.name == "video_encoding") p = bench_fns[(i + 1) % bench_fns.size()];
    p.name += "_" + std::to_string(i);
    specs.push_back({.profile = p,
                     .mean_iat = secs(rng.uniform(0.06, 0.3)),
                     .exponential = true});
  }
  return make_synthetic_arena(specs, secs(4), 31);
}

struct ShardedOut {
  double wall_s = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t windows = 0;
  std::uint64_t spec_windows = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t anti_messages = 0;
  std::uint64_t wasted_events = 0;
  std::uint64_t messages = 0;
  std::string fingerprint;  // report JSON: the equivalence witness
};

ShardedOut run_sharded(std::size_t nshards, SyncConfig sync, Placement place,
                       EventView view,
                       const std::vector<FunctionProfile>& functions) {
  ClusterConfig cfg;
  cfg.num_workers = 32;
  cfg.lb = LbPolicy::ChBl;
  cfg.worker.cores = 8;
  cfg.worker.memory_mb = 8 * 1024;
  cfg.placement = place;
  // A 1 ms RPC floor (datacenter-across-racks rather than same-rack) gives
  // 5x the default lookahead: windows are 5x wider, so each shard executes
  // 5x more events between barriers. Lookahead is *the* scaling lever of
  // conservative parallel simulation; the optimistic engine instead bets
  // speculation-many lookaheads ahead and rolls back on stragglers.
  cfg.rpc = LatencyModel::shifted(msecs(1.0),
                                  LatencyModel::lognormal(usecs(100), 0.4));

  ShardedRuntime srt(nshards, cfg.rpc.lower_bound(), sync);
  Cluster cluster(srt, cfg);
  for (const auto& f : functions) cluster.register_function(f);
  cluster.start();

  OpenLoopDriver d(srt.shard(0), [&](FunctionId fn,
                                     std::function<void(const InvokeResult&)>
                                         cb) {
    cluster.invoke(fn, std::move(cb));
  });

  auto t0 = std::chrono::steady_clock::now();
  d.start(view);
  while (!d.done()) srt.run_for(secs(20));
  auto t1 = std::chrono::steady_clock::now();
  cluster.shutdown();

  std::vector<std::string> names;
  for (const auto& f : functions) names.push_back(f.name);
  ExperimentReport rep(std::move(names));
  rep.add_all(d.results());

  ShardedOut out;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.completed = d.results().size();
  out.windows = srt.windows();
  out.spec_windows = srt.speculative_windows();
  out.rollbacks = srt.rollbacks();
  out.anti_messages = srt.anti_messages();
  out.wasted_events = srt.wasted_events();
  out.messages = srt.messages();
  out.fingerprint = rep.to_json().dump();
  return out;
}

/// Optimistic-engine acceptance: a 2-shard actor system with a tiny
/// lookahead where shard 0 legally (strict sender future) sends a message
/// that lands in shard 1's already-speculated past. The run must (a) commit
/// at least one rollback and (b) produce exactly the event sequence of a
/// serial merge of both shards' timelines. Side effects (the logs) are
/// protected by user-registered Snapshotters — the same mechanism the
/// worker control plane uses.
bool rollback_stress() {
  using Entry = std::pair<std::int64_t, int>;  // (virtual µs, actor id)
  // static so the local Ticker class below may name them.
  static constexpr int kMsgActor = 99;
  static constexpr std::int64_t kTickUs = 10;
  static constexpr std::int64_t kEndUs = 6000;
  static constexpr std::int64_t kSendAtUs = 3000;

  // Ground truth: both timelines merged on one serial runtime.
  std::vector<Entry> want;
  for (std::int64_t t = 0; t <= kEndUs; t += kTickUs) want.push_back({t, 1});
  want.push_back({kSendAtUs + 1, kMsgActor});
  std::sort(want.begin(), want.end());

  SyncConfig sync;
  sync.strategy = SyncStrategy::kOptimistic;
  sync.speculation = 64.0;
  ShardedRuntime srt(2, usecs(100), sync);

  std::vector<Entry> log;  // written only by shard 1's thread
  srt.shard(1).add_snapshotter(Snapshotter{
      [&log]() -> std::shared_ptr<void> {
        return std::make_shared<std::size_t>(log.size());
      },
      [&log](const std::shared_ptr<void>& blob) {
        log.resize(*static_cast<const std::size_t*>(blob.get()));
      }});

  struct Ticker {
    ShardedRuntime* srt;
    std::vector<Entry>* log;
    void operator()() const {
      SimRuntime& rt = srt->shard(1);
      std::int64_t t = rt.now().count();
      log->push_back({t, 1});
      if (t + kTickUs <= kEndUs) rt.schedule(usecs(kTickUs), Ticker{*this});
    }
  };
  srt.shard(1).schedule(Duration::zero(), Ticker{&srt, &log});
  srt.shard(0).schedule(usecs(kSendAtUs), [&srt, &log] {
    // A strict-future send (sender clock + 1 µs) that is far inside the
    // receiver's speculation horizon: guaranteed straggler.
    srt.send(0, 1, TimePoint{kSendAtUs + 1}, /*tag=*/7, [&log, &srt] {
      log.push_back({srt.shard(1).now().count(), kMsgActor});
    });
  });
  srt.run_until(TimePoint{kEndUs + 100});

  bool ok = true;
  if (srt.rollbacks() == 0) {
    std::printf("stress: expected >= 1 committed rollback, got 0\n");
    ok = false;
  }
  if (log != want) {
    std::printf("stress: event sequence diverged from the serial merge "
                "(%zu entries vs %zu expected)\n",
                log.size(), want.size());
    ok = false;
  }
  std::printf("rollback stress: %llu rollbacks, %llu anti-messages, "
              "%llu wasted events, sequence %s\n",
              (unsigned long long)srt.rollbacks(),
              (unsigned long long)srt.anti_messages(),
              (unsigned long long)srt.wasted_events(),
              log == want ? "identical to serial merge" : "DIVERGED");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Cluster scaling — CH-BL vs RR vs least-loaded");
  std::printf("%8s %-14s %8s %9s %10s %10s %10s\n", "workers", "lb", "warm%",
              "p50 ms", "p99 ms", "imbalance", "forwarded");
  CsvWriter csv(results_dir() + "/cluster_scaling.csv");
  csv.row("workers", "lb", "bound", "warm_pct", "p50_ms", "p99_ms",
          "imbalance", "forwarded");
  for (std::size_t workers : {2u, 4u, 8u}) {
    struct {
      LbPolicy lb;
      const char* name;
    } policies[] = {{LbPolicy::ChBl, "chbl"},
                    {LbPolicy::RoundRobin, "rr"},
                    {LbPolicy::LeastLoaded, "least"}};
    for (auto [lb, name] : policies) {
      auto o = run(workers, lb, 2.0);
      std::printf("%8zu %-14s %8.1f %9.0f %10.0f %10.2f %10llu\n", workers,
                  name, o.warm_pct, o.p50_ms, o.p99_ms, o.imbalance,
                  (unsigned long long)o.forwarded);
      csv.row(workers, name, 2.0, o.warm_pct, o.p50_ms, o.p99_ms,
              o.imbalance, o.forwarded);
    }
  }
  std::printf("\nCH-BL bound-factor sweep (8 workers): locality vs balance\n");
  std::printf("%8s %8s %9s %10s %10s %10s\n", "bound", "warm%", "p50 ms",
              "p99 ms", "imbalance", "forwarded");
  for (double bound : {1.1, 1.5, 2.0, 4.0}) {
    auto o = run(8, LbPolicy::ChBl, bound);
    std::printf("%8.1f %8.1f %9.0f %10.0f %10.2f %10llu\n", bound,
                o.warm_pct, o.p50_ms, o.p99_ms, o.imbalance,
                (unsigned long long)o.forwarded);
    csv.row(8, "chbl", bound, o.warm_pct, o.p50_ms, o.p99_ms, o.imbalance,
            o.forwarded);
  }
  std::printf(
      "\nCH-BL keeps warm rates high via locality; tighter bounds trade\n"
      "locality (more forwarding, more cold starts) for balance.\n");

  std::vector<std::size_t> shard_counts = {1, 2, 4, 8};
  std::vector<SyncStrategy> syncs = {SyncStrategy::kConservative,
                                     SyncStrategy::kOptimistic};
  std::vector<Placement> placements = {Placement::kRoundRobin,
                                       Placement::kLocality};
  std::string arena_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0) {
      auto n = static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
      if (n >= 1) shard_counts = n == 1 ? std::vector<std::size_t>{1}
                                        : std::vector<std::size_t>{1, n};
    } else if (std::strcmp(argv[i], "--arena") == 0) {
      arena_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--sync") == 0) {
      const std::string v = argv[i + 1];
      if (v == "conservative") syncs = {SyncStrategy::kConservative};
      else if (v == "optimistic") syncs = {SyncStrategy::kOptimistic};
      else if (v == "auto") syncs = {SyncStrategy::kAuto};
      else {
        std::fprintf(stderr,
                     "error: --sync must be conservative|optimistic|auto\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--placement") == 0) {
      const std::string v = argv[i + 1];
      if (v == "roundrobin") placements = {Placement::kRoundRobin};
      else if (v == "locality") placements = {Placement::kLocality};
      else {
        std::fprintf(stderr,
                     "error: --placement must be roundrobin|locality\n");
        return 1;
      }
    }
  }

  banner("Time-parallel simulation — 32 workers, pluggable sync strategies");
  std::printf("%8s %-13s %-11s %10s %8s %9s %6s %6s %8s %9s %6s\n", "shards",
              "sync", "placement", "wall s", "speedup", "windows", "spec",
              "rollbk", "anti", "completed", "equal");
  CsvWriter scsv(results_dir() + "/cluster_sharded.csv");
  scsv.row("trace", "shards", "sync", "placement", "wall_s", "speedup",
           "windows", "spec_windows", "rollbacks", "anti_messages",
           "wasted_events", "messages", "completed", "equivalent");

  TraceArena synth;
  std::unique_ptr<ArenaFile> file;
  EventView view;
  const std::vector<FunctionProfile>* functions = nullptr;
  if (!arena_path.empty()) {
    try {
      file = std::make_unique<ArenaFile>(arena_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    view = file->view();
    functions = &file->functions();
    std::printf("replaying on-disk arena %s: %zu fns, %zu events\n",
                arena_path.c_str(), functions->size(), view.size());
  } else {
    synth = sharded_workload();
    view = EventView(synth);
    functions = &synth.functions;
  }

  auto print_row = [&scsv](const char* trace, std::size_t s, const char* sync,
                           const char* place, const ShardedOut& o,
                           double baseline_wall, bool equal) {
    const double speedup = o.wall_s > 0.0 ? baseline_wall / o.wall_s : 0.0;
    std::printf("%8zu %-13s %-11s %10.3f %8.2f %9llu %6llu %6llu %8llu "
                "%9llu %6s\n",
                s, sync, place, o.wall_s, speedup,
                (unsigned long long)o.windows,
                (unsigned long long)o.spec_windows,
                (unsigned long long)o.rollbacks,
                (unsigned long long)o.anti_messages,
                (unsigned long long)o.completed, equal ? "yes" : "NO");
    scsv.row(trace, s, sync, place, o.wall_s, speedup, o.windows,
             o.spec_windows, o.rollbacks, o.anti_messages, o.wasted_events,
             o.messages, o.completed, equal ? 1 : 0);
  };

  // Headline scaling sweep: conservative windows on the full trace (the
  // configuration whose wall time the speedup story is about).
  auto base = run_sharded(1, SyncConfig{}, Placement::kRoundRobin, view,
                          *functions);
  bool all_equal = true;
  print_row("full", 1, "serial", "-", base, base.wall_s, true);
  for (std::size_t s : shard_counts) {
    if (s == 1) continue;
    auto o = run_sharded(s, SyncConfig{}, Placement::kRoundRobin, view,
                         *functions);
    const bool equal = o.fingerprint == base.fingerprint;
    all_equal = all_equal && equal;
    print_row("full", s, "conservative", "roundrobin", o, base.wall_s, equal);
  }

  // Strategy x placement equivalence matrix on the short trace: every
  // combination must reproduce the serial report byte for byte.
  banner("Sync-strategy x placement matrix — byte-identical reports");
  std::printf("%8s %-13s %-11s %10s %8s %9s %6s %6s %8s %9s %6s\n", "shards",
              "sync", "placement", "wall s", "speedup", "windows", "spec",
              "rollbk", "anti", "completed", "equal");
  TraceArena matrix = matrix_workload();
  EventView mview(matrix);
  auto mbase = run_sharded(1, SyncConfig{}, Placement::kRoundRobin, mview,
                           matrix.functions);
  print_row("matrix", 1, "serial", "-", mbase, mbase.wall_s, true);
  for (SyncStrategy sync : syncs) {
    for (Placement place : placements) {
      for (std::size_t s : shard_counts) {
        if (s == 1) continue;  // covered by the serial reference
        SyncConfig sc;
        sc.strategy = sync;
        auto o = run_sharded(s, sc, place, mview, matrix.functions);
        const bool equal = o.fingerprint == mbase.fingerprint;
        all_equal = all_equal && equal;
        print_row("matrix", s, to_string(sync), to_string(place), o,
                  mbase.wall_s, equal);
      }
    }
  }
  if (!all_equal) {
    std::printf("\nERROR: sharded runs diverged from the serial report — "
                "determinism contract broken.\n");
    return 1;
  }

  banner("Optimistic engine — rollback stress (small lookahead)");
  if (!rollback_stress()) {
    std::printf("\nERROR: optimistic rollback stress failed.\n");
    return 1;
  }

  std::printf(
      "\nEvery sync strategy, placement, and shard count produced a\n"
      "byte-identical report; speedups only materialize with as many free\n"
      "cores as shards.\n");
  return 0;
}
