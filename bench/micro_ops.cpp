// Google-benchmark microbenchmarks backing the implementation-efficiency
// claims of §6: queue disciplines, pool acquire/return, policy priority
// computation, CH-BL routing, the discrete-event engine, and the GPS CPU
// model. These measure the *actual* C++ control-plane data structures (not
// modeled latencies).

#include <benchmark/benchmark.h>

#include <array>
#include <thread>
#include <vector>

#include "iluvatar.hpp"
#include "mutex_heap_runtime.hpp"

namespace {

using namespace ilu;

void BM_SimRuntimeScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    SimRuntime rt;
    for (int i = 0; i < 1000; ++i) {
      rt.schedule(usecs((i * 37) % 500), [] {});
    }
    rt.run();
    benchmark::DoNotOptimize(rt.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimRuntimeScheduleRun);

void BM_SimRuntimeChurnRealistic(benchmark::State& state) {
  // The worker's actual schedule/cancel/fire mix: closures capture ~40 B
  // (beyond libstdc++ std::function's 16-byte inline buffer, within
  // ilu::Task's 48-byte one) and a quarter of the timers are cancelled
  // before they fire (keep-alive expiry rearms, regulator ticks).
  std::uint64_t sum = 0;
  for (auto _ : state) {
    SimRuntime rt;
    for (int i = 0; i < 1000; ++i) {
      std::array<std::uint64_t, 4> payload{1, 2, 3,
                                           static_cast<std::uint64_t>(i)};
      auto id = rt.schedule(usecs((i * 37) % 500),
                            [payload, &sum] { sum += payload[3]; });
      if (i % 4 == 0) rt.cancel(id);
    }
    rt.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimRuntimeChurnRealistic);

void BM_SimRuntimeScheduleCancel(benchmark::State& state) {
  // Pure schedule+cancel throughput against a standing queue: the cost of
  // arming and disarming timers that never fire (the dominant timer
  // lifecycle for keep-alive TTLs and watchdogs).
  SimRuntime rt;
  std::vector<Runtime::TimerId> ids(512);
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i) {
      ids[i] = rt.schedule(usecs(1000 + (i * 31) % 512), [] {});
    }
    for (int i = 0; i < 512; ++i) {
      benchmark::DoNotOptimize(rt.cancel(ids[i]));
    }
    // Drain so both engines account the full lifecycle: the indexed heap is
    // already empty here; a tombstone design pays its deferred
    // reconciliation now.
    rt.run();
  }
  state.SetItemsProcessed(state.iterations() * 512 * 2);
}
BENCHMARK(BM_SimRuntimeScheduleCancel);

// ---- live (wall-clock) runtime: timer wheel vs mutex+heap baseline -------
//
// The same schedule+cancel lifecycle as BM_SimRuntimeScheduleCancel, but
// against a *live* runtime whose loop thread is concurrently draining: the
// wheel path stages through per-producer shards and cancels with a
// generation-checked CAS; the baseline (bench/mutex_heap_runtime.hpp, the
// pre-wheel RealRuntime) takes a global mutex for both and leaves
// tombstones for the loop to reconcile.

template <class RT>
void live_schedule_cancel(benchmark::State& state) {
  RT rt;
  std::vector<Runtime::TimerId> ids(512);
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i) {
      ids[static_cast<std::size_t>(i)] =
          rt.schedule(usecs(1000 + (i * 31) % 512), [] {});
    }
    for (int i = 0; i < 512; ++i) {
      benchmark::DoNotOptimize(rt.cancel(ids[static_cast<std::size_t>(i)]));
    }
  }
  state.SetItemsProcessed(state.iterations() * 512 * 2);
}

void BM_RealRuntimeScheduleCancelLive(benchmark::State& state) {
  live_schedule_cancel<RealRuntime>(state);
}
BENCHMARK(BM_RealRuntimeScheduleCancelLive);

void BM_MutexHeapScheduleCancelLive(benchmark::State& state) {
  live_schedule_cancel<bench::MutexHeapRuntime>(state);
}
BENCHMARK(BM_MutexHeapScheduleCancelLive);

/// 4 producer threads hammering schedule/cancel concurrently (the open-loop
/// load-harness shape). One batch per iteration; thread spawn cost is
/// identical for both engines and amortized over 2k ops/thread. Producers
/// throttle when the runtime's pending count runs away — on few-core hosts
/// they can outrun the starved loop thread indefinitely, and an unbounded
/// backlog measures allocator growth, not the submission path.
template <class RT>
void live_contended(benchmark::State& state) {
  RT rt;
  const int producers = static_cast<int>(state.range(0));
  constexpr int kOps = 2000;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(producers));
    for (int t = 0; t < producers; ++t) {
      threads.emplace_back([&rt] {
        std::array<Runtime::TimerId, 64> ring{};
        for (int i = 0; i < kOps; ++i) {
          if ((i & 255) == 0) {
            while (rt.pending() > 64 * 1024) std::this_thread::yield();
          }
          ring[static_cast<std::size_t>(i % 64)] =
              rt.schedule(usecs(1000 + (i % 128)), [] {});
          if (i % 2 == 1) {
            benchmark::DoNotOptimize(
                rt.cancel(ring[static_cast<std::size_t>((i / 2) % 64)]));
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  state.SetItemsProcessed(state.iterations() * producers * kOps * 3 / 2);
}

void BM_RealRuntimeContendedLive(benchmark::State& state) {
  live_contended<RealRuntime>(state);
}
BENCHMARK(BM_RealRuntimeContendedLive)->Arg(4);

void BM_MutexHeapContendedLive(benchmark::State& state) {
  live_contended<bench::MutexHeapRuntime>(state);
}
BENCHMARK(BM_MutexHeapContendedLive)->Arg(4);

void BM_QueuePushPop(benchmark::State& state) {
  auto policy = make_queue_policy(
      state.range(0) == 0 ? "FCFS" : state.range(0) == 1 ? "SJF" : "EEDF");
  CharacteristicsMap chars;
  chars.record_warm(0, msecs(100));
  chars.record_cold(0, secs(1));
  InvocationQueue q(*policy, chars);
  std::uint64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      QueueItem item;
      item.fn = 0;
      item.arrival = usecs(t++);
      q.push(std::move(item), i % 2 == 0);
    }
    while (auto it = q.pop()) benchmark::DoNotOptimize(it->fn);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_QueuePushPop)->Arg(0)->Arg(1)->Arg(2);

void BM_GreedyDualPriority(benchmark::State& state) {
  GreedyDualPolicy policy;
  CacheEntry e;
  e.mem_mb = 256;
  e.init_time = secs(2);
  e.uses = 17;
  for (auto _ : state) {
    policy.on_access(e, secs(1));
    benchmark::DoNotOptimize(policy.eviction_rank(e));
  }
}
BENCHMARK(BM_GreedyDualPriority);

void BM_KeepAliveCacheInvocation(benchmark::State& state) {
  GreedyDualPolicy policy;
  std::vector<FunctionProfile> fns;
  for (int i = 0; i < 64; ++i) {
    fns.push_back(lookbusy(msecs(100 + i), 64 + i * 5, msecs(500)));
  }
  KeepAliveCache cache(policy, {.capacity_mb = 4096}, fns);
  std::uint64_t t = 0;
  std::uint32_t k = 0;
  for (auto _ : state) {
    cache.on_invocation((k * 17) % 64, usecs(t));
    t += 499;
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeepAliveCacheInvocation);

void BM_ContainerPoolAcquireReturn(benchmark::State& state) {
  SimRuntime rt;
  LruPolicy policy;
  ContainerPool pool(rt, policy,
                     ContainerPool::Config{.capacity_mb = 64 * 1024,
                                           .sweep_interval = Duration::zero()},
                     nullptr);
  auto profile = lookbusy(msecs(100), 128, msecs(500));
  for (int i = 0; i < 32; ++i) {
    ContainerHandle c = pool.add_container(0, profile, rt.now());
    pool.get(c).state = ContainerState::Launching;
    pool.get(c).state = ContainerState::Running;
    pool.return_container(c, rt.now());
  }
  std::uint64_t t = 0;
  for (auto _ : state) {
    ContainerHandle c = pool.acquire(0, usecs(t));
    benchmark::DoNotOptimize(c);
    pool.return_container(c, usecs(t + 1));
    t += 2;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ContainerPoolAcquireReturn);

void BM_ChblPick(benchmark::State& state) {
  ChblBalancer lb(static_cast<std::size_t>(state.range(0)));
  std::vector<double> loads(state.range(0), 3.0);
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lb.pick("function_" + std::to_string(k++ % 512), loads));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChblPick)->Arg(8)->Arg(64);

void BM_CpuModelSubmit(benchmark::State& state) {
  for (auto _ : state) {
    SimRuntime rt;
    CpuModel cpu(rt, 48.0);
    int done = 0;
    for (int i = 0; i < 256; ++i) {
      cpu.submit(0.001 * (i % 7 + 1), 1.0, [&] { ++done; });
    }
    rt.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_CpuModelSubmit);

void BM_WorkerWarmInvocationPath(benchmark::State& state) {
  // Full warm-path event chain through the worker on the sim runtime with
  // zeroed latency models: measures pure control-plane engine cost.
  SimRuntime rt;
  WorkerConfig cfg;
  cfg.cores = 48.0;
  cfg.memory_mb = 8 * 1024;
  cfg.latencies = ControlPlaneLatencies{};  // all-zero models
  cfg.backend = BackendLatencyProfile::null_backend();
  cfg.tracing = false;
  cfg.pool.sweep_interval = Duration::zero();
  Worker w(rt, cfg);
  auto fn = w.register_function(lookbusy(usecs(1), 64, usecs(1)));
  w.start();
  bool done = false;
  w.invoke(fn, [&](const InvokeResult&) { done = true; });
  rt.run_for(secs(5));
  for (auto _ : state) {
    done = false;
    w.invoke(fn, [&](const InvokeResult&) { done = true; });
    while (!done) rt.step();
  }
  w.shutdown();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkerWarmInvocationPath);

void BM_AzureTraceGeneration(benchmark::State& state) {
  AzureModelConfig cfg;
  cfg.population = 5000;
  cfg.days = 1.0 / 24.0;
  for (auto _ : state) {
    AzureTraceModel model(cfg);
    auto t = model.sample_random(50, 20.0);
    benchmark::DoNotOptimize(t.events.size());
  }
}
BENCHMARK(BM_AzureTraceGeneration);

}  // namespace

BENCHMARK_MAIN();
