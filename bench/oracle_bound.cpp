// Research extension: how close do the online keep-alive policies get to
// the clairvoyant (Belady-style) oracle? The oracle evicts the container
// whose function is next needed furthest in the future, using perfect
// trace knowledge — a lower bound on cold starts for uniform sizes and a
// strong reference point in general.

#include "bench_util.hpp"

#include "keepalive/clairvoyant.hpp"

int main() {
  using namespace ilu;
  using namespace ilu::bench;

  AzureModelConfig mcfg;
  mcfg.population = 20000;
  mcfg.days = 0.5;
  AzureTraceModel model(mcfg);
  auto trace = model.sample_representative(300);
  auto stats = trace.stats();

  banner("Oracle bound — online keep-alive policies vs clairvoyant Belady");
  std::printf("workload: %zu functions, %zu invocations over %.1f h\n\n",
              stats.num_functions, stats.num_invocations,
              to_sec(trace.duration) / 3600.0);
  std::printf("%-8s", "GB:");
  const std::vector<std::uint64_t> sizes = {10, 20, 40};
  for (auto gb : sizes) std::printf("%18llu", (unsigned long long)gb);
  std::printf("\n%-8s", "");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%10s %7s", "miss", "incr%");
  }
  std::printf("\n");

  CsvWriter csv(results_dir() + "/oracle_bound.csv");
  csv.row("policy", "cache_gb", "cold_fraction", "exec_increase_pct");

  for (const char* pol : {"ORACLE", "GD", "LRU", "FREQ", "TTL"}) {
    std::printf("%-8s", pol);
    for (auto gb : sizes) {
      KeepAliveSimResult r;
      if (std::string(pol) == "ORACLE") {
        ClairvoyantPolicy oracle(trace);
        r = run_keepalive_sim_with(trace, oracle, gb * 1024);
      } else {
        r = run_keepalive_sim(trace, pol, gb * 1024);
      }
      std::printf("%10.4f %7.2f", r.cold_fraction(), r.exec_increase_pct());
      csv.row(pol, gb, r.cold_fraction(), r.exec_increase_pct());
    }
    std::printf("\n");
  }
  std::printf(
      "\nThe gap between GD and ORACLE quantifies how much headroom remains\n"
      "for smarter online keep-alive — a research-platform feature beyond\n"
      "the paper's evaluation.\n");
  return 0;
}
