// Ablation: container backend choice (§4.4). The paper measured crun
// ~150 ms, containerd ~300 ms, Docker ~400 ms per container launch, and
// cites snapshot restores as a further option. This bench measures
// cold-start overhead per backend (plus containerd+snapshots) through the
// full worker path.

#include "bench_util.hpp"

namespace {

using namespace ilu;
using namespace ilu::bench;

Summary run_backend(BackendLatencyProfile profile) {
  SimRuntime rt;
  WorkerConfig cfg;
  cfg.cores = 8;
  cfg.memory_mb = 8 * 1024;
  cfg.backend = std::move(profile);
  cfg.keepalive_policy = "TTL";
  cfg.seed = 4;
  Worker w(rt, cfg);
  auto fn = w.register_function(pyaes());
  w.start();
  Summary cold;
  int done = 0;
  // Sequential cold starts: invoke, then let TTL expire the container.
  std::function<void(int)> loop = [&](int remaining) {
    if (remaining == 0) return;
    w.invoke(fn, [&, remaining](const InvokeResult& r) {
      if (r.cold) cold.add_ms(r.overhead());
      ++done;
      // Evict before the next round so every start is cold.
      w.pool().set_capacity_mb(0);
      w.pool().set_capacity_mb(8 * 1024);
      loop(remaining - 1);
    });
  };
  constexpr int kRuns = 60;
  loop(kRuns);
  while (done < kRuns) rt.run_for(secs(30));
  w.shutdown();
  return cold;
}

}  // namespace

int main() {
  banner("Ablation — container backends: cold-start overhead");
  std::printf("%-24s %10s %10s %10s\n", "backend", "p50 ms", "p99 ms",
              "mean ms");
  CsvWriter csv(results_dir() + "/ablation_backends.csv");
  csv.row("backend", "p50_ms", "p99_ms", "mean_ms");

  auto snap = BackendLatencyProfile::containerd();
  snap.name = "containerd+snapshots";
  snap.snapshot_cold_starts = true;

  for (auto profile :
       {BackendLatencyProfile::crun(), BackendLatencyProfile::containerd(),
        BackendLatencyProfile::docker(), snap,
        BackendLatencyProfile::null_backend()}) {
    auto name = profile.name;
    auto s = run_backend(std::move(profile));
    std::printf("%-24s %10.0f %10.0f %10.0f\n", name.c_str(), s.p50(),
                s.p99(), s.mean());
    csv.row(name, s.p50(), s.p99(), s.mean());
  }
  std::printf(
      "\nPaper reference: crun ~150 ms, containerd ~300 ms, Docker ~400 ms\n"
      "per launch (plus agent boot and netns). The null backend isolates\n"
      "pure control-plane cost; snapshots cut repeat cold starts to ~60 ms.\n");
  return 0;
}
