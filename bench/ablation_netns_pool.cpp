// Ablation: network-namespace pool (§4.3.1). Creating a netns costs
// ~100 ms behind a global kernel lock; the pool pre-creates namespaces off
// the critical path. This bench fires bursts of concurrent cold starts and
// compares cold-start latency with the pool enabled vs disabled — with the
// pool disabled, concurrent creations serialize on the lock and the tail
// explodes.

#include "bench_util.hpp"

namespace {

using namespace ilu;
using namespace ilu::bench;

ilu::Summary run_cold_burst(bool pool_enabled, std::size_t burst) {
  SimRuntime rt;
  WorkerConfig cfg;
  cfg.cores = 48;
  cfg.memory_mb = 48 * 1024;
  cfg.netns.enabled = pool_enabled;
  cfg.netns.target_size = 32;
  cfg.seed = 5;
  Worker w(rt, cfg);
  // Distinct functions so every invocation in the burst is a cold start.
  std::vector<FunctionId> fns;
  for (std::size_t i = 0; i < burst; ++i) {
    auto p = pyaes();
    p.name += "_" + std::to_string(i);
    fns.push_back(w.register_function(p));
  }
  w.start();
  Summary cold_overhead;
  std::size_t done = 0;
  for (auto fn : fns) {
    w.invoke(fn, [&](const InvokeResult& r) {
      cold_overhead.add_ms(r.overhead());
      ++done;
    });
  }
  while (done < burst) rt.run_for(secs(5));
  w.shutdown();
  return cold_overhead;
}

}  // namespace

int main() {
  banner("Ablation — netns pool: cold-start overhead under cold bursts");
  std::printf("%8s | %22s | %22s\n", "", "pool enabled (ms)",
              "pool disabled (ms)");
  std::printf("%8s | %10s %10s | %10s %10s\n", "burst", "p50", "p99", "p50",
              "p99");
  CsvWriter csv(results_dir() + "/ablation_netns_pool.csv");
  csv.row("burst", "pooled_p50_ms", "pooled_p99_ms", "nopool_p50_ms",
          "nopool_p99_ms");
  for (std::size_t burst : {4u, 16u, 32u, 64u}) {
    auto with_pool = run_cold_burst(true, burst);
    auto without = run_cold_burst(false, burst);
    std::printf("%8zu | %10.0f %10.0f | %10.0f %10.0f\n", burst,
                with_pool.p50(), with_pool.p99(), without.p50(),
                without.p99());
    csv.row(burst, with_pool.p50(), with_pool.p99(), without.p50(),
            without.p99());
  }
  std::printf(
      "\nWithout the pool every creation serializes on the global netns\n"
      "lock (~100 ms each), so a burst of n cold starts pays O(n x 100 ms)\n"
      "at the tail; the pool absorbs bursts up to its size.\n");
  return 0;
}
