// Fig 6: litmus tests on skewed workloads — vanilla OpenWhisk (10-min TTL)
// vs FaasCache (the same OpenWhisk model with Greedy-Dual keep-alive).
//
// Paper shape: FaasCache runs 50-100% more warm invocations on skewed
// workloads. The paper's three patterns are reproduced at an operating
// point where the aggregate warm-container footprint exceeds the 48 GB
// server (so eviction *choice* matters — see EXPERIMENTS.md for the
// calibration):
//   - skewed frequency: one function class far more frequent than the rest,
//   - cyclic access: rotation longer than memory (LRU's pathological case),
//   - two size classes: small/expensive-init vs large/cheap-init functions.

#include "bench_util.hpp"

namespace {

using namespace ilu;
using namespace ilu::bench;

struct Outcome {
  std::uint64_t warm = 0, cold = 0, dropped = 0;
  std::uint64_t served() const { return warm + cold; }
};

Outcome run_workload(const Trace& trace, const std::string& ka_policy,
                     std::uint64_t seed) {
  SimRuntime rt;
  OpenWhiskConfig cfg;
  cfg.cores = 48.0;
  cfg.memory_mb = 48 * 1024;
  cfg.keepalive_policy = ka_policy;
  cfg.buffer_capacity = 512;
  cfg.buffer_timeout = secs(20);
  cfg.seed = seed;
  OpenWhiskModel ow(rt, cfg);
  for (const auto& f : trace.functions) ow.register_function(f);
  ow.start();
  replay_trace(rt, openwhisk_invoker(ow), trace, /*drain=*/mins(3));
  ow.shutdown();
  return {ow.warm_starts(), ow.cold_starts(), ow.dropped()};
}

/// Skewed frequency: 150 clones each of four FunctionBench types; the
/// float_op class runs at ~4x the rate of the others (the paper's
/// 1500:1500:1500:400 ms IAT ratio).
Trace freq_skew_workload(Duration dur) {
  std::vector<SyntheticFunctionSpec> specs;
  Rng r(7);
  const char* types[4] = {"ml_inference", "disk_bench", "web_serving",
                          "float_op"};
  for (int ty = 0; ty < 4; ++ty) {
    for (int i = 0; i < 150; ++i) {
      auto p = function_bench_app(types[ty]);
      p.name = std::string(types[ty]) + "_" + std::to_string(i);
      double iat = (ty == 3 ? 110.0 * 400.0 / 1500.0 : 110.0) *
                   r.uniform(0.7, 1.3);
      specs.push_back(
          {.profile = p, .mean_iat = secs(iat), .exponential = true});
    }
  }
  return make_synthetic_trace(specs, dur, /*seed=*/61);
}

/// Cyclic rotation through 250 functions whose combined footprint (~73 GB)
/// exceeds memory: recency evicts exactly what is needed next.
Trace cyclic_workload(Duration dur) {
  std::vector<FunctionProfile> profiles;
  for (int i = 0; i < 250; ++i) {
    FunctionProfile p = (i % 2 == 0)
                            ? lookbusy(msecs(400), 300, secs(4))
                            : lookbusy(msecs(400), 300, msecs(800));
    p.name = "cyclic_" + std::to_string(i);
    profiles.push_back(p);
  }
  return make_cyclic_trace(profiles, msecs(100), dur);
}

/// Two size classes: many small functions with expensive initialization vs
/// a set of large functions with cheap initialization (~75 GB total).
Trace two_size_skew_workload(Duration dur) {
  std::vector<SyntheticFunctionSpec> specs;
  for (int i = 0; i < 120; ++i) {
    auto p = lookbusy(msecs(300), 128, secs(3));
    p.name = "small_" + std::to_string(i);
    specs.push_back(
        {.profile = p, .mean_iat = secs(60), .exponential = true});
  }
  for (int i = 0; i < 40; ++i) {
    auto p = lookbusy(secs(1), 1500, msecs(500));
    p.name = "large_" + std::to_string(i);
    specs.push_back(
        {.profile = p, .mean_iat = secs(60), .exponential = true});
  }
  return make_synthetic_trace(specs, dur, /*seed=*/62);
}

}  // namespace

int main() {
  banner("Fig 6 — litmus tests: OpenWhisk (TTL) vs FaasCache (GD)");
  const Duration dur = mins(15);

  struct Case {
    const char* name;
    Trace trace;
  };
  Case cases[] = {
      {"freq-skew", freq_skew_workload(dur)},
      {"cyclic", cyclic_workload(dur)},
      {"2-size-skew", two_size_skew_workload(dur)},
  };

  CsvWriter csv(results_dir() + "/fig6_litmus.csv");
  csv.row("workload", "system", "warm", "cold", "served", "dropped");
  std::printf("%-14s %-10s %10s %10s %10s %10s\n", "workload", "system",
              "warm", "cold", "served", "dropped");
  for (auto& c : cases) {
    auto ow = run_workload(c.trace, "TTL", 11);
    auto fc = run_workload(c.trace, "GD", 11);
    std::printf("%-14s %-10s %10llu %10llu %10llu %10llu\n", c.name,
                "OpenWhisk", (unsigned long long)ow.warm,
                (unsigned long long)ow.cold, (unsigned long long)ow.served(),
                (unsigned long long)ow.dropped);
    std::printf("%-14s %-10s %10llu %10llu %10llu %10llu\n", c.name,
                "FaasCache", (unsigned long long)fc.warm,
                (unsigned long long)fc.cold, (unsigned long long)fc.served(),
                (unsigned long long)fc.dropped);
    double warm_ratio =
        static_cast<double>(fc.warm) / std::max<std::uint64_t>(1, ow.warm);
    std::printf("%-14s %-10s warm x%.2f, served x%.2f\n", c.name, "ratio",
                warm_ratio,
                ow.served() ? static_cast<double>(fc.served()) / ow.served()
                            : 0.0);
    csv.row(c.name, "OpenWhisk", ow.warm, ow.cold, ow.served(), ow.dropped);
    csv.row(c.name, "FaasCache", fc.warm, fc.cold, fc.served(), fc.dropped);
  }
  std::printf(
      "\nPaper reference: FaasCache runs 50-100%% more warm invocations on\n"
      "skewed workloads (the request-drop differential in the paper comes\n"
      "from OpenWhisk scheduler internals our model reproduces only in\n"
      "part; see EXPERIMENTS.md).\n");
  return 0;
}
