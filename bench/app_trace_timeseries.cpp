// Appendix figures: invocations-per-second timeseries of the full Azure
// model trace (day 1, diurnal shape) and of the three workload samples.

#include "bench_util.hpp"

int main() {
  using namespace ilu;
  using namespace ilu::bench;

  banner("Appendix — trace invocation timeseries");

  // Full-population trace over one day (expected-rate Poisson per minute).
  AzureModelConfig full_cfg;
  full_cfg.population = 50000;
  full_cfg.days = 1.0;
  AzureTraceModel full_model(full_cfg);
  auto full_rps = full_model.full_trace_rps_by_minute();
  {
    CsvWriter csv(results_dir() + "/app_full_trace_rps.csv");
    csv.row("minute", "rps");
    for (std::size_t m = 0; m < full_rps.size(); ++m) csv.row(m, full_rps[m]);
  }
  std::printf("\nFull trace (50k functions, 1 day), rps by hour:\n");
  for (int h = 0; h < 24; ++h) {
    double avg = 0.0;
    for (int m = 0; m < 60; ++m) avg += full_rps[h * 60 + m];
    avg /= 60.0;
    std::printf("  %02d:00  %8.1f /s  %s\n", h, avg,
                std::string(static_cast<std::size_t>(avg / 20.0), '#')
                    .c_str());
  }

  // Two-hour samples at the Table 2 rates.
  AzureModelConfig cfg;
  cfg.population = 50000;
  cfg.days = 2.0 / 24.0;
  AzureTraceModel model(cfg);
  struct S {
    const char* name;
    Trace trace;
  };
  S samples[] = {
      {"representative", model.sample_representative(400, 190.0)},
      {"rare", model.sample_rare(1000, 30.0)},
      {"random", model.sample_random(200, 600.0)},
  };
  for (auto& s : samples) {
    auto rps = s.trace.invocations_per_second_by_minute();
    CsvWriter csv(results_dir() + "/app_" + std::string(s.name) +
                  "_rps.csv");
    csv.row("minute", "rps");
    double mn = 1e18, mx = 0.0, avg = 0.0;
    for (std::size_t m = 0; m < rps.size(); ++m) {
      csv.row(m, rps[m]);
      mn = std::min(mn, rps[m]);
      mx = std::max(mx, rps[m]);
      avg += rps[m];
    }
    avg /= static_cast<double>(rps.size());
    std::printf("\n%s sample: %zu minutes, rps min/avg/max = %.1f / %.1f / %.1f\n",
                s.name, rps.size(), mn, avg, mx);
  }
  std::printf("\nCSV series written to results/app_*_rps.csv\n");
  return 0;
}
