// Fig 7: per-function-class warm/cold/dropped breakdown for the skewed-
// frequency FunctionBench workload on a 48 GB server: ML-inference,
// disk-bench and web-serving classes at one rate, the floating-point class
// at ~4x (the paper's 1500:1500:1500:400 ms IAT ratio). Each class is
// instantiated as 150 distinct functions so the aggregate warm-container
// footprint exceeds server memory and eviction choice matters (calibration
// in EXPERIMENTS.md).
//
// Paper shape: FaasCache (GD) runs >2x warm starts in aggregate; the
// high-init functions gain the most hit-ratio (~3x), while the
// memory-heavy ML-inference class is de-prioritized.

#include "bench_util.hpp"

namespace {

using namespace ilu;
using namespace ilu::bench;

constexpr int kClones = 150;
const char* kTypes[4] = {"ml_inference", "disk_bench", "web_serving",
                         "float_op"};

struct PerClass {
  std::uint64_t warm[4] = {0}, cold[4] = {0}, dropped[4] = {0};
  double mean_latency_ms[4] = {0};
  std::uint64_t total_warm = 0, total_served = 0, total_dropped = 0;
};

PerClass run_system(const Trace& trace, const std::string& ka_policy) {
  SimRuntime rt;
  OpenWhiskConfig cfg;
  cfg.cores = 48.0;
  cfg.memory_mb = 48 * 1024;
  cfg.keepalive_policy = ka_policy;
  cfg.buffer_capacity = 512;
  cfg.buffer_timeout = secs(20);
  cfg.seed = 13;
  OpenWhiskModel ow(rt, cfg);
  for (const auto& f : trace.functions) ow.register_function(f);
  ow.start();
  auto results = replay_trace(rt, openwhisk_invoker(ow), trace, mins(3));
  ow.shutdown();

  PerClass out;
  std::vector<double> lat_sum(4, 0.0);
  std::vector<std::uint64_t> lat_n(4, 0);
  for (std::size_t f = 0; f < trace.functions.size(); ++f) {
    int cls = static_cast<int>(f) / kClones;
    out.warm[cls] += ow.warm_by_fn()[f];
    out.cold[cls] += ow.cold_by_fn()[f];
    out.dropped[cls] += ow.dropped_by_fn()[f];
  }
  for (const auto& r : results) {
    if (!r.success) continue;
    int cls = static_cast<int>(r.fn) / kClones;
    lat_sum[cls] += to_ms(r.flow_time());
    ++lat_n[cls];
  }
  for (int c = 0; c < 4; ++c) {
    out.mean_latency_ms[c] = lat_n[c] ? lat_sum[c] / lat_n[c] : 0.0;
    out.total_warm += out.warm[c];
    out.total_served += out.warm[c] + out.cold[c];
    out.total_dropped += out.dropped[c];
  }
  return out;
}

}  // namespace

int main() {
  banner("Fig 7 — FunctionBench breakdown: OpenWhisk (TTL) vs FaasCache (GD)");

  std::vector<SyntheticFunctionSpec> specs;
  Rng r(7);
  for (int ty = 0; ty < 4; ++ty) {
    for (int i = 0; i < kClones; ++i) {
      auto p = function_bench_app(kTypes[ty]);
      p.name = std::string(kTypes[ty]) + "_" + std::to_string(i);
      double iat =
          (ty == 3 ? 110.0 * 400.0 / 1500.0 : 110.0) * r.uniform(0.7, 1.3);
      specs.push_back(
          {.profile = p, .mean_iat = secs(iat), .exponential = true});
    }
  }
  auto trace = make_synthetic_trace(specs, mins(15), /*seed=*/71);

  auto ow = run_system(trace, "TTL");
  auto fc = run_system(trace, "GD");

  CsvWriter csv(results_dir() + "/fig7_faasbench.csv");
  csv.row("class", "system", "warm", "cold", "dropped", "hit_ratio",
          "mean_latency_ms");
  std::printf("%-14s %-10s %8s %8s %8s %7s %12s\n", "class", "system", "warm",
              "cold", "dropped", "hit", "mean lat ms");
  for (int c = 0; c < 4; ++c) {
    auto hit = [](std::uint64_t w, std::uint64_t cd) {
      return w + cd ? static_cast<double>(w) / static_cast<double>(w + cd)
                    : 0.0;
    };
    std::printf("%-14s %-10s %8llu %8llu %8llu %7.2f %12.1f\n", kTypes[c],
                "OpenWhisk", (unsigned long long)ow.warm[c],
                (unsigned long long)ow.cold[c],
                (unsigned long long)ow.dropped[c], hit(ow.warm[c], ow.cold[c]),
                ow.mean_latency_ms[c]);
    std::printf("%-14s %-10s %8llu %8llu %8llu %7.2f %12.1f\n", kTypes[c],
                "FaasCache", (unsigned long long)fc.warm[c],
                (unsigned long long)fc.cold[c],
                (unsigned long long)fc.dropped[c], hit(fc.warm[c], fc.cold[c]),
                fc.mean_latency_ms[c]);
    csv.row(kTypes[c], "OpenWhisk", ow.warm[c], ow.cold[c], ow.dropped[c],
            hit(ow.warm[c], ow.cold[c]), ow.mean_latency_ms[c]);
    csv.row(kTypes[c], "FaasCache", fc.warm[c], fc.cold[c], fc.dropped[c],
            hit(fc.warm[c], fc.cold[c]), fc.mean_latency_ms[c]);
  }
  std::printf(
      "\nAggregate: warm x%.2f, served x%.2f (FaasCache vs OpenWhisk)\n",
      ow.total_warm ? static_cast<double>(fc.total_warm) / ow.total_warm
                    : 0.0,
      ow.total_served
          ? static_cast<double>(fc.total_served) / ow.total_served
          : 0.0);
  std::printf(
      "Paper reference: warm >2x aggregate; high-init classes gain ~3x hit\n"
      "ratio; memory-heavy ML inference is de-prioritized by Greedy-Dual.\n");
  return 0;
}
