// Observability overhead: cost of the transaction-scoped tracer + metrics
// on the worker's warm invocation hot path.
//
// The paper ships tracing off by default because the disabled path must be
// free; this bench measures (a) wall-clock cost per simulated warm
// invocation with tracing disabled vs enabled, and (b) the microsecond-level
// cost of a single tracer record / metric update. Results go to
// results/obs_overhead.json.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace ilu;
using namespace ilu::bench;

using Clock = std::chrono::steady_clock;

double wall_us(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// Wall-clock microseconds per warm invocation of the full worker pipeline
/// under SimRuntime (virtual time, so all cost is control-plane code).
double us_per_warm_invoke(bool tracing, int runs) {
  SimRuntime rt;
  WorkerConfig cfg;
  cfg.cores = 48.0;
  cfg.memory_mb = 16 * 1024;
  cfg.tracing = tracing;
  Worker w(rt, cfg);
  auto fn = w.register_function(pyaes());
  w.start();

  bool warmed = false;
  w.invoke(fn, [&](const InvokeResult&) { warmed = true; });
  while (!warmed) rt.run_for(secs(1));

  int completed = 0;
  std::function<void(int)> chain = [&](int remaining) {
    if (remaining == 0) return;
    w.invoke(fn, [&, remaining](const InvokeResult&) {
      ++completed;
      chain(remaining - 1);
    });
  };
  auto t0 = Clock::now();
  chain(runs);
  while (completed < runs) rt.run_for(secs(5));
  auto t1 = Clock::now();
  w.shutdown();
  return wall_us(t0, t1) / runs;
}

/// Nanoseconds per TransactionTracer::record call.
double ns_per_record(bool enabled, int iters) {
  TransactionTracer t(enabled);
  TransactionId tx = t.begin_transaction();
  auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    t.record(tx, "bench_span", usecs(i), usecs(1));
  }
  auto t1 = Clock::now();
  return wall_us(t0, t1) * 1e3 / iters;
}

/// Nanoseconds per counter-inc + histogram-observe pair.
double ns_per_metric_update(int iters) {
  MetricsRegistry reg;
  Counter* c = reg.counter("bench.counter");
  Histogram* h = reg.histogram("bench.hist", 1.0, 64);
  auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    c->inc();
    h->observe(static_cast<double>(i % 50));
  }
  auto t1 = Clock::now();
  return wall_us(t0, t1) * 1e3 / iters;
}

/// Nanoseconds per flight-recorder record() on this thread's ring. The
/// enabled path is two relaxed stores plus a release head bump; the disabled
/// path is one relaxed flag load and must stay free.
double ns_per_flight_event(bool enabled, int iters) {
  flight::Recorder rec(enabled);
  auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    rec.record(static_cast<std::uint64_t>(i), flight::Ev::kQueueEnq,
               static_cast<std::uint32_t>(i));
  }
  auto t1 = Clock::now();
  return wall_us(t0, t1) * 1e3 / iters;
}

/// Nanoseconds per LogHistogram::observe (bit_width bucket index + two
/// relaxed fetch_adds + extreme CAS).
double ns_per_log_hist_record(int iters) {
  LogHistogram h;
  auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    h.observe(0.05 + static_cast<double>(i % 400));
  }
  auto t1 = Clock::now();
  return wall_us(t0, t1) * 1e3 / iters;
}

double median_of_5(double (*f)(bool, int), bool arg, int n) {
  std::vector<double> xs;
  for (int i = 0; i < 5; ++i) xs.push_back(f(arg, n));
  std::sort(xs.begin(), xs.end());
  return xs[2];
}

double median_of_5_int(double (*f)(int), int n) {
  std::vector<double> xs;
  for (int i = 0; i < 5; ++i) xs.push_back(f(n));
  std::sort(xs.begin(), xs.end());
  return xs[2];
}

/// The seed (pre-flight-recorder) hot path paid zero for the recorder; the
/// disabled path is one relaxed load and must stay within noise of that.
/// 5 ns/event is ~15 cycles — far above the real cost, far below a real
/// regression (an accidental mutex or map lookup is 20-100+ ns).
constexpr double kDisabledBudgetNs = 5.0;

}  // namespace

int main() {
  banner("Observability overhead — tracing off vs on, warm hot path");

  constexpr int kRuns = 2000;
  // Interleave off/on and take medians so CPU frequency drift does not bias
  // one side of the comparison.
  double off_us = median_of_5(us_per_warm_invoke, false, kRuns);
  double on_us = median_of_5(us_per_warm_invoke, true, kRuns);
  double rec_on_ns = ns_per_record(true, 200000);
  double rec_off_ns = ns_per_record(false, 200000);
  double metric_ns = ns_per_metric_update(200000);
  double flight_on_ns = median_of_5(ns_per_flight_event, true, 1000000);
  double flight_off_ns = median_of_5(ns_per_flight_event, false, 1000000);
  double log_hist_ns = median_of_5_int(ns_per_log_hist_record, 1000000);

  double delta_pct = off_us > 0.0 ? (on_us - off_us) / off_us * 100.0 : 0.0;

  std::printf("%-44s %10.2f us\n",
              "warm invocation, tracing disabled (median)", off_us);
  std::printf("%-44s %10.2f us\n",
              "warm invocation, tracing enabled  (median)", on_us);
  std::printf("%-44s %+9.1f %%\n", "tracing-enabled delta", delta_pct);
  std::printf("%-44s %10.1f ns\n", "tracer record() (enabled)", rec_on_ns);
  std::printf("%-44s %10.1f ns\n", "tracer record() (disabled)", rec_off_ns);
  std::printf("%-44s %10.1f ns\n", "counter inc + histogram observe",
              metric_ns);
  std::printf("%-44s %10.1f ns\n", "flight record() (enabled)", flight_on_ns);
  std::printf("%-44s %10.1f ns\n", "flight record() (disabled)",
              flight_off_ns);
  std::printf("%-44s %10.1f ns\n", "log-histogram observe()", log_hist_ns);
  std::printf(
      "\nThe disabled path is a single relaxed atomic load; the full worker\n"
      "pipeline with tracing off must match the pre-observability seed\n"
      "within measurement noise.\n");

  JsonObject o;
  o["runs_per_sample"] = kRuns;
  o["warm_invoke_us_tracing_off"] = off_us;
  o["warm_invoke_us_tracing_on"] = on_us;
  o["tracing_on_delta_pct"] = delta_pct;
  o["record_ns_enabled"] = rec_on_ns;
  o["record_ns_disabled"] = rec_off_ns;
  o["metric_update_ns"] = metric_ns;
  o["flight_record_ns_enabled"] = flight_on_ns;
  o["flight_record_ns_disabled"] = flight_off_ns;
  o["log_hist_observe_ns"] = log_hist_ns;
  std::string path = results_dir() + "/obs_overhead.json";
  std::ofstream out(path);
  out << JsonValue(std::move(o)).dump(2) << "\n";
  std::printf("wrote %s\n", path.c_str());

  if (flight_off_ns > kDisabledBudgetNs) {
    std::fprintf(stderr,
                 "FAIL: disabled flight recorder costs %.1f ns/event "
                 "(budget %.1f ns) — the always-off path regressed\n",
                 flight_off_ns, kDisabledBudgetNs);
    return 1;
  }
  return 0;
}
