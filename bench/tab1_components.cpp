// Table 1: latency of each Ilúvatar worker component for a single warm
// invocation, grouped as in the paper (Ingestion & Queuing / Container
// Operations / Agent Communication / Returning).
//
// Besides the table itself (stdout + results/tab1_components.csv), this
// dumps the raw transaction-scoped spans as a Chrome trace
// (results/tab1_trace.json — the table can be regenerated from it with
// `trace_tool tab1`, see EXPERIMENTS.md) and the worker's metric snapshot
// (results/tab1_metrics.json).

#include "bench_util.hpp"

int main() {
  using namespace ilu;
  using namespace ilu::bench;

  SimRuntime rt;
  WorkerConfig cfg;
  cfg.cores = 48.0;
  cfg.memory_mb = 16 * 1024;
  Worker w(rt, cfg);
  auto fn = w.register_function(pyaes());
  w.start();

  // One cold start to establish the container, then clear and measure only
  // warm invocations (the table is "for a single warm invocation").
  bool done = false;
  w.invoke(fn, [&](const InvokeResult&) { done = true; });
  while (!done) rt.run_for(secs(1));
  w.tracer().clear();

  int completed = 0;
  std::function<void(int)> chain = [&](int remaining) {
    if (remaining == 0) return;
    w.invoke(fn, [&, remaining](const InvokeResult&) {
      ++completed;
      chain(remaining - 1);
    });
  };
  constexpr int kWarmRuns = 500;
  chain(kWarmRuns);
  while (completed < kWarmRuns) rt.run_for(secs(5));
  w.shutdown();

  // Raw span dump + metrics snapshot (before the table, which reads the
  // same tracer aggregates).
  write_chrome_trace(w.tracer().spans(), results_dir() + "/tab1_trace.json");
  write_metrics_json(w.metrics().snapshot(),
                     results_dir() + "/tab1_metrics.json");

  struct Row {
    const char* group;
    const char* span;
    double paper_ms;
  };
  const Row rows[] = {
      {"Ingestion & Queuing", spans::kInvoke, 0.026},
      {"Ingestion & Queuing", spans::kSyncInvoke, 0.013},
      {"Ingestion & Queuing", spans::kEnqueueInvocation, 0.017},
      {"Ingestion & Queuing", spans::kAddItemToQ, 0.020},
      {"Container Operations", spans::kSpawnWorker, 0.029},
      {"Container Operations", spans::kDequeue, 0.020},
      {"Container Operations", spans::kAcquireContainer, 0.096},
      {"Container Operations", spans::kTryLockContainer, 0.014},
      {"Agent Communication", spans::kPrepareInvoke, 0.154},
      {"Agent Communication", spans::kCallContainer, 1.364},
      {"Agent Communication", spans::kDownloadResult, 0.032},
      {"Returning", spans::kReturnContainer, 0.017},
      {"Returning", spans::kReturnResults, 0.266},
  };

  banner("Table 1 — per-component worker latency, single warm invocation");
  std::printf("%-22s %-20s %12s %12s\n", "Group", "Function", "measured ms",
              "paper ms");
  CsvWriter csv(results_dir() + "/tab1_components.csv");
  csv.row("group", "span", "measured_ms", "paper_ms");
  double total = 0.0, paper_total = 0.0;
  for (const auto& r : rows) {
    double ms = w.tracer().mean_ms(r.span);
    total += ms;
    paper_total += r.paper_ms;
    std::printf("%-22s %-20s %12.3f %12.3f\n", r.group, r.span, ms,
                r.paper_ms);
    csv.row(r.group, r.span, ms, r.paper_ms);
  }
  std::printf("%-22s %-20s %12.3f %12.3f\n", "TOTAL", "", total, paper_total);
  return 0;
}
