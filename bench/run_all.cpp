// Perf-trajectory harness: measures the engine micro-operations and the
// fig4 keep-alive sweep wall-time at 1 and N threads, and appends a
// schema-stable run record to BENCH_core.json (at the repo root when run
// from there) so successive PRs accumulate a before/after trajectory
// instead of claiming speedups in prose.
//
//   ./build/bench/run_all [--label STR] [--out PATH] [--threads N] [--smoke]
//
// --smoke shrinks every input to seconds-scale (wired into ctest under the
// `perf` label as the bench_smoke target); the full run is minutes-scale.
//
// Schema (ilu-bench-core-v1): {"schema", "runs": [{label, utc, host_threads,
// smoke, engine:{events_per_sec, schedule_run_events_per_sec,
// schedule_cancel_ops_per_sec, queue_push_pop_ops_per_sec,
// pool_acquire_return_ops_per_sec}, pool_churn:{slab_ops_per_sec,
// pointer_ops_per_sec, speedup}, trace_gen:{functions, events,
// aos_events_per_sec, arena_events_per_sec}, trace_replay:{functions,
// events, chunks, gen_events_per_sec, replay_events_per_sec, equivalent},
// cluster_scaling:{shards,
// completed, wall_s_serial, wall_s_sharded, speedup, equivalent, sync,
// wall_s_optimistic, spec_windows, rollbacks, anti_messages, rollback_rate},
// fig4_sweep:{cells, threads, wall_s_1thread, wall_s_nthreads, speedup},
// lint:{files, findings, wall_s, checks}, obs:{recorder_ns_per_event,
// recorder_disabled_ns_per_event, hist_ns_per_record}}]}.
// Fields are only ever added, never renamed, so downstream tooling can diff
// runs across PRs. Note: on a 1-core CI host cluster_scaling.speedup < 1 by
// construction (barriers with no parallel hardware); `equivalent` is the
// load-bearing field there. Likewise wall_s_optimistic > wall_s_sharded by
// construction on this message-dense cluster trace (nearly every speculative
// window rolls back); rollback_rate pins the worst case for the crossover
// analysis in EXPERIMENTS.md.

#include <array>
#include <chrono>
#include <cmath>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <thread>

#include "bench_util.hpp"
#include "lint/lint.hpp"
#include "mutex_heap_runtime.hpp"
#include "pointer_pool_baseline.hpp"
#include "util/json.hpp"

namespace {

using namespace ilu;
using namespace ilu::bench;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-`reps` throughput for `body`, which performs `ops` operations.
template <typename F>
double best_ops_per_sec(std::uint64_t ops, int reps, F&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    auto t0 = Clock::now();
    body();
    double s = seconds_since(t0);
    if (s > 0.0) best = std::max(best, static_cast<double>(ops) / s);
  }
  return best;
}

/// The worker's realistic schedule/cancel/fire mix: ~40 B captures and a
/// quarter of timers cancelled before firing (mirrors
/// micro_ops::BM_SimRuntimeChurnRealistic).
double engine_events_per_sec(int rounds) {
  std::uint64_t sum = 0;
  return best_ops_per_sec(
      static_cast<std::uint64_t>(rounds) * 1000, 3, [&] {
        for (int round = 0; round < rounds; ++round) {
          SimRuntime rt;
          for (int i = 0; i < 1000; ++i) {
            std::array<std::uint64_t, 4> payload{
                1, 2, 3, static_cast<std::uint64_t>(i)};
            auto id = rt.schedule(usecs((i * 37) % 500),
                                  [payload, &sum] { sum += payload[3]; });
            if (i % 4 == 0) rt.cancel(id);
          }
          rt.run();
        }
      });
}

/// Plain schedule+run cycle with tiny captures (the old engine's best case).
double engine_schedule_run_events_per_sec(int rounds) {
  std::uint64_t sum = 0;
  return best_ops_per_sec(
      static_cast<std::uint64_t>(rounds) * 1000, 3, [&] {
        for (int round = 0; round < rounds; ++round) {
          SimRuntime rt;
          for (int i = 0; i < 1000; ++i) {
            rt.schedule(usecs((i * 37) % 500), [&sum] { ++sum; });
          }
          rt.run();
        }
      });
}

/// Arm/disarm throughput: schedule 512 timers, cancel all, drain.
double engine_schedule_cancel_ops_per_sec(int rounds) {
  return best_ops_per_sec(
      static_cast<std::uint64_t>(rounds) * 512 * 2, 3, [&] {
        SimRuntime rt;
        std::vector<Runtime::TimerId> ids(512);
        for (int round = 0; round < rounds; ++round) {
          for (int i = 0; i < 512; ++i) {
            ids[i] = rt.schedule(usecs(1000 + (i * 31) % 512), [] {});
          }
          for (int i = 0; i < 512; ++i) rt.cancel(ids[i]);
          rt.run();
        }
      });
}

/// InvocationQueue push/pop under the default EEDF discipline.
double queue_push_pop_ops_per_sec(int rounds) {
  auto policy = make_queue_policy("EEDF");
  CharacteristicsMap chars;
  chars.record_warm(0, msecs(100));
  chars.record_cold(0, secs(1));
  InvocationQueue q(*policy, chars);
  std::uint64_t t = 0;
  return best_ops_per_sec(
      static_cast<std::uint64_t>(rounds) * 64, 3, [&] {
        for (int round = 0; round < rounds; ++round) {
          for (int i = 0; i < 64; ++i) {
            QueueItem item;
            item.fn = 0;
            item.arrival = usecs(t++);
            q.push(std::move(item), i % 2 == 0);
          }
          while (auto it = q.pop()) {
            (void)it;
          }
        }
      });
}

/// Warm-path container pool acquire/return cycle.
double pool_acquire_return_ops_per_sec(int rounds) {
  SimRuntime rt;
  LruPolicy policy;
  ContainerPool pool(rt, policy,
                     ContainerPool::Config{.capacity_mb = 64 * 1024,
                                           .sweep_interval = Duration::zero()},
                     nullptr);
  auto profile = lookbusy(msecs(100), 128, msecs(500));
  for (int i = 0; i < 32; ++i) {
    ContainerHandle c = pool.add_container(0, profile, rt.now());
    pool.get(c).state = ContainerState::Launching;
    pool.get(c).state = ContainerState::Running;
    pool.return_container(c, rt.now());
  }
  std::uint64_t t = 0;
  return best_ops_per_sec(static_cast<std::uint64_t>(rounds), 3, [&] {
    for (int round = 0; round < rounds; ++round) {
      ContainerHandle c = pool.acquire(0, usecs(t));
      pool.return_container(c, usecs(t + 1));
      t += 2;
    }
  });
}

/// Cold-start -> warm-hit -> evict churn cycle, before/after the slab
/// refactor. Mirrors bench/pool_churn's loop; recorded so the trajectory
/// file carries the comparison on every host.
struct PoolChurnTiming {
  double slab_ops_per_sec = 0.0;
  double pointer_ops_per_sec = 0.0;
  double speedup = 0.0;
};

PoolChurnTiming pool_churn_timing(int cycles) {
  constexpr int kFns = 16;
  constexpr std::uint32_t kMemMb = 128;
  constexpr std::uint64_t kCapacityMb = 48 * kMemMb;
  auto profile = lookbusy(msecs(100), kMemMb, msecs(500));
  PoolChurnTiming out;
  {
    SimRuntime rt;
    LruPolicy policy;
    ContainerPool pool(rt, policy,
                       ContainerPool::Config{.capacity_mb = kCapacityMb,
                                             .free_buffer_mb = 0,
                                             .sweep_interval = Duration::zero()},
                       nullptr);
    std::uint64_t t = 0;
    auto cycle = [&](int n) {
      for (int i = 0; i < n; ++i) {
        ContainerHandle c = pool.add_container(
            static_cast<FunctionId>(i % kFns), profile, usecs(t));
        if (c.valid()) {
          pool.get(c).state = ContainerState::Launching;
          pool.get(c).state = ContainerState::Running;
          ContainerHandle warm = pool.acquire(
              static_cast<FunctionId>((i + 1) % kFns), usecs(t + 1));
          if (warm.valid()) pool.return_container(warm, usecs(t + 2));
          pool.return_container(c, usecs(t + 3));
        }
        t += 4;
      }
    };
    cycle(cycles / 10);  // warm-up
    out.slab_ops_per_sec = best_ops_per_sec(
        static_cast<std::uint64_t>(cycles), 3, [&] { cycle(cycles); });
  }
  {
    LruPolicy policy;
    PointerContainerPool pool(policy, kCapacityMb);
    std::uint64_t t = 0;
    auto cycle = [&](int n) {
      for (int i = 0; i < n; ++i) {
        Container* c = pool.add_container(static_cast<FunctionId>(i % kFns),
                                          profile, usecs(t));
        if (c != nullptr) {
          c->state = ContainerState::Launching;
          c->state = ContainerState::Running;
          Container* warm = pool.acquire(
              static_cast<FunctionId>((i + 1) % kFns), usecs(t + 1));
          if (warm != nullptr) pool.return_container(warm, usecs(t + 2));
          pool.return_container(c, usecs(t + 3));
        }
        t += 4;
      }
    };
    cycle(cycles / 10);
    out.pointer_ops_per_sec = best_ops_per_sec(
        static_cast<std::uint64_t>(cycles), 3, [&] { cycle(cycles); });
  }
  out.speedup = out.pointer_ops_per_sec > 0.0
                    ? out.slab_ops_per_sec / out.pointer_ops_per_sec
                    : 0.0;
  return out;
}

struct SweepTiming {
  std::size_t cells = 0;
  unsigned threads = 1;
  double wall_s_1thread = 0.0;
  double wall_s_nthreads = 0.0;
  double speedup = 0.0;
};

/// Scaled-down fig4 grid: (trace x policy x cache-size) keep-alive sims,
/// timed sequentially and with the parallel sweep engine. The cells are the
/// same simulations fig4_exec_increase runs, on smaller traces so the full
/// harness stays minutes-scale (seconds-scale under --smoke).
SweepTiming fig4_sweep_timing(unsigned threads, bool smoke) {
  AzureModelConfig mcfg;
  mcfg.population = smoke ? 2000 : 20000;
  mcfg.days = smoke ? 1.0 / 24.0 : 0.25;
  AzureTraceModel model(mcfg);

  std::vector<Trace> traces;
  traces.push_back(model.sample_representative(smoke ? 50 : 200));
  if (!smoke) {
    traces.push_back(model.sample_rare(500));
    traces.push_back(model.sample_random(100));
  }
  const std::vector<std::uint64_t> cache_gb =
      smoke ? std::vector<std::uint64_t>{10, 30, 60}
            : std::vector<std::uint64_t>{10, 15, 20, 30, 40, 50, 60, 80};
  const std::vector<std::string> policies =
      smoke ? std::vector<std::string>{"TTL", "GD", "LRU"}
            : std::vector<std::string>{"TTL", "GD", "LRU",
                                       "LND", "FREQ", "HIST"};

  std::vector<std::function<KeepAliveSimResult()>> tasks;
  for (const auto& trace : traces) {
    for (const auto& pol : policies) {
      for (auto gb : cache_gb) {
        tasks.emplace_back([&trace, &pol, gb] {
          return run_keepalive_sim(trace, pol, gb * 1024);
        });
      }
    }
  }

  SweepTiming out;
  out.cells = tasks.size();
  out.threads = exp::SweepRunner({.threads = threads}).threads();

  auto fingerprint = [](const std::vector<KeepAliveSimResult>& rs) {
    double acc = 0.0;
    for (const auto& r : rs) acc += r.cold_fraction() + r.exec_increase_pct();
    return acc;
  };

  auto t0 = Clock::now();
  auto seq = exp::SweepRunner({.threads = 1}).run(tasks);
  out.wall_s_1thread = seconds_since(t0);

  t0 = Clock::now();
  auto par = exp::SweepRunner({.threads = threads}).run(tasks);
  out.wall_s_nthreads = seconds_since(t0);

  if (fingerprint(seq) != fingerprint(par)) {
    std::fprintf(stderr,
                 "FATAL: parallel sweep diverged from sequential results\n");
    std::exit(1);
  }
  out.speedup =
      out.wall_s_nthreads > 0.0 ? out.wall_s_1thread / out.wall_s_nthreads : 0.0;
  return out;
}

struct TraceGenTiming {
  std::size_t functions = 0;
  std::size_t events = 0;
  double aos_events_per_sec = 0.0;    // make_synthetic_trace (AoS + sort)
  double arena_events_per_sec = 0.0;  // make_synthetic_arena (SoA keys)
};

/// Satellite bench: generator throughput on a wide function grid (20k
/// functions full, 2k smoke). The SoA arena path sorts packed u64 keys
/// instead of 24-byte TraceEvent structs; both must yield identical events.
TraceGenTiming trace_gen_timing(bool smoke) {
  TraceGenTiming out;
  out.functions = smoke ? 2000 : 20000;
  std::vector<SyntheticFunctionSpec> specs;
  specs.reserve(out.functions);
  Rng rng(101);
  auto bench_fns = function_bench();
  for (std::size_t i = 0; i < out.functions; ++i) {
    auto p = bench_fns[i % bench_fns.size()];
    p.name += "_" + std::to_string(i);
    specs.push_back({.profile = p,
                     .mean_iat = secs(rng.uniform(5.0, 60.0)),
                     .exponential = true});
  }
  const Duration dur = mins(2);

  out.events = make_synthetic_arena(specs, dur, 13).size();
  const int reps = smoke ? 2 : 3;
  out.aos_events_per_sec = best_ops_per_sec(out.events, reps, [&] {
    auto t = make_synthetic_trace(specs, dur, 13);
    if (t.events.size() != out.events) std::exit(1);
  });
  out.arena_events_per_sec = best_ops_per_sec(out.events, reps, [&] {
    auto a = make_synthetic_arena(specs, dur, 13);
    if (a.size() != out.events) std::exit(1);
  });
  return out;
}

struct TraceReplayTiming {
  std::size_t functions = 0;
  std::uint64_t events = 0;
  std::size_t chunks = 0;
  double gen_events_per_sec = 0.0;     // chunked generation to disk
  double replay_events_per_sec = 0.0;  // mmap'd streaming replay
  bool equivalent = false;             // mmap report == in-RAM report
};

/// Tentpole record: Azure-model trace generated to an on-disk ilu-arena-v1
/// file in bounded-memory chunks, then replayed from the mmap through
/// OpenLoopDriver against a deterministic latency engine. The in-RAM arena
/// replay of the same seed must produce a byte-identical ExperimentReport
/// (bench/trace_replay_scale.cpp runs the same check at any scale).
TraceReplayTiming trace_replay_timing(bool smoke) {
  TraceReplayTiming out;
  out.functions = smoke ? 2000 : 20000;
  const double target_events = smoke ? 2e5 : 2e6;

  AzureModelConfig mcfg;
  mcfg.population = std::max<std::size_t>(out.functions, 50000);
  mcfg.days = 0.25;
  AzureTraceModel model(mcfg);
  std::vector<std::size_t> indices(out.functions);
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  double rate_scale =
      rate_scale_for_target_events(model, indices, target_events);

  const std::string path = "run_all_trace_replay.arena";
  ArenaGenConfig gen_cfg;
  gen_cfg.chunk_functions = out.functions / 8 + 1;  // force a real merge
  auto t0 = Clock::now();
  ArenaGenStats stats =
      generate_arena_file(model, indices, rate_scale, path, gen_cfg);
  double gen_s = seconds_since(t0);
  out.events = stats.events;
  out.chunks = stats.chunks;
  out.gen_events_per_sec =
      gen_s > 0.0 ? static_cast<double>(stats.events) / gen_s : 0.0;

  // Latency-model replay: completion after warm time (plus init on the
  // function's first call), streamed to the report sink.
  auto replay = [](EventView view, const std::vector<FunctionProfile>& fns,
                   ArenaFile* release) {
    SimRuntime rt;
    std::vector<bool> seen(fns.size(), false);
    OpenLoopDriver driver(rt, [&](FunctionId fn,
                                  std::function<void(const InvokeResult&)>
                                      cb) {
      const FunctionProfile& p = fns[fn];
      bool cold = !seen[fn];
      seen[fn] = true;
      Duration exec = cold ? p.cold_time() : p.warm_time;
      TimePoint t0 = rt.now();
      rt.schedule(exec, [&rt, fn, cold, exec, t0, cb = std::move(cb)] {
        InvokeResult r;
        r.success = true;
        r.cold = cold;
        r.fn = fn;
        r.submitted = t0;
        r.exec_started = t0;
        r.completed = rt.now();
        r.exec_time = exec;
        cb(r);
      });
    });
    std::vector<std::string> names;
    for (const auto& f : fns) names.push_back(f.name);
    ExperimentReport report(std::move(names));
    std::uint64_t done = 0;
    driver.set_result_sink([&](const InvokeResult& r) {
      report.add(r);
      if (release != nullptr && (++done & ((1u << 18) - 1)) == 0) {
        release->release_keys_before(driver.submitted());
      }
    });
    driver.start(view);
    while (!driver.done()) rt.run_for(secs(3600));
    return std::pair{report.to_json().dump(), driver.submitted()};
  };

  ArenaFile arena(path);
  t0 = Clock::now();
  auto [mmap_fp, mmap_n] = replay(arena.view(), arena.functions(), &arena);
  double replay_s = seconds_since(t0);
  out.replay_events_per_sec =
      replay_s > 0.0 ? static_cast<double>(mmap_n) / replay_s : 0.0;

  TraceArena ram = model.build_arena(indices, rate_scale);
  auto [ram_fp, ram_n] = replay(EventView(ram), ram.functions, nullptr);
  out.equivalent = mmap_fp == ram_fp && mmap_n == ram_n;
  std::remove(path.c_str());
  if (!out.equivalent) {
    std::fprintf(stderr,
                 "FATAL: mmap'd arena replay diverged from in-RAM replay\n");
    std::exit(1);
  }
  return out;
}

struct ClusterShardTiming {
  std::size_t shards = 2;
  std::uint64_t completed = 0;
  double wall_s_serial = 0.0;
  double wall_s_sharded = 0.0;
  double speedup = 0.0;
  bool equivalent = false;
  /// Same scenario under SyncStrategy::kOptimistic at the same shard count.
  /// Cluster traffic is message-dense, so nearly every speculative window
  /// catches a straggler: the optimistic wall time trails conservative by
  /// construction here (checkpoints + re-execution), and the rollback rate
  /// quantifies it. Tracked so the crossover (EXPERIMENTS.md) has a pinned
  /// worst-case data point per PR.
  double wall_s_optimistic = 0.0;
  std::uint64_t spec_windows = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t anti_messages = 0;
  double rollback_rate = 0.0;  ///< rollbacks per speculative window
};

/// Tentpole record: the 16-worker cluster scenario on 1 shard vs N shards,
/// then the N-shard run again under optimistic (Time Warp) sync. On a
/// 1-core host every sharded run is slower than serial (barrier overhead
/// with no parallel hardware) — `equivalent` is the field CI cares about;
/// wall times only become a speedup with >= `shards` free cores.
ClusterShardTiming cluster_sharded_timing(unsigned threads, bool smoke) {
  std::vector<SyntheticFunctionSpec> specs;
  Rng rng(23);
  auto bench_fns = function_bench();
  for (int i = 0; i < 32; ++i) {
    auto p = bench_fns[i % bench_fns.size()];
    if (p.name == "video_encoding") p = bench_fns[(i + 1) % bench_fns.size()];
    p.name += "_" + std::to_string(i);
    specs.push_back({.profile = p,
                     .mean_iat = secs(rng.uniform(0.1, 0.5)),
                     .exponential = true});
  }
  auto arena = make_synthetic_arena(specs, smoke ? secs(10) : secs(45), 31);

  auto run_once = [&](std::size_t nshards, SyncConfig sync, double* wall_s,
                      ClusterShardTiming* stats) {
    ClusterConfig cfg;
    cfg.num_workers = 16;
    cfg.lb = LbPolicy::ChBl;
    cfg.worker.cores = 8;
    cfg.worker.memory_mb = 8 * 1024;
    cfg.rpc = LatencyModel::shifted(msecs(1.0),
                                    LatencyModel::lognormal(usecs(100), 0.4));
    ShardedRuntime srt(nshards, cfg.rpc.lower_bound(), sync);
    Cluster cluster(srt, cfg);
    for (const auto& f : arena.functions) cluster.register_function(f);
    cluster.start();
    OpenLoopDriver d(srt.shard(0),
                     [&](FunctionId fn,
                         std::function<void(const InvokeResult&)> cb) {
                       cluster.invoke(fn, std::move(cb));
                     });
    auto t0 = Clock::now();
    d.start(arena);
    while (!d.done()) srt.run_for(secs(20));
    *wall_s = seconds_since(t0);
    cluster.shutdown();
    if (stats != nullptr) {
      stats->spec_windows = srt.speculative_windows();
      stats->rollbacks = srt.rollbacks();
      stats->anti_messages = srt.anti_messages();
      stats->rollback_rate =
          stats->spec_windows > 0
              ? static_cast<double>(stats->rollbacks) /
                    static_cast<double>(stats->spec_windows)
              : 0.0;
    }
    std::vector<std::string> names;
    for (const auto& f : arena.functions) names.push_back(f.name);
    ExperimentReport rep(std::move(names));
    rep.add_all(d.results());
    return std::pair{rep.to_json().dump(), d.results().size()};
  };

  ClusterShardTiming out;
  out.shards = std::max<std::size_t>(2, std::min<std::size_t>(threads, 4));
  SyncConfig conservative;  // default strategy
  SyncConfig optimistic;
  optimistic.strategy = SyncStrategy::kOptimistic;
  auto [serial_fp, completed] =
      run_once(1, conservative, &out.wall_s_serial, nullptr);
  auto [sharded_fp, completed2] =
      run_once(out.shards, conservative, &out.wall_s_sharded, nullptr);
  auto [optimistic_fp, completed3] =
      run_once(out.shards, optimistic, &out.wall_s_optimistic, &out);
  out.completed = completed;
  out.equivalent = serial_fp == sharded_fp && completed == completed2 &&
                   serial_fp == optimistic_fp && completed == completed3;
  out.speedup = out.wall_s_sharded > 0.0
                    ? out.wall_s_serial / out.wall_s_sharded
                    : 0.0;
  if (!out.equivalent) {
    std::fprintf(stderr,
                 "FATAL: sharded cluster diverged from serial report "
                 "(conservative match: %d, optimistic match: %d)\n",
                 serial_fp == sharded_fp ? 1 : 0,
                 serial_fp == optimistic_fp ? 1 : 0);
    std::exit(1);
  }
  return out;
}

std::string utc_now_string() {
  std::time_t t = std::time(nullptr);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&t));
  return buf;
}

/// ilu-lint over the real tree: the checker rides in every ctest run, so its
/// wall time is itself a perf budget worth tracking across PRs.
struct LintTiming {
  std::size_t files = 0;
  std::size_t findings = 0;
  double wall_s = 0.0;
};

/// Flight-recorder and log-histogram hot-path unit costs, tracked per PR so
/// the always-on observability budget (<= ~20 ns/event enabled, free when
/// disabled) is enforced by trajectory, not prose.
struct ObsTiming {
  double recorder_ns_per_event = 0.0;
  double recorder_disabled_ns_per_event = 0.0;
  double hist_ns_per_record = 0.0;
};

ObsTiming obs_timing(int iters) {
  ObsTiming out;
  auto ns_per = [&](auto&& body) {
    auto t0 = Clock::now();
    body();
    return seconds_since(t0) * 1e9 / iters;
  };
  {
    flight::Recorder rec(true);
    out.recorder_ns_per_event = ns_per([&] {
      for (int i = 0; i < iters; ++i) {
        rec.record(static_cast<std::uint64_t>(i), flight::Ev::kQueueEnq,
                   static_cast<std::uint32_t>(i));
      }
    });
  }
  {
    flight::Recorder rec(false);
    out.recorder_disabled_ns_per_event = ns_per([&] {
      for (int i = 0; i < iters; ++i) {
        rec.record(static_cast<std::uint64_t>(i), flight::Ev::kQueueEnq,
                   static_cast<std::uint32_t>(i));
      }
    });
  }
  {
    LogHistogram h;
    out.hist_ns_per_record = ns_per([&] {
      for (int i = 0; i < iters; ++i) {
        h.observe(0.05 + static_cast<double>(i % 400));
      }
    });
  }
  return out;
}

/// Live (wall-clock) engine: the sharded-stage timer wheel vs the retired
/// mutex + priority_queue + tombstone runtime
/// (bench/mutex_heap_runtime.hpp), measured as wall-clock op throughput
/// with the loop thread running, then a miniature open-loop serving stage
/// through a real Worker (the full sweep is bench/live_serve).
struct LiveEngineTiming {
  double wheel_ops_per_sec = 0.0;
  double heap_ops_per_sec = 0.0;
  double wheel_contended_ops_per_sec = 0.0;
  double heap_contended_ops_per_sec = 0.0;
  double contended_speedup = 0.0;
  double serve_target_per_min = 0.0;
  double serve_achieved_per_sec = 0.0;
  std::uint64_t serve_completed = 0;
  bool serve_timed_out = false;
  double serve_overhead_p50_ms = 0.0;
  double serve_overhead_p99_ms = 0.0;
  double serve_overhead_p999_ms = 0.0;
};

/// Cross-thread schedule+cancel against a live loop thread, 1ms deadlines.
template <class RT>
double live_sched_cancel_ops_per_sec(int rounds) {
  RT rt;
  std::vector<Runtime::TimerId> ids(512);
  auto t0 = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < 512; ++i) {
      ids[static_cast<std::size_t>(i)] =
          rt.schedule(usecs(1000 + (i * 31) % 512), [] {});
    }
    for (int i = 0; i < 512; ++i) rt.cancel(ids[static_cast<std::size_t>(i)]);
  }
  double s = seconds_since(t0);
  return s > 0.0 ? rounds * 1024.0 / s : 0.0;
}

/// 4 producers staging/cancelling concurrently, with backpressure so the
/// backlog stays bounded on few-core hosts (mirrors
/// micro_ops::BM_*ContendedLive).
template <class RT>
double live_contended_ops_per_sec(int rounds) {
  constexpr int kProducers = 4;
  RT rt;
  auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    threads.emplace_back([&rt, rounds] {
      std::array<Runtime::TimerId, 64> ring{};
      for (int i = 0; i < rounds * 512; ++i) {
        if ((i & 255) == 0) {
          while (rt.pending() > 64 * 1024) std::this_thread::yield();
        }
        ring[static_cast<std::size_t>(i % 64)] =
            rt.schedule(usecs(1000 + (i % 128)), [] {});
        if (i % 2 == 1) {
          rt.cancel(ring[static_cast<std::size_t>((i / 2) % 64)]);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  double s = seconds_since(t0);
  return s > 0.0 ? kProducers * rounds * 512.0 * 1.5 / s : 0.0;
}

LiveEngineTiming live_engine_timing(bool smoke) {
  LiveEngineTiming out;
  const int rounds = smoke ? 40 : 400;
  out.wheel_ops_per_sec = live_sched_cancel_ops_per_sec<RealRuntime>(rounds);
  out.heap_ops_per_sec =
      live_sched_cancel_ops_per_sec<bench::MutexHeapRuntime>(rounds);
  out.wheel_contended_ops_per_sec =
      live_contended_ops_per_sec<RealRuntime>(rounds);
  out.heap_contended_ops_per_sec =
      live_contended_ops_per_sec<bench::MutexHeapRuntime>(rounds);
  out.contended_speedup =
      out.heap_contended_ops_per_sec > 0.0
          ? out.wheel_contended_ops_per_sec / out.heap_contended_ops_per_sec
          : 0.0;

  // Miniature serving stage. Smoke keeps the rate tiny (sanitizer matrices
  // run this harness); the full run offers 1M invocations/minute.
  const double per_min = smoke ? 30000.0 : 1000000.0;
  const double per_sec = per_min / 60.0;
  const Duration duration = smoke ? usecs(1500000) : secs(3);
  constexpr std::size_t kFns = 64;
  out.serve_target_per_min = per_min;
  {
    RealRuntime rt;
    WorkerConfig cfg;
    cfg.name = "run_all_live";
    cfg.cores = 384.0;
    cfg.memory_mb = 512 * 1024;
    cfg.regulator.limit = 2048.0;
    cfg.bypass_threshold = msecs(50);
    cfg.bypass_load_limit = 64.0;
    cfg.netns.target_size = 2048;
    cfg.netns.low_watermark = 512;
    cfg.tracing = false;
    cfg.predictive_prewarm = false;
    Worker w(rt, cfg);
    std::vector<SyntheticFunctionSpec> specs;
    const double fn_iat_us = 1e6 * static_cast<double>(kFns) / per_sec;
    for (std::size_t i = 0; i < kFns; ++i) {
      SyntheticFunctionSpec s;
      s.profile.name = "live_fn_" + std::to_string(i);
      s.profile.mem_mb = 128;
      s.profile.warm_time = msecs(4);
      s.profile.init_time = msecs(20);
      s.mean_iat = usecs(static_cast<std::int64_t>(fn_iat_us));
      s.exponential = false;
      s.phase = usecs(static_cast<std::int64_t>(
          fn_iat_us * static_cast<double>(i) / kFns));
      specs.push_back(std::move(s));
    }
    std::vector<FunctionId> fns;
    for (auto& s : specs) fns.push_back(w.register_function(s.profile));
    w.start();
    // Prewarm to cover the offered per-function overlap (see live_serve).
    const auto prewarms = static_cast<std::size_t>(std::max(
        4.0, std::ceil(per_sec / static_cast<double>(kFns) * 0.006 * 4.0)));
    std::atomic<std::size_t> warmed{0};
    for (FunctionId f : fns) {
      for (std::size_t k = 0; k < prewarms; ++k) {
        rt.post([&w, &warmed, f] {
          w.prewarm(f, [&warmed](bool) {
            warmed.fetch_add(1, std::memory_order_release);
          });
        });
      }
    }
    while (warmed.load(std::memory_order_acquire) < fns.size() * prewarms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    TraceArena arena = make_synthetic_arena(specs, duration, 17);
    EventView view(arena);
    LiveLoadHarness harness(
        rt, [&w](FunctionId f, LiveLoadHarness::CompletionCb cb) {
          w.invoke(f, std::move(cb));
        });
    LiveLoadConfig lcfg;
    lcfg.producers = smoke ? 2 : 4;
    LiveLoadStats stats;
    harness.run(view, lcfg, &stats);
    out.serve_achieved_per_sec = stats.achieved_per_sec;
    out.serve_completed = stats.completed.load(std::memory_order_relaxed);
    out.serve_timed_out = stats.timed_out;
    out.serve_overhead_p50_ms = stats.overhead_ms.percentile(0.50);
    out.serve_overhead_p99_ms = stats.overhead_ms.percentile(0.99);
    out.serve_overhead_p999_ms = stats.overhead_ms.percentile(0.999);
    std::atomic<bool> down{false};
    rt.post([&w, &down] {
      w.shutdown();
      down.store(true, std::memory_order_release);
    });
    while (!down.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return out;
}

LintTiming lint_tree_timing() {
  LintTiming out;
  auto t0 = Clock::now();
  auto findings =
      lint::lint_tree(std::string(ILU_SOURCE_DIR) + "/src", &out.files);
  out.wall_s = seconds_since(t0);
  out.findings = findings.size();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "run";
  std::string out_path = "BENCH_core.json";
  bool smoke = false;
  unsigned threads = exp::threads_from_args(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  banner("run_all — engine micro-ops + fig4 sweep wall-time");
  const int rounds = smoke ? 200 : 2000;

  double ev = engine_events_per_sec(rounds);
  std::printf("%-36s %12.0f /s\n", "events (realistic churn)", ev);
  double ev_plain = engine_schedule_run_events_per_sec(rounds);
  std::printf("%-36s %12.0f /s\n", "events (plain schedule+run)", ev_plain);
  double sc = engine_schedule_cancel_ops_per_sec(rounds);
  std::printf("%-36s %12.0f /s\n", "schedule+cancel ops", sc);
  double qp = queue_push_pop_ops_per_sec(rounds * 10);
  std::printf("%-36s %12.0f /s\n", "queue push+pop ops", qp);
  double pa = pool_acquire_return_ops_per_sec(rounds * 100);
  std::printf("%-36s %12.0f /s\n", "pool acquire+return ops", pa);
  auto pc = pool_churn_timing(rounds * 50);
  std::printf("%-36s %12.0f /s\n", "pool churn (slab/handle)",
              pc.slab_ops_per_sec);
  std::printf("%-36s %12.0f /s\n", "pool churn (pointer baseline)",
              pc.pointer_ops_per_sec);
  std::printf("%-36s %12.2fx\n", "pool churn slab speedup", pc.speedup);

  auto tg = trace_gen_timing(smoke);
  std::printf("%-36s %12zu fns, %zu events\n", "trace gen grid", tg.functions,
              tg.events);
  std::printf("%-36s %12.0f /s\n", "trace gen (AoS stable_sort)",
              tg.aos_events_per_sec);
  std::printf("%-36s %12.0f /s\n", "trace gen (SoA arena keys)",
              tg.arena_events_per_sec);

  auto tr = trace_replay_timing(smoke);
  std::printf("%-36s %12zu fns, %llu events, %zu chunk(s)\n",
              "arena replay trace", tr.functions,
              static_cast<unsigned long long>(tr.events), tr.chunks);
  std::printf("%-36s %12.0f /s\n", "arena gen to disk (chunked)",
              tr.gen_events_per_sec);
  std::printf("%-36s %12.0f /s\n", "arena mmap replay",
              tr.replay_events_per_sec);
  std::printf("%-36s %12s\n", "arena replay reports equivalent",
              tr.equivalent ? "yes" : "NO");

  auto cs = cluster_sharded_timing(threads, smoke);
  std::printf("%-36s %12.2f s\n", "cluster sim wall (1 shard)",
              cs.wall_s_serial);
  std::printf("cluster sim wall (%zu shards)%*s %10.2f s\n", cs.shards,
              static_cast<int>(36 - 26 - std::to_string(cs.shards).size()), "",
              cs.wall_s_sharded);
  std::printf("%-36s %12.2fx\n", "cluster sim sharded speedup", cs.speedup);
  std::printf("%-36s %12.2f s\n", "cluster sim wall (optimistic)",
              cs.wall_s_optimistic);
  std::printf("%-36s %12llu / %llu windows\n", "cluster sim rollbacks",
              static_cast<unsigned long long>(cs.rollbacks),
              static_cast<unsigned long long>(cs.spec_windows));
  std::printf("%-36s %12.2f\n", "cluster sim rollback rate",
              cs.rollback_rate);
  std::printf("%-36s %12s\n", "cluster sim reports equivalent",
              cs.equivalent ? "yes" : "NO");

  auto sweep = fig4_sweep_timing(threads, smoke);
  std::printf("%-36s %12zu\n", "fig4 sweep cells", sweep.cells);
  std::printf("%-36s %12.2f s\n", "fig4 sweep wall (1 thread)",
              sweep.wall_s_1thread);
  std::printf("fig4 sweep wall (%u threads)%*s %9.2f s\n", sweep.threads,
              static_cast<int>(36 - 26 -
                               std::to_string(sweep.threads).size()),
              "", sweep.wall_s_nthreads);
  std::printf("%-36s %12.2fx\n", "fig4 sweep speedup", sweep.speedup);

  auto lt = lint_tree_timing();
  std::printf("%-36s %12zu files, %zu finding(s)\n", "ilu-lint src/ sweep",
              lt.files, lt.findings);
  std::printf("%-36s %12.3f s\n", "ilu-lint wall", lt.wall_s);

  auto ob = obs_timing(smoke ? 200000 : 2000000);
  std::printf("%-36s %12.1f ns\n", "flight record (enabled)",
              ob.recorder_ns_per_event);
  std::printf("%-36s %12.1f ns\n", "flight record (disabled)",
              ob.recorder_disabled_ns_per_event);
  std::printf("%-36s %12.1f ns\n", "log-hist observe",
              ob.hist_ns_per_record);

  auto lv = live_engine_timing(smoke);
  std::printf("%-36s %12.0f /s\n", "live sched+cancel (wheel)",
              lv.wheel_ops_per_sec);
  std::printf("%-36s %12.0f /s\n", "live sched+cancel (mutex+heap)",
              lv.heap_ops_per_sec);
  std::printf("%-36s %12.0f /s\n", "live contended x4 (wheel)",
              lv.wheel_contended_ops_per_sec);
  std::printf("%-36s %12.0f /s\n", "live contended x4 (mutex+heap)",
              lv.heap_contended_ops_per_sec);
  std::printf("%-36s %12.2fx\n", "live contended wheel speedup",
              lv.contended_speedup);
  std::printf("%-36s %12.0f /s (target %.0f/min)%s\n", "live serve achieved",
              lv.serve_achieved_per_sec, lv.serve_target_per_min,
              lv.serve_timed_out ? " [TIMED OUT]" : "");
  std::printf("%-36s %7.2f/%7.2f/%7.2f ms\n",
              "live serve overhead p50/p99/p999", lv.serve_overhead_p50_ms,
              lv.serve_overhead_p99_ms, lv.serve_overhead_p999_ms);

  // Append this run to the trajectory file (create if absent).
  JsonObject run;
  run["label"] = label;
  run["utc"] = utc_now_string();
  run["host_threads"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  run["smoke"] = smoke;
  JsonObject engine;
  engine["events_per_sec"] = ev;
  engine["schedule_run_events_per_sec"] = ev_plain;
  engine["schedule_cancel_ops_per_sec"] = sc;
  engine["queue_push_pop_ops_per_sec"] = qp;
  engine["pool_acquire_return_ops_per_sec"] = pa;
  run["engine"] = engine;
  JsonObject pool_churn;
  pool_churn["slab_ops_per_sec"] = pc.slab_ops_per_sec;
  pool_churn["pointer_ops_per_sec"] = pc.pointer_ops_per_sec;
  pool_churn["speedup"] = pc.speedup;
  run["pool_churn"] = pool_churn;
  JsonObject trace_gen;
  trace_gen["functions"] = static_cast<std::uint64_t>(tg.functions);
  trace_gen["events"] = static_cast<std::uint64_t>(tg.events);
  trace_gen["aos_events_per_sec"] = tg.aos_events_per_sec;
  trace_gen["arena_events_per_sec"] = tg.arena_events_per_sec;
  run["trace_gen"] = trace_gen;
  JsonObject trace_replay;
  trace_replay["functions"] = static_cast<std::uint64_t>(tr.functions);
  trace_replay["events"] = tr.events;
  trace_replay["chunks"] = static_cast<std::uint64_t>(tr.chunks);
  trace_replay["gen_events_per_sec"] = tr.gen_events_per_sec;
  trace_replay["replay_events_per_sec"] = tr.replay_events_per_sec;
  trace_replay["equivalent"] = tr.equivalent;
  run["trace_replay"] = trace_replay;
  JsonObject cluster;
  cluster["shards"] = static_cast<std::uint64_t>(cs.shards);
  cluster["completed"] = cs.completed;
  cluster["wall_s_serial"] = cs.wall_s_serial;
  cluster["wall_s_sharded"] = cs.wall_s_sharded;
  cluster["speedup"] = cs.speedup;
  cluster["equivalent"] = cs.equivalent;
  cluster["sync"] = std::string("conservative+optimistic");
  cluster["wall_s_optimistic"] = cs.wall_s_optimistic;
  cluster["spec_windows"] = cs.spec_windows;
  cluster["rollbacks"] = cs.rollbacks;
  cluster["anti_messages"] = cs.anti_messages;
  cluster["rollback_rate"] = cs.rollback_rate;
  run["cluster_scaling"] = cluster;
  JsonObject fig4;
  fig4["cells"] = static_cast<std::uint64_t>(sweep.cells);
  fig4["threads"] = static_cast<std::int64_t>(sweep.threads);
  fig4["wall_s_1thread"] = sweep.wall_s_1thread;
  fig4["wall_s_nthreads"] = sweep.wall_s_nthreads;
  fig4["speedup"] = sweep.speedup;
  run["fig4_sweep"] = fig4;
  JsonObject lint_rec;
  lint_rec["files"] = static_cast<std::uint64_t>(lt.files);
  lint_rec["findings"] = static_cast<std::uint64_t>(lt.findings);
  lint_rec["wall_s"] = lt.wall_s;
  JsonArray lint_checks;
  for (const auto& c : lint::checks()) {
    lint_checks.emplace_back(std::string(c.name));
  }
  lint_rec["checks"] = lint_checks;
  run["lint"] = lint_rec;
  JsonObject obs;
  obs["recorder_ns_per_event"] = ob.recorder_ns_per_event;
  obs["recorder_disabled_ns_per_event"] = ob.recorder_disabled_ns_per_event;
  obs["hist_ns_per_record"] = ob.hist_ns_per_record;
  run["obs"] = obs;
  JsonObject live;
  live["wheel_ops_per_sec"] = lv.wheel_ops_per_sec;
  live["heap_ops_per_sec"] = lv.heap_ops_per_sec;
  live["wheel_contended_ops_per_sec"] = lv.wheel_contended_ops_per_sec;
  live["heap_contended_ops_per_sec"] = lv.heap_contended_ops_per_sec;
  live["contended_speedup"] = lv.contended_speedup;
  live["serve_target_per_min"] = lv.serve_target_per_min;
  live["serve_achieved_per_sec"] = lv.serve_achieved_per_sec;
  live["serve_completed"] = lv.serve_completed;
  live["serve_timed_out"] = lv.serve_timed_out;
  live["serve_overhead_p50_ms"] = lv.serve_overhead_p50_ms;
  live["serve_overhead_p99_ms"] = lv.serve_overhead_p99_ms;
  live["serve_overhead_p999_ms"] = lv.serve_overhead_p999_ms;
  run["live"] = live;

  JsonObject doc;
  JsonArray runs;
  if (std::filesystem::exists(out_path)) {
    try {
      JsonValue existing = json_parse_file(out_path);
      if (const JsonValue* r = existing.find("runs"); r && r->is_array()) {
        runs = r->as_array();
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: could not parse %s (%s); rewriting\n",
                   out_path.c_str(), e.what());
    }
  }
  runs.emplace_back(run);
  doc["schema"] = "ilu-bench-core-v1";
  doc["runs"] = runs;
  std::ofstream out(out_path);
  out << JsonValue(doc).dump(2) << "\n";
  std::printf("\nappended run '%s' to %s (%zu total)\n", label.c_str(),
              out_path.c_str(), runs.size());
  return 0;
}
