// Fig 4 (a,b,c): increase in execution time due to cold starts vs cache
// size, for keep-alive policies TTL / GD / LRU / LND / FREQ / HIST on the
// Representative, Rare, and Random Azure-model traces.
//
// Paper shape: on the representative trace GD cuts the overhead >3x vs TTL
// and reaches its floor at ~3x smaller cache sizes; on rare/random traces
// recency dominates and LRU wins, with HIST between TTL and the caching
// policies.
//
// The (trace x policy x cache-size) grid fans across cores via the
// exp::SweepRunner (`--threads N`, default all cores); each cell is an
// independent deterministic simulation and the output is byte-identical to
// the sequential order whatever the thread count. `--shard i/n` runs only
// every n-th cell (offset i) so the grid can be split across machines;
// skipped cells print as "-" and are omitted from the CSV.

#include <csignal>
#include <numeric>

#include "bench_util.hpp"

namespace {
ilu::exp::SweepRunner* g_runner = nullptr;
}

// SIGINT stops the sweep cooperatively: cells in flight finish, the grid
// prints with "-" for the cells never reached, and the CSV keeps the
// completed subset. request_stop is a lock-free atomic store, so calling it
// here is async-signal-safe.
extern "C" void fig4_handle_sigint(int) {
  if (g_runner != nullptr) g_runner->request_stop();
}

int main(int argc, char** argv) {
  using namespace ilu;
  using namespace ilu::bench;

  unsigned threads = exp::threads_from_args(argc, argv);
  exp::SweepShard shard = exp::shard_from_args(argc, argv);

  // Day-long traces at their *natural* rates: the keep-alive comparison
  // needs the trace's own concurrency level (force-scaling to the Table 2
  // request rates would make same-function spawn-start cold starts dominate
  // and mask all policy differences).
  AzureModelConfig mcfg;
  mcfg.population = 50000;
  mcfg.days = 1.0;
  AzureTraceModel model(mcfg);

  struct TraceCase {
    const char* name;
    Trace trace;
  };
  TraceCase cases[] = {
      {"representative", model.sample_representative(400)},
      {"rare", model.sample_rare(1000)},
      {"random", model.sample_random(200)},
  };
  const std::vector<std::uint64_t> cache_gb = {10, 15, 20, 30, 40, 50, 60, 80};
  const std::vector<std::string> policies = {"TTL", "GD",  "LRU",
                                             "LND", "FREQ", "HIST"};

  banner("Fig 4 — increase in execution time (%) due to cold starts");

  // One task per grid cell, in the exact order the sequential loops visited
  // them; results come back in that same submission order.
  std::vector<std::function<KeepAliveSimResult()>> tasks;
  for (auto& tc : cases) {
    for (const auto& pol : policies) {
      for (auto gb : cache_gb) {
        const Trace& trace = tc.trace;
        tasks.emplace_back([&trace, &pol, gb] {
          return run_keepalive_sim(trace, pol, gb * 1024);
        });
      }
    }
  }
  const std::size_t grid_size = tasks.size();
  std::vector<std::size_t> owned(grid_size);
  std::iota(owned.begin(), owned.end(), std::size_t{0});
  owned = shard.filter(std::move(owned));
  auto mine = shard.filter(std::move(tasks));

  exp::SweepRunner runner(
      {.threads = threads, .progress_interval = secs(5.0)});
  g_runner = &runner;
  std::signal(SIGINT, fig4_handle_sigint);
  std::printf("(sweep: %zu of %zu cells [shard %zu/%zu] on %u threads)\n",
              mine.size(), grid_size, shard.index, shard.count,
              runner.threads());
  auto mine_results = runner.run_partial(mine);
  std::signal(SIGINT, SIG_DFL);
  if (runner.stop_requested()) {
    std::printf("(interrupted — printing the completed cells)\n");
  }
  std::vector<std::optional<KeepAliveSimResult>> results(grid_size);
  for (std::size_t k = 0; k < owned.size(); ++k) {
    results[owned[k]] = std::move(mine_results[k]);
  }

  CsvWriter csv(results_dir() + "/fig4_exec_increase.csv");
  csv.row("trace", "policy", "cache_gb", "exec_increase_pct",
          "cold_fraction");

  std::size_t idx = 0;
  for (auto& tc : cases) {
    auto stats = tc.trace.stats();
    std::printf("\n[%s] %zu functions, %zu invocations, %.0f req/s\n",
                tc.name, stats.num_functions, stats.num_invocations,
                stats.reqs_per_sec);
    std::printf("%-6s", "GB:");
    for (auto gb : cache_gb) std::printf("%9llu", (unsigned long long)gb);
    std::printf("\n");
    for (const auto& pol : policies) {
      std::printf("%-6s", pol.c_str());
      for (auto gb : cache_gb) {
        const auto& r = results[idx++];
        if (!r) {
          std::printf("%9s", "-");
          continue;
        }
        std::printf("%9.3f", r->exec_increase_pct());
        csv.row(tc.name, pol, gb, r->exec_increase_pct(),
                r->cold_fraction());
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper reference: GD >3x lower than TTL on representative (floor at\n"
      "~15 GB vs ~50 GB); LRU ~2x better than TTL on rare; HIST between.\n");
  return runner.stop_requested() ? 130 : 0;
}
