// pool_churn — cold-start -> invoke -> evict cycle throughput of the
// keep-alive container pool, slab/handle implementation vs the pointer-based
// design it replaced (bench/pointer_pool_baseline.hpp).
//
// Each cycle registers a fresh container (which, at steady state, evicts the
// LRU idle victim to make room), runs one warm acquire/return on another
// function, and returns the new container to the idle set. This exercises
// exactly the paths the slab refactor targets: record allocation/recycling,
// idle-list maintenance, and eviction-victim selection.
//
// Usage: pool_churn [--cycles N] [--reps R]
// Prints ops/s for both implementations and the speedup; exits non-zero if
// the two implementations disagree on eviction counts (a semantic check,
// not a perf one).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "keepalive/pool.hpp"
#include "pointer_pool_baseline.hpp"
#include "runtime/sim_runtime.hpp"
#include "trace/function_profile.hpp"

namespace ilu {
namespace {

constexpr int kFns = 16;
constexpr std::uint32_t kMemMb = 128;
// 48 container slots: small enough that every steady-state add evicts.
constexpr std::uint64_t kCapacityMb = 48 * kMemMb;

struct ChurnResult {
  double ops_per_sec = 0.0;
  std::uint64_t evictions = 0;
};

/// One churn cycle against the slab pool; returns eviction count.
std::uint64_t churn_slab(ContainerPool& pool, const FunctionProfile& profile,
                         int cycles) {
  std::uint64_t t = 0;
  for (int i = 0; i < cycles; ++i) {
    FunctionId fn = static_cast<FunctionId>(i % kFns);
    ContainerHandle c = pool.add_container(fn, profile, usecs(t));
    if (c.valid()) {
      pool.get(c).state = ContainerState::Launching;
      pool.get(c).state = ContainerState::Running;
      // Warm hit on the previously churned function while the new
      // container is "executing".
      ContainerHandle warm =
          pool.acquire(static_cast<FunctionId>((i + 1) % kFns), usecs(t + 1));
      if (warm.valid()) pool.return_container(warm, usecs(t + 2));
      pool.return_container(c, usecs(t + 3));
    }
    t += 4;
  }
  return pool.evictions();
}

std::uint64_t churn_pointer(PointerContainerPool& pool,
                            const FunctionProfile& profile, int cycles) {
  std::uint64_t t = 0;
  for (int i = 0; i < cycles; ++i) {
    FunctionId fn = static_cast<FunctionId>(i % kFns);
    Container* c = pool.add_container(fn, profile, usecs(t));
    if (c != nullptr) {
      c->state = ContainerState::Launching;
      c->state = ContainerState::Running;
      Container* warm =
          pool.acquire(static_cast<FunctionId>((i + 1) % kFns), usecs(t + 1));
      if (warm != nullptr) pool.return_container(warm, usecs(t + 2));
      pool.return_container(c, usecs(t + 3));
    }
    t += 4;
  }
  return pool.evictions();
}

template <typename F>
ChurnResult best_of(int reps, int cycles, F&& run_once) {
  ChurnResult best;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    std::uint64_t evictions = run_once();
    auto t1 = std::chrono::steady_clock::now();
    double s = std::chrono::duration<double>(t1 - t0).count();
    double ops = static_cast<double>(cycles) / s;
    if (ops > best.ops_per_sec) best.ops_per_sec = ops;
    best.evictions = evictions;
  }
  return best;
}

int run(int cycles, int reps) {
  auto profile = lookbusy(msecs(100), kMemMb, msecs(500));

  SimRuntime rt;
  LruPolicy slab_policy;
  ContainerPool slab_pool(
      rt, slab_policy,
      ContainerPool::Config{.capacity_mb = kCapacityMb,
                            .free_buffer_mb = 0,
                            .sweep_interval = Duration::zero()},
      nullptr);
  churn_slab(slab_pool, profile, cycles / 10);  // warm-up: fill + recycle
  ChurnResult slab = best_of(reps, cycles, [&] {
    return churn_slab(slab_pool, profile, cycles);
  });

  LruPolicy ptr_policy;
  PointerContainerPool ptr_pool(ptr_policy, kCapacityMb);
  churn_pointer(ptr_pool, profile, cycles / 10);
  ChurnResult ptr = best_of(reps, cycles, [&] {
    return churn_pointer(ptr_pool, profile, cycles);
  });

  double speedup = slab.ops_per_sec / ptr.ops_per_sec;
  std::printf("%-40s %14.0f /s\n", "churn cycles (slab/handle pool)",
              slab.ops_per_sec);
  std::printf("%-40s %14.0f /s\n", "churn cycles (pointer-based pool)",
              ptr.ops_per_sec);
  std::printf("%-40s %14.2fx\n", "slab speedup", speedup);

  // Semantic cross-check: same policy + same cycle sequence must evict the
  // same number of containers in both implementations.
  if (slab.evictions != ptr.evictions) {
    std::fprintf(stderr,
                 "eviction mismatch: slab=%llu pointer=%llu — the two pool "
                 "implementations diverged\n",
                 static_cast<unsigned long long>(slab.evictions),
                 static_cast<unsigned long long>(ptr.evictions));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ilu

int main(int argc, char** argv) {
  int cycles = 200000;
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
      cycles = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--cycles N] [--reps R]\n", argv[0]);
      return 2;
    }
  }
  return ilu::run(cycles, reps);
}
