// Million-function trace replay from an mmap'd on-disk arena.
//
//   ./trace_replay_scale [--arena FILE | --functions N --target-events E]
//                        [--days D] [--seed S] [--chunk-functions N]
//                        [--smoke] [--keep] [--crosscheck]
//                        [--bench-out PATH] [--label STR]
//
// Measures the streaming replay plane end to end: an ilu-arena-v1 file
// (generated inline through the chunked bounded-memory generator, or passed
// in via --arena from tools/trace_gen) is mmap'd and replayed through
// OpenLoopDriver against a deterministic latency-model engine, with
// completions streamed to an ExperimentReport sink and consumed key pages
// returned to the kernel as the replay advances. Reports generation and
// replay events/s plus peak RSS — the load-bearing claim is that replay RSS
// is O(functions + page window), not O(events).
//
// --crosscheck (implied by --smoke) replays the same workload from the
// in-RAM arena the model builds directly and requires the two
// ExperimentReports to serialize byte-identically — the mmap'd streaming
// path must be a pure optimization. ctest wires `--smoke` in as the
// trace_replay_smoke perf test.
//
// --bench-out appends a run record (label, gen/replay events/s, peak RSS)
// to the ilu-bench-core-v1 trajectory file, as run_all does.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <thread>

#include "bench_util.hpp"
#include "util/json.hpp"

namespace {

using namespace ilu;
using namespace ilu::bench;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double peak_rss_mb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

std::string utc_now_string() {
  std::time_t t = std::time(nullptr);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", std::gmtime(&t));
  return buf;
}

/// Deterministic latency-model control plane: an invocation completes after
/// its profile's warm time (plus init on the function's first call). No
/// queueing or contention — the bench measures the replay data plane, and
/// the model makes both replays (mmap and in-RAM) bit-reproducible.
class LatencyEngine {
 public:
  LatencyEngine(Runtime& rt, const std::vector<FunctionProfile>& fns)
      : rt_(rt), fns_(fns), seen_(fns.size(), false) {}

  void invoke(FunctionId fn, std::function<void(const InvokeResult&)> cb) {
    const FunctionProfile& p = fns_[fn];
    bool cold = !seen_[fn];
    seen_[fn] = true;
    Duration exec = cold ? p.cold_time() : p.warm_time;
    TimePoint t0 = rt_.now();
    rt_.schedule(exec, [this, fn, cold, exec, t0,
                        cb = std::move(cb)] {
      InvokeResult r;
      r.success = true;
      r.cold = cold;
      r.fn = fn;
      r.submitted = t0;
      r.exec_started = t0;
      r.completed = rt_.now();
      r.exec_time = exec;
      cb(r);
    });
  }

 private:
  Runtime& rt_;
  const std::vector<FunctionProfile>& fns_;
  std::vector<bool> seen_;
};

struct ReplayOutcome {
  std::uint64_t events = 0;
  double wall_s = 0.0;
  std::string report_json;  // empty unless want_report
};

/// Replay `view` against the latency engine. `release` (optional) is called
/// periodically with the number of submitted events so the mmap path can
/// drop consumed pages.
ReplayOutcome replay(EventView view, const std::vector<FunctionProfile>& fns,
                     Duration duration, bool want_report,
                     const std::function<void(std::size_t)>& release) {
  SimRuntime rt;
  LatencyEngine engine(rt, fns);
  OpenLoopDriver driver(rt, [&engine](FunctionId fn,
                                      std::function<void(const InvokeResult&)>
                                          cb) {
    engine.invoke(fn, std::move(cb));
  });
  std::vector<std::string> names;
  if (want_report) {
    names.reserve(fns.size());
    for (const auto& f : fns) names.push_back(f.name);
  }
  // The report's Summary keeps every observation (exact percentiles), so it
  // is O(events) memory by design — only feed it when a cross-check needs
  // the serialized result. The full-scale runs count completions instead;
  // that is what keeps replay RSS O(functions + page window) at 10^8 events.
  ExperimentReport report(std::move(names));
  std::uint64_t completions = 0;
  std::uint64_t cold = 0;
  driver.set_result_sink([&](const InvokeResult& r) {
    if (want_report) report.add(r);
    cold += r.cold ? 1 : 0;
    ++completions;
    // Every ~1M completions, hand fully-consumed key pages back to the
    // kernel. submitted() only grows, so everything below it is dead.
    if (release && (completions & ((1u << 20) - 1)) == 0) {
      release(driver.submitted());
    }
  });

  ReplayOutcome out;
  auto t0 = Clock::now();
  driver.start(view);
  while (!driver.done()) rt.run_for(secs(3600));
  out.wall_s = seconds_since(t0);
  out.events = driver.submitted();
  if (driver.outstanding() != 0 || out.events != view.size()) {
    std::fprintf(stderr, "FATAL: replay did not drain (%zu outstanding)\n",
                 driver.outstanding());
    std::exit(1);
  }
  (void)duration;
  if (want_report) out.report_json = report.to_json().dump();
  std::printf("  completions:   %llu (%llu cold)\n",
              static_cast<unsigned long long>(completions),
              static_cast<unsigned long long>(cold));
  return out;
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--arena FILE | --functions N --target-events E] "
               "[--days D] [--seed S] [--chunk-functions N] [--smoke] "
               "[--keep] [--crosscheck] [--bench-out PATH] [--label STR]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) try {
  std::string arena_path;
  std::size_t functions = 20000;
  double target_events = 2e6;
  double days = 1.0;
  std::uint64_t seed = AzureModelConfig{}.seed;
  ArenaGenConfig gen_cfg;
  bool smoke = false;
  bool keep = false;
  bool crosscheck = false;
  std::string bench_out;
  std::string label = "trace_replay";

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--arena") == 0) {
      arena_path = need("--arena");
    } else if (std::strcmp(argv[i], "--functions") == 0) {
      functions = std::strtoull(need("--functions"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--target-events") == 0) {
      target_events = std::strtod(need("--target-events"), nullptr);
    } else if (std::strcmp(argv[i], "--days") == 0) {
      days = std::strtod(need("--days"), nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(need("--seed"), nullptr, 0);
    } else if (std::strcmp(argv[i], "--chunk-functions") == 0) {
      gen_cfg.chunk_functions =
          std::strtoull(need("--chunk-functions"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--keep") == 0) {
      keep = true;
    } else if (std::strcmp(argv[i], "--crosscheck") == 0) {
      crosscheck = true;
    } else if (std::strcmp(argv[i], "--bench-out") == 0) {
      bench_out = need("--bench-out");
    } else if (std::strcmp(argv[i], "--label") == 0) {
      label = need("--label");
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      usage(argv[0]);
    }
  }
  if (smoke) {
    functions = 2000;
    target_events = 2e5;
    crosscheck = true;
    // Exercise the multi-chunk generate/spill/merge path even at toy scale.
    gen_cfg.chunk_functions = std::min<std::size_t>(gen_cfg.chunk_functions,
                                                    512);
  }

  banner("trace_replay_scale — mmap'd on-disk arena replay");

  double gen_s = 0.0;
  double rate_scale = 1.0;
  std::unique_ptr<AzureTraceModel> model;  // kept only for --crosscheck
  std::vector<std::size_t> indices;
  bool generated = false;
  if (arena_path.empty()) {
    arena_path = "trace_replay_scale.arena";
    generated = true;
    AzureModelConfig mcfg;
    mcfg.population = std::max<std::size_t>(functions, 50000);
    mcfg.days = days;
    mcfg.seed = seed;
    model = std::make_unique<AzureTraceModel>(mcfg);
    indices.resize(functions);
    std::iota(indices.begin(), indices.end(), 0);
    rate_scale = target_events > 0.0
                     ? rate_scale_for_target_events(*model, indices,
                                                    target_events)
                     : 1.0;
    auto t0 = Clock::now();
    ArenaGenStats stats =
        generate_arena_file(*model, indices, rate_scale, arena_path, gen_cfg);
    gen_s = seconds_since(t0);
    std::printf("generated %s: %zu fns, %llu events, %zu chunk(s), %.1f MB "
                "in %.2f s (%.3g events/s)\n",
                arena_path.c_str(), stats.functions,
                static_cast<unsigned long long>(stats.events), stats.chunks,
                static_cast<double>(stats.file_bytes) / 1e6, gen_s,
                gen_s > 0.0 ? static_cast<double>(stats.events) / gen_s : 0.0);
  }

  ArenaFile arena(arena_path);
  std::printf("replaying %s: %zu fns, %zu events, %.1f MB mmap'd\n",
              arena_path.c_str(), arena.functions().size(), arena.size(),
              static_cast<double>(arena.file_bytes()) / 1e6);

  const bool want_report = crosscheck;
  auto mmap_run = replay(
      arena.view(), arena.functions(), arena.duration(), want_report,
      [&arena](std::size_t submitted) { arena.release_keys_before(submitted); });
  // Process-wide high-water mark, captured before any in-RAM cross-check
  // materializes O(events) state.
  double replay_rss_mb = peak_rss_mb();
  double replay_eps =
      mmap_run.wall_s > 0.0
          ? static_cast<double>(mmap_run.events) / mmap_run.wall_s
          : 0.0;
  std::printf("mmap replay: %llu events in %.2f s (%.3g events/s), peak RSS "
              "%.1f MB\n",
              static_cast<unsigned long long>(mmap_run.events),
              mmap_run.wall_s, replay_eps, replay_rss_mb);

  bool equivalent = true;
  if (crosscheck) {
    // In-RAM reference: the arena the model builds directly (when we
    // generated inline — covering generator + format + replay), else the
    // file's own materialization.
    TraceArena ram = generated && model != nullptr
                         ? model->build_arena(indices, rate_scale)
                         : arena.to_arena();
    auto ram_run = replay(EventView(ram), ram.functions, ram.duration,
                          /*want_report=*/true, nullptr);
    equivalent = ram_run.report_json == mmap_run.report_json &&
                 ram_run.events == mmap_run.events;
    std::printf("in-RAM replay: %llu events in %.2f s — reports %s\n",
                static_cast<unsigned long long>(ram_run.events),
                ram_run.wall_s,
                equivalent ? "byte-identical" : "DIVERGED");
    if (!equivalent) {
      std::fprintf(stderr,
                   "FATAL: mmap replay diverged from in-RAM replay\n");
      if (generated && !keep) std::remove(arena_path.c_str());
      return 1;
    }
  }

  if (!bench_out.empty()) {
    JsonObject rec;
    rec["functions"] = static_cast<std::uint64_t>(arena.functions().size());
    rec["events"] = static_cast<std::uint64_t>(arena.size());
    rec["file_mb"] = static_cast<double>(arena.file_bytes()) / 1e6;
    if (generated) {
      rec["gen_wall_s"] = gen_s;
      rec["gen_events_per_sec"] =
          gen_s > 0.0 ? static_cast<double>(arena.size()) / gen_s : 0.0;
    }
    rec["replay_wall_s"] = mmap_run.wall_s;
    rec["replay_events_per_sec"] = replay_eps;
    rec["replay_peak_rss_mb"] = replay_rss_mb;
    rec["crosschecked"] = crosscheck;
    JsonObject run;
    run["label"] = label;
    run["utc"] = utc_now_string();
    run["host_threads"] =
        static_cast<std::int64_t>(std::thread::hardware_concurrency());
    run["smoke"] = smoke;
    run["trace_replay_scale"] = rec;

    JsonObject doc;
    JsonArray runs;
    if (std::filesystem::exists(bench_out)) {
      try {
        JsonValue existing = json_parse_file(bench_out);
        if (const JsonValue* r = existing.find("runs"); r && r->is_array()) {
          runs = r->as_array();
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "warning: could not parse %s (%s); rewriting\n",
                     bench_out.c_str(), e.what());
      }
    }
    runs.emplace_back(run);
    doc["schema"] = "ilu-bench-core-v1";
    doc["runs"] = runs;
    std::ofstream out(bench_out);
    out << JsonValue(doc).dump(2) << "\n";
    std::printf("appended run '%s' to %s (%zu total)\n", label.c_str(),
                bench_out.c_str(), runs.size());
  }

  if (generated && !keep) std::remove(arena_path.c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
