// Table 2: size and inter-arrival-time statistics for the three Azure-model
// trace samples (Representative / Rare / Random). The paper's traces span
// about two hours at the reported request rates (1.35M invocations at
// 190/s), so we generate two-hour samples at those rates.

#include "bench_util.hpp"

int main() {
  using namespace ilu;
  using namespace ilu::bench;

  AzureModelConfig cfg;
  cfg.population = 50000;
  cfg.days = 2.0 / 24.0;  // two hours
  AzureTraceModel model(cfg);

  struct Sample {
    const char* name;
    Trace trace;
    double paper_invocations;
    double paper_rps;
    double paper_iat_ms;
  };
  Sample samples[] = {
      {"Representative", model.sample_representative(400, 190.0), 1348162,
       190.0, 5.4},
      {"Rare", model.sample_rare(1000, 30.0), 202121, 30.0, 36.0},
      {"Random", model.sample_random(200, 600.0), 4291250, 600.0, 1.8},
  };

  banner("Table 2 — Azure-model trace sample statistics");
  std::printf("%-16s %14s %10s %12s | %14s %8s %10s\n", "Trace", "Invocations",
              "Reqs/s", "Avg IAT ms", "paper: Inv", "Reqs/s", "IAT ms");
  CsvWriter csv(results_dir() + "/tab2_trace_stats.csv");
  csv.row("trace", "num_functions", "num_invocations", "reqs_per_sec",
          "avg_iat_ms", "paper_invocations", "paper_rps", "paper_iat_ms");
  for (const auto& s : samples) {
    auto st = s.trace.stats();
    std::printf("%-16s %14zu %10.0f %12.2f | %14.0f %8.0f %10.1f\n", s.name,
                st.num_invocations, st.reqs_per_sec, to_ms(st.avg_iat),
                s.paper_invocations, s.paper_rps, s.paper_iat_ms);
    csv.row(s.name, st.num_functions, st.num_invocations, st.reqs_per_sec,
            to_ms(st.avg_iat), s.paper_invocations, s.paper_rps,
            s.paper_iat_ms);
  }
  std::printf(
      "\nNote: at the paper's request rates a two-hour window reproduces its\n"
      "invocation totals (1.35M at 190/s etc.) as well as the IAT ordering.\n");
  return 0;
}
