#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "iluvatar.hpp"

/// Shared helpers for the per-figure/table benchmark binaries.
namespace ilu::bench {

/// Directory for CSV outputs (created on demand): ./results
inline std::string results_dir() {
  std::filesystem::create_directories("results");
  return "results";
}

inline void banner(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

/// Drive a closed loop against any invoker and collect results.
/// Returns all results (caller filters warm/cold).
inline std::vector<InvokeResult> run_closed_loop(
    SimRuntime& rt, const InvokeFn& invoke, std::size_t clients,
    std::size_t iterations_per_client, Duration max_sim_time = mins(60)) {
  ClosedLoopDriver driver(rt, invoke, 0, clients);
  driver.start(iterations_per_client);
  TimePoint deadline = rt.now() + max_sim_time;
  while (!driver.done() && rt.now() < deadline) {
    rt.run_for(secs(1));
  }
  return driver.results();
}

/// Replay a trace open-loop against any invoker; waits for stragglers.
inline std::vector<InvokeResult> replay_trace(
    SimRuntime& rt, const InvokeFn& invoke, const Trace& trace,
    Duration drain = mins(5)) {
  OpenLoopDriver driver(rt, invoke);
  driver.start(trace);
  TimePoint deadline =
      rt.now() + trace.duration + drain;
  while (!driver.done() && rt.now() < deadline) {
    rt.run_for(secs(5));
  }
  return driver.results();
}

inline InvokeFn worker_invoker(Worker& w, FunctionId base = 0) {
  return [&w, base](FunctionId fn,
                    std::function<void(const InvokeResult&)> cb) {
    w.invoke(base + fn, std::move(cb));
  };
}

inline InvokeFn openwhisk_invoker(OpenWhiskModel& ow, FunctionId base = 0) {
  return [&ow, base](FunctionId fn,
                     std::function<void(const InvokeResult&)> cb) {
    ow.invoke(base + fn, std::move(cb));
  };
}

/// Summary of warm-start control-plane overheads from a result set.
inline Summary warm_overheads(const std::vector<InvokeResult>& results) {
  Summary s;
  for (const auto& r : results) {
    if (r.success && !r.cold) s.add_ms(r.overhead());
  }
  return s;
}

}  // namespace ilu::bench
