// Fig 1: control-plane latency overhead vs concurrent invocations, warm
// starts only, OpenWhisk vs Ilúvatar on a 48-core server.
//
// Paper shape to reproduce: OpenWhisk p50 overhead >10 ms with p99 rising
// toward hundreds of ms (with non-monotonic inversions); Ilúvatar p50 <2 ms
// with tail <3 ms up to 32 concurrent and ~10 ms near saturation.

#include "bench_util.hpp"

namespace {

using namespace ilu;
using namespace ilu::bench;

struct Point {
  std::size_t clients;
  double p50, p99, mean;
};

Point measure_iluvatar(std::size_t clients, bool export_obs = false) {
  SimRuntime rt;
  WorkerConfig cfg;
  cfg.cores = 48.0;
  cfg.memory_mb = 48 * 1024;
  cfg.regulator.limit = 4.0 * cfg.cores;  // overcommit like the experiment
  cfg.seed = 1000 + clients;
  Worker w(rt, cfg);
  auto fn = w.register_function(pyaes());
  w.start();

  // Pre-warm one container per client so everything measured is warm.
  for (std::size_t i = 0; i < clients; ++i) w.prewarm(fn);
  rt.run_for(secs(30));

  auto results =
      run_closed_loop(rt, worker_invoker(w), clients, /*iters=*/40);
  w.shutdown();
  if (export_obs) {
    // Structured outputs for the deepest point on the curve: per-function
    // report + the worker's live-metric snapshot.
    ExperimentReport report({"pyaes"});
    report.add_all(results);
    report.write_json(results_dir() + "/fig1_report.json");
    write_metrics_json(w.metrics().snapshot(),
                       results_dir() + "/fig1_worker_metrics.json");
  }
  auto s = warm_overheads(results);
  return {clients, s.p50(), s.p99(), s.mean()};
}

Point measure_openwhisk(std::size_t clients) {
  SimRuntime rt;
  OpenWhiskConfig cfg;
  cfg.cores = 48.0;
  cfg.memory_mb = 48 * 1024;
  cfg.seed = 2000 + clients;
  OpenWhiskModel ow(rt, cfg);
  auto fn = ow.register_function(pyaes());
  ow.start();

  // Warm-up round: create `clients` containers via concurrent cold starts.
  {
    int done = 0;
    for (std::size_t i = 0; i < clients; ++i) {
      ow.invoke(fn, [&](const InvokeResult&) { ++done; });
    }
    while (done < static_cast<int>(clients)) rt.run_for(secs(1));
  }

  auto results =
      run_closed_loop(rt, openwhisk_invoker(ow), clients, /*iters=*/40);
  ow.shutdown();
  auto s = warm_overheads(results);
  return {clients, s.p50(), s.p99(), s.mean()};
}

}  // namespace

int main() {
  banner("Fig 1 — control-plane latency overhead vs concurrent invocations");
  std::printf("PyAES-style function, closed loop, warm starts, 48 cores.\n\n");
  std::printf("%10s | %28s | %28s\n", "", "Iluvatar (ms)", "OpenWhisk (ms)");
  std::printf("%10s | %8s %8s %8s | %8s %8s %8s\n", "clients", "p50", "p99",
              "mean", "p50", "p99", "mean");

  CsvWriter csv(results_dir() + "/fig1_overhead_scaling.csv");
  csv.row("clients", "ilu_p50_ms", "ilu_p99_ms", "ilu_mean_ms", "ow_p50_ms",
          "ow_p99_ms", "ow_mean_ms");

  for (std::size_t clients : {1u, 2u, 4u, 8u, 16u, 32u, 48u, 64u, 96u}) {
    auto il = measure_iluvatar(clients, /*export_obs=*/clients == 96u);
    auto ow = measure_openwhisk(clients);
    std::printf("%10zu | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n", clients,
                il.p50, il.p99, il.mean, ow.p50, ow.p99, ow.mean);
    csv.row(clients, il.p50, il.p99, il.mean, ow.p50, ow.p99, ow.mean);
  }
  std::printf(
      "\nPaper reference: OW p50 >10 ms, p99 up to ~600 ms; Iluvatar p50 "
      "<2 ms,\ntail <3 ms below 32 concurrent, ~10 ms at saturation.\n");
  return 0;
}
