// Fig 5 (a,b,c): cold-start (miss) fraction for the same policy x cache-size
// sweep as Fig 4. The paper notes miss-ratio curves can *disagree* with the
// actual cold-start cost ordering because classic miss ratios ignore the
// per-function miss cost that Greedy-Dual optimizes.
//
// Parallelized over the grid like fig4 (`--threads N`); output order is
// submission order, independent of thread count. Supports the same
// `--shard i/n` cross-machine grid split as fig4.

#include <csignal>
#include <numeric>

#include "bench_util.hpp"

namespace {
ilu::exp::SweepRunner* g_runner = nullptr;
}

// SIGINT stops the sweep cooperatively and prints the completed cells (the
// same partial-grid path as fig4). request_stop is async-signal-safe.
extern "C" void fig5_handle_sigint(int) {
  if (g_runner != nullptr) g_runner->request_stop();
}

int main(int argc, char** argv) {
  using namespace ilu;
  using namespace ilu::bench;

  unsigned threads = exp::threads_from_args(argc, argv);
  exp::SweepShard shard = exp::shard_from_args(argc, argv);

  // Natural-rate, day-long traces (same reasoning as fig4).
  AzureModelConfig mcfg;
  mcfg.population = 50000;
  mcfg.days = 1.0;
  AzureTraceModel model(mcfg);

  struct TraceCase {
    const char* name;
    Trace trace;
  };
  TraceCase cases[] = {
      {"representative", model.sample_representative(400)},
      {"rare", model.sample_rare(1000)},
      {"random", model.sample_random(200)},
  };
  const std::vector<std::uint64_t> cache_gb = {10, 15, 20, 30, 40, 50, 60, 80};
  const std::vector<std::string> policies = {"TTL", "GD",  "LRU",
                                             "LND", "FREQ", "HIST"};

  banner("Fig 5 — cold-start fraction (cache miss ratio)");

  std::vector<std::function<KeepAliveSimResult()>> tasks;
  for (auto& tc : cases) {
    for (const auto& pol : policies) {
      for (auto gb : cache_gb) {
        const Trace& trace = tc.trace;
        tasks.emplace_back([&trace, &pol, gb] {
          return run_keepalive_sim(trace, pol, gb * 1024);
        });
      }
    }
  }
  const std::size_t grid_size = tasks.size();
  std::vector<std::size_t> owned(grid_size);
  std::iota(owned.begin(), owned.end(), std::size_t{0});
  owned = shard.filter(std::move(owned));
  auto mine = shard.filter(std::move(tasks));

  exp::SweepRunner runner(
      {.threads = threads, .progress_interval = secs(5.0)});
  g_runner = &runner;
  std::signal(SIGINT, fig5_handle_sigint);
  std::printf("(sweep: %zu of %zu cells [shard %zu/%zu] on %u threads)\n",
              mine.size(), grid_size, shard.index, shard.count,
              runner.threads());
  auto mine_results = runner.run_partial(mine);
  std::signal(SIGINT, SIG_DFL);
  if (runner.stop_requested()) {
    std::printf("(interrupted — printing the completed cells)\n");
  }
  std::vector<std::optional<KeepAliveSimResult>> results(grid_size);
  for (std::size_t k = 0; k < owned.size(); ++k) {
    results[owned[k]] = std::move(mine_results[k]);
  }

  CsvWriter csv(results_dir() + "/fig5_cold_fraction.csv");
  csv.row("trace", "policy", "cache_gb", "cold_fraction");

  std::size_t idx = 0;
  for (auto& tc : cases) {
    std::printf("\n[%s]\n%-6s", tc.name, "GB:");
    for (auto gb : cache_gb) std::printf("%9llu", (unsigned long long)gb);
    std::printf("\n");
    for (const auto& pol : policies) {
      std::printf("%-6s", pol.c_str());
      for (auto gb : cache_gb) {
        const auto& r = results[idx++];
        if (!r) {
          std::printf("%9s", "-");
          continue;
        }
        std::printf("%9.4f", r->cold_fraction());
        csv.row(tc.name, pol, gb, r->cold_fraction());
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper reference: same ordering trends as Fig 4, but differences\n"
      "between policies shift because miss ratio ignores miss cost.\n");
  return runner.stop_requested() ? 130 : 0;
}
