#!/bin/sh
# Install the repo's git hooks. Currently: a pre-commit hook that runs
# ilu-lint (tools/lint) over the staged .cpp/.hpp files — as one batch, so
# the cross-TU checks (lock-order, include-layering, ...) see every staged
# file at once — catching determinism-rule violations before they reach
# CI's `ilu_lint` ctest run and the check_all.sh lint-strict tier.
#
# Usage: tools/install_hooks.sh   (from anywhere inside the repo)
#
# The hook looks for the linter at build/tools/ilu_lint (or $ILU_LINT if
# set). When the binary is missing it warns and lets the commit through —
# the full-tree lint still gates in ctest — so a fresh clone without a build
# directory can still commit. Bypass a single commit with `git commit
# --no-verify`.
set -eu

repo_root=$(git rev-parse --show-toplevel)
hooks_dir=$(git -C "$repo_root" rev-parse --git-path hooks)

mkdir -p "$hooks_dir"
cat > "$hooks_dir/pre-commit" <<'HOOK'
#!/bin/sh
# Installed by tools/install_hooks.sh — lint staged sources with ilu-lint.
set -u

repo_root=$(git rev-parse --show-toplevel)
lint=${ILU_LINT:-"$repo_root/build/tools/ilu_lint"}

staged=$(git diff --cached --name-only --diff-filter=ACMR -- \
           'src/*.cpp' 'src/*.hpp' 'src/*.cc' 'src/*.h')
[ -z "$staged" ] && exit 0

if [ ! -x "$lint" ]; then
  echo "pre-commit: $lint not built; skipping ilu-lint (ctest still runs it)" >&2
  exit 0
fi

# shellcheck disable=SC2086 — staged paths are newline-split on purpose
cd "$repo_root" && set -- $staged
if ! "$lint" --file "$@"; then
  echo "pre-commit: ilu-lint findings in staged files (fix, suppress with" >&2
  echo "a reasoned allow() annotation, or bypass with --no-verify)" >&2
  exit 1
fi
HOOK
chmod +x "$hooks_dir/pre-commit"
echo "installed $hooks_dir/pre-commit"
