#!/bin/sh
# Full correctness matrix (DESIGN.md §10/§15): a fail-fast lint-strict tier
# (whole-repo ilu-lint with SARIF output), then warnings-as-errors, the
# ownership auditor, and every sanitizer preset, each over the whole test
# suite. CI entry point; expect ~10-20 minutes on a laptop.
#
# Usage: tools/check_all.sh [build-root]
#   build-root defaults to ./build-matrix; one subdirectory per
#   configuration is created (and reused) beneath it.
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
root=${1:-"$repo/build-matrix"}
jobs=$(nproc 2>/dev/null || echo 4)

run_config() {
    name=$1
    shift
    dir="$root/$name"
    echo "==> [$name] cmake $*"
    cmake -B "$dir" -S "$repo" "$@" >"$dir.cmake.log" 2>&1 || {
        cat "$dir.cmake.log"; exit 1; }
    echo "==> [$name] build"
    cmake --build "$dir" -j "$jobs" >"$dir.build.log" 2>&1 || {
        tail -50 "$dir.build.log"; exit 1; }
    echo "==> [$name] ctest"
    (cd "$dir" && ctest -j "$jobs" --output-on-failure) || exit 1
}

mkdir -p "$root"

# 0. lint-strict: the whole-repo analyzer on its own, before any compile —
#    cross-TU lock-order/atomics/blocking/layering findings fail fast
#    (seconds, not minutes), and the SARIF lands where CI annotators look.
lint_strict() {
    dir="$root/lint-strict"
    echo "==> [lint-strict] build ilu-lint"
    cmake -B "$dir" -S "$repo" >"$dir.cmake.log" 2>&1 || {
        cat "$dir.cmake.log"; exit 1; }
    cmake --build "$dir" -j "$jobs" --target ilu_lint >"$dir.build.log" 2>&1 || {
        tail -50 "$dir.build.log"; exit 1; }
    echo "==> [lint-strict] ilu-lint --sarif (+ lock-order graph)"
    "$dir/tools/ilu_lint" --root "$repo" --sarif \
        --dot "$dir/lock_order.dot" >"$dir/lint.sarif" || {
        # Re-run in text mode so the failure is readable in the CI log.
        "$dir/tools/ilu_lint" --root "$repo" || true
        echo "==> [lint-strict] findings (SARIF at $dir/lint.sarif)"
        exit 1
    }
    echo "==> [lint-strict] clean (SARIF at $dir/lint.sarif)"
}
lint_strict

# 1. Baseline RelWithDebInfo with -Werror: the tree must be warning-clean.
#    This build also runs ilu_lint (a default-label ctest test) and the
#    asan/ubsan engine smoke tests.
run_config werror -DILU_WERROR=ON

# 1b. Shard-synchronization gates on the werror build (DESIGN.md §16):
#     a focused re-run of the sharded suites, then the cluster equivalence
#     check under the optimistic (Time Warp) engine — byte-identical reports
#     or a non-zero exit. Kept to 2 shards / both placements so this stays
#     seconds-scale; the full sync x placement matrix is the bench's default.
echo "==> [sync-gates] ctest -L sharded"
(cd "$root/werror" && ctest -L sharded -j "$jobs" --output-on-failure) || exit 1
echo "==> [sync-gates] cluster_scaling --shards 2 --sync optimistic"
"$root/werror/bench/cluster_scaling" --shards 2 --sync optimistic || exit 1

# 2. Debug ownership auditor over the full suite: every cross-thread access
#    in any test would abort here.
run_config debug-checks -DCMAKE_BUILD_TYPE=Debug -DILU_DEBUG_CHECKS=ON

# 3. Sanitizer presets. TSan watches the sharded runtime's barriers and the
#    observability spinlocks; ASan+UBSan cover the slab heap and Task SBO
#    pointer gymnastics. UBSan runs with -fno-sanitize-recover=all, so any
#    finding is a hard test failure.
run_config tsan -DILU_SANITIZE=thread
run_config asan-ubsan "-DILU_SANITIZE=address;undefined"

echo "==> all configurations passed"
