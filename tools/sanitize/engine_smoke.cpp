// Sanitizer smoke harness for the event engine (built by the ubsan_smoke /
// asan_smoke ctest targets, see tools/CMakeLists.txt). Exercises the two
// concurrency- and UB-sensitive cores — SimRuntime's slab heap and
// ShardedRuntime's window protocol — in a few hundred milliseconds, without
// any gtest/benchmark dependency so it compiles standalone under any
// -fsanitize flag. Exits nonzero (or the sanitizer aborts) on failure.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "runtime/sharded_runtime.hpp"
#include "runtime/sim_runtime.hpp"

namespace {

// Inline splitmix64 so the harness only needs the two runtime TUs (ilu::Rng
// lives in util/rng.cpp, which this build deliberately avoids).
struct SplitMix {
  std::uint64_t s;
  std::uint64_t next() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "engine_smoke: FAILED: %s\n", what);
    std::abort();
  }
}

// Single-shard churn: schedule/cancel storms over the slab heap, including
// the recycled-slot and stale-handle paths.
void smoke_sim_runtime() {
  ilu::SimRuntime rt;
  SplitMix rng{7};
  std::uint64_t fired = 0;
  std::vector<ilu::Runtime::TimerId> ids;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 200; ++i) {
      auto delay =
          ilu::Duration{static_cast<std::int64_t>(rng.next() % 5000)};
      ids.push_back(rt.schedule(delay, [&fired] { ++fired; }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) rt.cancel(ids[i]);
    rt.run_for(ilu::Duration{2500});
  }
  rt.run();
  for (auto id : ids) require(!rt.cancel(id), "stale cancel must return false");
  require(fired > 0 && rt.pending() == 0, "events drained");
}

// Multi-shard ping-pong: every shard keeps mailing its neighbour, driving
// the barrier/outbox machinery that TSan and the ownership auditor watch.
void smoke_sharded_runtime() {
  constexpr std::size_t kShards = 4;
  const ilu::Duration look{100};
  ilu::ShardedRuntime srt(kShards, look);
  std::vector<std::uint64_t> hops(kShards, 0);
  std::vector<std::uint64_t> seq(kShards, 0);

  // fn on shard `me`: count the hop and forward to the next shard.
  struct Hop {
    ilu::ShardedRuntime* srt;
    std::vector<std::uint64_t>* hops;
    std::vector<std::uint64_t>* seq;
    ilu::Duration look;
    void run(std::size_t me) const {
      ++(*hops)[me];
      if ((*hops)[me] >= 200) return;
      std::size_t next = (me + 1) % kShards;
      auto at = srt->shard(me).now() + look;
      auto tag = me * 1000000 + (*seq)[me]++;
      auto self = *this;
      srt->send(me, next, at, tag, [self, next] { self.run(next); });
    }
  };
  Hop hop{&srt, &hops, &seq, look};
  for (std::size_t s = 0; s < kShards; ++s) {
    auto at = srt.shard(s).now() + look;
    auto self = hop;
    srt.send(s, s, at, 900000 + s, [self, s] { self.run(s); });
  }
  srt.run();
  require(srt.idle(), "sharded run reached quiescence");
  std::uint64_t total = 0;
  for (auto h : hops) total += h;
  require(total >= 200, "ping-pong made progress");
  require(srt.messages() > 0, "cross-shard mail was delivered");
}

// Optimistic (Time Warp) rollback under the sanitizers: shard 1 speculates
// far ahead on dense local work, shard 0's late message lands in its
// executed past, and the straggler scan must checkpoint-restore (heap
// clone, task copies, outbox annihilation) rather than abort.
void smoke_optimistic_rollback() {
  ilu::SyncConfig cfg;
  cfg.strategy = ilu::SyncStrategy::kOptimistic;
  cfg.speculation = 8.0;
  ilu::ShardedRuntime srt(2, ilu::Duration{100}, cfg);
  for (std::int64_t t = 10; t <= 2000; t += 10) {
    srt.shard(1).schedule(ilu::Duration{t}, [] {});
  }
  std::uint64_t delivered = 0;
  srt.shard(0).schedule(ilu::Duration{1000}, [&srt, &delivered] {
    srt.send(0, 1, srt.shard(0).now() + ilu::Duration{1}, 7,
             [&delivered] { ++delivered; });
  });
  srt.run_until(ilu::TimePoint{3000});
  require(delivered == 1, "straggler delivered exactly once");
  require(srt.rollbacks() >= 1, "speculation was actually rolled back");
}

}  // namespace

int main() {
  smoke_sim_runtime();
  smoke_sharded_runtime();
  smoke_optimistic_rollback();
  std::puts("engine_smoke: OK");
  return 0;
}
