// Standalone generator for ilu-arena-v1 on-disk trace arenas.
//
//   ./trace_gen --out day.arena --functions 1000000 --target-events 1e8
//
// Synthesizes an Azure-model workload straight to disk in bounded memory:
// functions are generated in chunks (packed keys, sorted in RAM, spilled to
// temp files) and k-way merged into the final arena, so a million-function,
// 10^8-invocation day — ~800 MB of keys — generates with a peak RSS of a
// few hundred MB regardless of trace size. The output replays through
// ArenaFile/OpenLoopDriver without ever materializing the event stream
// (bench/trace_replay_scale.cpp, EXPERIMENTS.md).
//
// Options:
//   --out <path>           output arena file (required)
//   --functions <n>        functions in the trace (default 1000)
//   --population <n>       modeled population (default max(functions, 50000))
//   --sample <kind>        all|rep|rare|random (default all = first n indices)
//   --days <d>             trace length in days (default 1)
//   --target-events <e>    scale rates so the expected event count is e
//   --target-rps <r>       alternative: target request rate (events/s)
//   --seed <s>             model seed (default the model's)
//   --chunk-functions <n>  functions per in-RAM generation chunk (8192)
//   --tmp-dir <dir>        directory for temp chunk files (default: with out)
//   --verify               re-open and fully verify the written arena

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>

#include "iluvatar.hpp"

using namespace ilu;

namespace {

long peak_rss_kb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --out <file> [--functions n] [--population n] "
               "[--sample all|rep|rare|random] [--days d] "
               "[--target-events e | --target-rps r] [--seed s] "
               "[--chunk-functions n] [--tmp-dir dir] [--verify]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) try {
  std::string out_path;
  std::size_t functions = 1000;
  std::size_t population = 0;
  std::string sample = "all";
  double days = 1.0;
  double target_events = 0.0;
  double target_rps = 0.0;
  std::uint64_t seed = AzureModelConfig{}.seed;
  ArenaGenConfig gen_cfg;
  bool verify = false;

  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      out_path = need("--out");
    } else if (std::strcmp(argv[i], "--functions") == 0) {
      functions = std::strtoull(need("--functions"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--population") == 0) {
      population = std::strtoull(need("--population"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--sample") == 0) {
      sample = need("--sample");
    } else if (std::strcmp(argv[i], "--days") == 0) {
      days = std::strtod(need("--days"), nullptr);
    } else if (std::strcmp(argv[i], "--target-events") == 0) {
      target_events = std::strtod(need("--target-events"), nullptr);
    } else if (std::strcmp(argv[i], "--target-rps") == 0) {
      target_rps = std::strtod(need("--target-rps"), nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(need("--seed"), nullptr, 0);
    } else if (std::strcmp(argv[i], "--chunk-functions") == 0) {
      gen_cfg.chunk_functions = std::strtoull(need("--chunk-functions"),
                                              nullptr, 10);
    } else if (std::strcmp(argv[i], "--tmp-dir") == 0) {
      gen_cfg.tmp_dir = need("--tmp-dir");
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      usage(argv[0]);
    }
  }
  if (out_path.empty() || functions == 0 || days <= 0.0) usage(argv[0]);
  if (functions > TraceArena::kMaxFn + 1) {
    std::fprintf(stderr, "--functions %zu exceeds the packed-key limit %llu\n",
                 functions,
                 static_cast<unsigned long long>(TraceArena::kMaxFn + 1));
    return 2;
  }

  AzureModelConfig cfg;
  cfg.population = population != 0 ? population
                                   : std::max<std::size_t>(functions, 50000);
  cfg.days = days;
  cfg.seed = seed;
  if (functions > cfg.population) {
    std::fprintf(stderr, "--functions %zu exceeds --population %zu\n",
                 functions, cfg.population);
    return 2;
  }

  std::fprintf(stderr, "building model: population %zu, %.3g day(s)...\n",
               cfg.population, days);
  AzureTraceModel model(cfg);

  std::vector<std::size_t> indices;
  if (sample == "all") {
    indices.resize(functions);
    std::iota(indices.begin(), indices.end(), 0);
  } else if (sample == "rep") {
    indices = model.pick_representative(functions);
  } else if (sample == "rare") {
    indices = model.pick_rare(functions);
  } else if (sample == "random") {
    indices = model.pick_random(functions);
  } else {
    std::fprintf(stderr, "unknown sample kind: %s (all|rep|rare|random)\n",
                 sample.c_str());
    return 2;
  }

  if (target_rps > 0.0) target_events = target_rps * days * 86400.0;
  double rate_scale =
      target_events > 0.0
          ? rate_scale_for_target_events(model, indices, target_events)
          : 1.0;

  gen_cfg.progress = [&](std::size_t done, std::uint64_t events) {
    std::fprintf(stderr, "  generated %zu/%zu functions, %llu events\r",
                 done, indices.size(),
                 static_cast<unsigned long long>(events));
  };

  auto t0 = std::chrono::steady_clock::now();
  ArenaGenStats stats =
      generate_arena_file(model, indices, rate_scale, out_path, gen_cfg);
  auto t1 = std::chrono::steady_clock::now();
  double gen_s = std::chrono::duration<double>(t1 - t0).count();
  std::fprintf(stderr, "\n");

  std::printf("wrote %s (ilu-arena-v1)\n", out_path.c_str());
  std::printf("  functions:     %zu\n", stats.functions);
  std::printf("  events:        %llu\n",
              static_cast<unsigned long long>(stats.events));
  std::printf("  rate_scale:    %.6g\n", rate_scale);
  std::printf("  chunks:        %zu\n", stats.chunks);
  std::printf("  file size:     %.1f MB\n",
              static_cast<double>(stats.file_bytes) / 1e6);
  std::printf("  gen time:      %.2f s (%.3g events/s)\n", gen_s,
              gen_s > 0.0 ? static_cast<double>(stats.events) / gen_s : 0.0);
  std::printf("  peak RSS:      %.1f MB\n",
              static_cast<double>(peak_rss_kb()) / 1024.0);

  if (verify) {
    auto v0 = std::chrono::steady_clock::now();
    ArenaFile f(out_path);
    f.verify();
    auto v1 = std::chrono::steady_clock::now();
    std::printf("  verify:        OK (%.2f s)\n",
                std::chrono::duration<double>(v1 - v0).count());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
