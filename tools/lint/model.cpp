#include "lint/model.hpp"

#include <algorithm>
#include <cstddef>

namespace ilu::lint {

namespace {

const NameSet& cpp_keywords() {
  static const NameSet k = {
      "if",     "for",    "while",   "switch", "return", "sizeof",
      "alignof", "decltype", "static_assert", "catch",  "new",    "delete",
      "throw",  "do",     "else",    "case",   "goto",   "co_await",
      "co_return", "co_yield", "operator", "template", "typename", "using",
      "typedef", "constexpr", "consteval", "constinit", "static", "inline",
      "const",  "auto",   "void",    "int",    "bool",   "char",
      "unsigned", "signed", "long",  "short",  "float",  "double",
      "noexcept", "override", "final", "mutable", "explicit", "virtual",
      "public", "private", "protected", "friend", "namespace", "class",
      "struct", "union",  "enum",    "this",   "nullptr", "true", "false",
      "try",    "break",  "continue", "default", "assert",
  };
  return k;
}

bool is_lock_type(std::string_view id) {
  return id == "mutex" || id == "recursive_mutex" || id == "shared_mutex" ||
         id == "timed_mutex" || id == "recursive_timed_mutex" ||
         id == "SpinLock";
}

bool is_guard_type(std::string_view id) {
  return id == "lock_guard" || id == "unique_lock" || id == "scoped_lock" ||
         id == "shared_lock";
}

bool is_atomic_method(std::string_view id) {
  return id == "load" || id == "store" || id == "exchange" ||
         id == "compare_exchange_weak" || id == "compare_exchange_strong" ||
         id == "fetch_add" || id == "fetch_sub" || id == "fetch_and" ||
         id == "fetch_or" || id == "fetch_xor" || id == "test_and_set" ||
         id == "clear" || id == "test" || id == "wait" ||
         id == "notify_one" || id == "notify_all";
}

bool is_growth_method(std::string_view id) {
  return id == "push_back" || id == "emplace_back" || id == "emplace" ||
         id == "push" || id == "insert" || id == "resize" ||
         id == "reserve" || id == "append";
}

bool is_io_callee(std::string_view id) {
  return id == "printf" || id == "fprintf" || id == "vfprintf" ||
         id == "puts" || id == "fputs" || id == "fwrite" || id == "fread" ||
         id == "fopen" || id == "fclose" || id == "fflush" ||
         id == "getline" || id == "fsync";
}

bool is_registry_lookup(std::string_view id) {
  return id == "counter" || id == "gauge" || id == "histogram" ||
         id == "log_histogram";
}

/// Matching `(` index for the `)` at ts[i], scanning backward over balanced
/// (), [], {}. Returns SIZE_MAX when unbalanced.
std::size_t match_back(const Tokens& ts, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i + 1; j-- > 0;) {
    const Token& t = ts[j];
    if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) {
      ++depth;
    } else if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) {
      if (--depth == 0) return j;
    }
  }
  return static_cast<std::size_t>(-1);
}

/// Matching `)` index for the `(` at ts[i], scanning forward.
std::size_t match_fwd(const Tokens& ts, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < ts.size(); ++j) {
    const Token& t = ts[j];
    if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) {
      ++depth;
    } else if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) {
      if (--depth == 0) return j;
    }
  }
  return ts.size();
}

/// The identifier naming the postfix expression that ends at ts[i] (the
/// token just before a `.`/`->`): `n.word` -> "word", `directory_[c]` ->
/// "directory_", `get()` -> "get", anything else -> "".
std::string_view receiver_before(const Tokens& ts, std::size_t i) {
  if (i >= ts.size()) return {};
  std::size_t j = i;
  if (is_punct(ts[j], "]") || is_punct(ts[j], ")")) {
    std::size_t open = match_back(ts, j);
    if (open == static_cast<std::size_t>(-1) || open == 0) return {};
    j = open - 1;
  }
  return ts[j].kind == Tok::Identifier ? ts[j].text : std::string_view{};
}

/// Scope stack entry. Only one function scope can be live at a time (braces
/// inside it — control flow, lambdas, local classes — classify as Block).
struct Scope {
  enum Kind { Ns, Class, Fn, Block, Opaque } kind = Block;
  std::string name;
  std::size_t fn_index = static_cast<std::size_t>(-1);
};

class Extractor {
 public:
  Extractor(const FileInput& in, const LexResult& lr)
      : in_(in), ts_(lr.tokens) {}

  FileModel run() {
    out_.rel_path = in_.rel_path;
    scan_includes();
    walk();
    attach_orphan_orders();
    return std::move(out_);
  }

 private:
  // -- includes (raw text: the lexer strips preprocessor lines) ------------
  void scan_includes() {
    const std::string& s = in_.content;
    int line = 1;
    std::size_t pos = 0;
    while (pos < s.size()) {
      std::size_t eol = s.find('\n', pos);
      if (eol == std::string::npos) eol = s.size();
      std::string_view l(s.data() + pos, eol - pos);
      auto skip_ws = [&](std::size_t k) {
        while (k < l.size() && (l[k] == ' ' || l[k] == '\t')) ++k;
        return k;
      };
      std::size_t k = skip_ws(0);
      if (k < l.size() && l[k] == '#') {
        k = skip_ws(k + 1);
        if (l.substr(k, 7) == "include") {
          k = skip_ws(k + 7);
          if (k < l.size() && l[k] == '"') {
            std::size_t end = l.find('"', k + 1);
            if (end != std::string_view::npos) {
              out_.includes.emplace_back(
                  std::string(l.substr(k + 1, end - k - 1)), line);
            }
          }
        }
      }
      pos = eol + 1;
      ++line;
    }
  }

  // -- scope walk ----------------------------------------------------------
  bool in_function() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Fn) return true;
    }
    return false;
  }

  std::size_t current_fn() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Fn) return it->fn_index;
    }
    return static_cast<std::size_t>(-1);
  }

  std::string innermost_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Class) return it->name;
      if (it->kind == Scope::Fn) break;
    }
    return {};
  }

  void walk() {
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      const Token& t = ts_[i];
      if (is_punct(t, "{")) {
        scopes_.push_back(classify_brace(i));
        continue;
      }
      if (is_punct(t, "}")) {
        close_locks_at_depth(scopes_.size(), i);
        if (!scopes_.empty()) {
          if (scopes_.back().kind == Scope::Fn) {
            finalize_fn(scopes_.back().fn_index, i);
          }
          scopes_.pop_back();
        }
        continue;
      }
      if (t.kind != Tok::Identifier) continue;
      detect_atomic_decl(i);
      detect_atomic_op(i);
      if (in_function()) {
        detect_guard(i);
        detect_raw_lock(i);
        detect_call(i);
        detect_blocking(i);
        detect_local_type(i);
        detect_lock_decl(i, /*local=*/true);
      } else {
        detect_lock_decl(i, /*local=*/false);
        detect_member_type(i);
      }
    }
    // Unterminated file: close whatever is still open at EOF.
    close_locks_at_depth(0, ts_.size());
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Fn) finalize_fn(it->fn_index, ts_.size());
    }
  }

  // -- brace classification ------------------------------------------------
  Scope classify_brace(std::size_t i) {
    if (in_function() || i == 0) return {Scope::Block, {}, {}};
    std::size_t j = i - 1;
    // Skip trailing function specifiers.
    auto is_spec = [&](const Token& t) {
      return is_id(t, "const") || is_id(t, "noexcept") ||
             is_id(t, "override") || is_id(t, "final") || is_id(t, "mutable");
    };
    while (j > 0 && is_spec(ts_[j])) --j;
    // Trailing return type: `) -> T... {` — rewind to the `)`.
    if (!is_punct(ts_[j], ")")) {
      for (std::size_t k = j, n = 0; k > 0 && n < 24; --k, ++n) {
        const Token& t = ts_[k];
        if (is_punct(t, "->") && k > 0 && is_punct(ts_[k - 1], ")")) {
          j = k - 1;
          break;
        }
        if (t.kind != Tok::Identifier && t.kind != Tok::Number &&
            !is_punct(t, "::") && !is_punct(t, "<") && !is_punct(t, ">") &&
            !is_punct(t, "*") && !is_punct(t, "&") && !is_punct(t, "[") &&
            !is_punct(t, "]") && !is_punct(t, ",")) {
          break;
        }
      }
    }
    // Function body (possibly reached through a ctor-init list).
    while (is_punct(ts_[j], ")")) {
      std::size_t open = match_back(ts_, j);
      if (open == static_cast<std::size_t>(-1) || open == 0) {
        return {Scope::Block, {}, {}};
      }
      std::size_t k = open - 1;
      if (ts_[k].kind != Tok::Identifier) return {Scope::Block, {}, {}};
      std::string name(ts_[k].text);
      std::string cls;
      while (k >= 2 && is_punct(ts_[k - 1], "::") &&
             ts_[k - 2].kind == Tok::Identifier) {
        cls = std::string(ts_[k - 2].text);  // innermost qualifier wins last
        k -= 2;
      }
      if (name == "if" || name == "for" || name == "while" ||
          name == "switch" || name == "catch") {
        return {Scope::Block, {}, {}};
      }
      if (k > 0 && (is_punct(ts_[k - 1], ":") || is_punct(ts_[k - 1], ","))) {
        // A ctor-init item like `free_head_(kNil)`: keep unwinding left.
        if (k < 2) return {Scope::Block, {}, {}};
        j = k - 2;
        continue;
      }
      if (cpp_keywords().count(name) > 0) return {Scope::Block, {}, {}};
      if (cls.empty()) cls = innermost_class();
      return open_fn(name, cls, ts_[k].line, i);
    }
    // `namespace N {` / `class C {` / `struct S {` — scan back to the
    // statement boundary for the introducing keyword.
    for (std::size_t k = j + 1, n = 0; k-- > 0 && n < 64; ++n) {
      const Token& t = ts_[k];
      if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}")) break;
      if (is_id(t, "namespace")) {
        std::string name;
        if (k + 1 < ts_.size() && ts_[k + 1].kind == Tok::Identifier) {
          name = std::string(ts_[k + 1].text);
        }
        return {Scope::Ns, name, {}};
      }
      if (is_id(t, "class") || is_id(t, "struct") || is_id(t, "union")) {
        if (k > 0 && is_id(ts_[k - 1], "enum")) return {Scope::Opaque, {}, {}};
        std::size_t m = k + 1;
        if (m < ts_.size() && is_id(ts_[m], "alignas") &&
            m + 1 < ts_.size() && is_punct(ts_[m + 1], "(")) {
          m = match_fwd(ts_, m + 1) + 1;
        }
        std::string name;
        if (m < ts_.size() && ts_[m].kind == Tok::Identifier) {
          name = std::string(ts_[m].text);
        }
        return {Scope::Class, name, {}};
      }
      if (is_id(t, "enum")) return {Scope::Opaque, {}, {}};
    }
    return {Scope::Block, {}, {}};
  }

  Scope open_fn(const std::string& name, const std::string& cls, int line,
                std::size_t body_open) {
    FunctionModel fn;
    fn.name = name;
    fn.cls = cls;
    fn.qual = cls.empty() ? name : cls + "::" + name;
    fn.line = line;
    fn.tok_begin = body_open;
    out_.functions.push_back(std::move(fn));
    local_types_.clear();
    guard_locks_.clear();
    return {Scope::Fn, name, out_.functions.size() - 1};
  }

  void finalize_fn(std::size_t idx, std::size_t end_tok) {
    if (idx == static_cast<std::size_t>(-1)) return;
    out_.functions[idx].tok_end = end_tok;
  }

  // -- lock scopes ---------------------------------------------------------
  struct OpenLock {
    std::size_t fn_index;
    std::size_t site_index;  // into functions[fn_index].locks
    std::size_t depth;       // scopes_.size() at acquisition
  };

  void close_locks_at_depth(std::size_t depth, std::size_t close_tok) {
    for (std::size_t k = open_locks_.size(); k-- > 0;) {
      if (open_locks_[k].depth >= depth) {
        auto& site = out_.functions[open_locks_[k].fn_index]
                         .locks[open_locks_[k].site_index];
        if (site.tok_end == 0) site.tok_end = close_tok;
        open_locks_.erase(open_locks_.begin() + static_cast<long>(k));
      }
    }
  }

  /// Parse the token range [b, e) as a lock operand: `mu_`, `s.mu`,
  /// `this->mu_`, `*p` — fills member/base and returns true.
  bool parse_lock_ref(std::size_t b, std::size_t e, LockSite& site) {
    // Strip leading `this ->` and `*`.
    bool this_ref = false;
    while (b < e && is_punct(ts_[b], "*")) ++b;
    if (b + 1 < e && is_id(ts_[b], "this") && is_punct(ts_[b + 1], "->")) {
      this_ref = true;
      b += 2;
    }
    // Find the last identifier and the access punct before it.
    std::size_t last = static_cast<std::size_t>(-1);
    for (std::size_t k = b; k < e; ++k) {
      if (ts_[k].kind == Tok::Identifier) last = k;
    }
    if (last == static_cast<std::size_t>(-1)) return false;
    site.member = std::string(ts_[last].text);
    site.line = ts_[last].line;
    if (last > b && (is_punct(ts_[last - 1], ".") ||
                     is_punct(ts_[last - 1], "->"))) {
      std::string_view base = receiver_before(ts_, last - 2);
      site.base_expr = std::string(base);
      site.base_type = resolve_type(base);
    } else if (this_ref) {
      site.base_type = innermost_class();
    }
    site.enclosing_class = innermost_class();
    return true;
  }

  std::string resolve_type(std::string_view var) const {
    if (var.empty()) return {};
    auto it = local_types_.find(std::string(var));
    if (it != local_types_.end()) return it->second;
    std::string cls = innermost_class();
    if (!cls.empty()) {
      auto ct = out_.member_types.find(cls);
      if (ct != out_.member_types.end()) {
        auto mt = ct->second.find(std::string(var));
        if (mt != ct->second.end()) return mt->second;
      }
    }
    return {};
  }

  void add_lock_site(std::size_t fn, LockSite site, std::size_t tok_begin) {
    site.tok_begin = tok_begin;
    site.enclosing_fn = out_.functions[fn].name;
    out_.functions[fn].locks.push_back(std::move(site));
    open_locks_.push_back({fn, out_.functions[fn].locks.size() - 1,
                           scopes_.size()});
  }

  void detect_guard(std::size_t i) {
    if (!is_guard_type(ts_[i].text)) return;
    std::size_t fn = current_fn();
    if (fn == static_cast<std::size_t>(-1)) return;
    std::size_t j = i + 1;
    if (j < ts_.size() && is_punct(ts_[j], "<")) {
      j = skip_template_args(ts_, j);
    }
    std::string guard_var;
    if (j < ts_.size() && ts_[j].kind == Tok::Identifier) {
      guard_var = std::string(ts_[j].text);
      ++j;
    }
    if (j >= ts_.size() || !is_punct(ts_[j], "(")) return;
    std::size_t close = match_fwd(ts_, j);
    if (close >= ts_.size()) return;
    // Split top-level commas.
    std::vector<std::pair<std::size_t, std::size_t>> args;
    {
      int depth = 0;
      std::size_t b = j + 1;
      for (std::size_t k = j; k <= close; ++k) {
        const Token& t = ts_[k];
        if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{") ||
            is_punct(t, "<")) {
          ++depth;
        } else if (is_punct(t, ")") || is_punct(t, "]") ||
                   is_punct(t, "}") || is_punct(t, ">")) {
          --depth;
          if (depth == 0 && k == close && k > b) args.emplace_back(b, k);
        } else if (depth == 1 && is_punct(t, ",")) {
          if (k > b) args.emplace_back(b, k);
          b = k + 1;
        }
      }
    }
    bool deferred = false;
    std::vector<LockSite> refs;
    for (auto [b, e] : args) {
      std::string_view lastid;
      for (std::size_t k = b; k < e; ++k) {
        if (ts_[k].kind == Tok::Identifier) lastid = ts_[k].text;
      }
      if (lastid == "defer_lock") {
        deferred = true;
        continue;
      }
      if (lastid == "adopt_lock" || lastid == "try_to_lock") continue;
      LockSite site;
      if (parse_lock_ref(b, e, site)) refs.push_back(std::move(site));
    }
    if (deferred) {
      if (!guard_var.empty()) guard_locks_[guard_var] = refs;  // armed later
      return;
    }
    std::size_t begin = guard_var.empty() ? find_stmt_end(close) : close;
    for (LockSite& s : refs) {
      LockSite copy = s;
      if (guard_var.empty()) {
        // Unnamed temporary: held to the end of the full statement only.
        copy.tok_begin = close;
        copy.tok_end = begin;
        copy.enclosing_fn = out_.functions[fn].name;
        out_.functions[fn].locks.push_back(std::move(copy));
      } else {
        add_lock_site(fn, std::move(copy), close);
      }
    }
    if (!guard_var.empty()) guard_locks_[guard_var] = refs;
  }

  std::size_t find_stmt_end(std::size_t i) const {
    int depth = 0;
    for (std::size_t k = i + 1; k < ts_.size(); ++k) {
      const Token& t = ts_[k];
      if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) ++depth;
      if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) --depth;
      if (depth <= 0 && is_punct(t, ";")) return k;
    }
    return ts_.size();
  }

  void detect_raw_lock(std::size_t i) {
    std::string_view id = ts_[i].text;
    std::size_t fn = current_fn();
    if (fn == static_cast<std::size_t>(-1)) return;
    if (i == 0 || i + 2 >= ts_.size()) return;
    if (!is_punct(ts_[i - 1], ".") && !is_punct(ts_[i - 1], "->")) return;
    if (!is_punct(ts_[i + 1], "(") || !is_punct(ts_[i + 2], ")")) return;
    std::string_view base = receiver_before(ts_, i - 2);
    if (id == "lock") {
      auto git = guard_locks_.find(std::string(base));
      if (git != guard_locks_.end()) {
        // Re-arming a (deferred or unlocked) guard: acquires its locks.
        for (const LockSite& s : git->second) {
          LockSite copy = s;
          copy.line = ts_[i].line;
          add_lock_site(fn, std::move(copy), i + 2);
        }
        return;
      }
      // Raw `x.lock()` / `a.b.lock()` on a lock object.
      std::size_t e = i - 1;  // exclusive end: the `.`
      std::size_t b = e;
      {
        std::size_t k = e;
        while (k > 0) {
          std::size_t p = k - 1;
          if (is_punct(ts_[p], "]") || is_punct(ts_[p], ")")) {
            std::size_t open = match_back(ts_, p);
            if (open == static_cast<std::size_t>(-1)) break;
            k = open;
            continue;
          }
          if (ts_[p].kind == Tok::Identifier || is_punct(ts_[p], ".") ||
              is_punct(ts_[p], "->") || is_id(ts_[p], "this")) {
            k = p;
            continue;
          }
          break;
        }
        b = k;
      }
      LockSite site;
      if (parse_lock_ref(b, e, site)) {
        site.line = ts_[i].line;
        add_lock_site(fn, std::move(site), i + 2);
      }
      return;
    }
    if (id == "unlock") {
      // Truncate the most recent open site acquired through this receiver
      // (guard var or lock object).
      for (std::size_t k = open_locks_.size(); k-- > 0;) {
        auto& ol = open_locks_[k];
        if (ol.fn_index != fn) continue;
        auto& site = out_.functions[fn].locks[ol.site_index];
        auto git = guard_locks_.find(std::string(base));
        bool match = site.member == base ||
                     (git != guard_locks_.end() && !git->second.empty() &&
                      git->second.front().member == site.member);
        if (match) {
          site.tok_end = i;
          open_locks_.erase(open_locks_.begin() + static_cast<long>(k));
          return;
        }
      }
    }
  }

  // -- calls / blocking ----------------------------------------------------
  void detect_call(std::size_t i) {
    std::string_view id = ts_[i].text;
    if (cpp_keywords().count(id) > 0) return;
    std::size_t j = i + 1;
    if (j < ts_.size() && is_punct(ts_[j], "<")) {
      std::size_t k = skip_template_args(ts_, j);
      if (k < ts_.size() && is_punct(ts_[k], "(")) j = k;
    }
    if (j >= ts_.size() || !is_punct(ts_[j], "(")) return;
    CallSite c;
    c.tok = i;
    c.line = ts_[i].line;
    c.callee = std::string(id);
    if (i > 0 && (is_punct(ts_[i - 1], ".") || is_punct(ts_[i - 1], "->"))) {
      c.has_receiver = true;
      std::string_view base = i >= 2 && is_id(ts_[i - 2], "this")
                                  ? std::string_view{}
                                  : receiver_before(ts_, i - 2);
      if (base.empty() && i >= 2 && is_id(ts_[i - 2], "this")) {
        c.receiver_type = innermost_class();
      } else {
        c.receiver_type = resolve_type(base);
      }
    } else if (i >= 2 && is_punct(ts_[i - 1], "::") &&
               ts_[i - 2].kind == Tok::Identifier) {
      c.has_receiver = true;
      c.receiver_type = std::string(ts_[i - 2].text);
    }
    std::size_t fn = current_fn();
    out_.functions[fn].calls.push_back(std::move(c));
  }

  void detect_blocking(std::size_t i) {
    std::size_t fn = current_fn();
    std::string_view id = ts_[i].text;
    auto add = [&](const char* kind) {
      out_.functions[fn].blocking.push_back(
          {i, ts_[i].line, kind, std::string(id)});
    };
    bool access = i > 0 && (is_punct(ts_[i - 1], ".") ||
                            is_punct(ts_[i - 1], "->"));
    bool called = i + 1 < ts_.size() && is_punct(ts_[i + 1], "(");
    if (id == "new" && !access &&
        !(i > 0 && is_id(ts_[i - 1], "operator"))) {
      add("allocation");
      return;
    }
    if ((id == "make_unique" || id == "make_shared") && i + 1 < ts_.size() &&
        (is_punct(ts_[i + 1], "<") || is_punct(ts_[i + 1], "("))) {
      add("allocation");
      return;
    }
    if (is_growth_method(id) && access && called) {
      add("container-growth");
      return;
    }
    if (is_io_callee(id) && called &&
        (!access || std_qualified(ts_, i))) {
      add("io");
      return;
    }
    if ((id == "cout" || id == "cerr" || id == "clog" || id == "ofstream" ||
         id == "ifstream" || id == "fstream") &&
        std_qualified(ts_, i)) {
      add("io");
      return;
    }
    if (is_registry_lookup(id) && access && called && i + 2 < ts_.size() &&
        ts_[i + 2].kind == Tok::String) {
      add("registry-lookup");
    }
  }

  // -- declarations --------------------------------------------------------
  void detect_lock_decl(std::size_t i, bool local) {
    std::string_view id = ts_[i].text;
    if (!is_lock_type(id)) return;
    if (id != "SpinLock" && !std_qualified(ts_, i)) return;
    std::size_t j = i + 1;
    if (j < ts_.size() && (is_punct(ts_[j], "&") || is_punct(ts_[j], "*"))) {
      return;  // reference/pointer to a lock owned elsewhere
    }
    if (j + 1 >= ts_.size() || ts_[j].kind != Tok::Identifier) return;
    const Token& after = ts_[j + 1];
    if (!is_punct(after, ";") && !is_punct(after, "{") &&
        !is_punct(after, "=")) {
      return;
    }
    std::string name(ts_[j].text);
    if (local) {
      std::size_t fn = current_fn();
      out_.functions[fn].local_locks[name] =
          in_.rel_path + "::" + out_.functions[fn].name + "::" + name;
    } else {
      out_.lock_decls.push_back(
          {innermost_class(), name, std::string(id), ts_[j].line});
    }
  }

  void detect_member_type(std::size_t i) {
    std::string cls = innermost_class();
    if (cls.empty()) return;
    record_typed_decl(i, [&](const std::string& name, const std::string& ty) {
      out_.member_types[cls][name] = ty;
    });
  }

  void detect_local_type(std::size_t i) {
    record_typed_decl(i, [&](const std::string& name, const std::string& ty) {
      local_types_[name] = ty;
    });
  }

  /// Shape `T[::T2][<...>] [const&*]* name <end>` where T is a project
  /// identifier (not std, not a keyword) — records name -> T's last
  /// component. Deliberately loose: consumers only act when the recorded
  /// type matches a class the repo model actually knows.
  template <typename F>
  void record_typed_decl(std::size_t i, F&& record) {
    std::string_view head = ts_[i].text;
    if (head == "std" || cpp_keywords().count(head) > 0) return;
    if (i > 0) {
      const Token& p = ts_[i - 1];
      if (p.kind == Tok::Identifier || is_punct(p, "::") ||
          is_punct(p, ".") || is_punct(p, "->") || is_punct(p, "<")) {
        return;  // mid-chain, member access, or template argument
      }
    }
    std::size_t j = i;
    std::string type(head);
    while (j + 2 < ts_.size() && is_punct(ts_[j + 1], "::") &&
           ts_[j + 2].kind == Tok::Identifier) {
      j += 2;
      type = std::string(ts_[j].text);
    }
    std::size_t k = j + 1;
    if (k < ts_.size() && is_punct(ts_[k], "<")) {
      k = skip_template_args(ts_, k);
    }
    while (k < ts_.size() &&
           (is_id(ts_[k], "const") || is_punct(ts_[k], "&") ||
            is_punct(ts_[k], "*"))) {
      ++k;
    }
    if (k + 1 >= ts_.size() || ts_[k].kind != Tok::Identifier) return;
    const Token& after = ts_[k + 1];
    if (is_punct(after, ";") || is_punct(after, "=") ||
        is_punct(after, ":") || is_punct(after, ",") ||
        is_punct(after, ")") || is_punct(after, "{")) {
      record(std::string(ts_[k].text), type);
    }
  }

  void detect_atomic_decl(std::size_t i) {
    std::string_view id = ts_[i].text;
    bool is_atomic = (id == "atomic" &&
                      (std_qualified(ts_, i) ||
                       (i + 1 < ts_.size() && is_punct(ts_[i + 1], "<")))) ||
                     (id == "atomic_flag" && std_qualified(ts_, i));
    if (!is_atomic) return;
    std::size_t e = i + 1;
    if (e < ts_.size() && is_punct(ts_[e], "<")) {
      e = skip_template_args(ts_, e);
    }
    std::string name;
    int depth = 0;
    for (std::size_t k = e, n = 0; k < ts_.size() && n < 24; ++k, ++n) {
      const Token& t = ts_[k];
      if (is_punct(t, "(") && depth == 0) break;
      if (is_punct(t, "<") || is_punct(t, "[") || is_punct(t, "(")) {
        ++depth;
        continue;
      }
      if (is_punct(t, ">") || is_punct(t, "]") || is_punct(t, ")")) {
        if (depth > 0) --depth;
        continue;  // closing an outer decoration, e.g. unique_ptr<...[]>
      }
      if (depth > 0) continue;
      if (t.kind == Tok::Identifier && !is_id(t, "const")) {
        name = std::string(t.text);
        continue;
      }
      if (is_punct(t, ";") || is_punct(t, "=") || is_punct(t, "{") ||
          is_punct(t, ",")) {
        break;
      }
      if (is_punct(t, "&") || is_punct(t, "*")) continue;
      break;
    }
    if (!name.empty()) out_.atomic_names.insert(name);
  }

  void detect_atomic_op(std::size_t i) {
    std::string_view id = ts_[i].text;
    // Method-style: `x.load(...)`, `n.word.fetch_add(...)`.
    if (is_atomic_method(id) && i > 0 && i + 1 < ts_.size() &&
        (is_punct(ts_[i - 1], ".") || is_punct(ts_[i - 1], "->")) &&
        is_punct(ts_[i + 1], "(")) {
      std::size_t close = match_fwd(ts_, i + 1);
      AtomicOp op;
      op.line = ts_[i].line;
      op.var = std::string(receiver_before(ts_, i >= 2 ? i - 2 : 0));
      op.method = std::string(id);
      collect_orders(i + 1, close, op);
      op_ranges_.emplace_back(i + 1, close);
      out_.atomic_ops.push_back(std::move(op));
      return;
    }
    // Operator-style on a plain identifier: `x = v`, `x++`, `x += v`.
    if (i > 0) {
      const Token& p = ts_[i - 1];
      bool stmt_pos = is_punct(p, ";") || is_punct(p, "{") ||
                      is_punct(p, "}") || is_punct(p, "(") ||
                      is_punct(p, ")") || is_punct(p, ",");
      if (!stmt_pos && !(is_punct(p, "+") && i >= 2 &&
                         is_punct(ts_[i - 2], "+")) &&
          !(is_punct(p, "-") && i >= 2 && is_punct(ts_[i - 2], "-"))) {
        return;
      }
      if (is_punct(p, "+") || is_punct(p, "-")) {
        out_.atomic_ops.push_back({ts_[i].line, std::string(id),
                                   is_punct(p, "+") ? "++" : "--",
                                   {}});
        return;
      }
    } else {
      return;
    }
    if (i + 2 >= ts_.size()) return;
    const Token& n1 = ts_[i + 1];
    const Token& n2 = ts_[i + 2];
    if (is_punct(n1, "=") && !is_punct(n2, "=")) {
      out_.atomic_ops.push_back({ts_[i].line, std::string(id), "=", {}});
    } else if ((is_punct(n1, "+") && is_punct(n2, "+")) ||
               (is_punct(n1, "-") && is_punct(n2, "-"))) {
      out_.atomic_ops.push_back({ts_[i].line, std::string(id),
                                 is_punct(n1, "+") ? "++" : "--",
                                 {}});
    } else if ((is_punct(n1, "+") || is_punct(n1, "-") ||
                is_punct(n1, "&") || is_punct(n1, "|") ||
                is_punct(n1, "^")) &&
               is_punct(n2, "=")) {
      out_.atomic_ops.push_back({ts_[i].line, std::string(id), "op=", {}});
    }
  }

  void collect_orders(std::size_t b, std::size_t e, AtomicOp& op) {
    for (std::size_t k = b; k < e && k < ts_.size(); ++k) {
      if (ts_[k].kind != Tok::Identifier) continue;
      std::string_view id = ts_[k].text;
      if (starts_with(id, "memory_order_")) {
        std::string name(id.substr(13));
        op.orders.emplace_back(name, order_rank(name));
      } else if (id == "memory_order" && k + 2 < e &&
                 is_punct(ts_[k + 1], "::") &&
                 ts_[k + 2].kind == Tok::Identifier) {
        std::string name(ts_[k + 2].text);
        op.orders.emplace_back(name, order_rank(name));
        ++k;
      }
    }
  }

  /// memory_order tokens outside every detected op (fences and ops on
  /// receivers the shapes above missed) become synthetic ops so an explicit
  /// ordering can never dodge the floor check.
  void attach_orphan_orders() {
    for (std::size_t i = 0; i < ts_.size(); ++i) {
      if (ts_[i].kind != Tok::Identifier ||
          !starts_with(ts_[i].text, "memory_order_")) {
        continue;
      }
      bool covered = false;
      for (auto [b, e] : op_ranges_) {
        if (i > b && i < e) {
          covered = true;
          break;
        }
      }
      if (covered) continue;
      std::string name(ts_[i].text.substr(13));
      AtomicOp op;
      op.line = ts_[i].line;
      op.method = "fence";
      op.orders.emplace_back(name, order_rank(name));
      out_.atomic_ops.push_back(std::move(op));
    }
  }

  const FileInput& in_;
  const Tokens& ts_;
  FileModel out_;
  std::vector<Scope> scopes_;
  std::vector<OpenLock> open_locks_;
  std::map<std::string, std::string> local_types_;
  std::map<std::string, std::vector<LockSite>> guard_locks_;
  std::vector<std::pair<std::size_t, std::size_t>> op_ranges_;
};

/// Resolve `inc` as written in `from` against the model's path set: exact
/// (src-relative, the repo convention) or relative to the including file.
std::size_t resolve_include(const RepoModel& m, const std::string& from,
                            const std::string& inc) {
  auto it = m.by_path.find(inc);
  if (it != m.by_path.end()) return it->second;
  std::size_t slash = from.rfind('/');
  if (slash != std::string::npos) {
    it = m.by_path.find(from.substr(0, slash + 1) + inc);
    if (it != m.by_path.end()) return it->second;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

FileModel extract_file(const FileInput& in, const LexResult& lr,
                       std::vector<Finding>& diags) {
  (void)diags;  // directive diagnostics are parsed by the caller
  return Extractor(in, lr).run();
}

RepoModel build_repo_model(std::vector<FileModel> files) {
  RepoModel m;
  std::sort(files.begin(), files.end(),
            [](const FileModel& a, const FileModel& b) {
              return a.rel_path < b.rel_path;
            });
  m.files = std::move(files);
  for (std::size_t i = 0; i < m.files.size(); ++i) {
    m.by_path[m.files[i].rel_path] = i;
  }
  for (const FileModel& f : m.files) {
    for (const LockDecl& d : f.lock_decls) {
      if (d.cls.empty()) {
        m.lock_file_scope[d.name].insert(f.rel_path);
      } else {
        m.lock_member_classes[d.name].insert(d.cls);
        m.known_classes.insert(d.cls);
      }
    }
    for (const auto& [cls, _] : f.member_types) m.known_classes.insert(cls);
    for (const FunctionModel& fn : f.functions) {
      if (!fn.cls.empty()) m.known_classes.insert(fn.cls);
    }
  }

  // Include-transitive atomic visibility, memoized per file.
  std::map<std::size_t, std::set<std::string>> visible;
  std::vector<int> state(m.files.size(), 0);  // 0 new, 1 visiting, 2 done
  // Iterative DFS to keep cycles (which layering flags anyway) harmless.
  for (std::size_t root = 0; root < m.files.size(); ++root) {
    if (state[root] == 2) continue;
    std::vector<std::size_t> stack{root};
    while (!stack.empty()) {
      std::size_t f = stack.back();
      if (state[f] == 0) {
        state[f] = 1;
        bool pushed = false;
        for (const auto& [inc, _] : m.files[f].includes) {
          std::size_t t = resolve_include(m, m.files[f].rel_path, inc);
          if (t != static_cast<std::size_t>(-1) && state[t] == 0) {
            stack.push_back(t);
            pushed = true;
          }
        }
        if (pushed) continue;
      }
      // All children resolved (or in-progress: skip, cycle).
      auto& vis = visible[f];
      vis.insert(m.files[f].atomic_names.begin(),
                 m.files[f].atomic_names.end());
      for (const auto& [inc, _] : m.files[f].includes) {
        std::size_t t = resolve_include(m, m.files[f].rel_path, inc);
        if (t != static_cast<std::size_t>(-1) && state[t] == 2) {
          vis.insert(visible[t].begin(), visible[t].end());
        }
      }
      state[f] = 2;
      stack.pop_back();
    }
  }

  for (std::size_t i = 0; i < m.files.size(); ++i) {
    FileModel& f = m.files[i];
    const auto& vis = visible[i];
    // Keep ops whose receiver is a visible atomic, or that carry an
    // explicit memory_order (explicit ordering proves atomicity).
    std::vector<AtomicOp> kept;
    for (AtomicOp& op : f.atomic_ops) {
      if (!op.orders.empty() || (!op.var.empty() && vis.count(op.var) > 0)) {
        kept.push_back(std::move(op));
      }
    }
    std::sort(kept.begin(), kept.end(),
              [](const AtomicOp& a, const AtomicOp& b) {
                return a.line < b.line;
              });
    f.atomic_ops = std::move(kept);

    // Canonicalize lock identities now that every declaration is known.
    for (FunctionModel& fn : f.functions) {
      for (LockSite& s : fn.locks) {
        if (!s.lock.empty()) continue;
        auto ll = fn.local_locks.find(s.member);
        if (ll != fn.local_locks.end()) {
          s.lock = ll->second;
          continue;
        }
        auto mc = m.lock_member_classes.find(s.member);
        if (!s.base_type.empty() && mc != m.lock_member_classes.end() &&
            mc->second.count(s.base_type) > 0) {
          s.lock = s.base_type + "::" + s.member;
        } else if (!s.enclosing_class.empty() &&
                   mc != m.lock_member_classes.end() &&
                   mc->second.count(s.enclosing_class) > 0) {
          s.lock = s.enclosing_class + "::" + s.member;
        } else if (mc != m.lock_member_classes.end() &&
                   mc->second.size() == 1) {
          s.lock = *mc->second.begin() + "::" + s.member;
        } else {
          auto fsit = m.lock_file_scope.find(s.member);
          if (fsit != m.lock_file_scope.end() && !fsit->second.empty()) {
            s.lock = *fsit->second.begin() + "::" + s.member;
          } else {
            s.lock = f.rel_path + "::" + s.member;
          }
        }
      }
    }
  }
  return m;
}

}  // namespace ilu::lint
