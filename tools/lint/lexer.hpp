#pragma once

#include <string>
#include <string_view>
#include <vector>

/// A lightweight C++ lexer for ilu-lint (tools/lint). Deliberately not a
/// full front end: no preprocessing, no semantic analysis. It produces a
/// token stream with comments and preprocessor directives stripped — exactly
/// enough structure for the repo's determinism checks, which key off
/// qualified-name sequences (`std :: function`), declaration shapes
/// (`std::unordered_map< ... > name`), and range-for headers. Comments are
/// lexed into a side list so suppression annotations
/// (`// ilu-lint: allow(check) - reason`) survive stripping.
namespace ilu::lint {

enum class Tok {
  Identifier,
  Number,
  String,
  CharLit,
  Punct,  // single char, or the two-char `::` / `->`
};

struct Token {
  Tok kind;
  std::string_view text;  // view into the source passed to lex()
  int line = 0;
};

struct Comment {
  int line = 0;        // line the comment starts on
  bool own_line = false;  // nothing but whitespace precedes it on its line
  std::string_view text;  // contents without the // or /* */ markers
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenize `src`. Handles line/block comments, string/char literals
/// (including raw strings and encoding prefixes), digit separators, and
/// preprocessor lines (skipped wholesale, honoring `\` continuations).
/// Never throws on malformed input — unterminated constructs end at EOF.
LexResult lex(std::string_view src);

}  // namespace ilu::lint
