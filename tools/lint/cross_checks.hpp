#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lint/graph.hpp"
#include "lint/lint.hpp"
#include "lint/model.hpp"

/// The four whole-repo checks run over a RepoModel: lock-order,
/// atomics-discipline, blocking-under-lock, include-layering. See
/// cross_checks.cpp for the rules and DESIGN.md §15 for the rationale.
namespace ilu::lint {

/// Witness for one lock-graph edge A -> B: where B was acquired while A was
/// held, and the human-readable chain.
struct LockEdge {
  std::string file;
  int line = 0;
  std::string text;
};

/// Build the lock acquisition graph (nodes: canonical lock ids; edge A -> B:
/// somewhere B is acquired — directly or through calls — while A is held).
/// `edges`, when non-null, receives the witness per edge.
Digraph build_lock_graph(
    const RepoModel& m,
    std::map<std::pair<std::string, std::string>, LockEdge>* edges);

/// Run all four cross-TU checks, appending findings to `out`.
void run_cross_checks(const RepoModel& m, std::vector<Finding>& out);

}  // namespace ilu::lint
