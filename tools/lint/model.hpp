#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/lint.hpp"
#include "lint/support.hpp"

/// The repo model: per-file facts extracted from the token stream (pass 1)
/// and stitched into whole-repo structures (pass 2) for the cross-TU checks
/// in cross_checks.cpp. Still not a compiler — extraction is shape-driven
/// over tokens, resolution is name-driven over the whole file set — but the
/// shapes are exactly the ones this codebase uses, and every ambiguity
/// resolves deterministically (sorted containers, first-witness-wins).
namespace ilu::lint {

/// One atomic load/store/RMW site. `orders` lists the explicit
/// memory_order arguments at the site (empty means implicit seq_cst).
struct AtomicOp {
  int line = 0;
  std::string var;     // receiver variable/member name ("" when unresolved)
  std::string method;  // load/store/fetch_add/..., or "=", "++", "--", "op="
  std::vector<std::pair<std::string, int>> orders;  // (name, order_rank)
};

/// A call made inside a function body. `receiver_type` is the statically
/// resolved class of `x` in `x.f()` / `x->f()` / `T::f()` when local or
/// member declarations reveal it; "" when unknown (then call resolution
/// falls back to matching every function with that bare name).
struct CallSite {
  std::size_t tok = 0;  // token index, for held-range attribution
  int line = 0;
  std::string callee;
  std::string receiver_type;
  /// True for method-style calls (`x.f()`, `x->f()`, `T::f()`). A true
  /// flag with empty receiver_type means the receiver could not be
  /// resolved — such calls only match a repo-unique bare name (guessing
  /// across every class named `snapshot`/`count`/`merge` drowns the lock
  /// graph in false cycles).
  bool has_receiver = false;
};

/// A lexically-detectable blocking operation (allocation, container growth,
/// I/O, metrics-registry name lookup) inside a function body.
struct BlockingOp {
  std::size_t tok = 0;
  int line = 0;
  std::string kind;  // "allocation" | "container-growth" | "io" | "registry-lookup"
  std::string what;  // the operator or callee, e.g. "new", "push_back"
};

/// A lock acquisition: a lock_guard/unique_lock/scoped_lock/shared_lock
/// declaration or a raw `.lock()` call. The token range [tok_begin, tok_end)
/// spans the region the lock is held over (to the end of the enclosing
/// block, or to the matching `.unlock()`).
struct LockSite {
  int line = 0;
  std::size_t tok_begin = 0, tok_end = 0;
  std::string member;           // final member name, e.g. "mu", "g_out_mutex"
  std::string base_expr;        // receiver text, e.g. "s" ("" when plain)
  std::string base_type;        // resolved receiver class ("" when unknown)
  std::string enclosing_class;  // class of the enclosing method ("" if free)
  std::string enclosing_fn;     // bare name of the enclosing function
  std::string lock;             // canonical id, filled by build_repo_model
};

/// A function (or method) definition with the facts the cross checks need.
struct FunctionModel {
  std::string name;  // bare name
  std::string qual;  // "Class::name" when the class is known, else name
  std::string cls;   // declaring class ("" for free functions)
  int line = 0;
  std::size_t tok_begin = 0, tok_end = 0;  // body token range
  std::vector<CallSite> calls;
  std::vector<BlockingOp> blocking;
  std::vector<LockSite> locks;
  /// Function-local lock declarations: name -> canonical id
  /// ("<rel>::<fn>::<name>"), consulted before member resolution.
  std::map<std::string, std::string> local_locks;
};

/// A mutex/SpinLock declaration at class or namespace scope.
struct LockDecl {
  std::string cls;   // declaring class; "" for file (namespace) scope
  std::string name;
  std::string type;  // mutex / recursive_mutex / SpinLock / ...
  int line = 0;
};

/// Per-file facts (pass 1).
struct FileModel {
  std::string rel_path;
  std::vector<std::pair<std::string, int>> includes;  // quoted includes
  std::vector<LockDecl> lock_decls;
  /// Class data members with a project-class type (`TimerWheel wheel_;`),
  /// for receiver-type resolution: class -> member -> type.
  std::map<std::string, std::map<std::string, std::string>> member_types;
  std::set<std::string> atomic_names;  // names declared std::atomic here
  std::vector<AtomicOp> atomic_ops;
  std::vector<FloorPragma> floors;
  std::vector<FunctionModel> functions;
  std::vector<Suppression> suppressions;
};

/// The stitched whole-repo model (pass 2).
struct RepoModel {
  std::vector<FileModel> files;  // sorted by rel_path
  /// member lock name -> declaring classes, across the whole repo.
  std::map<std::string, std::set<std::string>> lock_member_classes;
  /// member lock name -> files declaring it at namespace scope.
  std::map<std::string, std::set<std::string>> lock_file_scope;
  /// All class names the model knows (declares members or methods of).
  std::set<std::string> known_classes;
  /// rel_path -> index into files, for include resolution.
  std::map<std::string, std::size_t> by_path;
};

/// Pass 1: extract one file's facts from its token stream. Malformed
/// directives are appended to `diags` as `lint-suppression` findings.
FileModel extract_file(const FileInput& in, const LexResult& lr,
                       std::vector<Finding>& diags);

/// Pass 2: stitch extracted files into a RepoModel — canonicalize lock
/// identities, resolve include-visible atomics (ops whose receiver is not
/// a visible atomic and that carry no explicit memory_order are dropped),
/// and index classes. `files` is consumed.
RepoModel build_repo_model(std::vector<FileModel> files);

}  // namespace ilu::lint
