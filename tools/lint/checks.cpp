#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

#include "lint/cross_checks.hpp"
#include "lint/lexer.hpp"
#include "lint/lint.hpp"
#include "lint/model.hpp"
#include "lint/support.hpp"

namespace ilu::lint {

namespace {

// ---------------------------------------------------------------------------
// wall-clock
// ---------------------------------------------------------------------------

constexpr std::string_view kWallClockAllow[] = {
    "util/rng.", "runtime/real_runtime.", "exp/sweep.cpp", "obs/"};

/// Middle tier between the blanket allowlist above and a hard ban: files
/// that measure the live runtime (the open-loop load harness) may read the
/// wall clock, but every site must carry a reasoned
/// `// ilu-lint: allow(wall-clock) - <why>` annotation so each escape from
/// Runtime::now() is individually justified. Findings still fire here; the
/// message points at the annotation policy instead of the blanket ban.
constexpr std::string_view kWallClockAnnotatedAllow[] = {"exp/live_load."};

bool is_clock_type(std::string_view id) {
  return id == "steady_clock" || id == "system_clock" ||
         id == "high_resolution_clock";
}

bool is_ambient_time_fn(std::string_view id) {
  return id == "time" || id == "gettimeofday" || id == "clock_gettime" ||
         id == "localtime" || id == "gmtime" || id == "mktime" ||
         id == "rand" || id == "srand";
}

void check_wall_clock(const Tokens& ts, const std::string& rel,
                      std::vector<Finding>& out) {
  if (in_any(rel, kWallClockAllow)) return;
  const bool annotated_tier = in_any(rel, kWallClockAnnotatedAllow);
  auto emit = [&](int line, std::string msg) {
    if (annotated_tier) {
      msg +=
          " — this file is on the annotated-allow tier: wall-clock reads are "
          "permitted only with a per-site `// ilu-lint: allow(wall-clock) - "
          "<reason>`";
    }
    out.push_back({rel, line, "wall-clock", std::move(msg)});
  };
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].kind != Tok::Identifier) continue;
    std::string_view id = ts[i].text;
    if (is_clock_type(id) && i + 2 < ts.size() &&
        is_punct(ts[i + 1], "::") && is_id(ts[i + 2], "now")) {
      emit(ts[i].line, "std::chrono::" + std::string(id) +
                           "::now() reads the wall clock; sim code must take "
                           "time from Runtime::now()");
      continue;
    }
    if (id == "random_device") {
      emit(ts[i].line,
           "std::random_device is ambient entropy; draw from the "
           "seeded util/rng.* generators instead");
      continue;
    }
    if (is_ambient_time_fn(id) && i + 1 < ts.size() &&
        is_punct(ts[i + 1], "(")) {
      // Flag free calls and std::-qualified calls only: `x.time(...)`,
      // `Foo::time(...)`, and declarations `Duration time(...)` all have a
      // disqualifying previous token.
      bool flag = true;
      if (i > 0) {
        const Token& p = ts[i - 1];
        if (p.kind == Tok::Identifier || is_punct(p, ".") ||
            is_punct(p, "->")) {
          flag = false;
        } else if (is_punct(p, "::")) {
          flag = i >= 2 && is_id(ts[i - 2], "std");
        }
      }
      if (flag) {
        emit(ts[i].line, "`" + std::string(id) +
                             "()` reads ambient wall-clock/entropy state "
                             "outside the allowlisted real-time layers");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// unordered-iter
// ---------------------------------------------------------------------------

constexpr std::string_view kUnorderedIterExempt[] = {"obs/", "util/", "exp/"};

bool is_unordered_name(std::string_view id) {
  return id == "unordered_map" || id == "unordered_set" ||
         id == "unordered_multimap" || id == "unordered_multiset";
}

/// Is ts[i] (an unordered container name) the target of a
/// `using Alias = [std::]unordered_xxx<...>` definition? Returns the alias.
std::string_view alias_being_defined(const Tokens& ts, std::size_t i) {
  std::size_t eq = 0;
  if (i >= 3 && is_punct(ts[i - 1], "::") && is_id(ts[i - 2], "std") &&
      is_punct(ts[i - 3], "=")) {
    eq = i - 3;
  } else if (i >= 1 && is_punct(ts[i - 1], "=")) {
    eq = i - 1;
  } else {
    return {};
  }
  if (eq >= 2 && ts[eq - 1].kind == Tok::Identifier &&
      is_id(ts[eq - 2], "using")) {
    return ts[eq - 1].text;
  }
  return {};
}

/// After a container type ends at ts[j], parse a declarator and record the
/// declared variable name. Handles `const`, `&`, `*`, and stops on
/// `::` (nested names like ...::iterator) or a function declaration
/// (identifier followed by `(`).
void record_declared_var(const Tokens& ts, std::size_t j, NameSet& vars) {
  while (j < ts.size() &&
         (is_id(ts[j], "const") || is_punct(ts[j], "&") ||
          is_punct(ts[j], "*"))) {
    ++j;
  }
  if (j + 1 >= ts.size() || ts[j].kind != Tok::Identifier) return;
  const Token& next = ts[j + 1];
  if (is_punct(next, ";") || is_punct(next, "=") || is_punct(next, "{") ||
      is_punct(next, ",") || is_punct(next, ")") || is_punct(next, ":")) {
    vars.insert(std::string(ts[j].text));
  }
}

/// Collect names of variables whose declared type is an unordered container
/// (directly or through a same-file `using` alias).
void collect_unordered_decls(const Tokens& ts, NameSet& vars) {
  NameSet aliases;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].kind == Tok::Identifier && is_unordered_name(ts[i].text)) {
      std::string_view alias = alias_being_defined(ts, i);
      if (!alias.empty()) aliases.insert(std::string(alias));
    }
  }
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].kind != Tok::Identifier) continue;
    std::size_t j;
    if (is_unordered_name(ts[i].text)) {
      if (i + 1 >= ts.size() || !is_punct(ts[i + 1], "<")) continue;
      j = skip_template_args(ts, i + 1);
      if (!alias_being_defined(ts, i).empty()) continue;
    } else if (aliases.count(ts[i].text) > 0) {
      j = i + 1;
      if (j < ts.size() && is_punct(ts[j], "<")) j = skip_template_args(ts, j);
    } else {
      continue;
    }
    record_declared_var(ts, j, vars);
  }
}

void check_unordered_iter(const Tokens& ts, const std::string& rel,
                          const NameSet& vars, std::vector<Finding>& out) {
  if (in_any(rel, kUnorderedIterExempt)) return;
  auto flag = [&](const Token& at, std::string_view var, const char* how) {
    out.push_back({rel, at.line, "unordered-iter",
                   std::string(how) + " over unordered container `" +
                       std::string(var) +
                       "`: iteration order may escape into event/callback "
                       "order — use an ordered container or sort first"});
  };
  for (std::size_t i = 0; i < ts.size(); ++i) {
    // `var.begin()` / cbegin / rbegin / crbegin — iterator-style loops.
    if (ts[i].kind == Tok::Identifier && vars.count(ts[i].text) > 0 &&
        i + 3 < ts.size() && is_punct(ts[i + 1], ".") &&
        (is_id(ts[i + 2], "begin") || is_id(ts[i + 2], "cbegin") ||
         is_id(ts[i + 2], "rbegin") || is_id(ts[i + 2], "crbegin")) &&
        is_punct(ts[i + 3], "(")) {
      flag(ts[i], ts[i].text, "iterator loop");
      continue;
    }
    // Range-for whose range expression is exactly [this->]var.
    if (!(is_id(ts[i], "for") && i + 1 < ts.size() &&
          is_punct(ts[i + 1], "("))) {
      continue;
    }
    int depth = 0;
    std::size_t colon = 0, close = 0;
    for (std::size_t j = i + 1; j < ts.size(); ++j) {
      if (is_punct(ts[j], "(")) {
        ++depth;
      } else if (is_punct(ts[j], ")")) {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (depth == 1 && is_punct(ts[j], ":") && colon == 0) {
        colon = j;
      } else if (depth == 1 && is_punct(ts[j], ";")) {
        colon = 0;  // classic for loop, not range-for
        break;
      }
    }
    if (colon == 0 || close == 0) continue;
    std::size_t b = colon + 1;
    if (b + 1 < close && is_id(ts[b], "this") && is_punct(ts[b + 1], "->")) {
      b += 2;
    }
    if (close == b + 1 && ts[b].kind == Tok::Identifier &&
        vars.count(ts[b].text) > 0) {
      flag(ts[b], ts[b].text, "range-for");
    }
  }
}

// ---------------------------------------------------------------------------
// ptr-order
// ---------------------------------------------------------------------------

bool is_ordered_assoc(std::string_view id) {
  return id == "map" || id == "set" || id == "multimap" ||
         id == "multiset";
}

void check_ptr_order(const Tokens& ts, const std::string& rel,
                     std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (ts[i].kind != Tok::Identifier || !is_punct(ts[i + 1], "<")) continue;
    std::string_view id = ts[i].text;
    bool assoc = is_ordered_assoc(id) && std_qualified(ts, i);
    bool cmp = (id == "less" || id == "greater") && std_qualified(ts, i);
    if (!assoc && !cmp) continue;
    // Examine the first template argument: flag when its last token is `*`
    // (a raw pointer key orders by address, which varies run to run).
    int depth = 0;
    std::size_t last = 0;
    bool pointer_key = false;
    for (std::size_t j = i + 1; j < ts.size(); ++j) {
      if (is_punct(ts[j], "<")) {
        ++depth;
      } else if (is_punct(ts[j], ">")) {
        if (--depth == 0) break;
      } else if (depth == 1 && is_punct(ts[j], ",")) {
        break;
      } else if (is_punct(ts[j], ";") || is_punct(ts[j], "{")) {
        break;  // `a < b` comparison, not a template argument list
      }
      if (depth >= 1 && !is_punct(ts[j], "<")) last = j;
    }
    if (last != 0 && is_punct(ts[last], "*")) pointer_key = true;
    if (pointer_key) {
      out.push_back(
          {rel, ts[i].line, "ptr-order",
           "std::" + std::string(id) +
               " keyed by a raw pointer orders by address, which differs "
               "between runs; key by a stable id instead"});
    }
  }
}

// ---------------------------------------------------------------------------
// raw-thread
// ---------------------------------------------------------------------------

constexpr std::string_view kRawThreadAllow[] = {
    "runtime/", "exp/", "obs/", "util/log.", "util/dcheck."};

bool is_threading_name(std::string_view id) {
  return id == "thread" || id == "jthread" || id == "mutex" ||
         id == "recursive_mutex" || id == "shared_mutex" ||
         id == "timed_mutex" || id == "recursive_timed_mutex" ||
         id == "condition_variable" || id == "condition_variable_any" ||
         id == "atomic" || id == "atomic_flag" || id == "atomic_ref" ||
         id == "future" || id == "promise" || id == "async" ||
         id == "packaged_task" || id == "barrier" || id == "latch" ||
         id == "counting_semaphore" || id == "binary_semaphore" ||
         id == "this_thread";
}

void check_raw_thread(const Tokens& ts, const std::string& rel,
                      std::vector<Finding>& out) {
  if (in_any(rel, kRawThreadAllow)) return;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].kind != Tok::Identifier || !is_threading_name(ts[i].text)) {
      continue;
    }
    if (!std_qualified(ts, i)) continue;
    out.push_back({rel, ts[i].line, "raw-thread",
                   "std::" + std::string(ts[i].text) +
                       " outside runtime//exp//obs/: simulation code is "
                       "single-threaded by contract; put concurrency in the "
                       "runtime or experiment layers"});
  }
}

// ---------------------------------------------------------------------------
// std-function-hotpath
// ---------------------------------------------------------------------------

constexpr std::string_view kHotpathDirs[] = {"runtime/", "queueing/", "core/"};

void check_std_function_hotpath(const Tokens& ts, const std::string& rel,
                                std::vector<Finding>& out) {
  if (!ends_with(rel, ".hpp") || !in_any(rel, kHotpathDirs)) return;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (is_id(ts[i], "function") && std_qualified(ts, i)) {
      out.push_back({rel, ts[i].line, "std-function-hotpath",
                     "std::function in a hot-path header: it heap-allocates "
                     "beyond a 16-byte capture and drags copy machinery — "
                     "use ilu::Task (runtime/task.hpp)"});
    }
  }
}

// ---------------------------------------------------------------------------
// const-ref-capture
// ---------------------------------------------------------------------------

/// The sweep machinery fans ref-capturing job lambdas into worker threads
/// and joins them before the enclosing scope exits, by design.
constexpr std::string_view kRefCaptureExempt[] = {"exp/"};

/// Callees that run their callback argument after the calling scope may
/// have returned (Runtime::schedule/post and friends).
bool is_deferral_callee(std::string_view id) {
  return id == "schedule" || id == "schedule_at" || id == "post" ||
         id == "send" || id == "defer";
}

/// Callees that stow their argument in a container, where it can outlive
/// the captured locals.
bool is_storage_callee(std::string_view id) {
  return id == "push_back" || id == "emplace_back" || id == "emplace" ||
         id == "push";
}

/// Does the capture list in (open, close) capture anything by reference?
/// A `&` right after `[` or `,` is a capture-default or `&name` capture;
/// `&` elsewhere is address-of inside an init-capture and stays legal.
bool has_ref_capture(const Tokens& ts, std::size_t open, std::size_t close) {
  for (std::size_t j = open + 1; j < close; ++j) {
    if (is_punct(ts[j], "&") &&
        (is_punct(ts[j - 1], "[") || is_punct(ts[j - 1], ","))) {
      return true;
    }
  }
  return false;
}

/// Find the callee identifier of the innermost function call enclosing
/// token `i` (scanning backward to the unmatched `(`), or "" when `i` is
/// not a call argument.
std::string_view enclosing_callee(const Tokens& ts, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j-- > 0;) {
    const Token& t = ts[j];
    if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) {
      ++depth;
    } else if (is_punct(t, "(")) {
      if (depth == 0) {
        return j > 0 && ts[j - 1].kind == Tok::Identifier ? ts[j - 1].text
                                                          : std::string_view{};
      }
      --depth;
    } else if (is_punct(t, "[") || is_punct(t, "{")) {
      if (depth == 0) return {};  // brace-init or subscript, not a call
      --depth;
    } else if (depth == 0 && is_punct(t, ";")) {
      return {};
    }
  }
  return {};
}

void check_const_ref_capture(const Tokens& ts, const std::string& rel,
                             std::vector<Finding>& out) {
  if (in_any(rel, kRefCaptureExempt)) return;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (!is_punct(ts[i], "[")) continue;
    // Rule out attributes ([[...]]) and subscripts (previous token is a
    // value expression; `return` lexes as an identifier but introduces a
    // lambda, not a subscript).
    if (i + 1 < ts.size() && is_punct(ts[i + 1], "[")) continue;
    bool after_return = i > 0 && is_id(ts[i - 1], "return");
    if (!after_return && i > 0 &&
        (ts[i - 1].kind == Tok::Identifier || is_punct(ts[i - 1], "]") ||
         is_punct(ts[i - 1], ")"))) {
      continue;
    }
    // Find the introducer's closing `]`; a lambda follows it with `(` or
    // `{`.
    int depth = 0;
    std::size_t close = 0;
    for (std::size_t j = i; j < ts.size(); ++j) {
      if (is_punct(ts[j], "[")) {
        ++depth;
      } else if (is_punct(ts[j], "]")) {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (is_punct(ts[j], ";")) {
        break;
      }
    }
    if (close == 0 || close + 1 >= ts.size() ||
        !(is_punct(ts[close + 1], "(") || is_punct(ts[close + 1], "{"))) {
      continue;
    }
    if (!has_ref_capture(ts, i, close)) continue;

    if (after_return) {
      out.push_back({rel, ts[i].line, "const-ref-capture",
                     "returned lambda captures locals by reference; the "
                     "captures dangle once the function exits — capture by "
                     "value or a slab handle"});
      continue;
    }
    std::string_view callee = enclosing_callee(ts, i);
    if (is_deferral_callee(callee)) {
      out.push_back({rel, ts[i].line, "const-ref-capture",
                     "ref-capturing lambda passed to `" + std::string(callee) +
                         "(...)`, which defers execution past the current "
                         "scope — capture by value or a slab handle"});
    } else if (is_storage_callee(callee)) {
      out.push_back({rel, ts[i].line, "const-ref-capture",
                     "ref-capturing lambda stored via `" + std::string(callee) +
                         "(...)` can outlive the captured scope — capture by "
                         "value or a slab handle"});
    }
  }
}

// ---------------------------------------------------------------------------
// registry-lookup-hotpath
// ---------------------------------------------------------------------------

/// The obs layer owns the registry (its own helpers may resolve by name),
/// and experiment drivers wire fresh panels per sweep point inside job
/// lambdas, by design.
constexpr std::string_view kRegistryLookupExempt[] = {"obs/", "exp/"};

bool is_registry_lookup_name(std::string_view id) {
  return id == "counter" || id == "gauge" || id == "histogram" ||
         id == "log_histogram";
}

/// Collect [first, last] token-index ranges of lambda bodies. Reuses the
/// const-ref-capture introducer logic: `[`...`]` followed by `(` or `{`,
/// excluding attributes and subscripts; then the body is the brace block
/// after the (optional) parameter list and specifiers.
void collect_lambda_bodies(
    const Tokens& ts,
    std::vector<std::pair<std::size_t, std::size_t>>& bodies) {
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (!is_punct(ts[i], "[")) continue;
    if (i + 1 < ts.size() && is_punct(ts[i + 1], "[")) continue;
    bool after_return = i > 0 && is_id(ts[i - 1], "return");
    if (!after_return && i > 0 &&
        (ts[i - 1].kind == Tok::Identifier || is_punct(ts[i - 1], "]") ||
         is_punct(ts[i - 1], ")"))) {
      continue;  // subscript, not an introducer
    }
    int depth = 0;
    std::size_t close = 0;
    for (std::size_t j = i; j < ts.size(); ++j) {
      if (is_punct(ts[j], "[")) {
        ++depth;
      } else if (is_punct(ts[j], "]")) {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (is_punct(ts[j], ";")) {
        break;
      }
    }
    if (close == 0 || close + 1 >= ts.size()) continue;
    std::size_t j = close + 1;
    if (is_punct(ts[j], "(")) {
      int pd = 0;
      for (; j < ts.size(); ++j) {
        if (is_punct(ts[j], "(")) {
          ++pd;
        } else if (is_punct(ts[j], ")")) {
          if (--pd == 0) {
            ++j;
            break;
          }
        }
      }
    } else if (!is_punct(ts[j], "{")) {
      continue;  // not a lambda after all
    }
    // Skip specifiers / trailing return type up to the body brace.
    std::size_t limit = std::min(ts.size(), j + 64);
    while (j < limit && !is_punct(ts[j], "{") && !is_punct(ts[j], ";")) ++j;
    if (j >= limit || !is_punct(ts[j], "{")) continue;
    int bd = 0;
    std::size_t body_open = j, body_close = 0;
    for (; j < ts.size(); ++j) {
      if (is_punct(ts[j], "{")) {
        ++bd;
      } else if (is_punct(ts[j], "}")) {
        if (--bd == 0) {
          body_close = j;
          break;
        }
      }
    }
    if (body_close != 0) bodies.emplace_back(body_open, body_close);
  }
}

void check_registry_lookup_hotpath(const Tokens& ts, const std::string& rel,
                                   std::vector<Finding>& out) {
  if (in_any(rel, kRegistryLookupExempt)) return;
  std::vector<std::pair<std::size_t, std::size_t>> bodies;
  collect_lambda_bodies(ts, bodies);
  if (bodies.empty()) return;
  auto in_lambda = [&](std::size_t i) {
    for (const auto& [b, e] : bodies) {
      if (i > b && i < e) return true;
    }
    return false;
  };
  for (std::size_t i = 1; i + 2 < ts.size(); ++i) {
    if (ts[i].kind != Tok::Identifier ||
        !is_registry_lookup_name(ts[i].text)) {
      continue;
    }
    if (!(is_punct(ts[i - 1], ".") || is_punct(ts[i - 1], "->"))) continue;
    if (!is_punct(ts[i + 1], "(") || ts[i + 2].kind != Tok::String) continue;
    if (!in_lambda(i)) continue;
    out.push_back({rel, ts[i].line, "registry-lookup-hotpath",
                   "MetricsRegistry::" + std::string(ts[i].text) +
                       "(\"name\") inside a lambda: name lookup takes the "
                       "registry mutex on an event callback — resolve the "
                       "instrument once at wiring time and capture the "
                       "pointer"});
  }
}

// ---------------------------------------------------------------------------
// rollback-unsafe-effect
// ---------------------------------------------------------------------------

/// Channels a speculative (Time Warp) zone may declare rollback-safe.
/// `flight` is bufferable because the runtime brackets every speculative
/// window with flight::mark()/rewind(); `metrics` because instrument values
/// are checkpointed and restored with the component state. The log channel
/// (util/log.*, stdio) has no rollback path — a printed line cannot be
/// unprinted — so it can never be declared, only allowed per site.
bool is_zone_channel(std::string_view id) {
  return id == "flight" || id == "metrics";
}

bool is_log_effect_fn(std::string_view id) {
  return id == "log_info" || id == "log_warn" || id == "log_error" ||
         id == "log_debug" || id == "log_message" || id == "log_write_raw" ||
         id == "printf" || id == "fprintf" || id == "puts" || id == "fputs";
}

bool is_metrics_mutator(std::string_view id) {
  return id == "inc" || id == "observe" || id == "set" || id == "add" ||
         id == "sub";
}

/// Leniently extract the channels declared by a file's speculative-zone
/// pragma(s). Grammar errors are parse_directive's job; a channel token we
/// do not recognize here is simply not declared. Returns whether any pragma
/// was present (i.e. whether the file is a speculative zone at all).
bool collect_zone_channels(const LexResult& lr, bool& flight_ok,
                           bool& metrics_ok) {
  bool zone = false;
  for (const Comment& c : lr.comments) {
    std::size_t pos = c.text.find("ilu-lint");
    if (pos == std::string_view::npos) continue;
    std::size_t zp = c.text.find("speculative-zone", pos);
    if (zp == std::string_view::npos) continue;
    std::size_t open = c.text.find('(', zp);
    std::size_t close = c.text.find(')', zp);
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      continue;
    }
    zone = true;
    std::string_view list = c.text.substr(open + 1, close - open - 1);
    while (!list.empty()) {
      std::size_t comma = list.find(',');
      std::string_view ch = trim(list.substr(0, comma));
      if (ch == "flight") flight_ok = true;
      if (ch == "metrics") metrics_ok = true;
      list = comma == std::string_view::npos ? std::string_view{}
                                             : list.substr(comma + 1);
    }
  }
  return zone;
}

/// In a file that declares itself a speculative zone — code the optimistic
/// shard scheduler may execute past the safe bound and roll back — every
/// externally visible effect must be commit-buffered, or a rollback leaves
/// phantom records behind. flight::record and instrument mutations are fine
/// exactly when their channel is declared; log/stdio output never is.
void check_rollback_unsafe_effect(const LexResult& lr, const std::string& rel,
                                  std::vector<Finding>& out) {
  bool flight_ok = false, metrics_ok = false;
  if (!collect_zone_channels(lr, flight_ok, metrics_ok)) return;
  const Tokens& ts = lr.tokens;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].kind != Tok::Identifier || i + 1 >= ts.size() ||
        !is_punct(ts[i + 1], "(")) {
      continue;
    }
    std::string_view id = ts[i].text;
    if (!flight_ok && id == "record" && i >= 2 && is_punct(ts[i - 1], "::") &&
        is_id(ts[i - 2], "flight")) {
      out.push_back(
          {rel, ts[i].line, "rollback-unsafe-effect",
           "flight::record(...) in a speculative zone that does not declare "
           "the flight channel: a rollback would leave phantom records — "
           "rely on the runtime's mark()/rewind() bracketing and declare "
           "speculative-zone(flight)"});
      continue;
    }
    if (!metrics_ok && is_metrics_mutator(id) && i >= 1 &&
        is_punct(ts[i - 1], "->")) {
      out.push_back(
          {rel, ts[i].line, "rollback-unsafe-effect",
           "instrument mutation `->" + std::string(id) +
               "(...)` in a speculative zone that does not declare the "
               "metrics channel: rolled-back updates would survive in the "
               "registry — checkpoint the registry values in the component "
               "snapshotter and declare speculative-zone(metrics)"});
      continue;
    }
    if (is_log_effect_fn(id)) {
      // Free or std::-qualified calls only (mirrors wall-clock): `x.puts()`
      // and member declarations have a disqualifying previous token.
      bool flag = true;
      if (i > 0) {
        const Token& p = ts[i - 1];
        if (p.kind == Tok::Identifier || is_punct(p, ".") ||
            is_punct(p, "->")) {
          flag = false;
        } else if (is_punct(p, "::")) {
          flag = i >= 2 && is_id(ts[i - 2], "std");
        }
      }
      if (flag) {
        out.push_back(
            {rel, ts[i].line, "rollback-unsafe-effect",
             "`" + std::string(id) +
                 "(...)` in a speculative zone: a printed line cannot be "
                 "rolled back and the log channel can never be declared "
                 "safe — emit at commit time, or add a per-site "
                 "allow(rollback-unsafe-effect) with a reason"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Directives (suppressions + pragmas)
// ---------------------------------------------------------------------------

bool known_check(std::string_view name) {
  for (const CheckInfo& c : checks()) {
    if (name == c.name) return true;
  }
  return false;
}

/// `reason` is the text after the closing `)`: mandatory, introduced by
/// ` - `, ` — `, or `: `. Returns the trimmed reason ("" when absent).
std::string_view parse_reason(std::string_view rest) {
  std::string_view reason = trim(rest);
  if (starts_with(reason, "\xe2\x80\x94")) {  // em dash
    return trim(reason.substr(3));
  }
  if (!reason.empty() && (reason.front() == '-' || reason.front() == ':')) {
    return trim(reason.substr(1));
  }
  return {};
}

}  // namespace

int order_rank(std::string_view name) {
  if (starts_with(name, "memory_order_")) name = name.substr(13);
  if (name == "relaxed") return 0;
  if (name == "consume") return 1;
  if (name == "acquire" || name == "release") return 2;
  if (name == "acq_rel") return 3;
  if (name == "seq_cst") return 4;
  return -1;
}

void parse_directive(const Comment& c, const std::string& rel,
                     std::vector<Suppression>& sups,
                     std::vector<FloorPragma>& floors,
                     std::vector<Finding>& out) {
  std::size_t pos = c.text.find("ilu-lint");
  if (pos == std::string_view::npos) return;
  auto malformed = [&](const std::string& why) {
    out.push_back({rel, c.line, "lint-suppression",
                   "malformed ilu-lint suppression: " + why});
  };
  std::string_view rest = c.text.substr(pos + 8);
  rest = trim(rest);
  if (rest.empty() || rest.front() != ':') {
    return malformed("expected `ilu-lint: allow(<check>) - <reason>`");
  }
  rest = trim(rest.substr(1));
  if (starts_with(rest, "atomics-floor")) {
    rest = trim(rest.substr(13));
    if (rest.empty() || rest.front() != '(') {
      return malformed("expected `(` after atomics-floor");
    }
    std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      return malformed("unterminated atomics-floor(");
    }
    std::string_view body = rest.substr(1, close - 1);
    FloorPragma p;
    p.line = c.line;
    std::size_t colon = body.find(':');
    std::string_view order = trim(body.substr(0, colon));
    p.rank = order_rank(order);
    if (p.rank < 0) {
      return malformed("unknown memory order `" + std::string(order) +
                       "` in atomics-floor()");
    }
    if (colon != std::string_view::npos) {
      std::string_view list = body.substr(colon + 1);
      while (!list.empty()) {
        std::size_t comma = list.find(',');
        std::string_view v = trim(list.substr(0, comma));
        if (v.empty()) return malformed("empty variable in atomics-floor()");
        p.vars.emplace_back(v);
        list = comma == std::string_view::npos ? std::string_view{}
                                               : list.substr(comma + 1);
      }
      if (p.vars.empty()) {
        return malformed("empty variable list in atomics-floor()");
      }
    }
    if (parse_reason(rest.substr(close + 1)).empty()) {
      return malformed(
          "a reason is required: `atomics-floor(<order>) - <why>`");
    }
    floors.push_back(std::move(p));
    return;
  }
  if (starts_with(rest, "speculative-zone")) {
    rest = trim(rest.substr(16));
    if (rest.empty() || rest.front() != '(') {
      return malformed("expected `(` after speculative-zone");
    }
    std::size_t zclose = rest.find(')');
    if (zclose == std::string_view::npos) {
      return malformed("unterminated speculative-zone(");
    }
    std::string_view list = rest.substr(1, zclose - 1);
    std::size_t channels = 0;
    while (!list.empty()) {
      std::size_t comma = list.find(',');
      std::string_view ch = trim(list.substr(0, comma));
      if (ch.empty()) {
        return malformed("empty channel in speculative-zone()");
      }
      if (ch == "log") {
        return malformed(
            "the log channel can never be declared rollback-safe: a printed "
            "line cannot be unprinted — use a per-site "
            "allow(rollback-unsafe-effect) instead");
      }
      if (!is_zone_channel(ch)) {
        return malformed("unknown speculative-zone channel `" +
                         std::string(ch) + "` (flight, metrics)");
      }
      ++channels;
      list = comma == std::string_view::npos ? std::string_view{}
                                             : list.substr(comma + 1);
    }
    if (channels == 0) return malformed("empty speculative-zone() list");
    if (parse_reason(rest.substr(zclose + 1)).empty()) {
      return malformed(
          "a reason is required: `speculative-zone(<channel>) - <why the "
          "channel is commit-buffered>`");
    }
    return;  // the check itself re-reads the channels from the comments
  }
  if (!starts_with(rest, "allow")) {
    return malformed(
        "only the `allow(...)`, `atomics-floor(...)`, and "
        "`speculative-zone(...)` directives exist");
  }
  rest = trim(rest.substr(5));
  if (rest.empty() || rest.front() != '(') {
    return malformed("expected `(` after allow");
  }
  std::size_t close = rest.find(')');
  if (close == std::string_view::npos) {
    return malformed("unterminated allow(");
  }
  std::string_view list = rest.substr(1, close - 1);
  Suppression s;
  s.applies_to_line = c.own_line ? c.line + 1 : c.line;
  while (!list.empty()) {
    std::size_t comma = list.find(',');
    std::string_view name = trim(list.substr(0, comma));
    if (name.empty()) return malformed("empty check name in allow()");
    if (!known_check(name)) {
      return malformed("unknown check `" + std::string(name) + "`");
    }
    s.checks.insert(std::string(name));
    list = comma == std::string_view::npos ? std::string_view{}
                                           : list.substr(comma + 1);
  }
  if (s.checks.empty()) return malformed("empty allow() list");
  if (parse_reason(rest.substr(close + 1)).empty()) {
    return malformed(
        "a reason is required: `allow(<check>) - <why this is safe>`");
  }
  sups.push_back(std::move(s));
}

const std::vector<CheckInfo>& checks() {
  static const std::vector<CheckInfo> kChecks = {
      {"wall-clock",
       "no std::chrono clocks, time()/gettimeofday, or std::random_device "
       "outside util/rng.*, runtime/real_runtime.*, exp/sweep.cpp, obs/; "
       "exp/live_load.* is an annotated-allow tier: each site needs a "
       "reasoned allow(wall-clock) annotation"},
      {"unordered-iter",
       "no range-for or begin() iteration over std::unordered_{map,set} in "
       "sim-reachable code (everything except obs/, util/, exp/)"},
      {"ptr-order",
       "no std::{map,set,multimap,multiset}/std::less keyed by raw pointer "
       "values anywhere in src/"},
      {"raw-thread",
       "no std::thread/mutex/atomic/condition_variable outside runtime/, "
       "exp/, obs/, util/log.*, util/dcheck.*"},
      {"std-function-hotpath",
       "no std::function in runtime/, queueing/, core/ headers — use "
       "ilu::Task"},
      {"const-ref-capture",
       "no by-reference lambda captures that escape the scope — returned, "
       "passed to schedule/post/send/defer, or stored via "
       "push_back/emplace(_back) — outside exp/"},
      {"registry-lookup-hotpath",
       "no MetricsRegistry::counter/gauge/histogram/log_histogram "
       "name lookups inside lambda bodies (event callbacks) — resolve "
       "instruments at wiring time; exempt obs/, exp/"},
      {"rollback-unsafe-effect",
       "in files declaring `// ilu-lint: speculative-zone(<channel>,...) - "
       "<reason>` (code the optimistic shard scheduler may execute "
       "speculatively and roll back), flight::record and instrument "
       "->inc/observe/set/add/sub calls are findings unless their channel "
       "(flight, metrics) is declared commit-buffered; util/log.* and stdio "
       "output is always a finding — the log channel cannot be declared, "
       "only allowed per site"},
      {"lock-order",
       "no two locks acquired in both orders anywhere in src/ (cycle "
       "detection over the whole-repo lock acquisition graph, through "
       "calls); findings print both witness paths"},
      {"atomics-discipline",
       "std::atomic loads/stores/RMWs only inside the concurrency zone "
       "(runtime/, obs/flight.*, util/dcheck.*) or in files declaring a "
       "`// ilu-lint: atomics-floor(<order>[: var,...]) - <reason>` pragma; "
       "explicit memory_order arguments below the declared floor are "
       "findings"},
      {"blocking-under-lock",
       "no allocation (new/make_unique/make_shared), container growth, "
       "I/O, or MetricsRegistry name lookup while a lock is held; exempt "
       "obs/, exp/, util/ (locks there exist to serialize that work)"},
      {"include-layering",
       "project includes must follow util → common → obs/metrics → "
       "trace/runtime → containers/keepalive/queueing → core/lb/baseline "
       "→ exp; back-edges and include cycles are findings"},
  };
  return kChecks;
}

namespace {

/// The per-file token checks: the seven from ilu-lint v1 plus the
/// speculative-zone effect audit.
void run_per_file_checks(const LexResult& lr, const FileInput& in,
                         std::vector<Finding>& raw) {
  const Tokens& ts = lr.tokens;
  NameSet unordered_vars;
  collect_unordered_decls(ts, unordered_vars);
  if (!in.paired_header.empty()) {
    LexResult paired = lex(in.paired_header);
    collect_unordered_decls(paired.tokens, unordered_vars);
  }
  check_wall_clock(ts, in.rel_path, raw);
  check_unordered_iter(ts, in.rel_path, unordered_vars, raw);
  check_ptr_order(ts, in.rel_path, raw);
  check_raw_thread(ts, in.rel_path, raw);
  check_std_function_hotpath(ts, in.rel_path, raw);
  check_const_ref_capture(ts, in.rel_path, raw);
  check_registry_lookup_hotpath(ts, in.rel_path, raw);
  check_rollback_unsafe_effect(lr, in.rel_path, raw);
}

}  // namespace

std::vector<Finding> lint_inputs(const std::vector<FileInput>& ins) {
  std::vector<Finding> out;  // malformed directives: unsuppressible
  std::vector<Finding> raw;
  std::vector<FileModel> models;
  std::map<std::string, std::vector<Suppression>> sups_by_path;
  models.reserve(ins.size());
  for (const FileInput& in : ins) {
    LexResult lr = lex(in.content);
    run_per_file_checks(lr, in, raw);
    std::vector<Suppression> sups;
    std::vector<FloorPragma> floors;
    for (const Comment& c : lr.comments) {
      parse_directive(c, in.rel_path, sups, floors, out);
    }
    FileModel fm = extract_file(in, lr, out);
    fm.floors = std::move(floors);
    fm.suppressions = sups;
    sups_by_path[in.rel_path] = std::move(sups);
    models.push_back(std::move(fm));
  }

  RepoModel model = build_repo_model(std::move(models));
  run_cross_checks(model, raw);

  for (Finding& f : raw) {
    bool suppressed = false;
    auto it = sups_by_path.find(f.path);
    if (it != sups_by_path.end()) {
      for (const Suppression& s : it->second) {
        if (s.applies_to_line == f.line && s.checks.count(f.check) > 0) {
          suppressed = true;
          break;
        }
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.check < b.check;
  });
  return out;
}

std::vector<Finding> lint_file(const FileInput& in) {
  return lint_inputs({in});
}

std::vector<FileInput> load_tree(const std::string& src_root) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& e : fs::recursive_directory_iterator(src_root)) {
    if (!e.is_regular_file()) continue;
    fs::path p = e.path();
    if (p.extension() == ".hpp" || p.extension() == ".cpp" ||
        p.extension() == ".h" || p.extension() == ".cc") {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());

  auto slurp = [](const fs::path& p) {
    std::ifstream f(p, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
  };

  std::vector<FileInput> out;
  out.reserve(files.size());
  for (const fs::path& p : files) {
    FileInput in;
    in.rel_path = p.lexically_relative(src_root).generic_string();
    in.content = slurp(p);
    if (p.extension() == ".cpp" || p.extension() == ".cc") {
      fs::path header = p;
      header.replace_extension(".hpp");
      if (fs::exists(header)) in.paired_header = slurp(header);
    }
    out.push_back(std::move(in));
  }
  return out;
}

std::vector<Finding> lint_tree(const std::string& src_root,
                               std::size_t* files_scanned) {
  std::vector<FileInput> ins = load_tree(src_root);
  if (files_scanned != nullptr) *files_scanned = ins.size();
  return lint_inputs(ins);
}

std::string lock_order_dot(const std::vector<FileInput>& ins) {
  std::vector<FileModel> models;
  std::vector<Finding> sink;
  models.reserve(ins.size());
  for (const FileInput& in : ins) {
    LexResult lr = lex(in.content);
    models.push_back(extract_file(in, lr, sink));
  }
  RepoModel model = build_repo_model(std::move(models));
  Digraph g = build_lock_graph(model, nullptr);
  return g.dot("ilu-lock-order");
}

}  // namespace ilu::lint
