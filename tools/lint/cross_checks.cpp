#include "lint/cross_checks.hpp"

#include <algorithm>
#include <sstream>

#include "lint/support.hpp"

namespace ilu::lint {

namespace {

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

/// What a function transitively acquires: lock id -> how we got there.
struct ReachWitness {
  std::string chain;     // "f" or "f→g→h" (call names along the way)
  std::string acq_file;  // where the acquisition site actually is
  int acq_line = 0;
};

struct FnRef {
  const FileModel* file = nullptr;
  const FunctionModel* fn = nullptr;
};

struct LockWorld {
  std::vector<FnRef> fns;  // sorted (qual, file, line): deterministic order
  std::map<std::string, std::vector<std::size_t>> by_name;
  std::map<std::string, std::vector<std::size_t>> by_qual;
  std::vector<std::map<std::string, ReachWitness>> reach;  // per fns index
};

LockWorld build_lock_world(const RepoModel& m) {
  LockWorld w;
  for (const FileModel& f : m.files) {
    for (const FunctionModel& fn : f.functions) {
      w.fns.push_back({&f, &fn});
    }
  }
  std::sort(w.fns.begin(), w.fns.end(), [](const FnRef& a, const FnRef& b) {
    if (a.fn->qual != b.fn->qual) return a.fn->qual < b.fn->qual;
    if (a.file->rel_path != b.file->rel_path) {
      return a.file->rel_path < b.file->rel_path;
    }
    return a.fn->line < b.fn->line;
  });
  for (std::size_t i = 0; i < w.fns.size(); ++i) {
    w.by_name[w.fns[i].fn->name].push_back(i);
    w.by_qual[w.fns[i].fn->qual].push_back(i);
  }

  // Direct acquisitions.
  w.reach.resize(w.fns.size());
  for (std::size_t i = 0; i < w.fns.size(); ++i) {
    for (const LockSite& s : w.fns[i].fn->locks) {
      w.reach[i].emplace(
          s.lock, ReachWitness{"", w.fns[i].file->rel_path, s.line});
    }
  }
  return w;
}

/// Functions a call can land on. Receiver-typed calls restrict to that
/// class's methods. An *unresolved* receiver (`it->second->f()`, auto&)
/// matches only a repo-unique bare name — fanning such calls out to every
/// class with a `snapshot`/`count`/`merge` method manufactures lock cycles
/// that do not exist. Receiver-free calls try the caller's own class first,
/// then free functions, then a unique method.
std::vector<std::size_t> resolve_call(const LockWorld& w, const RepoModel& m,
                                      const CallSite& c,
                                      const std::string& caller_cls) {
  if (!c.receiver_type.empty()) {
    auto it = w.by_qual.find(c.receiver_type + "::" + c.callee);
    if (it != w.by_qual.end()) return it->second;
    return {};  // a typed receiver without such a method models nothing
  }
  auto it = w.by_name.find(c.callee);
  if (it == w.by_name.end()) return {};
  if (c.has_receiver) {
    return it->second.size() == 1 ? it->second : std::vector<std::size_t>{};
  }
  if (!caller_cls.empty()) {
    auto q = w.by_qual.find(caller_cls + "::" + c.callee);
    if (q != w.by_qual.end()) return q->second;
  }
  std::vector<std::size_t> free_fns;
  for (std::size_t t : it->second) {
    if (w.fns[t].fn->cls.empty()) free_fns.push_back(t);
  }
  if (!free_fns.empty()) return free_fns;
  return it->second.size() == 1 ? it->second : std::vector<std::size_t>{};
}

/// Propagate transitive acquisitions through the call graph to fixpoint.
/// Iteration order is fully sorted, so the first witness recorded for each
/// (function, lock) pair is canonical.
void propagate_reach(LockWorld& w, const RepoModel& m) {
  for (int round = 0; round < 32; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i < w.fns.size(); ++i) {
      for (const CallSite& c : w.fns[i].fn->calls) {
        for (std::size_t t : resolve_call(w, m, c, w.fns[i].fn->cls)) {
          if (t == i) continue;
          for (const auto& [lock, rw] : w.reach[t]) {
            if (w.reach[i].count(lock) > 0) continue;
            ReachWitness nw;
            nw.chain =
                c.callee + (rw.chain.empty() ? "" : "→" + rw.chain);
            nw.acq_file = rw.acq_file;
            nw.acq_line = rw.acq_line;
            w.reach[i].emplace(lock, std::move(nw));
            changed = true;
          }
        }
      }
    }
    if (!changed) break;
  }
}

std::string loc(const std::string& file, int line) {
  return file + ":" + std::to_string(line);
}

void check_lock_order(const RepoModel& m, const Digraph& g,
                      const std::map<std::pair<std::string, std::string>,
                                     LockEdge>& edges,
                      std::vector<Finding>& out) {
  // Direct same-lock re-acquisition (non-recursive mutex self-deadlock).
  for (const FileModel& f : m.files) {
    for (const FunctionModel& fn : f.functions) {
      for (const LockSite& a : fn.locks) {
        for (const LockSite& b : fn.locks) {
          if (&a == &b || b.tok_begin <= a.tok_begin ||
              b.tok_begin >= a.tok_end || a.lock != b.lock) {
            continue;
          }
          if (a.base_expr != b.base_expr) continue;  // distinct instances?
          out.push_back(
              {f.rel_path, b.line, "lock-order",
               "`" + a.lock + "` acquired at line " +
                   std::to_string(b.line) + " while already held (line " +
                   std::to_string(a.line) +
                   ") — a non-recursive lock self-deadlocks here"});
        }
      }
    }
  }

  for (const auto& [a, b] : g.mutually_reachable_pairs()) {
    auto witness = [&](const std::vector<std::string>& path) {
      std::string s;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        auto it = edges.find({path[i], path[i + 1]});
        if (it == edges.end()) continue;
        if (!s.empty()) s += "; then ";
        s += it->second.text;
      }
      return s;
    };
    auto pab = g.path(a, b), pba = g.path(b, a);
    if (pab.size() < 2 || pba.size() < 2) continue;
    auto anchor = edges.find({pab[0], pab[1]});
    if (anchor == edges.end()) continue;
    out.push_back(
        {anchor->second.file, anchor->second.line, "lock-order",
         "lock-order inversion between `" + a + "` and `" + b + "`: [" +
             a + "→" + b + "] " + witness(pab) + " | [" + b + "→" +
             a + "] " + witness(pba) +
             " — pick one global acquisition order (see "
             "tools/lint/lock_order.dot and DESIGN.md §15)"});
  }
}

// ---------------------------------------------------------------------------
// atomics-discipline
// ---------------------------------------------------------------------------

constexpr std::string_view kAtomicsZone[] = {"runtime/", "obs/flight.",
                                             "util/dcheck."};

const char* rank_name(int r) {
  switch (r) {
    case 0: return "relaxed";
    case 1: return "consume";
    case 2: return "acquire/release";
    case 3: return "acq_rel";
    default: return "seq_cst";
  }
}

void check_atomics(const RepoModel& m, std::vector<Finding>& out) {
  for (const FileModel& f : m.files) {
    if (f.atomic_ops.empty()) continue;
    bool zone = in_any(f.rel_path, kAtomicsZone);
    int default_rank = -1;
    std::map<std::string, int> var_rank;
    for (const FloorPragma& p : f.floors) {
      if (p.vars.empty()) {
        default_rank = std::max(default_rank, p.rank);
      } else {
        for (const std::string& v : p.vars) {
          auto [it, fresh] = var_rank.emplace(v, p.rank);
          if (!fresh) it->second = std::max(it->second, p.rank);
        }
      }
    }
    bool has_floor = !f.floors.empty();
    if (!has_floor) {
      if (zone) {
        out.push_back(
            {f.rel_path, f.atomic_ops.front().line, "atomics-discipline",
             "this concurrency-zone file performs atomic operations but "
             "declares no ordering floor — add a header pragma "
             "`// ilu-lint: atomics-floor(<order>[: var,...]) - <reason>` "
             "stating the weakest memory_order it relies on"});
      } else {
        for (const AtomicOp& op : f.atomic_ops) {
          std::string site = op.var.empty()
                                 ? "a std::atomic " + op.method
                                 : "`" + op.var +
                                       (op.method == "=" || op.method == "++"
                                            ? op.method
                                            : "." + op.method + "(...)") +
                                       "`";
          out.push_back(
              {f.rel_path, op.line, "atomics-discipline",
               site +
                   " outside the concurrency zone (runtime/, obs/flight.*, "
                   "util/dcheck.*) — move it behind the runtime layer, or "
                   "declare this file's ordering contract with "
                   "`// ilu-lint: atomics-floor(<order>) - <reason>`"});
        }
      }
      continue;
    }
    int file_floor = default_rank < 0 ? 0 : default_rank;
    for (const AtomicOp& op : f.atomic_ops) {
      int floor = file_floor;
      auto it = var_rank.find(op.var);
      if (it != var_rank.end()) floor = it->second;
      for (const auto& [name, rank] : op.orders) {
        if (rank < 0 || rank >= floor) continue;
        out.push_back(
            {f.rel_path, op.line, "atomics-discipline",
             "memory_order_" + name + " on `" +
                 (op.var.empty() ? std::string("<fence>") : op.var) +
                 "` is below this file's declared atomics floor (" +
                 rank_name(floor) +
                 (it != var_rank.end() ? ", set per-variable" : "") +
                 ") — strengthen the order or lower the floor pragma with "
                 "a reason"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// blocking-under-lock
// ---------------------------------------------------------------------------

/// Cold/diagnostic layers where the lock exists to serialize exactly this
/// work (util/log's mutex guards the stream; obs aggregation and exp
/// harness setup are off the simulated hot path).
constexpr std::string_view kBlockingExempt[] = {"obs/", "exp/", "util/"};

void check_blocking(const RepoModel& m, std::vector<Finding>& out) {
  for (const FileModel& f : m.files) {
    if (in_any(f.rel_path, kBlockingExempt)) continue;
    for (const FunctionModel& fn : f.functions) {
      if (fn.locks.empty()) continue;
      for (const BlockingOp& op : fn.blocking) {
        // Innermost lock held at the op site.
        const LockSite* held = nullptr;
        for (const LockSite& s : fn.locks) {
          if (op.tok > s.tok_begin && op.tok < s.tok_end &&
              (held == nullptr || s.tok_begin > held->tok_begin)) {
            held = &s;
          }
        }
        if (held == nullptr) continue;
        std::string why;
        if (op.kind == "allocation") {
          why = "`" + op.what + "` allocates";
        } else if (op.kind == "container-growth") {
          why = "`" + op.what + "(...)` may grow/rehash its container";
        } else if (op.kind == "io") {
          why = "I/O (`" + op.what + "`)";
        } else {
          why = "a MetricsRegistry name lookup (`" + op.what + "`)";
        }
        out.push_back(
            {f.rel_path, op.line, "blocking-under-lock",
             why + " while `" + held->lock + "` is held (acquired line " +
                 std::to_string(held->line) +
                 ") — hoist it out of the critical section or annotate why "
                 "the latency under this lock is acceptable"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// include-layering
// ---------------------------------------------------------------------------

/// The allowed DAG, bottom-up:
///   util(0) → common(1) → obs/metrics(2) → trace/runtime(3)
///   → containers/keepalive/queueing(4) → core/lb/baseline(5) → exp(6).
/// A file may include same-or-lower layers only. Top-level src files (no
/// directory, e.g. iluvatar.hpp) may include anything and are included by
/// nothing. Unknown directories are exempt from layer comparison but still
/// participate in cycle detection.
int layer_rank(std::string_view rel) {
  std::size_t slash = rel.find('/');
  if (slash == std::string_view::npos) return 1000;
  std::string_view dir = rel.substr(0, slash);
  if (dir == "util") return 0;
  if (dir == "common") return 1;
  if (dir == "obs" || dir == "metrics") return 2;
  if (dir == "trace" || dir == "runtime") return 3;
  if (dir == "containers" || dir == "keepalive" || dir == "queueing") {
    return 4;
  }
  if (dir == "core" || dir == "lb" || dir == "baseline") return 5;
  if (dir == "exp") return 6;
  return -1;
}

std::string layer_dir(std::string_view rel) {
  std::size_t slash = rel.find('/');
  return std::string(slash == std::string_view::npos ? rel
                                                     : rel.substr(0, slash));
}

void check_layering(const RepoModel& m, std::vector<Finding>& out) {
  Digraph inc_graph;
  for (const FileModel& f : m.files) {
    int a = layer_rank(f.rel_path);
    for (const auto& [inc, line] : f.includes) {
      int b = layer_rank(inc);
      if (a >= 0 && b >= 0 && b > a && a != 1000) {
        out.push_back(
            {f.rel_path, line, "include-layering",
             "`" + f.rel_path + "` (layer " + layer_dir(f.rel_path) + "=" +
                 std::to_string(a) + ") includes `" + inc + "` (layer " +
                 layer_dir(inc) + "=" + std::to_string(b) +
                 "): back-edge against util → common → "
                 "obs/metrics → trace/runtime → "
                 "containers/keepalive/queueing → core/lb/baseline "
                 "→ exp — move the shared piece down a layer or invert "
                 "the dependency through an interface"});
      }
      // Cycle graph over includes that resolve inside the model.
      auto it = m.by_path.find(inc);
      if (it == m.by_path.end()) {
        std::size_t s = f.rel_path.rfind('/');
        if (s != std::string::npos) {
          it = m.by_path.find(f.rel_path.substr(0, s + 1) + inc);
        }
      }
      if (it != m.by_path.end() && it->first != f.rel_path) {
        inc_graph.add_edge(f.rel_path, it->first, "");
      }
    }
  }
  for (const auto& cyc : inc_graph.cycles()) {
    if (cyc.size() < 2) continue;
    // Anchor at the include in cyc[0] that points into the cycle.
    int line = 1;
    auto it = m.by_path.find(cyc[0]);
    if (it != m.by_path.end()) {
      for (const auto& [inc, l] : m.files[it->second].includes) {
        if (inc == cyc[1] || ends_with(cyc[1], "/" + inc)) {
          line = l;
          break;
        }
      }
    }
    std::string chain;
    for (const std::string& n : cyc) {
      if (!chain.empty()) chain += " → ";
      chain += n;
    }
    out.push_back({cyc[0], line, "include-layering",
                   "include cycle: " + chain +
                       " — break it with a forward declaration or by "
                       "moving the shared types down a layer"});
  }
}

}  // namespace

Digraph build_lock_graph(
    const RepoModel& m,
    std::map<std::pair<std::string, std::string>, LockEdge>* edges) {
  LockWorld w = build_lock_world(m);
  propagate_reach(w, m);

  Digraph g;
  auto add = [&](const std::string& from, const std::string& to,
                 const LockEdge& e) {
    if (!g.has_edge(from, to) && edges != nullptr) {
      (*edges)[{from, to}] = e;
    }
    g.add_edge(from, to, loc(e.file, e.line));
  };

  for (std::size_t i = 0; i < w.fns.size(); ++i) {
    const FileModel& f = *w.fns[i].file;
    const FunctionModel& fn = *w.fns[i].fn;
    for (const LockSite& s : fn.locks) {
      g.add_node(s.lock);
      // Direct nesting inside this function.
      for (const LockSite& s2 : fn.locks) {
        if (&s2 == &s || s2.tok_begin <= s.tok_begin ||
            s2.tok_begin >= s.tok_end || s2.lock == s.lock) {
          continue;
        }
        add(s.lock, s2.lock,
            {f.rel_path, s2.line,
             "`" + s.lock + "` (held since " + loc(f.rel_path, s.line) +
                 ") nests `" + s2.lock + "` at " +
                 loc(f.rel_path, s2.line)});
      }
      // Acquisitions reached through calls made while held.
      for (const CallSite& c : fn.calls) {
        if (c.tok <= s.tok_begin || c.tok >= s.tok_end) continue;
        for (std::size_t t : resolve_call(w, m, c, fn.cls)) {
          if (t == i) continue;
          for (const auto& [lock, rw] : w.reach[t]) {
            if (lock == s.lock) continue;  // instance aliasing, skip
            std::string chain =
                c.callee + (rw.chain.empty() ? "" : "→" + rw.chain);
            add(s.lock, lock,
                {f.rel_path, c.line,
                 "`" + s.lock + "` (held since " + loc(f.rel_path, s.line) +
                     ") calls `" + chain + "` which acquires `" + lock +
                     "` at " + loc(rw.acq_file, rw.acq_line)});
          }
        }
      }
    }
  }
  return g;
}

void run_cross_checks(const RepoModel& m, std::vector<Finding>& out) {
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  Digraph g = build_lock_graph(m, &edges);
  check_lock_order(m, g, edges, out);
  check_atomics(m, out);
  check_blocking(m, out);
  check_layering(m, out);
}

}  // namespace ilu::lint
