#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/lint.hpp"

/// Internal helpers shared by the per-file checks (checks.cpp), the repo
/// model (model.cpp), and the cross-TU checks (cross_checks.cpp). Not part
/// of the public lint.hpp surface.
namespace ilu::lint {

using Tokens = std::vector<Token>;
using NameSet = std::set<std::string, std::less<>>;

inline bool is_id(const Token& t, std::string_view s) {
  return t.kind == Tok::Identifier && t.text == s;
}
inline bool is_punct(const Token& t, std::string_view s) {
  return t.kind == Tok::Punct && t.text == s;
}

inline bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}
inline bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

template <std::size_t N>
bool in_any(std::string_view rel, const std::string_view (&prefixes)[N]) {
  for (std::string_view p : prefixes) {
    if (starts_with(rel, p)) return true;
  }
  return false;
}

/// Preceded by `std ::` — the qualification every flagged std name needs so
/// that user types that merely share the name stay un-flagged.
inline bool std_qualified(const Tokens& ts, std::size_t i) {
  return i >= 2 && is_punct(ts[i - 1], "::") && is_id(ts[i - 2], "std");
}

/// From ts[i] == "<", return the index one past the matching ">", or
/// ts.size() when unbalanced. Single-char puncts mean `>>` arrives as two
/// tokens, so nested template argument lists balance naturally.
inline std::size_t skip_template_args(const Tokens& ts, std::size_t i) {
  int depth = 0;
  for (; i < ts.size(); ++i) {
    if (is_punct(ts[i], "<")) {
      ++depth;
    } else if (is_punct(ts[i], ">")) {
      if (--depth == 0) return i + 1;
    } else if (is_punct(ts[i], ";") || is_punct(ts[i], "{")) {
      return ts.size();  // not actually a template argument list
    }
  }
  return ts.size();
}

inline std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// `// ilu-lint: allow(check[,check2]) - reason` parsed from a comment.
/// Applies to its own line, or the line below when the comment stands alone.
struct Suppression {
  int applies_to_line = 0;
  NameSet checks;
};

/// `// ilu-lint: atomics-floor(order[: var, var2]) - reason` parsed from a
/// comment. Without a var list it sets the file-wide floor; with one it sets
/// per-variable floors that override the file default.
struct FloorPragma {
  int line = 0;
  int rank = -1;                   // order_rank of the declared order
  std::vector<std::string> vars;   // empty: file-wide default
};

/// memory_order strength ranking: relaxed=0, consume=1, acquire/release=2,
/// acq_rel=3, seq_cst=4. Accepts both `memory_order_X` and bare `X`.
/// Returns -1 for unknown names.
int order_rank(std::string_view name);

/// Parse one comment for ilu-lint directives. Appends a Suppression, a
/// FloorPragma, or — for malformed directives — an unsuppressible
/// `lint-suppression` finding.
void parse_directive(const Comment& c, const std::string& rel,
                     std::vector<Suppression>& sups,
                     std::vector<FloorPragma>& floors,
                     std::vector<Finding>& out);

}  // namespace ilu::lint
