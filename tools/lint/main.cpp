// ilu-lint — determinism & concurrency static analysis for this repo.
//
//   ilu-lint [--root DIR]      lint <DIR>/src (default: .)
//   ilu-lint --src DIR         lint DIR directly
//   ilu-lint --file F [F...]   lint individual files (pre-commit mode);
//                              paths outside a src/ tree are skipped, since
//                              the checks only govern simulation code. All
//                              staged files are analyzed as one batch, so
//                              the cross-TU checks see whatever lock/include
//                              facts the batch contains (single-TU facts
//                              when one file is staged).
//   ilu-lint --list-checks     print the check catalogue
//   ilu-lint --json            emit findings as a JSON array (stdout)
//   ilu-lint --sarif           emit SARIF 2.1.0 (stdout; CI annotation)
//   ilu-lint --dot FILE        also write the whole-repo lock acquisition
//                              graph as Graphviz to FILE (tree modes only)
//
// Exit status: 0 when the tree is clean, 1 when findings were reported,
// 2 on usage/IO errors. Registered as the `ilu_lint` ctest test so tier-1
// runs enforce the rules; see DESIGN.md §10/§15 for the catalogue and the
// suppression policy.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Path of `p` relative to its nearest `src` ancestor ("" when `p` is not
/// under one): check scopes and allowlists are src/-relative.
std::string src_relative(const fs::path& p) {
  fs::path abs = fs::absolute(p).lexically_normal();
  for (fs::path dir = abs.parent_path(); !dir.empty();
       dir = dir.parent_path()) {
    if (dir.filename() == "src") {
      return abs.lexically_relative(dir).generic_string();
    }
    if (dir == dir.parent_path()) break;
  }
  return {};
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

enum class Format { Text, Json, Sarif };

/// `display` maps a finding's src-relative path back to the path the user
/// passed (tree mode prefixes the src dir; file mode restores the argv
/// spelling so editors can jump to it).
void emit(const std::vector<ilu::lint::Finding>& findings, Format fmt,
          const std::vector<std::pair<std::string, std::string>>& display) {
  auto shown = [&](const std::string& rel) -> const std::string& {
    for (const auto& [r, d] : display) {
      if (r == rel) return d;
    }
    return rel;
  };
  if (fmt == Format::Text) {
    for (const auto& f : findings) {
      std::printf("%s:%d: [%s] %s\n", shown(f.path).c_str(), f.line,
                  f.check.c_str(), f.message.c_str());
    }
    return;
  }
  if (fmt == Format::Json) {
    std::printf("[");
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const auto& f = findings[i];
      std::printf(
          "%s\n  {\"path\": \"%s\", \"line\": %d, \"check\": \"%s\", "
          "\"message\": \"%s\"}",
          i ? "," : "", json_escape(shown(f.path)).c_str(), f.line,
          f.check.c_str(), json_escape(f.message).c_str());
    }
    std::printf("%s]\n", findings.empty() ? "" : "\n");
    return;
  }
  // SARIF 2.1.0: one run, rules from the catalogue, one result per finding.
  std::printf(
      "{\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\"name\": \"ilu-lint\", \"rules\": [");
  const auto& cat = ilu::lint::checks();
  for (std::size_t i = 0; i < cat.size(); ++i) {
    std::printf(
        "%s\n      {\"id\": \"%s\", \"shortDescription\": {\"text\": "
        "\"%s\"}}",
        i ? "," : "", cat[i].name, json_escape(cat[i].description).c_str());
  }
  std::printf("\n    ]}},\n    \"results\": [");
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    std::printf(
        "%s\n      {\"ruleId\": \"%s\", \"level\": \"error\", "
        "\"message\": {\"text\": \"%s\"}, \"locations\": [{"
        "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"%s\"}, "
        "\"region\": {\"startLine\": %d}}}]}",
        i ? "," : "", f.check.c_str(), json_escape(f.message).c_str(),
        json_escape(shown(f.path)).c_str(), f.line);
  }
  std::printf("%s]\n  }]\n}\n", findings.empty() ? "" : "\n    ");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string src;
  std::string dot_path;
  std::vector<std::string> files;
  Format fmt = Format::Text;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--src") == 0 && i + 1 < argc) {
      src = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      fmt = Format::Json;
    } else if (std::strcmp(argv[i], "--sarif") == 0) {
      fmt = Format::Sarif;
    } else if (std::strcmp(argv[i], "--dot") == 0 && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--file") == 0) {
      for (++i; i < argc && std::strncmp(argv[i], "--", 2) != 0; ++i) {
        files.emplace_back(argv[i]);
      }
      --i;
    } else if (std::strcmp(argv[i], "--list-checks") == 0) {
      for (const auto& c : ilu::lint::checks()) {
        std::printf("%-22s %s\n", c.name, c.description);
      }
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: ilu-lint [--root DIR | --src DIR | "
                   "--file F [F...] | --list-checks] "
                   "[--json | --sarif] [--dot FILE]\n");
      return 2;
    }
  }

  if (!files.empty()) {
    // Batch mode: stage every file into one lint_inputs() call so the
    // cross-TU checks run over the whole set at once.
    std::vector<ilu::lint::FileInput> ins;
    std::vector<std::pair<std::string, std::string>> display;
    std::size_t skipped = 0;
    for (const std::string& f : files) {
      if (!fs::is_regular_file(f)) {
        std::fprintf(stderr, "ilu-lint: no such file: %s\n", f.c_str());
        return 2;
      }
      std::string rel = src_relative(f);
      if (rel.empty()) {
        ++skipped;
        continue;
      }
      ilu::lint::FileInput in;
      in.rel_path = rel;
      in.content = slurp(f);
      fs::path p = f;
      if (p.extension() == ".cpp" || p.extension() == ".cc") {
        fs::path header = p;
        header.replace_extension(".hpp");
        if (fs::exists(header)) in.paired_header = slurp(header);
      }
      display.emplace_back(rel, f);
      ins.push_back(std::move(in));
    }
    auto findings = ilu::lint::lint_inputs(ins);
    emit(findings, fmt, display);
    std::fprintf(stderr,
                 "ilu-lint: %zu file(s) scanned, %zu skipped (outside src/), "
                 "%zu finding(s)\n",
                 ins.size(), skipped, findings.size());
    return findings.empty() ? 0 : 1;
  }

  if (src.empty()) src = root + "/src";
  if (!fs::is_directory(src)) {
    std::fprintf(stderr, "ilu-lint: no such directory: %s\n", src.c_str());
    return 2;
  }

  auto ins = ilu::lint::load_tree(src);
  auto findings = ilu::lint::lint_inputs(ins);
  std::vector<std::pair<std::string, std::string>> display;
  display.reserve(ins.size());
  for (const auto& in : ins) {
    display.emplace_back(in.rel_path, src + "/" + in.rel_path);
  }
  emit(findings, fmt, display);
  if (!dot_path.empty()) {
    std::ofstream out(dot_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "ilu-lint: cannot write %s\n", dot_path.c_str());
      return 2;
    }
    out << ilu::lint::lock_order_dot(ins);
  }
  std::fprintf(stderr, "ilu-lint: %zu file(s) scanned, %zu finding(s)\n",
               ins.size(), findings.size());
  return findings.empty() ? 0 : 1;
}
