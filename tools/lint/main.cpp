// ilu-lint — determinism & concurrency static analysis for this repo.
//
//   ilu-lint [--root DIR]      lint <DIR>/src (default: .)
//   ilu-lint --src DIR         lint DIR directly
//   ilu-lint --file F [F...]   lint individual files (pre-commit mode);
//                              paths outside a src/ tree are skipped, since
//                              the checks only govern simulation code
//   ilu-lint --list-checks     print the check catalogue
//
// Exit status: 0 when the tree is clean, 1 when findings were reported,
// 2 on usage/IO errors. Registered as the `ilu_lint` ctest test so tier-1
// runs enforce the rules; see DESIGN.md §10 for the catalogue and the
// suppression policy.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Path of `p` relative to its nearest `src` ancestor ("" when `p` is not
/// under one): check scopes and allowlists are src/-relative.
std::string src_relative(const fs::path& p) {
  fs::path abs = fs::absolute(p).lexically_normal();
  for (fs::path dir = abs.parent_path(); !dir.empty();
       dir = dir.parent_path()) {
    if (dir.filename() == "src") {
      return abs.lexically_relative(dir).generic_string();
    }
    if (dir == dir.parent_path()) break;
  }
  return {};
}

/// Lint one on-disk file the way the tree walk would (paired header
/// included). Returns findings; `skipped` reports non-src/ paths.
std::vector<ilu::lint::Finding> lint_one(const fs::path& p, bool* skipped) {
  *skipped = false;
  std::string rel = src_relative(p);
  if (rel.empty()) {
    *skipped = true;
    return {};
  }
  ilu::lint::FileInput in;
  in.rel_path = rel;
  in.content = slurp(p);
  if (p.extension() == ".cpp" || p.extension() == ".cc") {
    fs::path header = p;
    header.replace_extension(".hpp");
    if (fs::exists(header)) in.paired_header = slurp(header);
  }
  return ilu::lint::lint_file(in);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string src;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--src") == 0 && i + 1 < argc) {
      src = argv[++i];
    } else if (std::strcmp(argv[i], "--file") == 0) {
      for (++i; i < argc; ++i) files.emplace_back(argv[i]);
    } else if (std::strcmp(argv[i], "--list-checks") == 0) {
      for (const auto& c : ilu::lint::checks()) {
        std::printf("%-22s %s\n", c.name, c.description);
      }
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: ilu-lint [--root DIR | --src DIR | "
                   "--file F [F...] | --list-checks]\n");
      return 2;
    }
  }

  if (!files.empty()) {
    std::size_t findings = 0, scanned = 0, skipped = 0;
    for (const std::string& f : files) {
      if (!fs::is_regular_file(f)) {
        std::fprintf(stderr, "ilu-lint: no such file: %s\n", f.c_str());
        return 2;
      }
      bool skip = false;
      auto fs_ = lint_one(f, &skip);
      if (skip) {
        ++skipped;
        continue;
      }
      ++scanned;
      for (const auto& x : fs_) {
        std::printf("%s:%d: [%s] %s\n", f.c_str(), x.line, x.check.c_str(),
                    x.message.c_str());
      }
      findings += fs_.size();
    }
    std::fprintf(stderr,
                 "ilu-lint: %zu file(s) scanned, %zu skipped (outside src/), "
                 "%zu finding(s)\n",
                 scanned, skipped, findings);
    return findings == 0 ? 0 : 1;
  }

  if (src.empty()) src = root + "/src";
  if (!fs::is_directory(src)) {
    std::fprintf(stderr, "ilu-lint: no such directory: %s\n", src.c_str());
    return 2;
  }

  std::size_t n = 0;
  auto findings = ilu::lint::lint_tree(src, &n);
  for (const auto& f : findings) {
    std::printf("%s/%s:%d: [%s] %s\n", src.c_str(), f.path.c_str(), f.line,
                f.check.c_str(), f.message.c_str());
  }
  std::fprintf(stderr, "ilu-lint: %zu file(s) scanned, %zu finding(s)\n", n,
               findings.size());
  return findings.empty() ? 0 : 1;
}
