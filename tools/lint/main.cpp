// ilu-lint — determinism & concurrency static analysis for this repo.
//
//   ilu-lint [--root DIR]      lint <DIR>/src (default: .)
//   ilu-lint --src DIR         lint DIR directly
//   ilu-lint --list-checks     print the check catalogue
//
// Exit status: 0 when the tree is clean, 1 when findings were reported,
// 2 on usage/IO errors. Registered as the `ilu_lint` ctest test so tier-1
// runs enforce the rules; see DESIGN.md §10 for the catalogue and the
// suppression policy.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
  std::string root = ".";
  std::string src;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--src") == 0 && i + 1 < argc) {
      src = argv[++i];
    } else if (std::strcmp(argv[i], "--list-checks") == 0) {
      for (const auto& c : ilu::lint::checks()) {
        std::printf("%-22s %s\n", c.name, c.description);
      }
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: ilu-lint [--root DIR | --src DIR | "
                   "--list-checks]\n");
      return 2;
    }
  }
  if (src.empty()) src = root + "/src";
  if (!std::filesystem::is_directory(src)) {
    std::fprintf(stderr, "ilu-lint: no such directory: %s\n", src.c_str());
    return 2;
  }

  std::size_t files = 0;
  auto findings = ilu::lint::lint_tree(src, &files);
  for (const auto& f : findings) {
    std::printf("%s/%s:%d: [%s] %s\n", src.c_str(), f.path.c_str(), f.line,
                f.check.c_str(), f.message.c_str());
  }
  std::fprintf(stderr, "ilu-lint: %zu file(s) scanned, %zu finding(s)\n",
               files, findings.size());
  return findings.empty() ? 0 : 1;
}
