#include "lint/graph.hpp"

#include <deque>
#include <set>
#include <sstream>

namespace ilu::lint {

void Digraph::add_node(const std::string& n) { adj_[n]; }

void Digraph::add_edge(const std::string& from, const std::string& to,
                       const std::string& label) {
  adj_[to];
  adj_[from].emplace(to, label);  // emplace: first label wins
}

bool Digraph::has_edge(const std::string& from, const std::string& to) const {
  auto it = adj_.find(from);
  return it != adj_.end() && it->second.count(to) > 0;
}

const std::string* Digraph::edge_label(const std::string& from,
                                       const std::string& to) const {
  auto it = adj_.find(from);
  if (it == adj_.end()) return nullptr;
  auto jt = it->second.find(to);
  return jt == it->second.end() ? nullptr : &jt->second;
}

std::vector<std::string> Digraph::nodes() const {
  std::vector<std::string> out;
  out.reserve(adj_.size());
  for (const auto& [n, _] : adj_) out.push_back(n);
  return out;
}

std::vector<std::string> Digraph::path(const std::string& from,
                                       const std::string& to) const {
  if (adj_.count(from) == 0 || adj_.count(to) == 0) return {};
  if (from == to) return {from};
  // BFS over sorted adjacency: the first time a node is reached fixes its
  // parent, and since frontiers expand in lexicographic order the resulting
  // shortest path is canonical.
  std::map<std::string, std::string> parent;
  std::deque<std::string> q{from};
  parent[from] = from;
  while (!q.empty()) {
    std::string n = q.front();
    q.pop_front();
    auto it = adj_.find(n);
    if (it == adj_.end()) continue;
    for (const auto& [m, _] : it->second) {
      if (parent.count(m) > 0) continue;
      parent[m] = n;
      if (m == to) {
        std::vector<std::string> rev{to};
        for (std::string c = to; c != from;) {
          c = parent[c];
          rev.push_back(c);
        }
        return {rev.rbegin(), rev.rend()};
      }
      q.push_back(m);
    }
  }
  return {};
}

std::vector<std::string> Digraph::reach_from(const std::string& n) const {
  std::set<std::string> seen;
  std::deque<std::string> q;
  auto it = adj_.find(n);
  if (it == adj_.end()) return {};
  for (const auto& [m, _] : it->second) {
    if (seen.insert(m).second) q.push_back(m);
  }
  while (!q.empty()) {
    std::string c = q.front();
    q.pop_front();
    auto jt = adj_.find(c);
    if (jt == adj_.end()) continue;
    for (const auto& [m, _] : jt->second) {
      if (seen.insert(m).second) q.push_back(m);
    }
  }
  return {seen.begin(), seen.end()};
}

std::vector<std::pair<std::string, std::string>>
Digraph::mutually_reachable_pairs() const {
  std::map<std::string, std::set<std::string>> reach;
  for (const auto& [n, _] : adj_) {
    auto r = reach_from(n);
    reach[n] = std::set<std::string>(r.begin(), r.end());
  }
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [a, ra] : reach) {
    for (const std::string& b : ra) {
      if (a < b && reach[b].count(a) > 0) out.emplace_back(a, b);
    }
  }
  return out;  // map iteration keeps this sorted
}

std::vector<std::vector<std::string>> Digraph::cycles() const {
  std::vector<std::vector<std::string>> out;
  std::set<std::string> claimed;  // nodes already reported in some cycle
  for (const auto& [n, edges] : adj_) {
    if (claimed.count(n) > 0) continue;
    bool self = edges.count(n) > 0;
    std::vector<std::string> back;
    if (!self) {
      // Find the shortest way back to n from any successor.
      for (const auto& [m, _] : edges) {
        auto p = path(m, n);
        if (!p.empty() && (back.empty() || p.size() < back.size())) back = p;
      }
      if (back.empty()) continue;
    }
    std::vector<std::string> cyc{n};
    for (const std::string& m : back) cyc.push_back(m);
    if (self) cyc.push_back(n);
    for (const std::string& m : cyc) claimed.insert(m);
    out.push_back(std::move(cyc));
  }
  return out;
}

std::string Digraph::dot(const std::string& name) const {
  std::ostringstream os;
  os << "digraph \"" << name << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (const auto& [n, _] : adj_) {
    os << "  \"" << n << "\";\n";
  }
  for (const auto& [n, edges] : adj_) {
    for (const auto& [m, label] : edges) {
      os << "  \"" << n << "\" -> \"" << m << "\"";
      if (!label.empty()) os << " [label=\"" << label << "\"]";
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace ilu::lint
